/// \file
/// Experiment E1 (Examples 4/5, Figure 2): the F_k family has domination
/// width 1 for every k, so the Theorem 1 algorithm (2-pebble tests) stays
/// polynomial as k grows, while the naive algorithm's exact homomorphism
/// test at node n12 degenerates into a K_k search in a dense clique-free
/// host: exponential growth in k.
///
/// Paper-predicted shape: pebble flat-ish in k; naive blowing up; both
/// answering identically (membership TRUE via the dominating tree T2).

#include <benchmark/benchmark.h>

#include "bench_support.h"
#include "support/testlib.h"
#include "wd/eval.h"
#include "wd/paper_examples.h"

namespace wdsparql {
namespace {

constexpr int kCopies = 3;  // Blow-up copies per colour class.

struct E1Instance {
  TermPool pool;
  PatternForest forest;
  RdfGraph graph{&pool};
  Mapping mu;

  explicit E1Instance(int k) {
    forest = MakeFkForest(&pool, k);
    benchsupport::MakeFkHardGraph(&pool, k, kCopies, &graph);
    mu = testlib::MakeMapping(&pool, {{"x", "a"}, {"y", "b"}});
  }
};

void BM_E1_NaiveWdEval(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  E1Instance instance(k);
  // Both algorithms must agree on the answer (dw(F_k) = 1).
  bool expected = NaiveWdEval(instance.forest, instance.graph, instance.mu);
  WDSPARQL_CHECK(expected == PebbleWdEval(instance.forest, instance.graph, instance.mu, 1));
  WDSPARQL_CHECK(expected);  // mu is maximal: no q-edges, no K_k.
  uint64_t tests = 0;
  for (auto _ : state) {
    EvalStats stats;
    bool answer = NaiveWdEval(instance.forest, instance.graph, instance.mu, &stats);
    benchmark::DoNotOptimize(+answer);
    tests += stats.extension_tests;
  }
  state.counters["k"] = k;
  state.counters["graph_triples"] = static_cast<double>(instance.graph.size());
  state.counters["extension_tests_per_iter"] =
      static_cast<double>(tests) / static_cast<double>(state.iterations());
}

void BM_E1_PebbleWdEval(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  E1Instance instance(k);
  uint64_t maps = 0;
  for (auto _ : state) {
    EvalStats stats;
    bool answer = PebbleWdEval(instance.forest, instance.graph, instance.mu, 1, &stats);
    benchmark::DoNotOptimize(+answer);
    maps += stats.pebble_maps_created;
  }
  state.counters["k"] = k;
  state.counters["graph_triples"] = static_cast<double>(instance.graph.size());
  state.counters["pebble_maps_per_iter"] =
      static_cast<double>(maps) / static_cast<double>(state.iterations());
}

BENCHMARK(BM_E1_NaiveWdEval)->DenseRange(2, 6)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E1_PebbleWdEval)->DenseRange(2, 6)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wdsparql

BENCHMARK_MAIN();
