#ifndef WDSPARQL_BENCH_BENCH_SUPPORT_H_
#define WDSPARQL_BENCH_BENCH_SUPPORT_H_

#include <benchmark/benchmark.h>

#include "rdf/generator.h"
#include "rdf/graph.h"
#include "util/check.h"

/// \file
/// Shared fixtures for the experiment benches (see EXPERIMENTS.md).
///
/// Each bench binary regenerates one experiment row series. Workloads are
/// deterministic (fixed seeds) so the series are reproducible run to run.

namespace wdsparql {
namespace benchsupport {

/// Builds the E1 instance for the F_k family: an RDF graph whose
/// r-substructure encodes a dense k-clique-free graph H, a p-edge (a, b)
/// anchoring the root mapping, and NO q-edges into a (so the n11 child
/// never extends and the naive algorithm is forced into the clique
/// search at n12).
///
/// H is a complete (k-1)-partite-ish blow-up: vertices u_{c,i} for colour
/// c in [k-1], copy i in [copies]; edges between all differently-coloured
/// pairs. Its largest clique has size k-1, so no K_k exists, yet every
/// smaller clique extends in many ways — a worst case for backtracking.
inline void MakeFkHardGraph(TermPool* pool, int k, int copies, RdfGraph* graph) {
  WDSPARQL_CHECK(pool != nullptr);
  WDSPARQL_CHECK(k >= 2 && copies >= 1);
  graph->Insert("a", "p", "b");
  auto vertex = [](int colour, int copy) {
    return "u" + std::to_string(colour) + "_" + std::to_string(copy);
  };
  int colours = k - 1;
  for (int c1 = 0; c1 < colours; ++c1) {
    for (int i1 = 0; i1 < copies; ++i1) {
      graph->Insert("b", "r", vertex(c1, i1));  // Pendant (?y, r, ?o1) hook.
      for (int c2 = 0; c2 < colours; ++c2) {
        if (c1 == c2) continue;
        for (int i2 = 0; i2 < copies; ++i2) {
          graph->Insert(vertex(c1, i1), "r", vertex(c2, i2));
        }
      }
    }
  }
}

}  // namespace benchsupport
}  // namespace wdsparql

#endif  // WDSPARQL_BENCH_BENCH_SUPPORT_H_
