/// \file
/// Experiment E16: observability overhead. Measures end-to-end
/// enumeration throughput through the public Database/Session/Cursor
/// API with statistics collection off (the default) and on
/// (`ExecOptions::collect_stats`), across graph sizes and pattern
/// shapes.
///
/// Acceptance bar for the stats feature: the stats-ON path stays
/// within 5% of the stats-OFF path on scan-heavy reads. The disabled
/// path should be indistinguishable from the pre-feature engine — it
/// pays one null check per `Next()` and a cursor-finish merge of a
/// handful of relaxed atomic adds.
///
///   BM_E16_Enumerate/<triples>/<collect>   collect: 0=off, 1=on
///   BM_E16_OptionalEnumerate/<triples>/<collect>   wdpf + maximality
///
/// Counters: rows/s is the comparable throughput metric.

#include <benchmark/benchmark.h>

#include <string>

#include "engine/api_internal.h"
#include "rdf/generator.h"
#include "util/check.h"
#include "wdsparql/wdsparql.h"

namespace wdsparql {
namespace {

/// A random graph bulk-loaded into a Database, queried through the
/// indexed backend (the serving default).
struct E16Instance {
  TermPool pool;
  Database db{&pool};

  explicit E16Instance(int num_triples) {
    RandomGraphOptions options;
    options.num_nodes = std::max(8, num_triples / 8);
    options.num_predicates = 8;
    options.num_triples = num_triples;
    options.seed = 16;
    RdfGraph staged(&pool);
    GenerateRandomGraph(options, &staged);
    engine_internal::BulkLoad(&db, staged.triples());
  }
};

ExecOptions MakeExec(bool collect) {
  ExecOptions exec;
  exec.collect_stats = collect;
  return exec;
}

void RunEnumeration(benchmark::State& state, const std::string& pattern) {
  E16Instance instance(static_cast<int>(state.range(0)));
  const bool collect = state.range(1) != 0;
  Statement stmt = instance.db.OpenSession().Prepare(pattern);
  WDSPARQL_CHECK(stmt.ok());
  ExecOptions exec = MakeExec(collect);

  uint64_t rows = 0;
  for (auto _ : state) {
    Cursor cursor = stmt.Execute(exec);
    while (cursor.Next()) {
      benchmark::DoNotOptimize(cursor.Row());
      ++rows;
    }
    if (collect) WDSPARQL_CHECK(cursor.stats() != nullptr);
  }
  state.counters["rows/s"] =
      benchmark::Counter(static_cast<double>(rows), benchmark::Counter::kIsRate);
}

/// Scan-heavy conjunctive path: the acceptance workload.
void BM_E16_Enumerate(benchmark::State& state) {
  RunEnumeration(state, "((?x p0 ?y) AND (?y p1 ?z))");
}
BENCHMARK(BM_E16_Enumerate)
    ->ArgsProduct({{4096, 32768}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

/// Maximality-testing workload: OPT forces extension certificates, the
/// per-candidate instrumentation-heaviest path.
void BM_E16_OptionalEnumerate(benchmark::State& state) {
  RunEnumeration(state, "(?x p0 ?y) OPT (?y p1 ?z)");
}
BENCHMARK(BM_E16_OptionalEnumerate)
    ->ArgsProduct({{4096, 32768}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wdsparql

BENCHMARK_MAIN();
