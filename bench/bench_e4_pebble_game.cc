/// \file
/// Experiment E4 (Proposition 2): the existential k-pebble game is
/// decidable in polynomial time for fixed k, with cost governed by the
/// number of partial homomorphisms (~ C(n,k) * d^k for n free variables
/// over a domain of size d).
///
/// Paper-predicted shape: for fixed k, time polynomial in |G|; for fixed
/// G, cost multiplying by roughly d per unit of k. The bench sweeps both
/// axes on clique sources (the family driving Examples 3-5) and reports
/// the partial-map counts alongside wall time.

#include <benchmark/benchmark.h>

#include "hom/pebble.h"
#include "rdf/generator.h"
#include "wd/paper_examples.h"

namespace wdsparql {
namespace {

/// Clique source K_6 against a dense clique-free host (5-partite blow-up)
/// of varying size; fixed k.
void BM_E4_PebbleVsGraphSize(benchmark::State& state) {
  int copies = static_cast<int>(state.range(0));
  TermPool pool;
  TripleSet source = MakeClique(&pool, 6, "v", "e");
  RdfGraph graph(&pool);
  // 5-colour blow-up: no K_6, dense.
  auto vertex = [](int c, int i) {
    return "b" + std::to_string(c) + "_" + std::to_string(i);
  };
  for (int c1 = 0; c1 < 5; ++c1) {
    for (int i1 = 0; i1 < copies; ++i1) {
      for (int c2 = 0; c2 < 5; ++c2) {
        if (c1 == c2) continue;
        for (int i2 = 0; i2 < copies; ++i2) {
          graph.Insert(vertex(c1, i1), "e", vertex(c2, i2));
        }
      }
    }
  }
  uint64_t maps = 0;
  bool wins = false;
  for (auto _ : state) {
    PebbleGameStats stats;
    wins = PebbleGameWins(source, {}, graph.triples(), 2, &stats);
    benchmark::DoNotOptimize(+wins);
    maps += stats.maps_created;
  }
  state.counters["domain_size"] = static_cast<double>(5 * copies);
  state.counters["duplicator_wins"] = wins ? 1 : 0;
  state.counters["maps_per_iter"] =
      static_cast<double>(maps) / static_cast<double>(state.iterations());
  state.SetComplexityN(5 * copies);
}

/// Fixed host, growing pebble count k on a clique source: the exact
/// threshold of Proposition 3 — at k-1 >= ctw the game turns exact and
/// refutes the embedding.
void BM_E4_PebbleVsK(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  TermPool pool;
  TripleSet source = MakeClique(&pool, 5, "v", "e");  // ctw = 4.
  RdfGraph graph(&pool);
  UndirectedGraph host = GenerateErdosRenyi(14, 0.5, 99);
  EncodeUndirectedGraph(host, "e", "h", &graph);

  uint64_t maps = 0;
  bool wins = false;
  for (auto _ : state) {
    PebbleGameStats stats;
    wins = PebbleGameWins(source, {}, graph.triples(), k, &stats);
    benchmark::DoNotOptimize(+wins);
    maps += stats.maps_created;
  }
  state.counters["k"] = k;
  state.counters["duplicator_wins"] = wins ? 1 : 0;
  state.counters["maps_per_iter"] =
      static_cast<double>(maps) / static_cast<double>(state.iterations());
}

BENCHMARK(BM_E4_PebbleVsGraphSize)
    ->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();
BENCHMARK(BM_E4_PebbleVsK)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wdsparql

BENCHMARK_MAIN();
