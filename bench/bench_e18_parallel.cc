/// \file
/// Experiment E18: parallel query execution over one pinned ReadView.
///
/// Two workload shapes:
///
///   BM_E18_SingleQueryWorkers/<w> — ONE large enumeration (a two-hop
///     join over a 64k-triple graph) executed with
///     `ExecOptions::parallelism = w` for w in {1, 2, 4, 8}. Workers
///     fan the root-binding space of the join across threads over the
///     same pinned view; rows/s (items_per_second) is the comparable
///     metric. `w = 0` is the serial engine with the parallel machinery
///     entirely bypassed — the baseline for the no-regression bar.
///
///   BM_E18_MultiQueryLoad/threads:<t> — the bench_e14 shape: t
///     concurrent statements, each a parallelism=2 execution against a
///     fresh pin, with one live writer mutating and compacting
///     throughout. Measures how intra-query parallelism composes with
///     inter-query concurrency under churn.
///
/// Acceptance bars (documented here, asserted by eye against the JSON
/// this binary emits with --benchmark_format=json):
///
///   * single-query rows/s at w=8 >= 3x the w=1 number on hardware with
///     >= 8 physical cores;
///   * w=0 (serial path) within 5% of the pre-feature engine — the
///     suspendable-join rewrite must not tax serial execution;
///   * the w=1 worker-pool overhead (thread + queue + merge dedup) stays
///     modest vs w=0 (the pool is opt-in; nobody pays it by default).
///
/// CAVEAT for recorded numbers: a single-core container cannot show the
/// 3x bar — worker threads timeshare one CPU, so w>1 matches (or
/// slightly trails) w=1 there. The scaling claim is about the absence
/// of shared mutable state on the enumeration path (one atomic
/// fetch_add per claimed root value, one lock per delivered row);
/// re-run on multi-core hardware to regenerate the scaling series.

#include <benchmark/benchmark.h>

#include <atomic>
#include <string>
#include <thread>

#include "rdf/generator.h"
#include "util/check.h"
#include "wdsparql/wdsparql.h"

namespace wdsparql {
namespace {

constexpr int kTriples = 64 * 1024;

/// The shared world: a 64k-triple random graph (the E14 instance shape)
/// and a prepared two-hop join; optionally a live writer thread.
class E18World {
 public:
  explicit E18World(bool with_writer) {
    RandomGraphOptions options;
    options.num_nodes = kTriples / 8;
    options.num_predicates = 8;
    options.num_triples = kTriples;
    options.seed = 18;
    RdfGraph staged(&db_.pool());
    GenerateRandomGraph(options, &staged);
    std::string text;
    for (const Triple& t : staged.triples()) {
      text += db_.pool().ToParsableString(t.subject);
      text += ' ';
      text += db_.pool().ToParsableString(t.predicate);
      text += ' ';
      text += db_.pool().ToParsableString(t.object);
      text += " .\n";
    }
    WDSPARQL_CHECK(db_.LoadNTriples(text).ok());
    statement_ = db_.OpenSession().Prepare("(?x p0 ?y) AND (?y p1 ?z)");
    WDSPARQL_CHECK(statement_.ok());
    if (with_writer) {
      writer_ = std::thread([this] { WriterLoop(); });
    }
  }

  ~E18World() {
    stop_.store(true);
    if (writer_.joinable()) writer_.join();
  }

  const Statement& statement() const { return statement_; }

 private:
  void WriterLoop() {
    uint64_t next = 0;
    uint64_t oldest = 0;
    while (!stop_.load(std::memory_order_relaxed)) {
      db_.AddTriple("churn-s" + std::to_string(next), "p0",
                    "churn-o" + std::to_string(next));
      ++next;
      if (next - oldest > 512) {
        db_.RemoveTriple("churn-s" + std::to_string(oldest), "p0",
                         "churn-o" + std::to_string(oldest));
        ++oldest;
      }
      if (next % 1024 == 0) db_.Compact();
    }
  }

  mutable Database db_;
  Statement statement_;
  std::thread writer_;
  std::atomic<bool> stop_{false};
};

uint64_t RunOnce(const Statement& stmt, uint32_t parallelism) {
  ExecOptions exec;
  exec.parallelism = parallelism;
  Cursor cursor = stmt.Execute(exec);
  uint64_t answers = 0;
  while (cursor.Next()) ++answers;
  return answers;
}

/// One big enumeration at the requested worker count; range(0) is
/// `ExecOptions::parallelism` (0 = the untouched serial path).
void BM_E18_SingleQueryWorkers(benchmark::State& state) {
  static E18World* world = nullptr;
  if (world == nullptr) world = new E18World(/*with_writer=*/false);
  const uint32_t workers = static_cast<uint32_t>(state.range(0));
  uint64_t answers = 0;
  for (auto _ : state) {
    answers += RunOnce(world->statement(), workers);
  }
  state.SetItemsProcessed(static_cast<int64_t>(answers));
  state.counters["workers"] = static_cast<double>(workers);
}
BENCHMARK(BM_E18_SingleQueryWorkers)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

E18World* g_load_world = nullptr;

/// The E14 shape with intra-query parallelism: every benchmark thread
/// repeatedly runs a parallelism=2 execution against a fresh pin while
/// the writer churns.
void BM_E18_MultiQueryLoad(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_load_world = new E18World(/*with_writer=*/true);
  }
  uint64_t answers = 0;
  for (auto _ : state) {
    answers += RunOnce(g_load_world->statement(), /*parallelism=*/2);
  }
  state.SetItemsProcessed(static_cast<int64_t>(answers));
  if (state.thread_index() == 0) {
    delete g_load_world;
    g_load_world = nullptr;
  }
}
BENCHMARK(BM_E18_MultiQueryLoad)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wdsparql
