/// \file
/// Experiment E8 (Section 3.1/3.2 discussion): bounded domination width
/// strictly generalises local tractability [17]. On the F_k and T'_k
/// families the local width grows linearly in k — the locally-tractable
/// criterion rejects them — while dw and bw are pinned at 1 and the
/// Theorem 1 algorithm evaluates them with 2-pebble tests whose cost is
/// independent of k's clique size (up to the query's size itself).
///
/// Paper-predicted shape: `local_width` column rising as k-1; `dw`
/// column flat at 1; pebble evaluation time polynomial throughout.

#include <benchmark/benchmark.h>

#include "support/testlib.h"
#include "wd/branch_width.h"
#include "wd/domination.h"
#include "wd/eval.h"
#include "wd/local_tractability.h"
#include "wd/paper_examples.h"

namespace wdsparql {
namespace {

void BM_E8_WidthGapOnFk(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    TermPool pool;
    PatternForest forest = MakeFkForest(&pool, k);
    int local = LocalWidth(forest);
    Result<int> dw = DominationWidth(forest, &pool);
    WDSPARQL_CHECK(dw.ok());
    benchmark::DoNotOptimize(+local);
    state.counters["local_width"] = local;       // k - 1.
    state.counters["dw"] = dw.value();           // 1.
  }
  state.counters["k"] = k;
}

void BM_E8_WidthGapOnBranchFamily(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    TermPool pool;
    PatternForest forest;
    forest.trees.push_back(MakeBranchFamilyTree(&pool, k));
    int local = LocalWidth(forest);
    int bw = BranchTreewidth(forest.trees[0]);
    benchmark::DoNotOptimize(+local);
    state.counters["local_width"] = local;  // k - 1.
    state.counters["bw"] = bw;              // 1.
  }
  state.counters["k"] = k;
}

void BM_E8_EvaluationDespiteUnboundedLocalWidth(benchmark::State& state) {
  // The punchline: evaluation cost of the pebble algorithm on F_k stays
  // polynomial although every locally-tractable bound fails.
  int k = static_cast<int>(state.range(0));
  TermPool pool;
  PatternForest forest = MakeFkForest(&pool, k);
  RdfGraph graph(&pool);
  graph.Insert("a", "p", "b");
  for (int i = 0; i < 30; ++i) {
    graph.Insert("b", "r", "m" + std::to_string(i));
    graph.Insert("m" + std::to_string(i), "r", "m" + std::to_string((i + 11) % 30));
  }
  Mapping mu = testlib::MakeMapping(&pool, {{"x", "a"}, {"y", "b"}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(PebbleWdEval(forest, graph, mu, 1));
  }
  state.counters["k"] = k;
  state.counters["local_width"] = k - 1;
}

BENCHMARK(BM_E8_WidthGapOnFk)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E8_WidthGapOnBranchFamily)->DenseRange(2, 7)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E8_EvaluationDespiteUnboundedLocalWidth)
    ->DenseRange(2, 7)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wdsparql

BENCHMARK_MAIN();
