/// \file
/// Experiment E3 (Theorem 1): data-complexity scaling. For a fixed
/// bounded-dw query (the F_3 forest, dw = 1) the pebble evaluation
/// algorithm must scale polynomially in |G|.
///
/// Paper-predicted shape: pebble time grows as a low-degree polynomial in
/// the number of triples (the 2-pebble fixpoint is O(n^2 d^2) partial
/// maps); the naive algorithm on the same instances is also measured for
/// reference (on random data it is usually fast — its pain is query
/// width, not data size; see E1 for the query-side blow-up).

#include <benchmark/benchmark.h>

#include "rdf/generator.h"
#include "support/testlib.h"
#include "wd/eval.h"
#include "wd/paper_examples.h"

namespace wdsparql {
namespace {

struct E3Instance {
  TermPool pool;
  PatternForest forest;
  RdfGraph graph{&pool};
  Mapping mu;

  explicit E3Instance(int num_nodes) {
    forest = MakeFkForest(&pool, 3);
    // Random background over the family's predicates plus the anchor edge.
    Rng rng(424242);
    graph.Insert("a", "p", "b");
    for (int i = 0; i < num_nodes * 4; ++i) {
      std::string u = "n" + std::to_string(rng.NextBounded(num_nodes));
      std::string v = "n" + std::to_string(rng.NextBounded(num_nodes));
      switch (rng.NextBounded(3)) {
        case 0:
          graph.Insert(u, "p", v);
          break;
        case 1:
          graph.Insert(u, "q", v);
          break;
        default:
          graph.Insert(u, "r", v);
          break;
      }
    }
    mu = testlib::MakeMapping(&pool, {{"x", "a"}, {"y", "b"}});
  }
};

void BM_E3_PebbleDataScaling(benchmark::State& state) {
  E3Instance instance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PebbleWdEval(instance.forest, instance.graph, instance.mu, 1));
  }
  state.counters["graph_triples"] = static_cast<double>(instance.graph.size());
  state.SetComplexityN(static_cast<int64_t>(instance.graph.size()));
}

void BM_E3_NaiveDataScaling(benchmark::State& state) {
  E3Instance instance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        NaiveWdEval(instance.forest, instance.graph, instance.mu));
  }
  state.counters["graph_triples"] = static_cast<double>(instance.graph.size());
  state.SetComplexityN(static_cast<int64_t>(instance.graph.size()));
}

BENCHMARK(BM_E3_PebbleDataScaling)
    ->RangeMultiplier(2)
    ->Range(25, 400)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();
BENCHMARK(BM_E3_NaiveDataScaling)
    ->RangeMultiplier(2)
    ->Range(25, 400)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

}  // namespace
}  // namespace wdsparql

BENCHMARK_MAIN();
