/// \file
/// Experiment E5 (Example 3 / Figure 1, Proposition 1): cost of the two
/// recognition primitives everything else builds on — core computation
/// and exact treewidth — on the paper's own t-graph families.
///
/// Paper-predicted shape: ctw(S_k) = k-1 (the clique is a core) while
/// ctw(S'_k) = 1 (the clique folds into the self-loop); the *fold* for
/// S' is found quickly, whereas *certifying* core-ness of S needs an
/// exhaustive endomorphism refutation that grows with k. Exact treewidth
/// (subset DP) grows exponentially in vertex count, bracketed by the
/// min-fill / degeneracy bounds which stay cheap.

#include <benchmark/benchmark.h>

#include "hom/core.h"
#include "hom/treewidth.h"
#include "ptree/tgraph.h"
#include "wd/paper_examples.h"

namespace wdsparql {
namespace {

void BM_E5_CoreOfS(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  TermPool pool;
  GeneralizedTGraph s = MakeExample3S(&pool, k);
  for (auto _ : state) {
    TripleSet core = ComputeCore(s.S, s.X);
    benchmark::DoNotOptimize(core.size());
    WDSPARQL_CHECK(core.size() == s.S.size());  // S is a core.
  }
  state.counters["k"] = k;
  state.counters["triples"] = static_cast<double>(s.S.size());
}

void BM_E5_CoreOfSPrime(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  TermPool pool;
  GeneralizedTGraph s_prime = MakeExample3SPrime(&pool, k);
  std::size_t core_size = 0;
  for (auto _ : state) {
    TripleSet core = ComputeCore(s_prime.S, s_prime.X);
    core_size = core.size();
    benchmark::DoNotOptimize(+core_size);
  }
  state.counters["k"] = k;
  state.counters["core_triples"] = static_cast<double>(core_size);  // Always 4.
}

void BM_E5_ExactTreewidthGrid(benchmark::State& state) {
  int dim = static_cast<int>(state.range(0));
  UndirectedGraph grid = UndirectedGraph::Grid(dim, dim);
  int width = 0;
  for (auto _ : state) {
    TreewidthResult result = ComputeTreewidth(grid);
    width = result.value();
    benchmark::DoNotOptimize(+width);
  }
  WDSPARQL_CHECK(width == dim);
  state.counters["vertices"] = dim * dim;
  state.counters["treewidth"] = width;
}

void BM_E5_TreewidthBoundsOnly(benchmark::State& state) {
  // Heuristic bounds on larger grids where the DP is out of reach.
  int dim = static_cast<int>(state.range(0));
  UndirectedGraph grid = UndirectedGraph::Grid(dim, dim);
  TreewidthOptions options;
  options.exact_dp_max_vertices = 0;  // Bounds only.
  for (auto _ : state) {
    TreewidthResult result = ComputeTreewidth(grid, options);
    benchmark::DoNotOptimize(+result.upper);
    state.counters["lower"] = result.lower;
    state.counters["upper"] = result.upper;
  }
  state.counters["vertices"] = dim * dim;
}

void BM_E5_CtwOfBranchFamily(benchmark::State& state) {
  // The end-to-end primitive used by bw/dw: ctw(S^br, X^br) on the
  // Section 3.2 family (fold found) vs the clique family (refutation).
  int k = static_cast<int>(state.range(0));
  TermPool pool;
  GeneralizedTGraph folding(MakeBranchFamilyTree(&pool, k).pattern(1), {});
  {
    PatternTree tree = MakeBranchFamilyTree(&pool, k);
    TripleSet s = tree.pattern(0);
    s.InsertAll(tree.pattern(1));
    folding = GeneralizedTGraph(std::move(s), {pool.InternVariable("y")});
  }
  int width = 0;
  for (auto _ : state) {
    width = CoreTreewidthOf(folding).upper;
    benchmark::DoNotOptimize(+width);
  }
  WDSPARQL_CHECK(width == 1);
  state.counters["k"] = k;
}

BENCHMARK(BM_E5_CoreOfS)->DenseRange(2, 7)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E5_CoreOfSPrime)->DenseRange(2, 7)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E5_ExactTreewidthGrid)->DenseRange(2, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E5_TreewidthBoundsOnly)
    ->DenseRange(4, 12, 4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E5_CtwOfBranchFamily)->DenseRange(2, 7)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wdsparql

BENCHMARK_MAIN();
