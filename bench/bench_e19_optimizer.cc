/// \file
/// Experiment E19: cost-based variable ordering vs the built-in
/// most-constrained-first heuristic, on a workload built to sit exactly
/// on the heuristic's blind spot.
///
/// Workload shapes:
///
///   BM_E19_BowtieSkew/<opt> — a "bowtie": two size-N fan classes
///     (x-side: `x_i p1 y_i` + `x_i pa ca` + `x_i pc cc`; y-side:
///     `y_i pb cb`) joined through a 4-row bridge (`y_j p2 q`, j < 4):
///
///       ((?x p1 ?y) AND (?x pa ca) AND (?x pc cc)
///                   AND (?y p2 q) AND (?y pb cb))
///
///     Both variables sit in exactly three conjuncts, so the
///     most-constrained-first heuristic is at a tie and its
///     deterministic tie-break binds ?x first — N root bindings, each
///     rescanning the full (*, pb, cb) range at the ?y level:
///     Theta(N^2) base triples for 4 answers. The planner sees from the
///     exact (p2, q) pair count that ?y has 4 candidate values and
///     binds it first: Theta(N) triples. `<opt>` is
///     `ExecOptions::optimize` (0 = heuristic, 1 = planned); the world
///     verifies once at startup that both modes return byte-identical
///     sorted answer sets.
///
///   BM_E19_PlanningOverhead/<opt> — a one-answer point lookup
///     (`(x0 p1 ?y)`) where the plan cannot beat the heuristic; what
///     remains is the per-cursor-open cost of running the DP at all.
///
/// Acceptance bars (documented here, asserted by eye against the JSON
/// this binary emits with --benchmark_format=json):
///
///   * BowtieSkew: optimize=1 executes the skewed join >= 3x faster
///     than optimize=0 with an identical answer set (the recorded run
///     shows ~two orders of magnitude — the gap is Theta(N) vs
///     Theta(N^2) scan volume, see the base_triples counters);
///   * PlanningOverhead: optimize=1 adds only a bounded, data-size-
///     independent per-open cost (~1us of DP on this library build) on
///     a point query that planning cannot improve — visible only
///     because the whole query is a few microseconds.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "util/check.h"
#include "wdsparql/wdsparql.h"

namespace wdsparql {
namespace {

constexpr int kFanSize = 2048;
constexpr int kBridgeRows = 4;

/// Sorted rendered solutions of one execution.
std::vector<std::string> DrainSorted(Cursor cursor, const TermPool& pool) {
  std::vector<std::string> out;
  while (cursor.Next()) out.push_back(cursor.Row().ToString(pool));
  WDSPARQL_CHECK(cursor.state() == Cursor::State::kExhausted);
  std::sort(out.begin(), out.end());
  return out;
}

/// The shared world: the bowtie graph with statistics built (one
/// Compact after load), the two prepared statements, and a one-time
/// differential check that plans change cost, never answers.
class E19World {
 public:
  E19World() {
    std::string text;
    for (int i = 0; i < kFanSize; ++i) {
      const std::string x = "x" + std::to_string(i);
      const std::string y = "y" + std::to_string(i);
      text += x + " p1 " + y + " .\n";
      text += x + " pa ca .\n";
      text += x + " pc cc .\n";
      text += y + " pb cb .\n";
    }
    for (int j = 0; j < kBridgeRows; ++j) {
      text += "y" + std::to_string(j) + " p2 q .\n";
    }
    WDSPARQL_CHECK(db_.LoadNTriples(text).ok());
    db_.Compact();  // Merge -> cardinality stats.

    Session session = db_.OpenSession();
    bowtie_ = session.Prepare(
        "((?x p1 ?y) AND (?x pa ca) AND (?x pc cc)"
        " AND (?y p2 q) AND (?y pb cb))");
    WDSPARQL_CHECK(bowtie_.ok());
    point_ = session.Prepare("(x0 p1 ?y)");
    WDSPARQL_CHECK(point_.ok());

    ExecOptions heuristic;
    heuristic.optimize = false;
    const std::vector<std::string> expected =
        DrainSorted(bowtie_.Execute(heuristic), db_.pool());
    WDSPARQL_CHECK(expected.size() == static_cast<size_t>(kBridgeRows));
    WDSPARQL_CHECK(expected == DrainSorted(bowtie_.Execute(), db_.pool()));
  }

  const Statement& bowtie() const { return bowtie_; }
  const Statement& point() const { return point_; }

  /// Base triples scanned by one full drain under the given mode.
  uint64_t ScanVolume(const Statement& stmt, bool optimize) const {
    ExecOptions exec;
    exec.optimize = optimize;
    exec.collect_stats = true;
    Cursor cursor = stmt.Execute(exec);
    while (cursor.Next()) {
    }
    return cursor.stats()->base_triples_scanned;
  }

 private:
  mutable Database db_;
  Statement bowtie_;
  Statement point_;
};

uint64_t RunOnce(const Statement& stmt, bool optimize) {
  ExecOptions exec;
  exec.optimize = optimize;
  Cursor cursor = stmt.Execute(exec);
  uint64_t answers = 0;
  while (cursor.Next()) ++answers;
  return answers;
}

/// The skewed join at range(0) = ExecOptions::optimize.
void BM_E19_BowtieSkew(benchmark::State& state) {
  static E19World* world = nullptr;
  if (world == nullptr) world = new E19World;
  const bool optimize = state.range(0) != 0;
  uint64_t answers = 0;
  for (auto _ : state) {
    answers += RunOnce(world->bowtie(), optimize);
  }
  state.SetItemsProcessed(static_cast<int64_t>(answers));
  state.counters["base_triples"] =
      static_cast<double>(world->ScanVolume(world->bowtie(), optimize));
}
BENCHMARK(BM_E19_BowtieSkew)->Arg(0)->Arg(1)->UseRealTime()->Unit(
    benchmark::kMillisecond);

/// Fixed per-open planning cost on a query the plan cannot improve.
void BM_E19_PlanningOverhead(benchmark::State& state) {
  static E19World* world = nullptr;
  if (world == nullptr) world = new E19World;
  const bool optimize = state.range(0) != 0;
  uint64_t answers = 0;
  for (auto _ : state) {
    answers += RunOnce(world->point(), optimize);
  }
  state.SetItemsProcessed(static_cast<int64_t>(answers));
}
BENCHMARK(BM_E19_PlanningOverhead)
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace wdsparql
