/// \file
/// Experiment E17: tracing overhead. Measures end-to-end enumeration
/// throughput through the public Database/Session/Cursor API on the
/// E16 workloads, in three tracing modes:
///
///   mode 0 — recorder disabled (DatabaseOptions::trace_capacity = 0):
///            every instrumentation site is one predictable branch.
///            The acceptance bar is <1% vs the pre-feature engine
///            (compare against bench_e16's collect=0 numbers).
///   mode 1 — recorder enabled, request untraced (a null
///            ExecOptions::trace): the serving steady state for
///            requests that nobody is watching.
///   mode 2 — fully traced: a fresh TraceContext per query, a request
///            root span, per-wdpf-subtree spans, one ring publish per
///            query. The acceptance bar is <5% vs mode 0.
///
///   BM_E17_Enumerate/<triples>/<mode>
///   BM_E17_OptionalEnumerate/<triples>/<mode>   wdpf + maximality
///
/// Counters: rows/s is the comparable throughput metric.

#include <benchmark/benchmark.h>

#include <string>

#include "engine/api_internal.h"
#include "rdf/generator.h"
#include "util/check.h"
#include "wdsparql/wdsparql.h"

namespace wdsparql {
namespace {

/// The E16 graph, with the flight recorder sized by mode.
struct E17Instance {
  TermPool pool;
  Database db;

  E17Instance(int num_triples, bool tracing_enabled)
      : db(&pool, [&] {
          DatabaseOptions options;
          options.trace_capacity =
              tracing_enabled ? TraceRecorder::kDefaultCapacity : 0;
          return options;
        }()) {
    RandomGraphOptions options;
    options.num_nodes = std::max(8, num_triples / 8);
    options.num_predicates = 8;
    options.num_triples = num_triples;
    options.seed = 16;  // Same instance as bench_e16.
    RdfGraph staged(&pool);
    GenerateRandomGraph(options, &staged);
    engine_internal::BulkLoad(&db, staged.triples());
  }
};

void RunEnumeration(benchmark::State& state, const std::string& pattern) {
  const int mode = static_cast<int>(state.range(1));
  E17Instance instance(static_cast<int>(state.range(0)), mode != 0);
  Statement stmt = instance.db.OpenSession().Prepare(pattern);
  WDSPARQL_CHECK(stmt.ok());
  TraceRecorder* recorder = instance.db.trace_recorder();
  WDSPARQL_CHECK((recorder != nullptr) == (mode != 0));

  uint64_t rows = 0;
  for (auto _ : state) {
    // Mode 2 pays the full per-request cost: context construction, a
    // root span, the traced execution, and the flush's ring publish.
    TraceContext ctx(mode == 2 ? recorder : nullptr);
    ExecOptions exec;
    if (ctx.enabled()) {
      exec.trace = &ctx;
      exec.trace_parent = ctx.StartSpan("request");
    }
    Cursor cursor = stmt.Execute(exec);
    while (cursor.Next()) {
      benchmark::DoNotOptimize(cursor.Row());
      ++rows;
    }
    cursor.Close();
    ctx.Flush();
  }
  if (mode == 2) {
    WDSPARQL_CHECK(!recorder->CollectTraces(1).empty());
  }
  state.counters["rows/s"] =
      benchmark::Counter(static_cast<double>(rows), benchmark::Counter::kIsRate);
}

/// Scan-heavy conjunctive path: the acceptance workload.
void BM_E17_Enumerate(benchmark::State& state) {
  RunEnumeration(state, "((?x p0 ?y) AND (?y p1 ?z))");
}
BENCHMARK(BM_E17_Enumerate)
    ->ArgsProduct({{4096, 32768}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

/// Maximality-testing workload: OPT forces extension certificates and
/// opens the most subtree spans per query.
void BM_E17_OptionalEnumerate(benchmark::State& state) {
  RunEnumeration(state, "(?x p0 ?y) OPT (?y p1 ?z)");
}
BENCHMARK(BM_E17_OptionalEnumerate)
    ->ArgsProduct({{4096, 32768}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wdsparql

BENCHMARK_MAIN();
