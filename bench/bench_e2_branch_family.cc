/// \file
/// Experiment E2 (Section 3.2): the UNION-free family T'_k has branch
/// treewidth 1 (and hence domination width 1 by Proposition 5) but local
/// width k-1. Both evaluation algorithms therefore stay polynomial in k,
/// while the *local-tractability criterion* — the best previously known
/// sufficient condition — diverges: the bench reports local width and
/// branch width side by side with the evaluation cost.
///
/// Paper-predicted shape: evaluation time roughly flat in k for the
/// pebble algorithm (the k-clique child folds onto the root self-loop);
/// local width growing linearly, branch width pinned at 1.

#include <benchmark/benchmark.h>

#include "support/testlib.h"
#include "wd/branch_width.h"
#include "wd/eval.h"
#include "wd/local_tractability.h"
#include "wd/paper_examples.h"

namespace wdsparql {
namespace {

struct E2Instance {
  TermPool pool;
  PatternForest forest;
  RdfGraph graph{&pool};
  Mapping mu;       ///< Root-only mapping (not maximal here).
  Mapping full_mu;  ///< Fully extended mapping (the answer).

  explicit E2Instance(int k) {
    forest.trees.push_back(MakeBranchFamilyTree(&pool, k));
    graph.Insert("a", "r", "a");
    // Extra r-structure so homomorphism tests have something to chew on.
    for (int i = 0; i < 40; ++i) {
      graph.Insert("a", "r", "m" + std::to_string(i));
      graph.Insert("m" + std::to_string(i), "r", "m" + std::to_string((i + 7) % 40));
    }
    mu = testlib::MakeMapping(&pool, {{"y", "a"}});
    full_mu = mu;
    for (int i = 1; i <= k; ++i) {
      WDSPARQL_CHECK(
          full_mu.Bind(pool.InternVariable("o" + std::to_string(i)), pool.InternIri("a")));
    }
  }
};

void BM_E2_NaiveWdEval(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  E2Instance instance(k);
  WDSPARQL_CHECK(!NaiveWdEval(instance.forest, instance.graph, instance.mu));
  WDSPARQL_CHECK(NaiveWdEval(instance.forest, instance.graph, instance.full_mu));
  for (auto _ : state) {
    benchmark::DoNotOptimize(NaiveWdEval(instance.forest, instance.graph, instance.mu));
    benchmark::DoNotOptimize(
        NaiveWdEval(instance.forest, instance.graph, instance.full_mu));
  }
  state.counters["k"] = k;
}

void BM_E2_PebbleWdEval(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  E2Instance instance(k);
  // bw(T'_k) = 1: the pebble algorithm at k = 1 is complete.
  WDSPARQL_CHECK(!PebbleWdEval(instance.forest, instance.graph, instance.mu, 1));
  WDSPARQL_CHECK(PebbleWdEval(instance.forest, instance.graph, instance.full_mu, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PebbleWdEval(instance.forest, instance.graph, instance.mu, 1));
    benchmark::DoNotOptimize(
        PebbleWdEval(instance.forest, instance.graph, instance.full_mu, 1));
  }
  state.counters["k"] = k;
}

void BM_E2_WidthMeasures(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    TermPool pool;
    PatternForest forest;
    forest.trees.push_back(MakeBranchFamilyTree(&pool, k));
    int local = LocalWidth(forest);
    int branch = BranchTreewidth(forest.trees[0]);
    benchmark::DoNotOptimize(+local);
    benchmark::DoNotOptimize(+branch);
    state.counters["local_width"] = local;    // Grows as k-1.
    state.counters["branch_width"] = branch;  // Pinned at 1.
  }
  state.counters["k"] = k;
}

BENCHMARK(BM_E2_NaiveWdEval)->DenseRange(2, 8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E2_PebbleWdEval)->DenseRange(2, 8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E2_WidthMeasures)->DenseRange(2, 8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wdsparql

BENCHMARK_MAIN();
