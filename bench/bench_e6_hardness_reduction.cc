/// \file
/// Experiment E6 (Theorem 2 / Lemma 2): the fpt-reduction from p-CLIQUE
/// to co-wdEVAL, run end to end. For each (H, k) the bench builds the
/// Lemma 2 gadget (B, X), freezes it into an RDF instance, and decides
/// k-clique through NaiveWdEval, cross-checked against brute force.
///
/// Paper-predicted shape: the gadget is computable in g(k) * |H|^O(1) —
/// polynomial growth in |H| for fixed k — and the evaluation-side cost
/// concentrates in the exact homomorphism test (the coNP kernel), which
/// is what the W[1]-hardness transfers to. Reported counters: gadget
/// variables/triples and the clique answer.

#include <benchmark/benchmark.h>

#include "rdf/generator.h"
#include "wd/eval.h"
#include "wd/hardness.h"

namespace wdsparql {
namespace {

void BM_E6_GadgetConstruction(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int k = static_cast<int>(state.range(1));
  UndirectedGraph h = GenerateErdosRenyi(n, 0.4, 7 + n);
  std::size_t gadget_triples = 0;
  for (auto _ : state) {
    TermPool pool;
    auto instance = BuildCliqueReduction(h, k, &pool);
    WDSPARQL_CHECK(instance.ok());
    gadget_triples = instance.value().graph.size();
    benchmark::DoNotOptimize(+gadget_triples);
  }
  state.counters["host_vertices"] = n;
  state.counters["host_edges"] = h.NumEdges();
  state.counters["k"] = k;
  state.counters["gadget_triples"] = static_cast<double>(gadget_triples);
}

void BM_E6_EndToEndDecision(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int k = static_cast<int>(state.range(1));
  UndirectedGraph h = GenerateErdosRenyi(n, 0.4, 7 + n);
  TermPool pool;
  auto instance = BuildCliqueReduction(h, k, &pool);
  WDSPARQL_CHECK(instance.ok());
  bool expected_clique = HasCliqueBruteForce(h, k);

  bool member = false;
  for (auto _ : state) {
    member = NaiveWdEval(instance.value().forest, instance.value().graph,
                         instance.value().mu);
    benchmark::DoNotOptimize(+member);
  }
  WDSPARQL_CHECK(member == !expected_clique);  // Reduction correctness.
  state.counters["host_vertices"] = n;
  state.counters["k"] = k;
  state.counters["has_clique"] = expected_clique ? 1 : 0;
  state.counters["gadget_triples"] = static_cast<double>(instance.value().graph.size());
}

BENCHMARK(BM_E6_GadgetConstruction)
    ->ArgsProduct({{6, 8, 10, 12}, {2, 3}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E6_EndToEndDecision)
    ->ArgsProduct({{6, 8, 10}, {2, 3}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wdsparql

BENCHMARK_MAIN();
