/// \file
/// Experiment E14: concurrent read scaling over epoch-published
/// ReadViews. N reader threads execute a prepared statement in a loop
/// (each execution pins the freshest view, enumerates it to exhaustion
/// and releases it) while one writer thread keeps mutating — inserting
/// and removing triples and periodically compacting. The design goal
/// under test: aggregate read throughput scales near-linearly with
/// reader threads *with the writer active*, because readers share
/// immutable runs and never take a lock on the query path (the only
/// synchronisation is one atomic shared-ptr load per cursor open plus
/// lock-free spelling reads).
///
///   bench_e14_concurrency --benchmark_filter=LiveWriter
///
/// compares `threads:1` vs `threads:8` items_per_second (answers/sec,
/// summed over reader threads); the `NoWriter` variant isolates how
/// much the writer's cache pressure costs readers. `PinView` measures
/// the pin itself (the entire per-execution synchronisation cost).

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "engine/indexed_store.h"
#include "rdf/generator.h"
#include "util/check.h"
#include "wdsparql/wdsparql.h"

namespace wdsparql {
namespace {

constexpr int kTriples = 64 * 1024;

/// The shared world of one benchmark run: a 64k-triple database, a
/// prepared path query, and (optionally) a live writer thread cycling
/// inserts, removals and compactions.
class E14World {
 public:
  explicit E14World(bool with_writer) {
    RandomGraphOptions options;
    options.num_nodes = kTriples / 8;
    options.num_predicates = 8;
    options.num_triples = kTriples;
    options.seed = 14;
    RdfGraph staged(&db_.pool());
    GenerateRandomGraph(options, &staged);
    std::string text;
    // LoadNTriples on the empty database takes the sort-based bulk path.
    for (const Triple& t : staged.triples()) {
      text += db_.pool().ToParsableString(t.subject);
      text += ' ';
      text += db_.pool().ToParsableString(t.predicate);
      text += ' ';
      text += db_.pool().ToParsableString(t.object);
      text += " .\n";
    }
    WDSPARQL_CHECK(db_.LoadNTriples(text).ok());
    statement_ = db_.OpenSession().Prepare("(?x p0 ?y) AND (?y p1 ?z)");
    WDSPARQL_CHECK(statement_.ok());
    if (with_writer) {
      writer_ = std::thread([this] { WriterLoop(); });
    }
  }

  ~E14World() {
    stop_.store(true);
    if (writer_.joinable()) writer_.join();
  }

  const Database& db() const { return db_; }
  const Statement& statement() const { return statement_; }
  uint64_t writer_ops() const { return writer_ops_.load(); }

 private:
  void WriterLoop() {
    // A steady mutation stream that keeps the dataset size stable:
    // insert a fresh churn row, and once 512 are live, remove the
    // oldest again. Every publish makes all later cursor opens see a
    // new view; periodic Compact exercises base-run replacement under
    // pinned readers.
    uint64_t next = 0;
    uint64_t oldest = 0;
    while (!stop_.load(std::memory_order_relaxed)) {
      db_.AddTriple("churn-s" + std::to_string(next), "p0",
                    "churn-o" + std::to_string(next));
      ++next;
      if (next - oldest > 512) {
        db_.RemoveTriple("churn-s" + std::to_string(oldest), "p0",
                         "churn-o" + std::to_string(oldest));
        ++oldest;
      }
      if (next % 1024 == 0) db_.Compact();
      writer_ops_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  mutable Database db_;
  Statement statement_;
  std::thread writer_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> writer_ops_{0};
};

E14World* g_world = nullptr;

/// One reader iteration: pin the freshest view (inside Cursor::Open),
/// enumerate every answer, release. Returns the answer count.
uint64_t RunOnce(const Statement& stmt) {
  Cursor cursor = stmt.Execute();
  uint64_t answers = 0;
  while (cursor.Next()) ++answers;
  return answers;
}

void ReaderScaling(benchmark::State& state, bool with_writer) {
  if (state.thread_index() == 0) {
    g_world = new E14World(with_writer);
  }
  // google-benchmark barriers all threads between this setup block and
  // the measurement loop, and again before the teardown block below.
  uint64_t answers = 0;
  for (auto _ : state) {
    answers += RunOnce(g_world->statement());
  }
  state.SetItemsProcessed(static_cast<int64_t>(answers));
  if (state.thread_index() == 0) {
    state.counters["writer_ops"] = static_cast<double>(g_world->writer_ops());
    delete g_world;
    g_world = nullptr;
  }
}

/// Aggregate answers/sec with a live writer mutating throughout. The
/// headline: items_per_second at threads:8 vs threads:1 (≥4x on
/// multi-core hardware).
void BM_E14_ReadScaling_LiveWriter(benchmark::State& state) {
  ReaderScaling(state, /*with_writer=*/true);
}
BENCHMARK(BM_E14_ReadScaling_LiveWriter)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// The same readers on a quiescent database: the gap to LiveWriter is
/// the full cost the writer imposes on readers (should be small — no
/// lock is shared, only memory bandwidth and the per-open pin).
void BM_E14_ReadScaling_NoWriter(benchmark::State& state) {
  ReaderScaling(state, /*with_writer=*/false);
}
BENCHMARK(BM_E14_ReadScaling_NoWriter)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// The entire per-execution synchronisation cost a reader ever pays:
/// one atomic shared-ptr load + refcount round trip.
void BM_E14_PinView(benchmark::State& state) {
  E14World world(/*with_writer=*/false);
  const IndexedStore& store = world.db().store();
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.PinView());
  }
}
BENCHMARK(BM_E14_PinView);

/// Writer-side cost of the copy-on-write publish discipline: solo
/// insert throughput including the per-mutation delta copy and view
/// publish (compare bench_e12's pre-MVCC numbers).
void BM_E14_WriterPublish(benchmark::State& state) {
  E14World world(/*with_writer=*/false);
  Database& db = const_cast<Database&>(world.db());
  uint64_t i = 0;
  for (auto _ : state) {
    db.AddTriple("pub-s" + std::to_string(i), "p0", "pub-o" + std::to_string(i));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_E14_WriterPublish);

}  // namespace
}  // namespace wdsparql
