/// \file
/// Experiment E7 (Definition 2, Proposition 5, Section 5): the
/// *recognition* problem — computing dw / bw — is itself intractable
/// (NP-hard for UNION-free patterns, Pi^p_2 upper bound in general).
/// The bench measures the cost of the recognition APIs on the paper's
/// families and checks the Proposition 5 coincidence dw = bw on
/// UNION-free inputs.
///
/// Paper-predicted shape: recognition cost grows with k (the widths run
/// core + exact-treewidth computations over exponentially many children
/// assignments) even on families whose *evaluation* is flat — the reason
/// the evaluation algorithm takes k as a promise instead of computing it.

#include <benchmark/benchmark.h>

#include "ptree/subtree.h"
#include "wd/branch_width.h"
#include "wd/domination.h"
#include "wd/paper_examples.h"

namespace wdsparql {
namespace {

void BM_E7_DominationWidthOfFk(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  int width = 0;
  for (auto _ : state) {
    TermPool pool;
    PatternForest forest = MakeFkForest(&pool, k);
    Result<int> dw = DominationWidth(forest, &pool);
    WDSPARQL_CHECK(dw.ok());
    width = dw.value();
    benchmark::DoNotOptimize(+width);
  }
  WDSPARQL_CHECK(width == 1);
  state.counters["k"] = k;
  state.counters["dw"] = width;
}

void BM_E7_BranchTreewidthOfBranchFamily(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  int width = 0;
  for (auto _ : state) {
    TermPool pool;
    PatternTree tree = MakeBranchFamilyTree(&pool, k);
    width = BranchTreewidth(tree);
    benchmark::DoNotOptimize(+width);
  }
  WDSPARQL_CHECK(width == 1);
  state.counters["k"] = k;
  state.counters["bw"] = width;
}

void BM_E7_BranchTreewidthOfCliqueFamily(benchmark::State& state) {
  // Here the refutation side of the core computation dominates: the
  // clique cannot fold, and certifying that is the expensive part.
  int k = static_cast<int>(state.range(0));
  int width = 0;
  for (auto _ : state) {
    TermPool pool;
    PatternTree tree = MakeCliqueBranchTree(&pool, k);
    width = BranchTreewidth(tree);
    benchmark::DoNotOptimize(+width);
  }
  WDSPARQL_CHECK(width == std::max(static_cast<int>(state.range(0)) - 1, 1));
  state.counters["k"] = k;
  state.counters["bw"] = width;
}

void BM_E7_Proposition5Coincidence(benchmark::State& state) {
  // dw = bw on the UNION-free clique-branch family: measure the *price*
  // of computing the general measure instead of the simple one.
  int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    TermPool pool;
    PatternForest forest;
    forest.trees.push_back(MakeCliqueBranchTree(&pool, k));
    Result<int> dw = DominationWidth(forest, &pool);
    int bw = BranchTreewidth(forest.trees[0]);
    WDSPARQL_CHECK(dw.ok() && dw.value() == bw);
    benchmark::DoNotOptimize(+bw);
  }
  state.counters["k"] = k;
}

void BM_E7_SubtreeEnumeration(benchmark::State& state) {
  // The subtree-space factor behind recognition: a comb-shaped wdPT with
  // `range` optional children has 2^range subtrees.
  int children = static_cast<int>(state.range(0));
  TermPool pool;
  TermId x = pool.InternVariable("x");
  TermId p = pool.InternIri("p");
  TripleSet root;
  root.Insert(Triple(x, p, x));
  PatternTree tree(std::move(root));
  for (int c = 0; c < children; ++c) {
    TripleSet child;
    child.Insert(Triple(x, p, pool.InternVariable("c" + std::to_string(c))));
    tree.AddNode(tree.root(), std::move(child));
  }
  uint64_t count = 0;
  for (auto _ : state) {
    count = 0;
    EnumerateSubtrees(tree, [&](const Subtree&) { ++count; });
    benchmark::DoNotOptimize(+count);
  }
  WDSPARQL_CHECK(count == (uint64_t(1) << children));
  state.counters["children"] = children;
  state.counters["subtrees"] = static_cast<double>(count);
}

BENCHMARK(BM_E7_DominationWidthOfFk)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E7_BranchTreewidthOfBranchFamily)
    ->DenseRange(2, 7)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E7_BranchTreewidthOfCliqueFamily)
    ->DenseRange(2, 7)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E7_Proposition5Coincidence)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E7_SubtreeEnumeration)
    ->DenseRange(4, 16, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wdsparql

BENCHMARK_MAIN();
