/// \file
/// Experiment E10 (Section 5, "enumerating all solutions"): cost of
/// materialising JFKG with naive vs pebble maximality certificates, and
/// counting throughput on OPT-heavy social workloads.
///
/// Paper context: enumeration/counting are the variant problems the
/// conclusion lists (cf. Kroll-Pichler-Skritek). Candidate generation is
/// shared; the algorithms differ only in the per-candidate maximality
/// test, so on bounded-width queries the two series should track each
/// other with the pebble variant immune to wide children (the E1 regime).

#include <benchmark/benchmark.h>

#include "rdf/generator.h"
#include "sparql/parser.h"
#include "wd/enumerate.h"
#include "wd/paper_examples.h"

namespace wdsparql {
namespace {

struct SocialInstance {
  TermPool pool;
  PatternForest forest;
  RdfGraph graph{&pool};

  explicit SocialInstance(int people) {
    auto pattern = ParsePattern(
        "(?p type Person) OPT ((?p email ?e) OPT (?p phone ?f))", &pool);
    WDSPARQL_CHECK(pattern.ok());
    auto built = BuildPatternForest(pattern.value(), pool);
    WDSPARQL_CHECK(built.ok());
    forest = std::move(built).value();
    SocialGraphOptions options;
    options.num_people = people;
    options.seed = 99;
    GenerateSocialGraph(options, &graph);
  }
};

void BM_E10_EnumerateNaive(benchmark::State& state) {
  SocialInstance instance(static_cast<int>(state.range(0)));
  uint64_t answers = 0;
  for (auto _ : state) {
    answers = 0;
    EnumerateSolutionsNaive(instance.forest, instance.graph, [&](const Mapping&) {
      ++answers;
      return true;
    });
    benchmark::DoNotOptimize(+answers);
  }
  WDSPARQL_CHECK(answers == static_cast<uint64_t>(state.range(0)));
  state.counters["people"] = static_cast<double>(state.range(0));
  state.counters["answers"] = static_cast<double>(answers);
}

void BM_E10_EnumeratePebble(benchmark::State& state) {
  SocialInstance instance(static_cast<int>(state.range(0)));
  uint64_t answers = 0;
  for (auto _ : state) {
    answers = 0;
    // bw = 1 for the nested-OPT contact query: promise k = 1.
    EnumerateSolutionsPebble(instance.forest, instance.graph, 1, [&](const Mapping&) {
      ++answers;
      return true;
    });
    benchmark::DoNotOptimize(+answers);
  }
  WDSPARQL_CHECK(answers == static_cast<uint64_t>(state.range(0)));
  state.counters["people"] = static_cast<double>(state.range(0));
}

void BM_E10_EnumerateFkFamily(benchmark::State& state) {
  // Enumeration on the F_k family with the promise k = 1 tests: the
  // pebble certificates keep per-answer cost flat while the clique child
  // grows.
  int k = static_cast<int>(state.range(0));
  TermPool pool;
  PatternForest forest = MakeFkForest(&pool, k);
  RdfGraph graph(&pool);
  graph.Insert("a", "p", "b");
  graph.Insert("c", "q", "a");
  graph.Insert("b", "r", "e");
  graph.Insert("e", "r", "e");
  uint64_t answers = 0;
  for (auto _ : state) {
    answers = AllSolutionsPebble(forest, graph, 1).size();
    benchmark::DoNotOptimize(+answers);
  }
  state.counters["k"] = k;
  state.counters["answers"] = static_cast<double>(answers);
}

BENCHMARK(BM_E10_EnumerateNaive)
    ->RangeMultiplier(2)
    ->Range(16, 128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E10_EnumeratePebble)
    ->RangeMultiplier(2)
    ->Range(16, 128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E10_EnumerateFkFamily)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wdsparql

BENCHMARK_MAIN();
