/// \file
/// Experiment E12: incremental index maintenance. The PR's Database
/// keeps its SPO/POS/OSP permutation runs maintained under mutation with
/// a sorted-run delta plus periodic linear merges instead of rebuilding
/// from scratch. This benchmark quantifies that trade across scales:
///
///  * insert throughput — incremental `AddTriple` into a warm database
///    versus rebuilding the whole permutation store per batch (what the
///    engine did before this PR whenever data changed);
///  * removal throughput — tombstoned `RemoveTriple` versus rebuild;
///  * query latency during interleaved updates — alternate small update
///    batches with a conjunctive query, incremental versus
///    rebuild-per-batch, i.e. the latency a reader actually observes in
///    an update-heavy workload.
///
/// Expected shape: per-batch rebuild costs O(n log n) regardless of
/// batch size, so incremental maintenance wins by orders of magnitude at
/// small batch/large store ratios and converges towards parity as the
/// batch approaches the store size.

#include <benchmark/benchmark.h>

#include <vector>

#include "engine/api_internal.h"
#include "rdf/generator.h"
#include "util/check.h"
#include "util/rng.h"
#include "wdsparql/wdsparql.h"

namespace wdsparql {
namespace {

/// A warm database of `num_triples` random triples plus a disjoint
/// update stream over the same node/predicate pools.
struct E12Instance {
  TermPool pool;
  Database db{&pool};
  std::vector<Triple> updates;

  E12Instance(int num_triples, int num_updates) {
    RandomGraphOptions options;
    options.num_nodes = std::max(8, num_triples / 8);
    options.num_predicates = 8;
    options.num_triples = num_triples;
    options.seed = 12;
    RdfGraph staged(&pool);
    GenerateRandomGraph(options, &staged);
    engine_internal::BulkLoad(&db, staged.triples());

    // The update stream: fresh triples over the same vocabulary.
    Rng rng(0xe12);
    std::vector<TermId> nodes = staged.triples().TermsAt(0);
    std::vector<TermId> predicates = staged.triples().TermsAt(1);
    while (static_cast<int>(updates.size()) < num_updates) {
      Triple t(nodes[rng.NextBounded(static_cast<uint32_t>(nodes.size()))],
               predicates[rng.NextBounded(static_cast<uint32_t>(predicates.size()))],
               nodes[rng.NextBounded(static_cast<uint32_t>(nodes.size()))]);
      if (!db.Contains(t)) updates.push_back(t);
    }
  }
};

/// Incremental inserts: delta runs + periodic merges.
void BM_E12_InsertIncremental(benchmark::State& state) {
  int num_triples = static_cast<int>(state.range(0));
  int batch = static_cast<int>(state.range(1));
  uint64_t inserted = 0;
  for (auto _ : state) {
    state.PauseTiming();
    E12Instance instance(num_triples, batch);
    state.ResumeTiming();
    for (const Triple& t : instance.updates) {
      inserted += instance.db.AddTriple(t) ? 1 : 0;
    }
    benchmark::DoNotOptimize(inserted);
  }
  state.counters["store"] = static_cast<double>(num_triples);
  state.SetItemsProcessed(static_cast<int64_t>(inserted));
}

/// The pre-PR alternative: rebuild the permutation store per batch.
void BM_E12_InsertRebuild(benchmark::State& state) {
  int num_triples = static_cast<int>(state.range(0));
  int batch = static_cast<int>(state.range(1));
  uint64_t inserted = 0;
  for (auto _ : state) {
    state.PauseTiming();
    E12Instance instance(num_triples, batch);
    RdfGraph graph(&instance.pool);
    for (const Triple& t : instance.db.graph().triples()) graph.Insert(t);
    state.ResumeTiming();
    for (const Triple& t : instance.updates) {
      inserted += graph.Insert(t) ? 1 : 0;
    }
    IndexedStore rebuilt = IndexedStore::Build(graph.triples());
    benchmark::DoNotOptimize(rebuilt.size());
  }
  state.counters["store"] = static_cast<double>(num_triples);
  state.SetItemsProcessed(static_cast<int64_t>(inserted));
}

/// Tombstoned removals versus rebuild is implicit in the interleaved
/// benchmark; here: incremental removal throughput on a warm store.
void BM_E12_RemoveIncremental(benchmark::State& state) {
  int num_triples = static_cast<int>(state.range(0));
  int batch = static_cast<int>(state.range(1));
  uint64_t removed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    E12Instance instance(num_triples, batch);
    std::vector<Triple> victims = instance.db.graph().triples().triples();
    victims.resize(std::min<std::size_t>(victims.size(), batch));
    state.ResumeTiming();
    for (const Triple& t : victims) {
      removed += instance.db.RemoveTriple(t) ? 1 : 0;
    }
    benchmark::DoNotOptimize(removed);
  }
  state.counters["store"] = static_cast<double>(num_triples);
  state.SetItemsProcessed(static_cast<int64_t>(removed));
}

/// Query latency during interleaved updates: per iteration, apply one
/// small update batch, then drain one query cursor. range(2) selects
/// incremental (1) vs rebuild-per-batch (0) maintenance.
void BM_E12_InterleavedQueryLatency(benchmark::State& state) {
  int num_triples = static_cast<int>(state.range(0));
  int batch = static_cast<int>(state.range(1));
  bool incremental = state.range(2) == 1;

  E12Instance instance(num_triples, 1 << 16);
  Session session = instance.db.OpenSession();
  Statement query = session.Prepare("((?x p0 ?y) AND (?y p1 ?z)) OPT (?z p2 ?w)");
  WDSPARQL_CHECK(query.ok());

  std::size_t next_update = 0;
  uint64_t answers = 0;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      const Triple& t = instance.updates[next_update];
      next_update = (next_update + 1) % instance.updates.size();
      instance.db.AddTriple(t);
    }
    if (!incremental) {
      // Rebuild-from-scratch maintenance: what every reader waited for
      // before incremental deltas existed.
      IndexedStore rebuilt = IndexedStore::Build(instance.db.graph().triples());
      benchmark::DoNotOptimize(rebuilt.size());
    }
    Cursor cursor = query.Execute();
    while (cursor.Next()) ++answers;
    benchmark::DoNotOptimize(answers);
  }
  state.counters["store"] = static_cast<double>(instance.db.size());
  state.SetItemsProcessed(static_cast<int64_t>(answers));
}

void UpdateSweep(benchmark::internal::Benchmark* bench) {
  for (int triples : {1 << 12, 1 << 15}) {
    for (int batch : {16, 256, 4096}) {
      bench->Args({triples, batch});
    }
  }
}

void InterleavedSweep(benchmark::internal::Benchmark* bench) {
  for (int mode : {0, 1}) {
    for (int triples : {1 << 12, 1 << 15}) {
      bench->Args({triples, /*batch=*/64, mode});
    }
  }
}

BENCHMARK(BM_E12_InsertIncremental)->Apply(UpdateSweep)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E12_InsertRebuild)->Apply(UpdateSweep)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E12_RemoveIncremental)->Apply(UpdateSweep)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E12_InterleavedQueryLatency)
    ->Apply(InterleavedSweep)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wdsparql
