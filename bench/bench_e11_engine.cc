/// \file
/// Experiment E11: engine backend comparison. Measures the
/// dictionary-encoded permutation store (Backend::kIndexed) against the
/// paper-faithful hash-indexed TripleSet (Backend::kNaiveHash) on three
/// levels, across graph sizes:
///
///  * raw triple-pattern scans (the candidate-generation primitive),
///  * conjunctive candidate generation (CSP solver over each scan
///    backend, plus the leapfrog join native to the indexed store),
///  * end-to-end well-designed enumeration through the QueryEngine
///    facade.
///
/// Expected shape: at small scale the backends are comparable; as the
/// graph grows, the indexed backend's contiguous two-position prefix
/// ranges and merge joins pull ahead of hash-bucket probing — the
/// RDF-3X/Trident design rationale this engine reproduces.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "engine/indexed_store.h"
#include "engine/join.h"
#include "engine/query_engine.h"
#include "hom/homomorphism.h"
#include "rdf/generator.h"
#include "sparql/parser.h"
#include "util/check.h"

namespace wdsparql {
namespace {

constexpr int kBackendHash = 0;
constexpr int kBackendIndexed = 1;

/// One benchmark workload: a random graph plus both backends built over
/// it, and a conjunctive path pattern with a pendant OPT.
struct E11Instance {
  TermPool pool;
  RdfGraph graph{&pool};
  std::unique_ptr<IndexedStore> store;
  std::unique_ptr<HashTripleSource> hash;
  TripleSet path_pattern;  // (?x p0 ?y) (?y p1 ?z)

  explicit E11Instance(int num_triples) {
    RandomGraphOptions options;
    options.num_nodes = std::max(8, num_triples / 8);
    options.num_predicates = 8;
    options.num_triples = num_triples;
    options.seed = 11;
    GenerateRandomGraph(options, &graph);
    store = std::make_unique<IndexedStore>(IndexedStore::Build(graph.triples()));
    hash = std::make_unique<HashTripleSource>(graph.triples());

    TermId x = pool.InternVariable("x");
    TermId y = pool.InternVariable("y");
    TermId z = pool.InternVariable("z");
    path_pattern.Insert(Triple(x, pool.InternIri("p0"), y));
    path_pattern.Insert(Triple(y, pool.InternIri("p1"), z));
  }

  const TripleSource& source(int backend) const {
    if (backend == kBackendIndexed) return *store;
    return *hash;
  }
};

/// Raw scan throughput: one-bound (?s p ?o) probes over every
/// predicate, then two-bound (s p ?o) probes seeded from stored triples.
void BM_E11_PatternScan(benchmark::State& state) {
  E11Instance instance(static_cast<int>(state.range(0)));
  const TripleSource& source = instance.source(static_cast<int>(state.range(1)));
  std::vector<TermId> predicates = instance.graph.triples().TermsAt(1);
  std::vector<Triple> seeds = instance.graph.triples().triples();
  if (seeds.size() > 256) seeds.resize(256);

  uint64_t matched = 0;
  for (auto _ : state) {
    for (TermId p : predicates) {
      source.ScanPattern(Triple(kAnyTerm, p, kAnyTerm), [&](const Triple&) {
        ++matched;
        return true;
      });
    }
    for (const Triple& t : seeds) {
      source.ScanPattern(Triple(t.subject, t.predicate, kAnyTerm), [&](const Triple&) {
        ++matched;
        return true;
      });
    }
    benchmark::DoNotOptimize(matched);
  }
  state.counters["triples"] = static_cast<double>(instance.graph.size());
  state.SetItemsProcessed(static_cast<int64_t>(matched));
}

/// Conjunctive candidate generation, each backend running its native
/// strategy (what QueryEngine actually executes): the hash backend
/// enumerates homomorphisms with the CSP solver over hash scans, the
/// indexed backend runs the leapfrog join over its permutation ranges.
void BM_E11_CandidateGeneration(benchmark::State& state) {
  E11Instance instance(static_cast<int>(state.range(0)));
  bool indexed = state.range(1) == kBackendIndexed;

  uint64_t candidates = 0;
  for (auto _ : state) {
    if (indexed) {
      JoinEnumerate(*instance.store, instance.path_pattern.triples(), VarAssignment{},
                    [&](const VarAssignment&) {
                      ++candidates;
                      return true;
                    });
    } else {
      EnumerateHomomorphisms(instance.path_pattern, VarAssignment{}, *instance.hash,
                             [&](const VarAssignment&) {
                               ++candidates;
                               return true;
                             });
    }
    benchmark::DoNotOptimize(candidates);
  }
  state.counters["triples"] = static_cast<double>(instance.graph.size());
  state.SetItemsProcessed(static_cast<int64_t>(candidates));
}

/// Ablation: the CSP solver routed through each scan backend. Isolates
/// the scan interface from the join algorithm — the permutation store's
/// win comes from the merge join, not from swapping the solver's probe
/// primitive.
void BM_E11_SolverScanAblation(benchmark::State& state) {
  E11Instance instance(static_cast<int>(state.range(0)));
  const TripleSource& source = instance.source(static_cast<int>(state.range(1)));

  uint64_t candidates = 0;
  for (auto _ : state) {
    EnumerateHomomorphisms(instance.path_pattern, VarAssignment{}, source,
                           [&](const VarAssignment&) {
                             ++candidates;
                             return true;
                           });
    benchmark::DoNotOptimize(candidates);
  }
  state.counters["triples"] = static_cast<double>(instance.graph.size());
  state.SetItemsProcessed(static_cast<int64_t>(candidates));
}

/// End-to-end: parse → wdpf → enumerate through the facade.
void BM_E11_EndToEndEnumeration(benchmark::State& state) {
  E11Instance instance(static_cast<int>(state.range(0)));
  QueryEngineOptions options;
  options.backend =
      state.range(1) == kBackendIndexed ? Backend::kIndexed : Backend::kNaiveHash;
  QueryEngine engine(instance.graph, options);
  Result<PreparedQuery> query =
      engine.Prepare("((?x p0 ?y) AND (?y p1 ?z)) OPT (?z p2 ?w)");
  WDSPARQL_CHECK(query.ok());

  uint64_t answers = 0;
  for (auto _ : state) {
    answers += engine.Count(query.value());
    benchmark::DoNotOptimize(answers);
  }
  state.counters["triples"] = static_cast<double>(instance.graph.size());
  state.SetItemsProcessed(static_cast<int64_t>(answers));
}

void BackendSweep(benchmark::internal::Benchmark* bench) {
  for (int backend : {kBackendHash, kBackendIndexed}) {
    for (int triples : {1 << 10, 1 << 13, 1 << 16}) {
      bench->Args({triples, backend});
    }
  }
}

BENCHMARK(BM_E11_PatternScan)->Apply(BackendSweep)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E11_CandidateGeneration)
    ->Apply(BackendSweep)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E11_SolverScanAblation)
    ->Apply(BackendSweep)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E11_EndToEndEnumeration)
    ->Apply(BackendSweep)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wdsparql
