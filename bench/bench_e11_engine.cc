/// \file
/// Experiment E11: engine backend comparison. Measures the
/// dictionary-encoded permutation store (Backend::kIndexed) against the
/// paper-faithful hash-indexed TripleSet (Backend::kNaiveHash) on three
/// levels, across graph sizes:
///
///  * raw triple-pattern scans (the candidate-generation primitive),
///  * conjunctive candidate generation (CSP solver over each scan
///    backend, plus the leapfrog join native to the indexed store),
///  * end-to-end well-designed enumeration through the public
///    Database/Session/Cursor API.
///
/// Expected shape: at small scale the backends are comparable; as the
/// graph grows, the indexed backend's contiguous two-position prefix
/// ranges and merge joins pull ahead of hash-bucket probing — the
/// RDF-3X/Trident design rationale this engine reproduces.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "engine/api_internal.h"
#include "engine/join.h"
#include "hom/homomorphism.h"
#include "rdf/generator.h"
#include "util/check.h"
#include "wdsparql/wdsparql.h"

namespace wdsparql {
namespace {

constexpr int kBackendHash = 0;
constexpr int kBackendIndexed = 1;

/// One benchmark workload: a random graph bulk-loaded into a Database
/// (which maintains both backends), and a conjunctive path pattern with
/// a pendant OPT.
struct E11Instance {
  TermPool pool;
  Database db{&pool};
  TripleSet path_pattern;  // (?x p0 ?y) (?y p1 ?z)

  explicit E11Instance(int num_triples) {
    RandomGraphOptions options;
    options.num_nodes = std::max(8, num_triples / 8);
    options.num_predicates = 8;
    options.num_triples = num_triples;
    options.seed = 11;
    RdfGraph staged(&pool);
    GenerateRandomGraph(options, &staged);
    engine_internal::BulkLoad(&db, staged.triples());

    TermId x = pool.InternVariable("x");
    TermId y = pool.InternVariable("y");
    TermId z = pool.InternVariable("z");
    path_pattern.Insert(Triple(x, pool.InternIri("p0"), y));
    path_pattern.Insert(Triple(y, pool.InternIri("p1"), z));
  }

  const IndexedStore& store() const { return db.store(); }
  const HashTripleSource& hash() const { return engine_internal::HashSourceOf(db); }

  const TripleSource& source(int backend) const {
    if (backend == kBackendIndexed) return store();
    return hash();
  }
};

/// Raw scan throughput: one-bound (?s p ?o) probes over every
/// predicate, then two-bound (s p ?o) probes seeded from stored triples.
void BM_E11_PatternScan(benchmark::State& state) {
  E11Instance instance(static_cast<int>(state.range(0)));
  const TripleSource& source = instance.source(static_cast<int>(state.range(1)));
  std::vector<TermId> predicates = instance.db.graph().triples().TermsAt(1);
  std::vector<Triple> seeds = instance.db.graph().triples().triples();
  if (seeds.size() > 256) seeds.resize(256);

  uint64_t matched = 0;
  for (auto _ : state) {
    for (TermId p : predicates) {
      source.ScanPattern(Triple(kAnyTerm, p, kAnyTerm), [&](const Triple&) {
        ++matched;
        return true;
      });
    }
    for (const Triple& t : seeds) {
      source.ScanPattern(Triple(t.subject, t.predicate, kAnyTerm), [&](const Triple&) {
        ++matched;
        return true;
      });
    }
    benchmark::DoNotOptimize(matched);
  }
  state.counters["triples"] = static_cast<double>(instance.db.size());
  state.SetItemsProcessed(static_cast<int64_t>(matched));
}

/// Conjunctive candidate generation, each backend running its native
/// strategy (what the engine actually executes): the hash backend
/// enumerates homomorphisms with the CSP solver over hash scans, the
/// indexed backend runs the leapfrog join over its permutation ranges.
void BM_E11_CandidateGeneration(benchmark::State& state) {
  E11Instance instance(static_cast<int>(state.range(0)));
  bool indexed = state.range(1) == kBackendIndexed;

  uint64_t candidates = 0;
  for (auto _ : state) {
    if (indexed) {
      JoinEnumerate(instance.store().view(), instance.path_pattern.triples(), VarAssignment{},
                    [&](const VarAssignment&) {
                      ++candidates;
                      return true;
                    });
    } else {
      EnumerateHomomorphisms(instance.path_pattern, VarAssignment{}, instance.hash(),
                             [&](const VarAssignment&) {
                               ++candidates;
                               return true;
                             });
    }
    benchmark::DoNotOptimize(candidates);
  }
  state.counters["triples"] = static_cast<double>(instance.db.size());
  state.SetItemsProcessed(static_cast<int64_t>(candidates));
}

/// Ablation: the CSP solver routed through each scan backend. Isolates
/// the scan interface from the join algorithm — the permutation store's
/// win comes from the merge join, not from swapping the solver's probe
/// primitive.
void BM_E11_SolverScanAblation(benchmark::State& state) {
  E11Instance instance(static_cast<int>(state.range(0)));
  const TripleSource& source = instance.source(static_cast<int>(state.range(1)));

  uint64_t candidates = 0;
  for (auto _ : state) {
    EnumerateHomomorphisms(instance.path_pattern, VarAssignment{}, source,
                           [&](const VarAssignment&) {
                             ++candidates;
                             return true;
                           });
    benchmark::DoNotOptimize(candidates);
  }
  state.counters["triples"] = static_cast<double>(instance.db.size());
  state.SetItemsProcessed(static_cast<int64_t>(candidates));
}

/// End-to-end: prepare once through a Session, then pull every answer
/// through a fresh Cursor per iteration — the public API's hot path.
void BM_E11_EndToEndEnumeration(benchmark::State& state) {
  E11Instance instance(static_cast<int>(state.range(0)));
  SessionOptions options;
  options.backend =
      state.range(1) == kBackendIndexed ? Backend::kIndexed : Backend::kNaiveHash;
  Session session = instance.db.OpenSession(options);
  Statement query = session.Prepare("((?x p0 ?y) AND (?y p1 ?z)) OPT (?z p2 ?w)");
  WDSPARQL_CHECK(query.ok());

  uint64_t answers = 0;
  for (auto _ : state) {
    Cursor cursor = query.Execute();
    while (cursor.Next()) ++answers;
    benchmark::DoNotOptimize(answers);
  }
  state.counters["triples"] = static_cast<double>(instance.db.size());
  state.SetItemsProcessed(static_cast<int64_t>(answers));
}

void BackendSweep(benchmark::internal::Benchmark* bench) {
  for (int backend : {kBackendHash, kBackendIndexed}) {
    for (int triples : {1 << 10, 1 << 13, 1 << 16}) {
      bench->Args({triples, backend});
    }
  }
}

BENCHMARK(BM_E11_PatternScan)->Apply(BackendSweep)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E11_CandidateGeneration)
    ->Apply(BackendSweep)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E11_SolverScanAblation)
    ->Apply(BackendSweep)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E11_EndToEndEnumeration)
    ->Apply(BackendSweep)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wdsparql
