/// \file
/// Experiment E15: batched ingest through the WriteBatch surface. PR 5
/// redesigned the write path around `Database::Apply`: one merged
/// copy-on-write delta build, one view publish and one WAL group record
/// per batch, however many triples the batch carries. This benchmark
/// quantifies the amortisation against the per-triple path the public
/// API used to force:
///
///  * in-memory ingest throughput at batch sizes 1 / 64 / 4096 over a
///    64k-triple bulk load — batch size 1 IS the old per-triple
///    discipline (one COW delta copy and one publish per triple), so
///    the 1-vs-4096 ratio is the cost the old `AddTriple`-loop surface
///    left on the table (expected: well over 5x);
///  * the publish count — the `publishes_per_commit` counter must read
///    1.0: one view publish per applied batch (threshold folds happen
///    inside the same publish), which is what keeps concurrent readers'
///    cache churn independent of batch size;
///  * WAL commit cost — one CRC-framed group append per batch versus
///    one framed record per triple, measured on a real log file.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "rdf/generator.h"
#include "util/check.h"
#include "wdsparql/wdsparql.h"

namespace wdsparql {
namespace {

/// Distinct random triples over a private pool, generated once per
/// benchmark and ingested into a fresh database per iteration.
struct E15Workload {
  TermPool pool;
  std::vector<Triple> triples;

  explicit E15Workload(int count) {
    RandomGraphOptions options;
    options.num_nodes = 1 << 12;
    options.num_predicates = 16;
    options.num_triples = count;
    options.seed = 15;
    RdfGraph staged(&pool);
    GenerateRandomGraph(options, &staged);
    triples = staged.triples().triples();
  }
};

/// Ingest `total` triples in WriteBatch commits of `batch` triples.
/// batch == 1 reproduces the per-triple discipline of the old surface.
void BM_E15_BatchedIngest(benchmark::State& state) {
  int total = static_cast<int>(state.range(0));
  int batch_size = static_cast<int>(state.range(1));
  E15Workload workload(total);
  uint64_t ingested = 0;
  uint64_t publishes = 0;
  uint64_t commits = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Database db(&workload.pool);
    uint64_t before = db.generation();
    state.ResumeTiming();
    WriteBatch batch;
    for (const Triple& t : workload.triples) {
      batch.Add(workload.pool, t);
      if (static_cast<int>(batch.size()) >= batch_size) {
        WDSPARQL_CHECK(db.Apply(std::move(batch)).ok());
        ++commits;
      }
    }
    if (!batch.empty()) {
      WDSPARQL_CHECK(db.Apply(std::move(batch)).ok());
      ++commits;
    }
    ingested += db.size();
    publishes += db.generation() - before;
    benchmark::DoNotOptimize(db.size());
  }
  state.counters["batch"] = static_cast<double>(batch_size);
  state.counters["publishes_per_commit"] =
      commits == 0 ? 0.0
                   : static_cast<double>(publishes) / static_cast<double>(commits);
  state.counters["publishes_per_sec"] =
      benchmark::Counter(static_cast<double>(publishes), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<int64_t>(ingested));
}

/// The legacy public surface verbatim: an AddTriple loop (now a
/// one-element batch per call through the same commit path).
void BM_E15_AddTripleLoop(benchmark::State& state) {
  int total = static_cast<int>(state.range(0));
  E15Workload workload(total);
  uint64_t ingested = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Database db(&workload.pool);
    state.ResumeTiming();
    for (const Triple& t : workload.triples) db.AddTriple(t);
    ingested += db.size();
    benchmark::DoNotOptimize(db.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(ingested));
}

/// WAL commit cost: one group frame per batch versus one framed record
/// per triple, on a real (create_if_missing) log. The file is recreated
/// per iteration so appends always start from an empty log.
void BM_E15_WalCommit(benchmark::State& state) {
  int total = static_cast<int>(state.range(0));
  int batch_size = static_cast<int>(state.range(1));
  E15Workload workload(total);
  std::string path = "/tmp/wdsparql_bench_e15.snap";
  uint64_t ingested = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::remove(path.c_str());
    std::remove((path + ".wal").c_str());
    OpenOptions options;
    options.durability = Durability::kWal;
    options.create_if_missing = true;
    Result<Database> opened = Database::Open(path, options);
    WDSPARQL_CHECK(opened.ok());
    Database db = std::move(opened).value();
    state.ResumeTiming();
    WriteBatch batch;
    for (const Triple& t : workload.triples) {
      batch.Add(workload.pool, t);
      if (static_cast<int>(batch.size()) >= batch_size) {
        WDSPARQL_CHECK(db.Apply(std::move(batch)).ok());
      }
    }
    if (!batch.empty()) WDSPARQL_CHECK(db.Apply(std::move(batch)).ok());
    ingested += db.size();
    benchmark::DoNotOptimize(db.storage_status().ok());
  }
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  state.counters["batch"] = static_cast<double>(batch_size);
  state.SetItemsProcessed(static_cast<int64_t>(ingested));
}

void IngestSweep(benchmark::internal::Benchmark* bench) {
  for (int batch : {1, 64, 4096}) {
    bench->Args({1 << 16, batch});
  }
}

BENCHMARK(BM_E15_BatchedIngest)->Apply(IngestSweep)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E15_AddTripleLoop)->Args({1 << 16})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E15_WalCommit)
    ->Args({1 << 14, 1})
    ->Args({1 << 14, 4096})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wdsparql
