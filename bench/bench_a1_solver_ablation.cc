/// \file
/// Ablation A1 (DESIGN.md): propagation strategy of the exact
/// homomorphism solver. The Theorem 2 gadget instances and the clique
/// refutations that dominate the naive algorithm's cost are exactly the
/// instances where maintaining arc consistency (MAC) pays: pure
/// backtracking detects cross-variable inconsistencies only when triples
/// become fully determined, forward checking prunes one step ahead, and
/// full MAC cascades the pruning.
///
/// Expected shape: nodes-explored (and time) separate by orders of
/// magnitude on refutation instances, and much less on easy positive
/// instances. All strategies return identical answers (checked).

#include <benchmark/benchmark.h>

#include "hom/homomorphism.h"
#include "rdf/generator.h"
#include "wd/hardness.h"
#include "wd/paper_examples.h"

namespace wdsparql {
namespace {

const char* LevelName(int level) {
  switch (level) {
    case 0:
      return "none";
    case 1:
      return "forward";
    default:
      return "full";
  }
}

PropagationLevel LevelFromIndex(int level) {
  switch (level) {
    case 0:
      return PropagationLevel::kNone;
    case 1:
      return PropagationLevel::kForward;
    default:
      return PropagationLevel::kFull;
  }
}

/// Refutation instance: K_k (one direction per pair) into a (k-1)-colour
/// blow-up — no homomorphism, dense near-misses.
void BM_A1_CliqueRefutation(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  int level = static_cast<int>(state.range(1));
  TermPool pool;
  TripleSet source = MakeClique(&pool, k, "v", "e");
  RdfGraph graph(&pool);
  auto vertex = [](int c, int i) {
    return "b" + std::to_string(c) + "_" + std::to_string(i);
  };
  const int copies = 3;
  for (int c1 = 0; c1 < k - 1; ++c1) {
    for (int i1 = 0; i1 < copies; ++i1) {
      for (int c2 = 0; c2 < k - 1; ++c2) {
        if (c1 == c2) continue;
        for (int i2 = 0; i2 < copies; ++i2) {
          graph.Insert(vertex(c1, i1), "e", vertex(c2, i2));
        }
      }
    }
  }
  HomOptions options;
  options.propagation = LevelFromIndex(level);
  options.max_nodes = 50'000'000;
  uint64_t nodes = 0;
  options.nodes_explored = &nodes;
  bool exhausted = false;
  options.budget_exhausted = &exhausted;
  bool found = true;
  for (auto _ : state) {
    found = HasHomomorphism(source, {}, graph.triples(), options);
    benchmark::DoNotOptimize(+found);
  }
  WDSPARQL_CHECK(exhausted || !found);  // No K_k exists.
  state.counters["k"] = k;
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["budget_exhausted"] = exhausted ? 1 : 0;
  state.SetLabel(LevelName(level));
}

/// Gadget refutation: the Lemma 2 triangle instance on the 5-cycle
/// (triangle-free): (S, X) -> (B, X) must be refuted.
void BM_A1_GadgetRefutation(benchmark::State& state) {
  int level = static_cast<int>(state.range(0));
  TermPool pool;
  PatternTree tree = MakeCliqueBranchTree(&pool, 9);
  TripleSet s_set = tree.pattern(0);
  s_set.InsertAll(tree.pattern(1));
  GeneralizedTGraph s(std::move(s_set), {pool.InternVariable("x")});
  std::vector<TermId> clique_vars;
  for (int i = 1; i <= 9; ++i) {
    clique_vars.push_back(pool.InternVariable("o" + std::to_string(i)));
  }
  GridMinorMap gamma = MinorMapOntoClique(3, 3, clique_vars);
  auto b = BuildCliqueGadget(s, UndirectedGraph::Cycle(5), 3, gamma, &pool);
  WDSPARQL_CHECK(b.ok());

  HomOptions options;
  options.propagation = LevelFromIndex(level);
  options.max_nodes = 20'000'000;
  uint64_t nodes = 0;
  options.nodes_explored = &nodes;
  bool exhausted = false;
  options.budget_exhausted = &exhausted;
  for (auto _ : state) {
    bool found = HasHomomorphism(s.S, IdentityOn(s.X), b.value().S, options);
    benchmark::DoNotOptimize(+found);
    WDSPARQL_CHECK(exhausted || !found);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["budget_exhausted"] = exhausted ? 1 : 0;
  state.counters["gadget_triples"] = static_cast<double>(b.value().S.size());
  state.SetLabel(LevelName(level));
}

/// Positive instance: a path query into a random graph (easy for all
/// strategies; measures propagation overhead when it is not needed).
void BM_A1_EasyPositive(benchmark::State& state) {
  int level = static_cast<int>(state.range(0));
  TermPool pool;
  TripleSet source;
  for (int i = 0; i < 4; ++i) {
    source.Insert(Triple(pool.InternVariable("q" + std::to_string(i)),
                         pool.InternIri("p0"),
                         pool.InternVariable("q" + std::to_string(i + 1))));
  }
  RdfGraph graph(&pool);
  RandomGraphOptions graph_options;
  graph_options.num_nodes = 60;
  graph_options.num_predicates = 1;
  graph_options.num_triples = 400;
  graph_options.seed = 5;
  GenerateRandomGraph(graph_options, &graph);

  HomOptions options;
  options.propagation = LevelFromIndex(level);
  for (auto _ : state) {
    bool found = HasHomomorphism(source, {}, graph.triples(), options);
    benchmark::DoNotOptimize(+found);
    WDSPARQL_CHECK(found);
  }
  state.SetLabel(LevelName(level));
}

BENCHMARK(BM_A1_CliqueRefutation)
    ->ArgsProduct({{4, 5}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_A1_GadgetRefutation)
    ->DenseRange(0, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_A1_EasyPositive)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wdsparql

BENCHMARK_MAIN();
