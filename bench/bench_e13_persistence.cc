/// \file
/// Experiment E13: the persistent storage subsystem. Three questions:
///
///  * cold-open latency — `Database::Open` on a snapshot (mmap, runs
///    consumed in place, O(terms) pool rebuild) versus re-parsing and
///    re-sorting the same dataset from N-Triples text, across graph
///    sizes. The snapshot should win by well over an order of magnitude
///    and widen with scale (the acceptance bar is >= 10x at the largest
///    size);
///  * durable-write throughput — WAL-framed `AddTriple` into an open
///    database versus the crude alternative of rewriting the whole
///    snapshot after every batch;
///  * checkpoint cost — folding base + delta into a fresh snapshot and
///    truncating the log, as a function of store size.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

#include "rdf/generator.h"
#include "rdf/ntriples.h"
#include "util/check.h"
#include "wdsparql/wdsparql.h"

namespace wdsparql {
namespace {

std::string TempBase() {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/wdsparql_bench_e13_";
}

/// One benchmark dataset: the N-Triples file and the snapshot, written
/// once per size and reused by every iteration.
struct E13Instance {
  std::string nt_path;
  std::string snap_path;
};

const E13Instance& InstanceFor(int num_triples) {
  static std::map<int, E13Instance>* cache = new std::map<int, E13Instance>();
  auto it = cache->find(num_triples);
  if (it != cache->end()) return it->second;

  RandomGraphOptions options;
  options.num_nodes = std::max(8, num_triples / 8);
  options.num_predicates = 8;
  options.num_triples = num_triples;
  options.seed = 13;
  TermPool pool;
  RdfGraph graph(&pool);
  GenerateRandomGraph(options, &graph);

  E13Instance instance;
  std::string base = TempBase() + std::to_string(num_triples);
  instance.nt_path = base + ".nt";
  instance.snap_path = base + ".snap";
  {
    std::ofstream out(instance.nt_path, std::ios::trunc);
    out << WriteNTriples(graph);
    WDSPARQL_CHECK(out.good());
  }
  Database db;
  WDSPARQL_CHECK(db.LoadNTriplesFile(instance.nt_path).ok());
  WDSPARQL_CHECK(db.Save(instance.snap_path).ok());
  return cache->emplace(num_triples, std::move(instance)).first->second;
}

/// Cold open from the snapshot: validation + O(terms), runs in place.
void BM_E13_ColdOpenSnapshot(benchmark::State& state) {
  const E13Instance& instance = InstanceFor(static_cast<int>(state.range(0)));
  // Counter from a pre-loop open (also warms the page cache, so the
  // loop measures the CPU cost of opening, not disk variance).
  std::size_t triples = 0;
  {
    Result<Database> warm = Database::Open(instance.snap_path);
    WDSPARQL_CHECK(warm.ok());
    triples = warm->size();
  }
  for (auto _ : state) {
    Result<Database> db = Database::Open(instance.snap_path);
    WDSPARQL_CHECK(db.ok());
    benchmark::DoNotOptimize(db->size());
  }
  state.counters["triples"] = static_cast<double>(triples);
}

/// The pre-PR alternative: re-parse the N-Triples text and rebuild the
/// dictionary plus all three permutation runs from scratch.
void BM_E13_ReparseNTriples(benchmark::State& state) {
  const E13Instance& instance = InstanceFor(static_cast<int>(state.range(0)));
  std::size_t triples = 0;
  {
    Database warm;
    WDSPARQL_CHECK(warm.LoadNTriplesFile(instance.nt_path).ok());
    triples = warm.size();
  }
  for (auto _ : state) {
    Database db;
    WDSPARQL_CHECK(db.LoadNTriplesFile(instance.nt_path).ok());
    benchmark::DoNotOptimize(db.size());
  }
  state.counters["triples"] = static_cast<double>(triples);
}

/// Open-then-query: the latency a reader actually observes from a cold
/// process to the first drained cursor.
void BM_E13_ColdOpenFirstQuery(benchmark::State& state) {
  const E13Instance& instance = InstanceFor(static_cast<int>(state.range(0)));
  uint64_t answers = 0;
  for (auto _ : state) {
    Result<Database> db = Database::Open(instance.snap_path);
    WDSPARQL_CHECK(db.ok());
    Statement stmt = db->OpenSession().Prepare("(?x p0 ?y) OPT (?y p1 ?z)");
    WDSPARQL_CHECK(stmt.ok());
    Cursor cursor = stmt.Execute();
    while (cursor.Next()) ++answers;
    benchmark::DoNotOptimize(answers);
  }
  state.SetItemsProcessed(static_cast<int64_t>(answers));
}

/// Durable inserts through the WAL: one framed append per mutation,
/// indexes maintained incrementally.
void BM_E13_WalAppend(benchmark::State& state) {
  int batch = static_cast<int>(state.range(0));
  std::string path = TempBase() + "wal_append.snap";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  OpenOptions options;
  options.durability = Durability::kWal;
  options.create_if_missing = true;
  Result<Database> opened = Database::Open(path, options);
  WDSPARQL_CHECK(opened.ok());
  Database db = std::move(opened).value();
  uint64_t next = 0;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      std::string n = std::to_string(next++);
      db.AddTriple("s" + n, "p" + std::to_string(next % 8), "o" + n);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(next));
}

/// The crude durable alternative: rewrite the entire snapshot after
/// every batch.
void BM_E13_SnapshotRewritePerBatch(benchmark::State& state) {
  int batch = static_cast<int>(state.range(0));
  std::string path = TempBase() + "rewrite.snap";
  std::remove(path.c_str());
  Database db;
  uint64_t next = 0;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      std::string n = std::to_string(next++);
      db.AddTriple("s" + n, "p" + std::to_string(next % 8), "o" + n);
    }
    WDSPARQL_CHECK(db.Save(path).ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(next));
}

/// Checkpoint cost: fold a `batch`-sized WAL'd delta over a warm store
/// of range(0) triples into a fresh snapshot and truncate the log.
void BM_E13_Checkpoint(benchmark::State& state) {
  int num_triples = static_cast<int>(state.range(0));
  int batch = static_cast<int>(state.range(1));
  const E13Instance& instance = InstanceFor(num_triples);
  std::string path = TempBase() + "checkpoint.snap";
  uint64_t next = 0;
  for (auto _ : state) {
    state.PauseTiming();
    {
      std::ifstream src(instance.snap_path, std::ios::binary);
      std::ofstream dst(path, std::ios::binary | std::ios::trunc);
      dst << src.rdbuf();
    }
    std::remove((path + ".wal").c_str());
    OpenOptions options;
    options.durability = Durability::kWal;
    Result<Database> opened = Database::Open(path, options);
    WDSPARQL_CHECK(opened.ok());
    Database db = std::move(opened).value();
    for (int i = 0; i < batch; ++i) {
      std::string n = std::to_string(next++);
      db.AddTriple("cp-s" + n, "cp-p", "cp-o" + n);
    }
    state.ResumeTiming();
    WDSPARQL_CHECK(db.Checkpoint().ok());
  }
  state.counters["store"] = static_cast<double>(num_triples);
}

void SizeSweep(benchmark::internal::Benchmark* bench) {
  for (int triples : {1 << 12, 1 << 14, 1 << 16}) bench->Args({triples});
}

BENCHMARK(BM_E13_ColdOpenSnapshot)->Apply(SizeSweep)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E13_ReparseNTriples)->Apply(SizeSweep)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E13_ColdOpenFirstQuery)->Apply(SizeSweep)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E13_WalAppend)->Arg(16)->Arg(256)->Arg(4096)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E13_SnapshotRewritePerBatch)
    ->Arg(16)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E13_Checkpoint)
    ->Args({1 << 12, 256})
    ->Args({1 << 15, 256})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wdsparql
