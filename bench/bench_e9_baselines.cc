/// \file
/// Experiment E9 ([23] baseline landscape): three ways to decide
/// mu ∈ JPKG on random well-designed workloads —
///   (a) materialise JPKG with the textbook set semantics and look up;
///   (b) the natural coNP membership check (NaiveWdEval);
///   (c) the Theorem 1 pebble membership check (PebbleWdEval).
///
/// Paper-predicted shape: (a) pays the full (potentially exponential)
/// answer-set materialisation every time; (b) and (c) are membership-
/// directed and much cheaper; (b) and (c) stay within a small factor of
/// each other on these bounded-width workloads, with (c) immune to the
/// width blow-ups that E1 shows break (b). All three agree on every
/// probe (checked).

#include <benchmark/benchmark.h>

#include <algorithm>

#include "ptree/forest.h"
#include "sparql/semantics.h"
#include "support/testlib.h"
#include "wd/domination.h"
#include "wd/eval.h"

namespace wdsparql {
namespace {

struct E9Instance {
  TermPool pool;
  PatternPtr pattern;
  PatternForest forest;
  RdfGraph graph{&pool};
  std::vector<Mapping> probes;
  std::vector<bool> expected;
  int promise_k = 1;  ///< dw of the generated pattern (the Theorem 1 promise).

  E9Instance(int graph_nodes, uint64_t seed) {
    // Draw patterns until the recognition API confirms a small domination
    // width, so the pebble run is provably complete (Theorem 1 promise).
    for (uint64_t attempt = 0;; ++attempt) {
      Rng rng(seed + attempt);
      testlib::RandomPatternOptions options;
      options.max_depth = 2;
      pattern = testlib::RandomWellDesignedUnion(&rng, &pool, 3, options);
      auto built = BuildPatternForest(pattern, pool);
      WDSPARQL_CHECK(built.ok());
      Result<int> dw = DominationWidth(built.value(), &pool);
      if (!dw.ok() || dw.value() > 3) continue;
      promise_k = dw.value();
      forest = std::move(built).value();
      testlib::SmallWorkloadGraph(&rng, graph_nodes, graph_nodes * 4, 3, &graph);
      break;
    }
    std::vector<Mapping> answers = Evaluate(*pattern, graph);
    Rng probe_rng(seed ^ 0x9e3779b9);
    probes = testlib::MembershipProbes(pattern, graph, &probe_rng, 10);
    for (const Mapping& probe : probes) {
      expected.push_back(std::find(answers.begin(), answers.end(), probe) !=
                         answers.end());
    }
  }
};

void BM_E9_MaterialiseAndLookup(benchmark::State& state) {
  E9Instance instance(static_cast<int>(state.range(0)), 1234);
  for (auto _ : state) {
    std::vector<Mapping> answers = Evaluate(*instance.pattern, instance.graph);
    for (std::size_t i = 0; i < instance.probes.size(); ++i) {
      bool member = std::find(answers.begin(), answers.end(), instance.probes[i]) !=
                    answers.end();
      WDSPARQL_CHECK(member == instance.expected[i]);
      benchmark::DoNotOptimize(+member);
    }
  }
  state.counters["graph_nodes"] = static_cast<double>(state.range(0));
  state.counters["probes"] = static_cast<double>(instance.probes.size());
}

void BM_E9_NaiveMembership(benchmark::State& state) {
  E9Instance instance(static_cast<int>(state.range(0)), 1234);
  for (auto _ : state) {
    for (std::size_t i = 0; i < instance.probes.size(); ++i) {
      bool member = NaiveWdEval(instance.forest, instance.graph, instance.probes[i]);
      WDSPARQL_CHECK(member == instance.expected[i]);
      benchmark::DoNotOptimize(+member);
    }
  }
  state.counters["graph_nodes"] = static_cast<double>(state.range(0));
}

void BM_E9_PebbleMembership(benchmark::State& state) {
  E9Instance instance(static_cast<int>(state.range(0)), 1234);
  for (auto _ : state) {
    for (std::size_t i = 0; i < instance.probes.size(); ++i) {
      bool member = PebbleWdEval(instance.forest, instance.graph, instance.probes[i],
                                 instance.promise_k);
      // Soundness always; completeness on these bounded-width workloads.
      WDSPARQL_CHECK(member == instance.expected[i]);
      benchmark::DoNotOptimize(+member);
    }
  }
  state.counters["graph_nodes"] = static_cast<double>(state.range(0));
}

BENCHMARK(BM_E9_MaterialiseAndLookup)
    ->RangeMultiplier(2)
    ->Range(4, 32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E9_NaiveMembership)
    ->RangeMultiplier(2)
    ->Range(4, 32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E9_PebbleMembership)
    ->RangeMultiplier(2)
    ->Range(4, 32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wdsparql

BENCHMARK_MAIN();
