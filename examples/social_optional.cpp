/// \file
/// The workload motivating OPTIONAL in the SPARQL literature: contact
/// lookup over an incomplete social graph. People may or may not have an
/// email or a phone; OPT returns maximal partial answers instead of
/// dropping people with missing attributes (as AND would).
///
/// The example contrasts the AND-query (inner-join behaviour) with the
/// nested-OPT query through the public Session/Cursor API, shows the
/// per-answer domain shapes, and verifies membership with the Theorem 1
/// pebble algorithm (the query is UNION-free with branch treewidth 1, so
/// promise k = 1 is correct).
///
/// Build & run:  ./build/social_optional

#include <cstdio>
#include <map>

#include "engine/api_internal.h"
#include "rdf/generator.h"
#include "rdf/graph.h"
#include "wd/branch_width.h"
#include "wdsparql/wdsparql.h"

using namespace wdsparql;

int main() {
  // Generate the synthetic social graph, then bulk-load it.
  TermPool pool;
  RdfGraph staged(&pool);
  SocialGraphOptions options;
  options.num_people = 60;
  options.email_probability = 0.6;
  options.phone_probability = 0.35;
  options.seed = 2024;
  GenerateSocialGraph(options, &staged);

  Database db(&pool);
  for (const Triple& t : staged.triples()) db.AddTriple(t);
  std::printf("Social graph: %zu triples over %d people\n\n", db.size(),
              options.num_people);

  Session session = db.OpenSession();
  Statement strict =
      session.Prepare("(?p type Person) AND (?p email ?e) AND (?p phone ?f)");
  Statement relaxed =
      session.Prepare("(?p type Person) OPT ((?p email ?e) OPT (?p phone ?f))");
  if (!strict.ok() || !relaxed.ok()) {
    std::fprintf(stderr, "prepare failure: %s / %s\n",
                 strict.diagnostics().ToString().c_str(),
                 relaxed.diagnostics().ToString().c_str());
    return 1;
  }

  std::printf("AND query (email AND phone required): %llu answers\n",
              static_cast<unsigned long long>(strict.Count()));

  // Shape histogram: which attribute combinations actually occur. The
  // cursor pulls answers one at a time — nothing is materialised.
  std::map<std::size_t, int> by_domain_size;
  Cursor cursor = relaxed.Execute();
  while (cursor.Next()) ++by_domain_size[cursor.Row().size()];
  std::printf("OPT query (attributes optional):      %llu answers\n\n",
              static_cast<unsigned long long>(cursor.rows()));
  std::printf("answer shapes (bound variables -> count):\n");
  std::printf("  1 (person only)          : %d\n", by_domain_size[1]);
  std::printf("  2 (person+email)         : %d\n", by_domain_size[2]);
  std::printf("  3 (person+email+phone)   : %d\n", by_domain_size[3]);

  // The nested OPT is well designed; its branch treewidth certifies the
  // promise parameter for the polynomial evaluator.
  auto bw = BranchTreewidthOfPattern(relaxed.impl()->pattern, pool);
  if (!bw.ok()) {
    std::fprintf(stderr, "bw failed: %s\n", bw.status().ToString().c_str());
    return 1;
  }
  std::printf("\nbranch treewidth bw(P) = %d  ->  run the naive backend with "
              "pebble promise k = %d\n",
              bw.value(), bw.value());

  // Re-check every answer through a pebble-promise session — same
  // database, different execution options.
  SessionOptions pebble_options;
  pebble_options.backend = Backend::kNaiveHash;
  pebble_options.pebble_promise = bw.value();
  Statement verifier =
      db.OpenSession(pebble_options)
          .Prepare("(?p type Person) OPT ((?p email ?e) OPT (?p phone ?f))");
  bool ok = true;
  for (const Mapping& mu : relaxed.Solutions()) {
    if (!verifier.Contains(mu)) ok = false;
  }
  std::printf("pebble algorithm confirms all answers: %s\n", ok ? "yes" : "NO");

  // SPARQL subtlety on display: a person with a phone but no email binds
  // only {p} — the phone is unreachable through the nested OPT.
  int phone_no_email = 0;
  TermId phone = pool.InternIri("phone");
  TermId email = pool.InternIri("email");
  const TripleSet& triples = db.graph().triples();
  for (int i = 0; i < options.num_people; ++i) {
    TermId person = pool.InternIri("person" + std::to_string(i));
    bool has_p = false, has_e = false;
    for (uint32_t idx : triples.TriplesWithTermAt(0, person)) {
      const Triple& t = triples.triples()[idx];
      has_p |= t.predicate == phone;
      has_e |= t.predicate == email;
    }
    if (has_p && !has_e) ++phone_no_email;
  }
  std::printf(
      "\npeople with phone but no email: %d (their phones do not appear in any "
      "answer — the nested OPT gates on email)\n",
      phone_no_email);
  return ok ? 0 : 1;
}
