/// \file
/// The workload motivating OPTIONAL in the SPARQL literature: contact
/// lookup over an incomplete social graph. People may or may not have an
/// email or a phone; OPT returns maximal partial answers instead of
/// dropping people with missing attributes (as AND would).
///
/// The example contrasts the AND-query (inner-join behaviour) with the
/// nested-OPT query, shows the per-answer domain shapes, and verifies
/// membership with the Theorem 1 pebble algorithm (the query is
/// UNION-free with branch treewidth 1, so promise k = 1 is correct).
///
/// Build & run:  ./build/examples/social_optional

#include <cstdio>
#include <map>

#include "ptree/forest.h"
#include "rdf/generator.h"
#include "sparql/parser.h"
#include "sparql/semantics.h"
#include "wd/branch_width.h"
#include "wd/eval.h"

using namespace wdsparql;

int main() {
  TermPool pool;
  RdfGraph graph(&pool);
  SocialGraphOptions options;
  options.num_people = 60;
  options.email_probability = 0.6;
  options.phone_probability = 0.35;
  options.seed = 2024;
  GenerateSocialGraph(options, &graph);
  std::printf("Social graph: %zu triples over %d people\n\n", graph.size(),
              options.num_people);

  auto and_query =
      ParsePattern("(?p type Person) AND (?p email ?e) AND (?p phone ?f)", &pool);
  auto opt_query =
      ParsePattern("(?p type Person) OPT ((?p email ?e) OPT (?p phone ?f))", &pool);
  if (!and_query.ok() || !opt_query.ok()) {
    std::fprintf(stderr, "parse failure\n");
    return 1;
  }

  std::vector<Mapping> strict = Evaluate(*and_query.value(), graph);
  std::vector<Mapping> relaxed = Evaluate(*opt_query.value(), graph);

  std::printf("AND query (email AND phone required): %zu answers\n", strict.size());
  std::printf("OPT query (attributes optional):      %zu answers\n\n", relaxed.size());

  // Shape histogram: which attribute combinations actually occur.
  std::map<std::size_t, int> by_domain_size;
  for (const Mapping& mu : relaxed) ++by_domain_size[mu.size()];
  std::printf("answer shapes (bound variables -> count):\n");
  std::printf("  1 (person only)          : %d\n", by_domain_size[1]);
  std::printf("  2 (person+email)         : %d\n", by_domain_size[2]);
  std::printf("  3 (person+email+phone)   : %d\n", by_domain_size[3]);

  // The nested OPT is well designed; its branch treewidth certifies the
  // promise parameter for the polynomial evaluator.
  auto bw = BranchTreewidthOfPattern(opt_query.value(), pool);
  if (!bw.ok()) {
    std::fprintf(stderr, "bw failed: %s\n", bw.status().ToString().c_str());
    return 1;
  }
  std::printf("\nbranch treewidth bw(P) = %d  ->  run PebbleWdEval with k = %d\n",
              bw.value(), bw.value());

  auto forest = BuildPatternForest(opt_query.value(), pool);
  if (!forest.ok()) return 1;
  bool ok = true;
  for (const Mapping& mu : relaxed) {
    if (!PebbleWdEval(forest.value(), graph, mu, bw.value())) ok = false;
  }
  std::printf("pebble algorithm confirms all %zu answers: %s\n", relaxed.size(),
              ok ? "yes" : "NO");

  // SPARQL subtlety on display: a person with a phone but no email binds
  // only {p} — the phone is unreachable through the nested OPT.
  int phone_no_email = 0;
  TermId phone = pool.InternIri("phone");
  TermId email = pool.InternIri("email");
  for (int i = 0; i < options.num_people; ++i) {
    TermId person = pool.InternIri("person" + std::to_string(i));
    bool has_phone = !graph.triples().TriplesWithTermAt(0, person).empty();
    bool has_p = false, has_e = false;
    for (uint32_t idx : graph.triples().TriplesWithTermAt(0, person)) {
      const Triple& t = graph.triples().triples()[idx];
      has_p |= t.predicate == phone;
      has_e |= t.predicate == email;
    }
    (void)has_phone;
    if (has_p && !has_e) ++phone_no_email;
  }
  std::printf(
      "\npeople with phone but no email: %d (their phones do not appear in any "
      "answer — the nested OPT gates on email)\n",
      phone_no_email);
  return ok ? 0 : 1;
}
