/// \file
/// The Theorem 2 reduction in action: decide k-CLIQUE on an undirected
/// graph by building the Lemma 2 gadget, freezing it into an RDF
/// instance, and asking a wdEVAL membership question — a clique exists
/// iff the frozen mapping is NOT an answer of the clique-branch query.
///
/// This is of course a terrible way to find cliques; the point is the
/// direction of the reduction: evaluating well-designed queries of
/// unbounded domination width is at least as hard as p-CLIQUE.
///
/// The gadget instance is loaded into a `Database`, so the membership
/// question runs over the engine's permutation-indexed storage (the
/// paper's algorithm, the production store underneath).
///
/// Build & run:  ./build/clique_solver

#include <cstdio>

#include "engine/indexed_store.h"
#include "rdf/generator.h"
#include "wd/eval.h"
#include "wd/hardness.h"
#include "wdsparql/wdsparql.h"

using namespace wdsparql;

namespace {

void Solve(const char* name, const UndirectedGraph& h, int k) {
  TermPool pool;
  auto instance = BuildCliqueReduction(h, k, &pool);
  if (!instance.ok()) {
    std::printf("%-24s k=%d: reduction failed: %s\n", name, k,
                instance.status().ToString().c_str());
    return;
  }
  // Freeze the gadget into the database; the wdEVAL membership question
  // then probes the indexed store through the TripleSource seam.
  Database db(&pool);
  for (const Triple& t : instance.value().graph.triples()) db.AddTriple(t);
  bool member = NaiveWdEval(instance.value().forest, db.store(), instance.value().mu);
  bool via_reduction = !member;  // Clique iff mu is NOT an answer.
  bool via_brute_force = HasCliqueBruteForce(h, k);
  std::printf(
      "%-24s k=%d: |V|=%2d |E|=%3d  gadget=%5zu triples  query clique m=%2d  "
      "clique: reduction=%s brute=%s %s\n",
      name, k, h.NumVertices(), h.NumEdges(), instance.value().graph.size(),
      instance.value().query_clique_size, via_reduction ? "yes" : "no ",
      via_brute_force ? "yes" : "no ", via_reduction == via_brute_force ? "" : "!!");
}

}  // namespace

int main() {
  std::printf("k-CLIQUE via the Theorem 2 reduction (p-CLIQUE -> co-wdEVAL):\n\n");

  UndirectedGraph triangle(5);
  triangle.AddEdge(0, 1);
  triangle.AddEdge(1, 2);
  triangle.AddEdge(0, 2);
  triangle.AddEdge(2, 3);
  triangle.AddEdge(3, 4);

  Solve("triangle + tail", triangle, 3);
  Solve("5-cycle (triangle-free)", UndirectedGraph::Cycle(5), 3);
  Solve("K_5", UndirectedGraph::Complete(5), 3);
  Solve("3x3 grid", UndirectedGraph::Grid(3, 3), 2);
  Solve("empty graph", UndirectedGraph(6), 2);

  for (uint64_t seed = 1; seed <= 3; ++seed) {
    UndirectedGraph random = GenerateErdosRenyi(9, 0.45, seed);
    std::string name = "G(9, .45) seed " + std::to_string(seed);
    Solve(name.c_str(), random, 3);
  }

  std::printf(
      "\nEvery row agrees with brute force; rows marked '!!' would indicate a "
      "reduction bug.\n");
  return 0;
}
