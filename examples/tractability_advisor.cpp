/// \file
/// Tractability advisor: given well-designed queries, compute the three
/// width measures the paper discusses — local width [17], branch
/// treewidth (Definition 3) and domination width (Definition 2) — and
/// report where each query falls on the tractability frontier, i.e.
/// which promise parameter k makes the Theorem 1 algorithm complete.
///
/// Runs on the paper's own families (Examples 4/5 and Section 3.2) plus
/// queries passed on the command line.
///
/// Build & run:  ./build/examples/tractability_advisor            # paper families
///               ./build/examples/tractability_advisor '(?x p ?y) OPT (?y q ?z)'

#include <cstdio>
#include <string>

#include "ptree/forest.h"
#include "sparql/parser.h"
#include "sparql/well_designed.h"
#include "wd/branch_width.h"
#include "wd/domination.h"
#include "wd/local_tractability.h"
#include "wd/paper_examples.h"

using namespace wdsparql;

namespace {

void Report(const char* name, const PatternPtr& pattern, TermPool* pool) {
  std::printf("== %s\n", name);
  std::printf("   %s\n", pattern->ToString(*pool).c_str());

  Status wd = CheckWellDesigned(pattern, *pool);
  if (!wd.ok()) {
    std::printf("   NOT well designed: %s\n", wd.message().c_str());
    std::printf("   -> outside the paper's fragment (coNP methods do not apply)\n\n");
    return;
  }
  auto forest = BuildPatternForest(pattern, *pool);
  if (!forest.ok()) {
    std::printf("   wdpf failed: %s\n\n", forest.status().ToString().c_str());
    return;
  }

  int local = LocalWidth(forest.value());
  std::printf("   local width [17]      : %d\n", local);

  if (forest.value().trees.size() == 1) {
    int bw = BranchTreewidth(forest.value().trees[0]);
    std::printf("   branch treewidth (D3) : %d   (UNION-free: dw = bw, Prop. 5)\n", bw);
  }

  DominationOptions options;
  options.max_subtrees = 1u << 14;
  options.max_assignments_per_subtree = 1u << 14;
  Result<int> dw = DominationWidth(forest.value(), pool, options);
  if (dw.ok()) {
    std::printf("   domination width (D2) : %d\n", dw.value());
    std::printf("   -> PTIME evaluation: PebbleWdEval with promise k = %d "
                "(existential %d-pebble game)\n",
                dw.value(), dw.value() + 1);
    if (local > dw.value()) {
      std::printf("   -> note: local tractability misses this query "
                  "(local %d > dw %d) — Theorem 1 strictly extends [17]\n",
                  local, dw.value());
    }
  } else {
    std::printf("   domination width      : %s (recognition is NP-hard; "
                "Pi^p_2 in general — Section 5)\n",
                dw.status().ToString().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  TermPool pool;

  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      auto parsed = ParsePattern(argv[i], &pool);
      if (!parsed.ok()) {
        std::printf("== argv[%d]: parse error: %s\n\n", i,
                    parsed.status().ToString().c_str());
        continue;
      }
      Report(("argv[" + std::to_string(i) + "]").c_str(), parsed.value(), &pool);
    }
    return 0;
  }

  std::printf("The tractability frontier, on the paper's families (k = 4):\n\n");
  Report("Example 1, P1", MakeExample1P1(&pool), &pool);
  Report("Example 1, P2 (not well designed)", MakeExample1P2(&pool), &pool);
  Report("F_4 pattern (Examples 4/5: dw = 1, not locally tractable)",
         MakeFkPattern(&pool, 4), &pool);
  Report("T'_4 pattern (Section 3.2: bw = 1, not locally tractable)",
         MakeBranchFamilyPattern(&pool, 4), &pool);
  Report("Clique-branch pattern (unbounded width: the Theorem 2 regime)",
         MakeCliqueBranchPattern(&pool, 4), &pool);
  return 0;
}
