/// \file
/// Tractability advisor: given well-designed queries, compute the three
/// width measures the paper discusses — local width [17], branch
/// treewidth (Definition 3) and domination width (Definition 2) — and
/// report where each query falls on the tractability frontier, i.e.
/// which promise parameter k makes the Theorem 1 algorithm complete.
///
/// Queries go through `Session::Prepare`, so rejection reasons arrive as
/// structured `QueryDiagnostics` (code + offending variable) rather than
/// status prose. Runs on the paper's own families (Examples 4/5 and
/// Section 3.2) plus queries passed on the command line.
///
/// Build & run:  ./build/tractability_advisor            # paper families
///               ./build/tractability_advisor '(?x p ?y) OPT (?y q ?z)'

#include <cstdio>
#include <string>

#include "engine/api_internal.h"
#include "wd/branch_width.h"
#include "wd/domination.h"
#include "wd/local_tractability.h"
#include "wd/paper_examples.h"
#include "wdsparql/wdsparql.h"

using namespace wdsparql;

namespace {

void Report(const char* name, const PatternPtr& pattern, Database* db) {
  TermPool* pool = &db->pool();
  std::printf("== %s\n", name);
  std::printf("   %s\n", pattern->ToString(*pool).c_str());

  Statement stmt = db->OpenSession().PrepareParsed(pattern);
  const QueryDiagnostics& diag = stmt.diagnostics();
  if (!stmt.ok()) {
    std::printf("   NOT prepared [%s]: %s\n", DiagnosticsCodeToString(diag.code),
                diag.message.c_str());
    if (!diag.offending_variable.empty()) {
      std::printf("   offending variable    : %s\n", diag.offending_variable.c_str());
    }
    std::printf("   -> outside the paper's fragment (coNP methods do not apply)\n\n");
    return;
  }
  const PatternForest& forest = stmt.impl()->forest;

  int local = LocalWidth(forest);
  std::printf("   local width [17]      : %d\n", local);

  if (forest.trees.size() == 1) {
    int bw = BranchTreewidth(forest.trees[0]);
    std::printf("   branch treewidth (D3) : %d   (UNION-free: dw = bw, Prop. 5)\n", bw);
  }

  DominationOptions options;
  options.max_subtrees = 1u << 14;
  options.max_assignments_per_subtree = 1u << 14;
  Result<int> dw = DominationWidth(forest, pool, options);
  if (dw.ok()) {
    std::printf("   domination width (D2) : %d\n", dw.value());
    std::printf("   -> PTIME evaluation: PebbleWdEval with promise k = %d "
                "(existential %d-pebble game)\n",
                dw.value(), dw.value() + 1);
    if (local > dw.value()) {
      std::printf("   -> note: local tractability misses this query "
                  "(local %d > dw %d) — Theorem 1 strictly extends [17]\n",
                  local, dw.value());
    }
  } else {
    std::printf("   domination width      : %s (recognition is NP-hard; "
                "Pi^p_2 in general — Section 5)\n",
                dw.status().ToString().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  // An empty database: the advisor only plans, it never evaluates.
  Database db;
  TermPool* pool = &db.pool();

  if (argc > 1) {
    Session session = db.OpenSession();
    for (int i = 1; i < argc; ++i) {
      Statement stmt = session.Prepare(argv[i]);
      if (stmt.diagnostics().code == QueryDiagnostics::Code::kParseError) {
        std::printf("== argv[%d]: parse error: %s\n\n", i,
                    stmt.diagnostics().message.c_str());
        continue;
      }
      Report(("argv[" + std::to_string(i) + "]").c_str(), stmt.impl()->pattern, &db);
    }
    return 0;
  }

  std::printf("The tractability frontier, on the paper's families (k = 4):\n\n");
  Report("Example 1, P1", MakeExample1P1(pool), &db);
  Report("Example 1, P2 (not well designed)", MakeExample1P2(pool), &db);
  Report("F_4 pattern (Examples 4/5: dw = 1, not locally tractable)",
         MakeFkPattern(pool, 4), &db);
  Report("T'_4 pattern (Section 3.2: bw = 1, not locally tractable)",
         MakeBranchFamilyPattern(pool, 4), &db);
  Report("Clique-branch pattern (unbounded width: the Theorem 2 regime)",
         MakeCliqueBranchPattern(pool, 4), &db);
  return 0;
}
