/// \file
/// Quickstart: parse a well-designed SPARQL pattern, load a tiny RDF
/// graph, evaluate the query three ways (textbook semantics, the natural
/// wdPT algorithm, the paper's pebble-game algorithm), and print the
/// answers.
///
/// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "ptree/forest.h"
#include "ptree/semantics.h"
#include "rdf/ntriples.h"
#include "sparql/parser.h"
#include "sparql/semantics.h"
#include "sparql/well_designed.h"
#include "wd/eval.h"

using namespace wdsparql;

int main() {
  TermPool pool;

  // 1. An RDF graph, in the library's N-Triples-like format.
  RdfGraph graph(&pool);
  Status load = ParseNTriples(
      "alice knows bob .\n"
      "alice knows carol .\n"
      "bob   email mailto:bob@example.org .\n"
      "carol worksAt acme .\n",
      &graph);
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.ToString().c_str());
    return 1;
  }
  std::printf("Graph (%zu triples):\n%s\n", graph.size(), graph.ToString().c_str());

  // 2. A well-designed pattern: mandatory part + optional email.
  auto parsed = ParsePattern("(alice knows ?who) OPT (?who email ?mail)", &pool);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse failed: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  PatternPtr query = parsed.value();
  std::printf("Query: %s\n", query->ToString(pool).c_str());

  Status wd = CheckWellDesigned(query, pool);
  std::printf("Well designed: %s\n\n", wd.ok() ? "yes" : wd.ToString().c_str());

  // 3. Evaluate with the textbook set semantics.
  std::printf("Answers (JPKG):\n");
  std::vector<Mapping> answers = Evaluate(*query, graph);
  for (const Mapping& mu : answers) {
    std::printf("  %s\n", mu.ToString(pool).c_str());
  }

  // 4. The same answers through the pattern-forest pipeline, and
  //    membership checks with both wdEVAL algorithms.
  auto forest = BuildPatternForest(query, pool);
  if (!forest.ok()) {
    std::fprintf(stderr, "wdpf failed: %s\n", forest.status().ToString().c_str());
    return 1;
  }
  std::printf("\nwdpf(P): %zu pattern tree(s); tree 0 has %d node(s)\n",
              forest.value().trees.size(), forest.value().trees[0].NumNodes());

  bool all_agree = true;
  for (const Mapping& mu : answers) {
    bool naive = NaiveWdEval(forest.value(), graph, mu);
    bool pebble = PebbleWdEval(forest.value(), graph, mu, /*k=*/1);
    if (!naive || !pebble) all_agree = false;
  }
  std::printf("naive/pebble membership agrees on all %zu answers: %s\n",
              answers.size(), all_agree ? "yes" : "NO");

  // A non-maximal mapping is correctly rejected: bob without his email.
  Mapping truncated;
  truncated.Bind(pool.InternVariable("who"), pool.InternIri("bob"));
  std::printf("non-maximal {?who -> bob} rejected: %s\n",
              NaiveWdEval(forest.value(), graph, truncated) ? "NO" : "yes");
  return all_agree ? 0 : 1;
}
