/// \file
/// Quickstart for the public API: build a `Database`, open a `Session`,
/// prepare a well-designed pattern into a `Statement`, pull answers
/// through a `Cursor`, project a variable subset into a columnar
/// `BindingTable` — and cross-check the engine against the textbook set
/// semantics and both wdEVAL membership algorithms.
///
/// Build & run:  ./build/quickstart

#include <cstdio>

#include "ptree/forest.h"
#include "rdf/graph.h"
#include "sparql/parser.h"
#include "sparql/semantics.h"
#include "wd/eval.h"
#include "wdsparql/wdsparql.h"

using namespace wdsparql;

int main() {
  // 1. An owning database; AddTriple maintains the permutation indexes
  //    incrementally (no rebuilds).
  Database db;
  db.AddTriple("alice", "knows", "bob");
  db.AddTriple("alice", "knows", "carol");
  db.AddTriple("bob", "email", "mailto:bob@example.org");
  db.AddTriple("carol", "worksAt", "acme");
  std::printf("Database: %zu triples\n\n", db.size());

  // 2. A cheap read session; Prepare carries structured diagnostics.
  Session session = db.OpenSession();
  Statement stmt = session.Prepare("(alice knows ?who) OPT (?who email ?mail)");
  std::printf("Query: %s\n", stmt.diagnostics().pattern_text.c_str());
  std::printf("Prepared: %s (well designed: %s, %zu tree(s))\n\n",
              stmt.diagnostics().ToString().c_str(),
              stmt.diagnostics().well_designed ? "yes" : "no",
              stmt.diagnostics().num_trees);
  if (!stmt.ok()) return 1;

  // 3. Pull-based enumeration: answers arrive one Next() at a time.
  std::printf("Answers (JPKG):\n");
  Cursor cursor = stmt.Execute();
  while (cursor.Next()) {
    std::printf("  %s\n", cursor.Row().ToString(db.pool()).c_str());
  }

  // 4. SELECT-style projection into a columnar table: just the people,
  //    duplicates eliminated.
  BindingTable table = stmt.ExecuteTable({"?who"});
  std::printf("\nProjected on ?who (%zu row(s)):\n%s", table.NumRows(),
              table.ToString().c_str());

  // 5. Cross-checks: the engine agrees with the textbook set semantics,
  //    and both wdEVAL membership algorithms accept every answer.
  auto parsed = ParsePattern("(alice knows ?who) OPT (?who email ?mail)", &db.pool());
  std::vector<Mapping> reference = Evaluate(*parsed.value(), db.graph());
  std::vector<Mapping> engine_answers = stmt.Solutions();
  bool same = engine_answers == reference;
  std::printf("\nengine matches set semantics: %s\n", same ? "yes" : "NO");

  auto forest = BuildPatternForest(parsed.value(), db.pool());
  bool all_agree = true;
  for (const Mapping& mu : engine_answers) {
    bool member = stmt.Contains(mu);  // Engine membership (indexed backend).
    bool naive = NaiveWdEval(forest.value(), db.graph(), mu);
    bool pebble = PebbleWdEval(forest.value(), db.graph(), mu, /*k=*/1);
    if (!member || !naive || !pebble) all_agree = false;
  }
  std::printf("engine/naive/pebble membership agree on all %zu answers: %s\n",
              engine_answers.size(), all_agree ? "yes" : "NO");

  // A non-maximal mapping is correctly rejected: bob without his email.
  Mapping truncated;
  truncated.Bind(db.pool().InternVariable("who"), db.pool().InternIri("bob"));
  std::printf("non-maximal {?who -> bob} rejected: %s\n",
              stmt.Contains(truncated) ? "NO" : "yes");
  return (same && all_agree) ? 0 : 1;
}
