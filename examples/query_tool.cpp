/// \file
/// wdsparql query tool: evaluate a well-designed pattern over an RDF
/// graph file from the command line, through the public
/// Database/Session/Cursor API.
///
///   query_tool <graph.nt> '<pattern>' [--plan] [--count] [--promise K]
///              [--backend naive|indexed] [--select ?x,?y] [--table]
///              [--save <snapshot>] [--batch-size N] [--stats] [--metrics]
///              [--limit N] [--deadline-ms N] [--cancel-after-ms N]
///              [--parallelism N]
///   query_tool --db <snapshot> '<pattern>' [same flags] [--wal]
///
///   <graph.nt>   N-Triples-like file (see rdf/ntriples.h)
///   <pattern>    e.g. '(?x knows ?y) OPT (?y email ?e)'
///   --db         open a single-file snapshot (Database::Open — mmap,
///                no re-parse) instead of parsing N-Triples
///   --wal        with --db: open with write-ahead-log durability and
///                replay the sibling <snapshot>.wal (the snapshot file
///                may not exist yet — a WAL-only database opens empty
///                and serves exactly the committed batches)
///   --batch-size without --db: stream the file in WriteBatch commits
///                of N triples instead of one atomic batch
///   --save       after loading, serialize the database to a snapshot
///                (parse once with --save, then query many times with
///                --db)
///   --plan       print wdpf(P) (the pattern forest) and the width report
///   --explain-plan
///                execute once with statistics collection, suppress the
///                rows, and print the EXPLAIN tree — including, per wdpf
///                subtree, the cost-based optimizer's chosen variable
///                order / scan permutations and estimated vs actual
///                cardinalities (indexed backend; needs compacted or
///                snapshot-loaded statistics)
///   --no-optimize
///                disable the cost-based planner for this execution
///                (ExecOptions::optimize = false): the historic
///                most-constrained-first heuristic order runs instead
///   --count      print |JPKG| only
///   --promise K  verify every answer with PebbleWdEval at promise K
///   --backend    storage/execution backend (default: indexed — the
///                dictionary-encoded permutation store; naive keeps the
///                paper-faithful hash path)
///   --select     SELECT-style projection: print only the named
///                variables, duplicate rows eliminated
///   --table      render results as an aligned columnar table
///   --stats      execute with ExecStats collection and print the
///                EXPLAIN-style tree (wdsparql/stats.h) to stderr after
///                the results (ignored with --table, whose execution
///                path does not take ExecOptions)
///   --metrics    print the engine's MetricsRegistry as one line of
///                JSON on stdout, last, on every successful exit — pipe
///                `... --metrics | tail -n 1 | python3 -m json.tool`
///                for a pretty-printed dump
///   --limit N    stop enumeration after N rows (ExecOptions::row_limit;
///                the tool reports whether the answer set was truncated)
///   --deadline-ms N
///                give the execution a hard deadline of N milliseconds
///   --cancel-after-ms N
///                fire the execution's CancelToken from a second thread
///                after N milliseconds — a command-line demonstration of
///                cooperative cross-thread cancellation
///   --parallelism N
///                enumerate with N worker threads over one pinned view
///                (ExecOptions::parallelism; indexed backend only). The
///                answer set matches a serial run; row order does not.
///
/// Top-level FILTER conditions are peeled by Session::Prepare and
/// post-applied over the enumerated bindings, so FILTER queries honour
/// the configured backend. Patterns the engine cannot run (not well
/// designed, FILTER below AND/OPT) fall back to the compositional set
/// semantics with a note.
///
/// Exit status: 0 on success, 1 on user error, 2 on internal disagreement
/// (which would indicate a library bug).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "engine/api_internal.h"
#include "rdf/graph.h"
#include "sparql/parser.h"
#include "sparql/semantics.h"
#include "wd/branch_width.h"
#include "wd/domination.h"
#include "wd/eval.h"
#include "wd/local_tractability.h"
#include "wdsparql/wdsparql.h"

using namespace wdsparql;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: query_tool <graph.nt> '<pattern>' [--plan] [--count] "
               "[--promise K] [--backend naive|indexed] [--select ?x,?y] "
               "[--table] [--save <snapshot>] [--batch-size N] [--stats] "
               "[--explain-plan] [--no-optimize] [--metrics] [--limit N] "
               "[--deadline-ms N] [--cancel-after-ms N] [--parallelism N]\n"
               "       query_tool --db <snapshot> '<pattern>' [same flags] "
               "[--wal]\n");
  return 1;
}

std::vector<std::string> SplitSelect(const char* arg) {
  std::vector<std::string> out;
  std::string current;
  for (const char* p = arg; *p != '\0'; ++p) {
    if (*p == ',') {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else if (*p != ' ') {
      current += *p;
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

void PrintPlan(const StatementImpl& stmt, TermPool* pool) {
  const PatternForest& forest = stmt.forest;
  std::printf("wdpf(P): %zu tree(s)\n", forest.trees.size());
  for (std::size_t i = 0; i < forest.trees.size(); ++i) {
    std::printf("--- tree %zu\n%s", i, forest.trees[i].ToString(*pool).c_str());
  }
  if (stmt.diagnostics.post_filters > 0) {
    std::printf("post-filters: %zu top-level FILTER condition(s)\n",
                stmt.diagnostics.post_filters);
  }
  std::printf("local width: %d\n", LocalWidth(forest));
  if (forest.trees.size() == 1) {
    std::printf("branch treewidth: %d\n", BranchTreewidth(forest.trees[0]));
  }
  DominationOptions budget;
  budget.max_subtrees = 1u << 12;
  budget.max_assignments_per_subtree = 1u << 12;
  Result<int> dw = DominationWidth(forest, pool, budget);
  if (dw.ok()) {
    std::printf("domination width: %d (promise k for PebbleWdEval)\n", dw.value());
  } else {
    std::printf("domination width: %s\n", dw.status().ToString().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool show_plan = false;
  bool count_only = false;
  bool as_table = false;
  bool open_wal = false;
  bool show_stats = false;
  bool explain_plan = false;
  bool no_optimize = false;
  bool show_metrics = false;
  int promise = 0;
  long limit = 0;
  long deadline_ms = 0;
  long cancel_after_ms = 0;
  long parallelism = 0;
  std::size_t batch_size = 0;  // 0 = one atomic batch.
  const char* db_path = nullptr;
  const char* save_path = nullptr;
  std::vector<const char*> positional;
  std::vector<std::string> projection;
  SessionOptions options;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') {
      positional.push_back(argv[i]);
    } else if (std::strcmp(argv[i], "--db") == 0 && i + 1 < argc) {
      db_path = argv[++i];
    } else if (std::strcmp(argv[i], "--save") == 0 && i + 1 < argc) {
      save_path = argv[++i];
    } else if (std::strcmp(argv[i], "--wal") == 0) {
      open_wal = true;
    } else if (std::strcmp(argv[i], "--batch-size") == 0 && i + 1 < argc) {
      long parsed = std::atol(argv[++i]);
      if (parsed < 1) return Usage();
      batch_size = static_cast<std::size_t>(parsed);
    } else if (std::strcmp(argv[i], "--plan") == 0) {
      show_plan = true;
    } else if (std::strcmp(argv[i], "--count") == 0) {
      count_only = true;
    } else if (std::strcmp(argv[i], "--table") == 0) {
      as_table = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      show_stats = true;
    } else if (std::strcmp(argv[i], "--explain-plan") == 0) {
      explain_plan = true;
    } else if (std::strcmp(argv[i], "--no-optimize") == 0) {
      no_optimize = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      show_metrics = true;
    } else if (std::strcmp(argv[i], "--promise") == 0 && i + 1 < argc) {
      promise = std::atoi(argv[++i]);
      if (promise < 1) return Usage();
    } else if (std::strcmp(argv[i], "--limit") == 0 && i + 1 < argc) {
      limit = std::atol(argv[++i]);
      if (limit < 1) return Usage();
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = std::atol(argv[++i]);
      if (deadline_ms < 1) return Usage();
    } else if (std::strcmp(argv[i], "--cancel-after-ms") == 0 && i + 1 < argc) {
      cancel_after_ms = std::atol(argv[++i]);
      if (cancel_after_ms < 1) return Usage();
    } else if (std::strcmp(argv[i], "--parallelism") == 0 && i + 1 < argc) {
      parallelism = std::atol(argv[++i]);
      if (parallelism < 1) return Usage();
    } else if (std::strcmp(argv[i], "--select") == 0 && i + 1 < argc) {
      projection = SplitSelect(argv[++i]);
      if (projection.empty()) return Usage();
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      const char* name = argv[++i];
      if (std::strcmp(name, "naive") == 0) {
        options.backend = Backend::kNaiveHash;
      } else if (std::strcmp(name, "indexed") == 0) {
        options.backend = Backend::kIndexed;
      } else {
        return Usage();
      }
    } else {
      return Usage();
    }
  }
  // With --db the one positional argument is the pattern; otherwise the
  // classic <graph.nt> '<pattern>' pair.
  if (positional.size() != (db_path != nullptr ? 1u : 2u)) return Usage();
  const char* pattern_text = positional.back();

  Database db;
  if (db_path != nullptr) {
    OpenOptions open_options;
    if (open_wal) {
      open_options.durability = Durability::kWal;
      open_options.create_if_missing = true;
    }
    Result<Database> opened = Database::Open(db_path, open_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "error opening %s: %s\n", db_path,
                   opened.status().ToString().c_str());
      return 1;
    }
    db = std::move(opened).value();
  } else {
    const char* graph_path = positional[0];
    Status load = db.LoadNTriplesFile(graph_path, batch_size);
    if (!load.ok()) {
      std::fprintf(stderr, "error loading %s: %s\n", graph_path,
                   load.ToString().c_str());
      return 1;
    }
  }
  if (save_path != nullptr) {
    Status saved = db.Save(save_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "error saving %s: %s\n", save_path,
                   saved.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "saved %zu triple(s) to %s\n", db.size(), save_path);
  }
  TermPool& pool = db.pool();

  // The registry dump is the tool's last stdout line on every successful
  // exit, one line of JSON (see --metrics above).
  auto dump_metrics = [&db, show_metrics]() {
    if (show_metrics) {
      std::printf("%s\n", db.DumpMetrics(MetricsFormat::kJson).c_str());
    }
  };
  ExecOptions exec;
  exec.collect_stats = show_stats || explain_plan;
  exec.optimize = !no_optimize;
  if (limit > 0) exec.row_limit = static_cast<uint64_t>(limit);
  if (parallelism > 0) exec.parallelism = static_cast<uint32_t>(parallelism);
  if (deadline_ms > 0) exec.WithTimeout(std::chrono::milliseconds(deadline_ms));
  if (cancel_after_ms > 0) {
    // Cross-thread cancellation, demonstrated for real: the token is
    // fired from a detached second thread while the main thread
    // enumerates (the token is shared, so the thread may outlive the
    // enumeration safely).
    exec.cancel = MakeCancelToken();
    CancelToken token = exec.cancel;
    std::thread([token, cancel_after_ms] {
      std::this_thread::sleep_for(std::chrono::milliseconds(cancel_after_ms));
      token->store(true, std::memory_order_relaxed);
    }).detach();
  }
  // A bounded execution may end early; say how it ended so truncated
  // output is never mistaken for the full answer set.
  auto report_outcome = [](const Cursor& cursor) {
    if (cursor.state() == Cursor::State::kLimited) {
      std::fprintf(stderr, "note: row limit reached; answer set truncated\n");
    } else if (cursor.state() == Cursor::State::kCancelled) {
      std::fprintf(stderr, "note: %s\n",
                   cursor.diagnostics().message.c_str());
    }
  };

  if (explain_plan && options.backend == Backend::kIndexed) {
    // Cardinality statistics are gathered at delta merge; an in-memory
    // load below the merge threshold has none yet. One Compact makes the
    // EXPLAIN show real plans instead of "no statistics".
    db.Compact();
  }

  Session session = db.OpenSession(options);
  Statement stmt = session.Prepare(pattern_text);

  if (!stmt.ok()) {
    const QueryDiagnostics& diag = stmt.diagnostics();
    if (diag.code == QueryDiagnostics::Code::kParseError) {
      std::fprintf(stderr, "parse error: %s\n", diag.message.c_str());
      return 1;
    }
    // Patterns outside the engine's pipeline (not well designed, or
    // FILTER below AND/OPT, which the wdpf translation does not cover)
    // are still valid queries: evaluate them with the compositional set
    // semantics only, as before the engine existed.
    std::fprintf(stderr, "note: %s\n", diag.ToString().c_str());
    std::fprintf(stderr, "evaluating with the set semantics only.\n");
    if (show_plan) {
      std::printf("plan unavailable: %s\n\n", diag.ToString().c_str());
    }
    auto parsed = ParsePattern(pattern_text, &pool);
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse error: %s\n", parsed.status().ToString().c_str());
      return 1;
    }
    std::vector<Mapping> answers = Evaluate(*parsed.value(), db.graph());
    if (show_stats) {
      std::fprintf(stderr,
                   "note: --stats needs the engine pipeline; the set-semantics "
                   "fallback collects none\n");
    }
    if (count_only) {
      std::printf("%zu\n", answers.size());
      dump_metrics();
      return 0;
    }
    for (const Mapping& mu : answers) {
      std::printf("%s\n", mu.ToString(pool).c_str());
    }
    std::fprintf(stderr, "%zu answer(s), graph: %zu triple(s)\n", answers.size(),
                 db.size());
    if (promise > 0) {
      // Pebble verification needs the wdpf forest, which this pattern
      // has none of — surface that instead of silently skipping it.
      std::fprintf(stderr, "cannot verify: %s\n", diag.ToString().c_str());
      return 1;
    }
    dump_metrics();
    return 0;
  }

  if (show_plan) {
    PrintPlan(*stmt.impl(), &pool);
    std::printf("\n");
  }

  if (count_only) {
    Cursor counting = stmt.Execute(projection, exec);
    uint64_t count = 0;
    while (counting.Next()) ++count;
    if (counting.state() == Cursor::State::kFailed) {
      std::fprintf(stderr, "error: %s\n", counting.diagnostics().ToString().c_str());
      return 1;
    }
    report_outcome(counting);
    std::printf("%llu\n", static_cast<unsigned long long>(count));
    if (explain_plan && counting.stats() != nullptr) {
      std::printf("%s", counting.stats()->ToText().c_str());
    } else if (show_stats && counting.stats() != nullptr) {
      std::fprintf(stderr, "%s", counting.stats()->ToText().c_str());
    }
    dump_metrics();
    return 0;
  }

  if (as_table) {
    if (show_stats) {
      std::fprintf(stderr, "note: --stats is ignored with --table\n");
    }
    BindingTable table = stmt.ExecuteTable(projection);
    std::printf("%s", table.ToString().c_str());
    std::fprintf(stderr, "%zu row(s), graph: %zu triple(s), backend: %s\n",
                 table.NumRows(), db.size(), BackendToString(options.backend));
    dump_metrics();
    return 0;
  }

  Cursor cursor = stmt.Execute(projection, exec);
  std::vector<Mapping> answers;
  while (cursor.Next()) {
    answers.push_back(cursor.Row());
  }
  if (cursor.state() == Cursor::State::kFailed) {
    std::fprintf(stderr, "error: %s\n", cursor.diagnostics().ToString().c_str());
    return 1;
  }
  report_outcome(cursor);
  // Deterministic output: cursor arrival order is backend-dependent, so
  // the printed answer list is sorted (both backends byte-identical).
  std::sort(answers.begin(), answers.end());
  if (!explain_plan) {
    for (const Mapping& mu : answers) {
      std::printf("%s\n", mu.ToString(pool).c_str());
    }
  }
  std::fprintf(stderr, "%zu answer(s), graph: %zu triple(s), backend: %s\n",
               answers.size(), db.size(), BackendToString(options.backend));
  if (explain_plan && cursor.stats() != nullptr) {
    // The plan report IS the output in this mode: one execution served
    // both the enumeration (for actual cardinalities) and the EXPLAIN —
    // the query is never run twice.
    std::printf("%s", cursor.stats()->ToText().c_str());
  } else if (show_stats && cursor.stats() != nullptr) {
    // The cursor is exhausted, so these are the execution's final
    // numbers (scan and dictionary counters folded in at finish).
    std::fprintf(stderr, "%s", cursor.stats()->ToText().c_str());
  }

  if (promise > 0) {
    const PatternForest& forest = stmt.impl()->forest;
    if (!projection.empty()) {
      std::fprintf(stderr, "cannot verify projected rows; drop --select\n");
      return 1;
    }
    for (const Mapping& mu : answers) {
      if (!PebbleWdEval(forest, db.graph(), mu, promise)) {
        std::fprintf(stderr,
                     "DISAGREEMENT: pebble algorithm (k=%d) rejects %s — promise "
                     "too small or library bug\n",
                     promise, mu.ToString(pool).c_str());
        return 2;
      }
    }
    std::fprintf(stderr, "all answers verified by PebbleWdEval(k=%d)\n", promise);
  }
  dump_metrics();
  return 0;
}
