/// \file
/// wdsparql query tool: evaluate a well-designed pattern over an RDF
/// graph file from the command line.
///
///   query_tool <graph.nt> '<pattern>' [--plan] [--count] [--promise K]
///
///   <graph.nt>   N-Triples-like file (see rdf/ntriples.h)
///   <pattern>    e.g. '(?x knows ?y) OPT (?y email ?e)'
///   --plan       print wdpf(P) (the pattern forest) and the width report
///   --count      print |JPKG| only
///   --promise K  verify every answer with PebbleWdEval at promise K
///
/// Exit status: 0 on success, 1 on user error, 2 on internal disagreement
/// (which would indicate a library bug).

#include <cstdio>
#include <cstring>
#include <string>

#include "ptree/forest.h"
#include "rdf/ntriples.h"
#include "sparql/parser.h"
#include "sparql/semantics.h"
#include "sparql/well_designed.h"
#include "wd/branch_width.h"
#include "wd/domination.h"
#include "wd/enumerate.h"
#include "wd/eval.h"
#include "wd/local_tractability.h"

using namespace wdsparql;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: query_tool <graph.nt> '<pattern>' [--plan] [--count] "
               "[--promise K]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const char* graph_path = argv[1];
  const char* pattern_text = argv[2];
  bool show_plan = false;
  bool count_only = false;
  int promise = 0;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--plan") == 0) {
      show_plan = true;
    } else if (std::strcmp(argv[i], "--count") == 0) {
      count_only = true;
    } else if (std::strcmp(argv[i], "--promise") == 0 && i + 1 < argc) {
      promise = std::atoi(argv[++i]);
      if (promise < 1) return Usage();
    } else {
      return Usage();
    }
  }

  TermPool pool;
  RdfGraph graph(&pool);
  Status load = ReadNTriplesFile(graph_path, &graph);
  if (!load.ok()) {
    std::fprintf(stderr, "error loading %s: %s\n", graph_path, load.ToString().c_str());
    return 1;
  }

  auto parsed = ParsePattern(pattern_text, &pool);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  PatternPtr pattern = parsed.value();

  Status wd = CheckWellDesigned(pattern, pool);
  if (!wd.ok()) {
    std::fprintf(stderr, "note: %s\n", wd.ToString().c_str());
    std::fprintf(stderr, "evaluating with the set semantics only.\n");
  }

  if (show_plan) {
    if (wd.ok()) {
      auto forest = BuildPatternForest(pattern, pool);
      if (forest.ok()) {
        std::printf("wdpf(P): %zu tree(s)\n", forest.value().trees.size());
        for (std::size_t i = 0; i < forest.value().trees.size(); ++i) {
          std::printf("--- tree %zu\n%s", i,
                      forest.value().trees[i].ToString(pool).c_str());
        }
        std::printf("local width: %d\n", LocalWidth(forest.value()));
        if (forest.value().trees.size() == 1) {
          std::printf("branch treewidth: %d\n",
                      BranchTreewidth(forest.value().trees[0]));
        }
        DominationOptions budget;
        budget.max_subtrees = 1u << 12;
        budget.max_assignments_per_subtree = 1u << 12;
        Result<int> dw = DominationWidth(forest.value(), &pool, budget);
        if (dw.ok()) {
          std::printf("domination width: %d (promise k for PebbleWdEval)\n",
                      dw.value());
        } else {
          std::printf("domination width: %s\n", dw.status().ToString().c_str());
        }
      } else {
        std::printf("plan unavailable: %s\n", forest.status().ToString().c_str());
      }
    } else {
      std::printf("plan unavailable: pattern is not well designed\n");
    }
    std::printf("\n");
  }

  std::vector<Mapping> answers = Evaluate(*pattern, graph);
  if (count_only) {
    std::printf("%zu\n", answers.size());
    return 0;
  }
  for (const Mapping& mu : answers) {
    std::printf("%s\n", mu.ToString(pool).c_str());
  }
  std::fprintf(stderr, "%zu answer(s), graph: %zu triple(s)\n", answers.size(),
               graph.size());

  if (promise > 0 && wd.ok()) {
    auto forest = BuildPatternForest(pattern, pool);
    if (!forest.ok()) {
      std::fprintf(stderr, "cannot verify: %s\n", forest.status().ToString().c_str());
      return 1;
    }
    for (const Mapping& mu : answers) {
      if (!PebbleWdEval(forest.value(), graph, mu, promise)) {
        std::fprintf(stderr,
                     "DISAGREEMENT: pebble algorithm (k=%d) rejects %s — promise "
                     "too small or library bug\n",
                     promise, mu.ToString(pool).c_str());
        return 2;
      }
    }
    std::fprintf(stderr, "all answers verified by PebbleWdEval(k=%d)\n", promise);
  }
  return 0;
}
