/// \file
/// wdsparql query tool: evaluate a well-designed pattern over an RDF
/// graph file from the command line, through the engine facade.
///
///   query_tool <graph.nt> '<pattern>' [--plan] [--count] [--promise K]
///              [--backend naive|indexed]
///
///   <graph.nt>   N-Triples-like file (see rdf/ntriples.h)
///   <pattern>    e.g. '(?x knows ?y) OPT (?y email ?e)'
///   --plan       print wdpf(P) (the pattern forest) and the width report
///   --count      print |JPKG| only
///   --promise K  verify every answer with PebbleWdEval at promise K
///   --backend    storage/execution backend (default: indexed — the
///                dictionary-encoded permutation store; naive keeps the
///                paper-faithful hash path)
///
/// Exit status: 0 on success, 1 on user error, 2 on internal disagreement
/// (which would indicate a library bug).

#include <cstdio>
#include <cstring>
#include <string>

#include "engine/query_engine.h"
#include "rdf/ntriples.h"
#include "sparql/parser.h"
#include "sparql/semantics.h"
#include "wd/branch_width.h"
#include "wd/domination.h"
#include "wd/local_tractability.h"

using namespace wdsparql;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: query_tool <graph.nt> '<pattern>' [--plan] [--count] "
               "[--promise K] [--backend naive|indexed]\n");
  return 1;
}

void PrintPlan(const PreparedQuery& query, TermPool* pool) {
  const PatternForest& forest = query.forest;
  std::printf("wdpf(P): %zu tree(s)\n", forest.trees.size());
  for (std::size_t i = 0; i < forest.trees.size(); ++i) {
    std::printf("--- tree %zu\n%s", i, forest.trees[i].ToString(*pool).c_str());
  }
  std::printf("local width: %d\n", LocalWidth(forest));
  if (forest.trees.size() == 1) {
    std::printf("branch treewidth: %d\n", BranchTreewidth(forest.trees[0]));
  }
  DominationOptions budget;
  budget.max_subtrees = 1u << 12;
  budget.max_assignments_per_subtree = 1u << 12;
  Result<int> dw = DominationWidth(forest, pool, budget);
  if (dw.ok()) {
    std::printf("domination width: %d (promise k for PebbleWdEval)\n", dw.value());
  } else {
    std::printf("domination width: %s\n", dw.status().ToString().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const char* graph_path = argv[1];
  const char* pattern_text = argv[2];
  bool show_plan = false;
  bool count_only = false;
  int promise = 0;
  QueryEngineOptions options;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--plan") == 0) {
      show_plan = true;
    } else if (std::strcmp(argv[i], "--count") == 0) {
      count_only = true;
    } else if (std::strcmp(argv[i], "--promise") == 0 && i + 1 < argc) {
      promise = std::atoi(argv[++i]);
      if (promise < 1) return Usage();
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      const char* name = argv[++i];
      if (std::strcmp(name, "naive") == 0) {
        options.backend = Backend::kNaiveHash;
      } else if (std::strcmp(name, "indexed") == 0) {
        options.backend = Backend::kIndexed;
      } else {
        return Usage();
      }
    } else {
      return Usage();
    }
  }

  TermPool pool;
  RdfGraph graph(&pool);
  Status load = ReadNTriplesFile(graph_path, &graph);
  if (!load.ok()) {
    std::fprintf(stderr, "error loading %s: %s\n", graph_path, load.ToString().c_str());
    return 1;
  }

  auto parsed = ParsePattern(pattern_text, &pool);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  PatternPtr pattern = parsed.value();

  QueryEngine engine(graph, options);
  Result<PreparedQuery> prepared = engine.PrepareParsed(pattern);

  if (!prepared.ok()) {
    // Patterns outside the engine's pipeline (not well designed, or
    // using FILTER, which the wdpf translation does not cover) are
    // still valid queries: evaluate them with the compositional set
    // semantics only, as before the facade existed.
    std::fprintf(stderr, "note: %s\n", prepared.status().ToString().c_str());
    std::fprintf(stderr, "evaluating with the set semantics only.\n");
    if (show_plan) {
      std::printf("plan unavailable: %s\n\n", prepared.status().ToString().c_str());
    }
    std::vector<Mapping> answers = Evaluate(*pattern, graph);
    if (count_only) {
      std::printf("%zu\n", answers.size());
      return 0;
    }
    for (const Mapping& mu : answers) {
      std::printf("%s\n", mu.ToString(pool).c_str());
    }
    std::fprintf(stderr, "%zu answer(s), graph: %zu triple(s)\n", answers.size(),
                 graph.size());
    if (promise > 0) {
      // Pebble verification needs the wdpf forest, which this pattern
      // has none of — surface that instead of silently skipping it.
      std::fprintf(stderr, "cannot verify: %s\n",
                   prepared.status().ToString().c_str());
      return 1;
    }
    return 0;
  }

  if (show_plan) {
    PrintPlan(prepared.value(), &pool);
    std::printf("\n");
  }

  std::vector<Mapping> answers = engine.Solutions(prepared.value());
  if (count_only) {
    std::printf("%zu\n", answers.size());
    return 0;
  }
  for (const Mapping& mu : answers) {
    std::printf("%s\n", mu.ToString(pool).c_str());
  }
  std::fprintf(stderr, "%zu answer(s), graph: %zu triple(s), backend: %s\n",
               answers.size(), graph.size(), BackendToString(engine.backend()));

  if (promise > 0) {
    for (const Mapping& mu : answers) {
      if (!PebbleWdEval(prepared.value().forest, graph, mu, promise)) {
        std::fprintf(stderr,
                     "DISAGREEMENT: pebble algorithm (k=%d) rejects %s — promise "
                     "too small or library bug\n",
                     promise, mu.ToString(pool).c_str());
        return 2;
      }
    }
    std::fprintf(stderr, "all answers verified by PebbleWdEval(k=%d)\n", promise);
  }
  return 0;
}
