#ifndef WDSPARQL_PUBLIC_WDSPARQL_H_
#define WDSPARQL_PUBLIC_WDSPARQL_H_

/// \file
/// Umbrella header for the stable public surface.
///
/// Everything under include/wdsparql/ is the supported API: the value
/// vocabulary (terms, triples, mappings, status), the owning `Database`
/// with incremental index maintenance, cheap read `Session`s preparing
/// `Statement`s with structured `QueryDiagnostics`, and pull-based
/// `Cursor`s / columnar `BindingTable`s for consuming answers. Headers
/// here include only other wdsparql/ headers and the standard library —
/// never src/-internal ones (enforced by tools/check_include_hygiene.sh).
///
/// Threading: single writer / many readers. Mutate from one thread;
/// prepare and execute on the indexed backend from any number of
/// threads concurrently — cursors pin immutable read views published
/// by each mutation. The full contract is docs/CONCURRENCY.md.

#include "wdsparql/binding_table.h"
#include "wdsparql/check.h"
#include "wdsparql/cursor.h"
#include "wdsparql/database.h"
#include "wdsparql/diagnostics.h"
#include "wdsparql/exec_options.h"
#include "wdsparql/hash.h"
#include "wdsparql/mapping.h"
#include "wdsparql/metrics.h"
#include "wdsparql/session.h"
#include "wdsparql/snapshot.h"
#include "wdsparql/stats.h"
#include "wdsparql/status.h"
#include "wdsparql/storage.h"
#include "wdsparql/term.h"
#include "wdsparql/trace.h"
#include "wdsparql/triple.h"
#include "wdsparql/write_batch.h"

#endif  // WDSPARQL_PUBLIC_WDSPARQL_H_
