#ifndef WDSPARQL_PUBLIC_CURSOR_H_
#define WDSPARQL_PUBLIC_CURSOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "wdsparql/diagnostics.h"
#include "wdsparql/mapping.h"
#include "wdsparql/stats.h"

/// \file
/// Pull-based result enumeration.
///
/// A `Cursor` is the volcano-style consumer side of a prepared
/// statement: `Open` pins the database's current read view, each `Next`
/// resumes the engine's suspendable enumeration state machine just long
/// enough to produce one more distinct (projected, filtered) answer,
/// and `Close` releases the machinery (and the pinned view) early.
/// Nothing is materialised ahead of the consumer beyond the current
/// subtree's candidate batch, so closing a cursor after the first row
/// skips the maximality certificates of every answer never asked for.
///
/// Executions can be bounded per call with `ExecOptions` (row limits,
/// deadlines, cancellation tokens — see wdsparql/exec_options.h) and
/// pinned to an explicit `Snapshot` for repeatable reads (see
/// wdsparql/snapshot.h); both bind at `Statement::Execute` time.

namespace wdsparql {

struct CursorImpl;

/// Pull-based enumeration of one statement execution. Move-only.
///
/// Lifetime: the cursor holds the prepared statement alive and, on the
/// indexed backend, a refcounted pin on the read view it opened
/// against. Mutations (including `Compact`) do NOT invalidate it: the
/// cursor keeps enumerating the exact snapshot it pinned, and the pin is
/// released only explicitly — by `Close`, exhaustion, or destruction.
/// Re-execute the statement for a cursor over the freshest view.
///
/// Naive-backend cursors (`Backend::kNaiveHash`) cannot pin the live
/// hash graph; they retain the historical fail-fast behaviour and flip
/// to `kInvalidated` on their next pull after any mutation.
///
/// Thread-safety: one cursor belongs to one thread at a time, but any
/// number of cursors (across threads) may run concurrently with each
/// other and with a single writer mutating the database.
class Cursor {
 public:
  enum class State {
    kUnopened,     ///< Created, not yet opened.
    kOpen,         ///< Mid-enumeration; `Row` is valid after a true `Next`.
    kExhausted,    ///< Every answer was delivered.
    kClosed,       ///< Closed by the consumer.
    kInvalidated,  ///< The database mutated under a naive-backend
                   ///< cursor (indexed cursors pin their view instead).
    kLimited,      ///< `ExecOptions::row_limit` rows were delivered; the
                   ///< rows seen are an exact answer prefix, not an error.
    kCancelled,    ///< Stopped mid-enumeration by a fired cancellation
                   ///< token or an expired deadline (`diagnostics()`
                   ///< distinguishes: kCancelled vs kDeadlineExceeded).
    kFailed,       ///< The statement never prepared / bad projection.
  };

  /// An empty cursor in `kFailed` state (useful as a placeholder).
  Cursor();
  /// \internal Wraps an engine-constructed cursor state.
  explicit Cursor(std::unique_ptr<CursorImpl> impl);
  ~Cursor();
  Cursor(Cursor&&) noexcept;
  Cursor& operator=(Cursor&&) noexcept;
  Cursor(const Cursor&) = delete;
  Cursor& operator=(const Cursor&) = delete;

  /// Pins the database's current read view (indexed backend) or its
  /// generation (naive backend) and readies enumeration. Idempotent
  /// while open; returns true iff the cursor is (now) open.
  bool Open();

  /// Advances to the next answer. Opens on first call. Returns true iff
  /// a row is available; false on exhaustion, invalidation or failure
  /// (inspect `state()` to distinguish).
  bool Next();

  /// Releases enumeration state — and the pinned view — early. Further
  /// `Next` calls return false.
  void Close();

  State state() const;

  /// The `Database::generation()` the cursor pinned at `Open` (0 before
  /// opening). The rows this cursor delivers are exactly the statement's
  /// answers over that generation's view.
  uint64_t generation() const;

  /// Why the cursor failed / what was prepared (copied from the
  /// statement, possibly extended with execution-time codes).
  const QueryDiagnostics& diagnostics() const;

  // Row access — valid after `Next` returned true --------------------

  /// Number of projected columns.
  std::size_t width() const;

  /// Header of column `col`, display form ("?x").
  const std::string& VariableName(std::size_t col) const;

  /// True iff column `col` is bound in the current row (OPT answers are
  /// partial: unbound columns are genuine results, not errors).
  bool IsBound(std::size_t col) const;

  /// Spelling of the value in column `col`; empty string when unbound.
  std::string Value(std::size_t col) const;

  /// The current row as a mapping over the projected variables.
  const Mapping& Row() const;

  /// Rows delivered so far.
  uint64_t rows() const;

  /// The execution's statistics, or null unless the cursor was executed
  /// with `ExecOptions::collect_stats`. Counters update live while the
  /// cursor runs and are final once it finishes (exhaustion, limit,
  /// cancellation or `Close`); the pointer stays valid for the cursor's
  /// lifetime — copy the struct to keep it longer.
  const ExecStats* stats() const;

 private:
  std::unique_ptr<CursorImpl> impl_;
};

/// Human-readable cursor state name.
const char* CursorStateToString(Cursor::State state);

}  // namespace wdsparql

#endif  // WDSPARQL_PUBLIC_CURSOR_H_
