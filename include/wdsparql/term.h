#ifndef WDSPARQL_PUBLIC_TERM_H_
#define WDSPARQL_PUBLIC_TERM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "wdsparql/check.h"

/// \file
/// Interned RDF terms.
///
/// Following the paper's formalisation, a term is either an IRI from the
/// countable set I or a variable from the disjoint countable set V. All
/// algorithms in the library operate on dense 32-bit `TermId`s; the string
/// spelling lives only in the `TermPool`. Variables are distinguished from
/// IRIs by the top bit of the id so that hot loops never consult the pool.

namespace wdsparql {

/// Interned identifier of an IRI or variable.
using TermId = uint32_t;

/// Bit flag marking variable ids (set) versus IRI ids (clear).
inline constexpr TermId kVariableBit = 0x80000000u;

/// True iff `t` is a variable id.
inline bool IsVariable(TermId t) { return (t & kVariableBit) != 0; }

/// True iff `t` is an IRI id.
inline bool IsIri(TermId t) { return (t & kVariableBit) == 0; }

/// Dense index of a term within its kind (strips the variable bit).
inline uint32_t TermIndex(TermId t) { return t & ~kVariableBit; }

/// Intern table mapping IRI/variable spellings to `TermId`s and back.
///
/// A single pool is shared by an RDF graph, the queries evaluated over
/// it, and all derived t-graphs, so that equal spellings compare equal by
/// id. The pool can mint fresh variables (guaranteed distinct from every
/// interned spelling), which the domination-width machinery uses for the
/// variable renamings `rho_Delta`.
class TermPool {
 public:
  TermPool() = default;

  // The pool is referenced by id from many structures; accidental copies
  // would silently fork the intern table.
  TermPool(const TermPool&) = delete;
  TermPool& operator=(const TermPool&) = delete;

  /// Interns an IRI spelling (without angle brackets) and returns its id.
  TermId InternIri(std::string_view spelling);

  /// Interns a variable by name (without the leading '?').
  TermId InternVariable(std::string_view name);

  /// Looks an IRI spelling up WITHOUT interning it: nullopt if never
  /// interned. Use on probe/delete paths so misses do not grow the pool.
  std::optional<TermId> FindIri(std::string_view spelling) const;

  /// Looks a variable name up WITHOUT interning it.
  std::optional<TermId> FindVariable(std::string_view name) const;

  /// Mints a variable guaranteed distinct from all interned spellings,
  /// named "<hint>#<counter>". Used for renaming to fresh variables.
  TermId FreshVariable(std::string_view hint);

  /// Returns the spelling of `t` (no '?' prefix, no angle brackets).
  std::string_view Spelling(TermId t) const;

  /// Renders `t` for display: variables as "?name", IRIs verbatim.
  std::string ToDisplayString(TermId t) const;

  /// Renders `t` so the pattern parser can read it back: variables as
  /// "?name", IRIs bare when identifier-shaped and '<'-quoted otherwise.
  std::string ToParsableString(TermId t) const;

  /// Number of interned IRIs.
  std::size_t NumIris() const { return iri_spellings_.size(); }
  /// Number of interned variables (including fresh ones).
  std::size_t NumVariables() const { return var_spellings_.size(); }

 private:
  std::unordered_map<std::string, TermId> iri_ids_;
  std::unordered_map<std::string, TermId> var_ids_;
  std::vector<std::string> iri_spellings_;
  std::vector<std::string> var_spellings_;
  uint64_t fresh_counter_ = 0;
};

}  // namespace wdsparql

#endif  // WDSPARQL_PUBLIC_TERM_H_
