#ifndef WDSPARQL_PUBLIC_TERM_H_
#define WDSPARQL_PUBLIC_TERM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "wdsparql/check.h"

/// \file
/// Interned RDF terms.
///
/// Following the paper's formalisation, a term is either an IRI from the
/// countable set I or a variable from the disjoint countable set V. All
/// algorithms in the library operate on dense 32-bit `TermId`s; the string
/// spelling lives only in the `TermPool`. Variables are distinguished from
/// IRIs by the top bit of the id so that hot loops never consult the pool.

namespace wdsparql {

/// Interned identifier of an IRI or variable.
using TermId = uint32_t;

/// Bit flag marking variable ids (set) versus IRI ids (clear).
inline constexpr TermId kVariableBit = 0x80000000u;

/// True iff `t` is a variable id.
inline bool IsVariable(TermId t) { return (t & kVariableBit) != 0; }

/// True iff `t` is an IRI id.
inline bool IsIri(TermId t) { return (t & kVariableBit) == 0; }

/// Dense index of a term within its kind (strips the variable bit).
inline uint32_t TermIndex(TermId t) { return t & ~kVariableBit; }

/// Intern table mapping IRI/variable spellings to `TermId`s and back.
///
/// A single pool is shared by an RDF graph, the queries evaluated over
/// it, and all derived t-graphs, so that equal spellings compare equal by
/// id. The pool can mint fresh variables (guaranteed distinct from every
/// interned spelling), which the domination-width machinery uses for the
/// variable renamings `rho_Delta`.
///
/// Thread-safety: fully internally synchronised, tuned for the serving
/// path. Interning (`InternIri`, `InternVariable`, `FreshVariable`) and
/// map lookups (`FindIri`, `FindVariable`) take a short mutex; spelling
/// reads (`Spelling`, `ToDisplayString`, …) are lock-free, so cursor
/// `Value()` calls on many reader threads never contend. The storage
/// behind a spelling is append-only and address-stable: a returned
/// `string_view` stays valid for the pool's whole lifetime. A reader may
/// resolve any `TermId` it legitimately obtained (i.e. that reached it
/// through a published read view, a prepared statement, or its own
/// intern call); ids guessed ahead of publication are a logic error.
class TermPool {
 public:
  TermPool() = default;

  // The pool is referenced by id from many structures; accidental copies
  // would silently fork the intern table.
  TermPool(const TermPool&) = delete;
  TermPool& operator=(const TermPool&) = delete;

  /// Interns an IRI spelling (without angle brackets) and returns its id.
  TermId InternIri(std::string_view spelling);

  /// Interns a variable by name (without the leading '?').
  TermId InternVariable(std::string_view name);

  /// Looks an IRI spelling up WITHOUT interning it: nullopt if never
  /// interned. Use on probe/delete paths so misses do not grow the pool.
  std::optional<TermId> FindIri(std::string_view spelling) const;

  /// Looks a variable name up WITHOUT interning it.
  std::optional<TermId> FindVariable(std::string_view name) const;

  /// Mints a variable guaranteed distinct from all interned spellings,
  /// named "<hint>#<counter>". Used for renaming to fresh variables.
  TermId FreshVariable(std::string_view hint);

  /// Returns the spelling of `t` (no '?' prefix, no angle brackets).
  /// Lock-free; the view stays valid for the pool's lifetime.
  std::string_view Spelling(TermId t) const;

  /// Renders `t` for display: variables as "?name", IRIs verbatim.
  std::string ToDisplayString(TermId t) const;

  /// Renders `t` so the pattern parser can read it back: variables as
  /// "?name", IRIs bare when identifier-shaped and '<'-quoted otherwise.
  std::string ToParsableString(TermId t) const;

  /// Number of interned IRIs.
  std::size_t NumIris() const { return iri_spellings_.size(); }
  /// Number of interned variables (including fresh ones).
  std::size_t NumVariables() const { return var_spellings_.size(); }

 private:
  /// Interns a variable; the caller holds `mutex_`.
  TermId InternVariableLocked(std::string&& name);

  /// Append-only spelling storage with lock-free reads. Spellings live
  /// in fixed-size chunks whose element addresses never change; the
  /// chunk directory grows by swapping in a copied successor, never by
  /// reallocating under a reader. `At(i)` is safe on any thread for any
  /// `i` that was appended before the reader learned of it through a
  /// release/acquire edge (the pool's own size counter provides one:
  /// the writer stores it with release after constructing the slot).
  class SpellingTable {
   public:
    /// Appends a spelling; single writer (callers hold the pool mutex).
    /// Returns the new index.
    uint32_t Append(std::string_view s) {
      std::size_t n = size_.load(std::memory_order_relaxed);
      std::size_t chunk_index = n >> kChunkShift;
      std::shared_ptr<const Directory> dir =
          std::atomic_load_explicit(&chunks_, std::memory_order_relaxed);
      if (dir == nullptr || chunk_index == dir->size()) {
        auto grown = std::make_shared<Directory>();
        if (dir != nullptr) *grown = *dir;
        grown->push_back(std::make_shared<Chunk>(kChunkMask + 1));
        std::atomic_store(&chunks_, std::shared_ptr<const Directory>(grown));
        dir = std::move(grown);
      }
      // Construct the slot fully before publishing the new size.
      (*(*dir)[chunk_index])[n & kChunkMask].assign(s.data(), s.size());
      size_.store(n + 1, std::memory_order_release);
      return static_cast<uint32_t>(n);
    }

    /// Lock-free read; fatal on out-of-range indexes.
    std::string_view At(uint32_t index) const {
      WDSPARQL_CHECK(index < size_.load(std::memory_order_acquire));
      std::shared_ptr<const Directory> dir =
          std::atomic_load_explicit(&chunks_, std::memory_order_acquire);
      return (*(*dir)[index >> kChunkShift])[index & kChunkMask];
    }

    std::size_t size() const { return size_.load(std::memory_order_acquire); }

   private:
    static constexpr std::size_t kChunkShift = 10;  // 1024 spellings/chunk.
    static constexpr std::size_t kChunkMask = (1u << kChunkShift) - 1;
    using Chunk = std::vector<std::string>;  // Sized once, never resized.
    using Directory = std::vector<std::shared_ptr<Chunk>>;

    std::shared_ptr<const Directory> chunks_;  // Atomic access only.
    std::atomic<std::size_t> size_{0};
  };

  std::unordered_map<std::string, TermId> iri_ids_;
  std::unordered_map<std::string, TermId> var_ids_;
  SpellingTable iri_spellings_;
  SpellingTable var_spellings_;
  uint64_t fresh_counter_ = 0;
  mutable std::mutex mutex_;  // Guards the maps and fresh_counter_.
};

}  // namespace wdsparql

#endif  // WDSPARQL_PUBLIC_TERM_H_
