#ifndef WDSPARQL_PUBLIC_TRIPLE_H_
#define WDSPARQL_PUBLIC_TRIPLE_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <functional>
#include <vector>

#include "wdsparql/term.h"
#include "wdsparql/hash.h"

/// \file
/// Triples and triple patterns.
///
/// A `Triple` is a tuple in (I u V)^3. When every position is an IRI it is
/// an RDF triple; otherwise it is a SPARQL triple pattern. The same struct
/// serves both roles (the paper's t-graphs are sets of triple patterns and
/// RDF graphs are exactly the ground ones).
///
/// Thread-safety: `Triple` is a trivially copyable value type with no
/// shared state — share const instances freely, copy for mutation.

namespace wdsparql {

/// A triple (subject, predicate, object) over interned terms.
struct Triple {
  TermId subject;
  TermId predicate;
  TermId object;

  Triple() : subject(0), predicate(0), object(0) {}
  Triple(TermId s, TermId p, TermId o) : subject(s), predicate(p), object(o) {}

  /// Position access: 0=subject, 1=predicate, 2=object.
  TermId operator[](int pos) const {
    WDSPARQL_DCHECK(pos >= 0 && pos < 3);
    return pos == 0 ? subject : (pos == 1 ? predicate : object);
  }

  /// Sets the term at `pos` (0=subject, 1=predicate, 2=object).
  void Set(int pos, TermId t) {
    WDSPARQL_DCHECK(pos >= 0 && pos < 3);
    (pos == 0 ? subject : (pos == 1 ? predicate : object)) = t;
  }

  /// True iff no position holds a variable (an RDF triple).
  bool IsGround() const {
    return !IsVariable(subject) && !IsVariable(predicate) && !IsVariable(object);
  }

  /// The distinct variables of the triple, in position order.
  std::vector<TermId> Variables() const {
    std::vector<TermId> out;
    for (int pos = 0; pos < 3; ++pos) {
      TermId t = (*this)[pos];
      if (IsVariable(t) && std::find(out.begin(), out.end(), t) == out.end()) {
        out.push_back(t);
      }
    }
    return out;
  }

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.subject == b.subject && a.predicate == b.predicate && a.object == b.object;
  }
  friend bool operator!=(const Triple& a, const Triple& b) { return !(a == b); }
  friend bool operator<(const Triple& a, const Triple& b) {
    return std::array<TermId, 3>{a.subject, a.predicate, a.object} <
           std::array<TermId, 3>{b.subject, b.predicate, b.object};
  }
};

/// Hash functor for Triple (for unordered containers).
struct TripleHash {
  std::size_t operator()(const Triple& t) const {
    std::size_t seed = std::hash<TermId>{}(t.subject);
    HashCombine(seed, std::hash<TermId>{}(t.predicate));
    HashCombine(seed, std::hash<TermId>{}(t.object));
    return seed;
  }
};

}  // namespace wdsparql

#endif  // WDSPARQL_PUBLIC_TRIPLE_H_
