#ifndef WDSPARQL_PUBLIC_DATABASE_H_
#define WDSPARQL_PUBLIC_DATABASE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "wdsparql/metrics.h"
#include "wdsparql/session.h"
#include "wdsparql/snapshot.h"
#include "wdsparql/status.h"
#include "wdsparql/storage.h"
#include "wdsparql/term.h"
#include "wdsparql/trace.h"
#include "wdsparql/triple.h"
#include "wdsparql/write_batch.h"

/// \file
/// The owning database object.
///
/// `Database` is the front door of the engine: it owns the term pool
/// (optionally shared), the ground graph, and the dictionary-encoded
/// SPO/POS/OSP permutation indexes, and it keeps the indexes maintained
/// *incrementally* under mutation — inserts land in small sorted delta
/// runs and deletions in a tombstone set, folded into the base runs by a
/// periodic linear merge instead of a rebuild-from-scratch (the LSM
/// discipline of production stores). Reads go through `Session`s
/// (cheap, concurrent) and pull-based `Cursor`s.
///
/// Threading model (single writer / many readers; the full contract is
/// docs/CONCURRENCY.md): at most one thread mutates the database at a
/// time; any number of threads may concurrently prepare statements and
/// run cursors on the default indexed backend *while the writer works*.
/// Every mutation publishes a fresh immutable read view; cursors pin
/// the current view when they open and keep it — readers never block
/// the writer and never observe a half-applied mutation. The exceptions
/// are `graph()`, `store()` and naive-backend execution, which read
/// live writer-side state and therefore require that no concurrent
/// mutation happens; and `Save`/`Checkpoint`/`Compact`, which are
/// writer-side calls. The database must outlive every session,
/// statement and cursor derived from it.
///
/// ```
/// Database db;
/// WriteBatch batch;
/// batch.Add("alice", "knows", "bob");
/// batch.Add("bob", "email", "bob@example.org");
/// db.Apply(std::move(batch));  // One delta build, one publish.
/// Session session = db.OpenSession();
/// Statement stmt = session.Prepare("(?x knows ?y) OPT (?y email ?e)");
/// Cursor cursor = stmt.Execute();
/// while (cursor.Next()) { /* cursor.Row(), cursor.Value(col) */ }
/// ```

namespace wdsparql {

class RdfGraph;      // Internal storage; see rdf/graph.h.
class IndexedStore;  // Internal storage; see engine/indexed_store.h.
struct DatabaseImpl;

/// Construction-time tuning.
struct DatabaseOptions {
  /// Delta size (pending inserts + tombstones) that triggers an
  /// automatic merge into the base permutation runs. 0 disables
  /// automatic merging (callers then `Compact()` explicitly).
  std::size_t merge_threshold = 4096;

  /// Span capacity of the flight-recorder trace ring (rounded up to a
  /// power of two; see wdsparql/trace.h). 0 disables tracing entirely —
  /// `trace_recorder()` returns null and every instrumentation site
  /// reduces to one branch.
  std::size_t trace_capacity = TraceRecorder::kDefaultCapacity;
};

/// An owning, mutable triple database with incremental index
/// maintenance. Move-only.
class Database {
 public:
  /// A database owning a private `TermPool`.
  explicit Database(const DatabaseOptions& options = {});

  /// A database interning into an external pool (must outlive the
  /// database) — lets queries, graphs and databases share spellings.
  explicit Database(TermPool* pool, const DatabaseOptions& options = {});

  ~Database();
  Database(Database&&) noexcept;
  Database& operator=(Database&&) noexcept;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Persistence -------------------------------------------------------

  /// Opens the snapshot at `path` (see wdsparql/storage.h and
  /// docs/FILE_FORMAT.md). The file is memory-mapped (with a buffered
  /// fallback) and its term heap and SPO/POS/OSP runs are consumed in
  /// place, so open cost is validation + O(terms), not O(dataset).
  /// With `OpenOptions::durability == kWal` the sibling `<path>.wal` is
  /// replayed (torn tail discarded) and subsequent mutations are logged
  /// before they touch the in-memory delta. Corrupt files yield
  /// `kCorruption`, missing ones `kNotFound` (unless `create_if_missing`
  /// with kWal starts an empty database).
  static Result<Database> Open(const std::string& path,
                               const OpenOptions& options = {});

  /// Serializes the current content to `path` as a single-file snapshot
  /// (atomic rename). Folds any pending delta first (like `Compact`, so
  /// open cursors are invalidated when a delta existed).
  Status Save(const std::string& path);

  /// Folds base + delta into a fresh snapshot at the path this database
  /// was opened from, then truncates the write-ahead log. Requires a
  /// database from `Open` (`kFailedPrecondition` otherwise).
  Status Checkpoint();

  /// The sticky status of the storage layer: OK while healthy, or the
  /// first write-ahead-log failure after which mutations return false
  /// without being applied (they were never made durable). Thread-safe:
  /// any thread may poll health while the writer works.
  Status storage_status() const;

  // Mutation (writer side: one mutating thread at a time) -------------
  // Every effective mutation (and non-empty `Compact`) publishes a new
  // read view and bumps `generation()`; a no-op — duplicate insert,
  // absent removal, empty or fully-cancelling batch — publishes
  // nothing. Open cursors are *not* invalidated: they keep the view
  // they pinned at `Open` and continue to enumerate the database
  // exactly as it was then (naive-backend cursors are the exception —
  // see wdsparql/cursor.h).

  /// Applies `batch` atomically: the net effect of its operations (a
  /// later op on the same triple supersedes an earlier one; ops that
  /// match the current state drop out) lands in ONE merged
  /// copy-on-write delta build, ONE view publish, and — under
  /// `Durability::kWal` — ONE CRC-framed WAL group record, replayed
  /// all-or-nothing on reopen. A batch with empty net effect is a
  /// complete no-op: no publish, no WAL record, no `generation()` bump.
  /// On a WAL append failure nothing is applied and the error latches
  /// in `storage_status()`. `result`, when non-null, receives the net
  /// counts. This is THE bulk-ingest path: per-triple cost is amortised
  /// over the batch (see bench_e15_batch).
  Status Apply(WriteBatch&& batch, ApplyResult* result = nullptr,
               TraceContext* trace = nullptr);

  /// Inserts a ground triple; returns true iff newly inserted (false for
  /// duplicates and for triples containing variables). Equivalent to —
  /// and implemented as — applying a one-element batch.
  bool AddTriple(const Triple& t);

  /// Interns the spellings and inserts the triple.
  bool AddTriple(std::string_view s, std::string_view p, std::string_view o);

  /// Removes a triple; returns true iff it was present.
  bool RemoveTriple(const Triple& t);
  bool RemoveTriple(std::string_view s, std::string_view p, std::string_view o);

  /// Parses N-Triples text (see rdf/ntriples.h for the accepted subset)
  /// and applies it as ONE `WriteBatch` (single delta build, single
  /// publish, single WAL group). Atomic on parse errors: either the
  /// whole text loads or nothing does.
  Status LoadNTriples(std::string_view text);

  /// Reads the file at `path` and loads it as `LoadNTriples`. With
  /// `batch_size > 0` the file is streamed and applied in batches of
  /// that many triples (bounding peak memory and WAL group size at the
  /// price of parse-error atomicity: batches applied before the error
  /// stay applied); `batch_size == 0` loads the whole file as one
  /// atomic batch.
  Status LoadNTriplesFile(const std::string& path, std::size_t batch_size = 0);

  /// Per-batch progress callback for the streaming loader: invoked after
  /// every committed batch with the triples parsed so far and the size
  /// of the batch just applied (ingest tooling reports throughput from
  /// these without re-deriving the streaming loop).
  using LoadProgress =
      std::function<void(std::size_t triples_loaded, std::size_t batch_triples)>;

  /// As `LoadNTriplesFile(path, batch_size)`, reporting progress after
  /// every committed batch (including the final partial one). Requires
  /// `batch_size > 0`.
  Status LoadNTriplesFile(const std::string& path, std::size_t batch_size,
                          const LoadProgress& progress);

  /// Folds pending delta runs and tombstones into the base permutation
  /// runs now. Idempotent; changes no query results. Pinned views keep
  /// the pre-merge runs alive, so open cursors are unaffected.
  void Compact();

  // Inspection (safe on any thread, concurrent with the writer) -------

  /// Number of triples (of the latest published view).
  std::size_t size() const;
  bool empty() const { return size() == 0; }

  /// True iff the ground triple is present (in the latest view).
  bool Contains(const Triple& t) const;

  /// Pending un-merged index work (delta inserts + tombstones).
  std::size_t pending_delta() const;

  /// The view generation: the monotonic publish counter of the latest
  /// read view. Every successful mutation and every (non-empty)
  /// compaction publishes at least one new view, so two equal
  /// generations bracket an unchanged database; cursors record the
  /// generation of the view they pinned (`Cursor::generation()`). The
  /// counter may advance by more than one across a single mutation
  /// (e.g. a threshold merge publishes, then the mutation publishes).
  uint64_t generation() const;

  /// The term pool. Const access still permits interning (the pool is an
  /// append-only cache), which `Session::Prepare` relies on. The pool
  /// synchronises internally: interning and spelling lookups are safe
  /// from any thread.
  TermPool& pool() const;

  /// The engine-wide metrics registry: always-on counters, gauges and
  /// histograms covering the write path, storage and the view
  /// lifecycle (see wdsparql/metrics.h for the cost model and
  /// docs/OBSERVABILITY.md for the instrument glossary). Thread-safe;
  /// lives as long as the database.
  MetricsRegistry& metrics() const;

  /// Renders every registry instrument (`metrics().Dump(format)`).
  std::string DumpMetrics(MetricsFormat format = MetricsFormat::kText) const;

  /// The flight-recorder trace ring (see wdsparql/trace.h), or null when
  /// `DatabaseOptions::trace_capacity == 0`. Thread-safe; lives as long
  /// as the database. Construct a `TraceContext` over it per request and
  /// hand that to `ExecOptions::trace` / `Apply`.
  TraceRecorder* trace_recorder() const;

  /// The most recent complete traces as JSON
  /// (`trace_recorder()->DumpJson(max_traces)`; `{"traces":[]}` when
  /// tracing is disabled).
  std::string DumpTraces(std::size_t max_traces = 16) const;

  // Reading -----------------------------------------------------------

  /// Opens a session with the given execution options. Sessions are
  /// cheap value objects — open one per thread or per request.
  Session OpenSession(const SessionOptions& options = {}) const;

  /// Pins the current published state as a user-held `Snapshot` for
  /// repeatable reads across many statements and cursors (see
  /// wdsparql/snapshot.h for the lifetime rules). One atomic load plus
  /// a refcount — callable from any thread, concurrent with the writer.
  Snapshot GetSnapshot() const;

  /// \internal Storage accessors for in-tree tooling (the deprecated
  /// QueryEngine facade, benchmarks, width machinery). Not part of the
  /// stable surface, and NOT safe concurrently with a writer: they
  /// expose live writer-side state rather than a pinned view.
  const RdfGraph& graph() const;
  const IndexedStore& store() const;

 private:
  friend struct DatabaseImpl;
  std::unique_ptr<DatabaseImpl> impl_;
};

}  // namespace wdsparql

#endif  // WDSPARQL_PUBLIC_DATABASE_H_
