#ifndef WDSPARQL_PUBLIC_MAPPING_H_
#define WDSPARQL_PUBLIC_MAPPING_H_

#include <optional>
#include <string>
#include <vector>

#include "wdsparql/term.h"
#include "wdsparql/triple.h"
#include "wdsparql/hash.h"

/// \file
/// SPARQL mappings.
///
/// A mapping mu is a partial function from variables V to IRIs I
/// (Section 2 of the paper). Mappings are the query answers: the
/// evaluation of a graph pattern over an RDF graph is a set of mappings.
/// The representation is a vector of (variable, IRI) bindings kept sorted
/// by variable id, so equality, hashing and compatibility are linear scans.
///
/// Thread-safety: a plain value type (a vector of id pairs). Distinct
/// instances are independent; share const instances freely. Rendering
/// (`ToString`) resolves spellings through the pool's lock-free reads.

namespace wdsparql {

/// A partial function from variables to IRIs.
class Mapping {
 public:
  /// The empty mapping (empty domain).
  Mapping() = default;

  /// Binds `var` to `iri`. Fatal if `var` is not a variable id or `iri`
  /// is not an IRI id. Returns false iff `var` was already bound to a
  /// different IRI (the mapping is unchanged in that case).
  bool Bind(TermId var, TermId iri);

  /// The value of `var`, or nullopt if outside the domain.
  std::optional<TermId> Get(TermId var) const;

  /// True iff `var` is in dom(mu).
  bool IsDefinedOn(TermId var) const { return Get(var).has_value(); }

  /// dom(mu), ascending by variable id.
  std::vector<TermId> Domain() const;

  /// Number of bound variables.
  std::size_t size() const { return bindings_.size(); }
  /// True iff the domain is empty.
  bool empty() const { return bindings_.empty(); }

  /// The sorted (variable, IRI) pairs.
  const std::vector<std::pair<TermId, TermId>>& bindings() const { return bindings_; }

  /// True iff `a` and `b` agree on every shared variable.
  static bool Compatible(const Mapping& a, const Mapping& b);

  /// The union a ∪ b if `a` and `b` are compatible, else nullopt.
  static std::optional<Mapping> Union(const Mapping& a, const Mapping& b);

  /// True iff dom(a) ⊆ dom(b) and they agree on dom(a) (i.e. a ⊆ b as a
  /// set of bindings).
  static bool IsSubmapping(const Mapping& a, const Mapping& b);

  /// The restriction of this mapping to the variables in `vars`.
  Mapping RestrictedTo(const std::vector<TermId>& vars) const;

  /// mu(t): replaces every variable of `t` by its image. Fatal unless
  /// vars(t) ⊆ dom(mu).
  Triple Apply(const Triple& t) const;

  /// Like Apply but leaves unbound variables in place (used for partial
  /// instantiation of t-graphs).
  Triple ApplyPartial(const Triple& t) const;

  /// Renders as "{?x -> a, ?y -> b}" using `pool` spellings.
  std::string ToString(const TermPool& pool) const;

  friend bool operator==(const Mapping& a, const Mapping& b) {
    return a.bindings_ == b.bindings_;
  }
  friend bool operator!=(const Mapping& a, const Mapping& b) { return !(a == b); }
  friend bool operator<(const Mapping& a, const Mapping& b) {
    return a.bindings_ < b.bindings_;
  }

 private:
  // Sorted by variable id; values are IRI ids.
  std::vector<std::pair<TermId, TermId>> bindings_;
};

/// Hash functor for Mapping.
struct MappingHash {
  std::size_t operator()(const Mapping& m) const {
    std::size_t seed = 0x12345;
    for (const auto& [var, iri] : m.bindings()) {
      HashCombine(seed, var);
      HashCombine(seed, iri);
    }
    return seed;
  }
};

}  // namespace wdsparql

#endif  // WDSPARQL_PUBLIC_MAPPING_H_
