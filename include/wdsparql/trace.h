// Request-scoped tracing: a per-Database flight recorder.
//
// The model mirrors the ExecStats discipline from the metrics layer: the
// execution hot path never touches shared state. A request builds its spans
// in a request-local TraceContext (plain vector writes, no atomics), and the
// whole trace is published into the Database's TraceRecorder ring buffer in
// one shot when the context flushes. Readers (`/debug/trace`, tests) walk the
// ring lock-free and reconstruct only traces that survived intact — a trace
// partially overwritten by newer publishes is dropped, never half-reported.
//
// Disabled path: a TraceContext with no recorder (or a null TraceContext
// pointer in ExecOptions) costs one predictable branch per instrumentation
// site and performs no clock reads, no allocation, and no atomic operations.
#ifndef WDSPARQL_PUBLIC_TRACE_H_
#define WDSPARQL_PUBLIC_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace wdsparql {

// One fixed-size span record. POD so the ring buffer can publish it as a
// sequence of relaxed word stores guarded by a per-slot sequence number.
struct TraceSpan {
  static constexpr std::size_t kMaxAnnotations = 4;

  std::uint64_t trace_id = 0;
  std::uint64_t start_ns = 0;     // offset from the recorder's epoch
  std::uint64_t duration_ns = 0;  // kOpenDuration while the span is open
  std::uint32_t span_id = 0;      // 1-based within the trace
  std::uint32_t parent_id = 0;    // 0 = no parent (the trace root)
  std::uint16_t trace_spans = 0;  // root span only: span count of the flush
  std::uint16_t annotation_count = 0;
  char name[20] = {};             // NUL-terminated, silently truncated

  struct Annotation {
    char key[12] = {};
    char value[20] = {};
  };
  Annotation annotations[kMaxAnnotations];

  static constexpr std::uint64_t kOpenDuration = ~std::uint64_t{0};

  void SetName(const char* n);
  void Annotate(const char* key, std::string_view value);
  void Annotate(const char* key, std::uint64_t value);
};

static_assert(sizeof(TraceSpan) % sizeof(std::uint64_t) == 0,
              "TraceSpan must be word-granular for the seqlock ring");

// Lock-free multi-producer flight recorder. Fixed capacity (rounded up to a
// power of two); old spans are overwritten by new publishes. Each slot
// carries a sequence number derived from its absolute write position, so a
// reader can detect torn or recycled slots without blocking writers.
class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit TraceRecorder(std::size_t capacity_spans = kDefaultCapacity);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  std::size_t capacity() const { return capacity_; }

  // Fresh trace id; never returns 0.
  std::uint64_t NewTraceId();

  // Nanoseconds since this recorder was constructed (steady clock).
  std::uint64_t NowNs() const;

  // Publishes `count` spans contiguously. Called once per trace flush.
  void Publish(const TraceSpan* spans, std::size_t count);

  // Reconstructs up to `max_traces` most-recent complete traces,
  // newest first. Each trace's spans are ordered by span id.
  std::vector<std::vector<TraceSpan>> CollectTraces(
      std::size_t max_traces) const;

  // {"traces":[{"trace_id":...,"spans":[...]}]}, newest first.
  std::string DumpJson(std::size_t max_traces) const;

 private:
  static constexpr std::size_t kSpanWords =
      sizeof(TraceSpan) / sizeof(std::uint64_t);

  struct Slot {
    // Even `2 * pos + 2` once the span written at absolute position `pos`
    // is complete; odd while a writer owns the slot.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> words[kSpanWords];
  };

  std::size_t capacity_;  // power of two
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};  // next absolute slot position
  std::atomic<std::uint64_t> next_trace_id_{1};
  std::chrono::steady_clock::time_point epoch_;
};

// Request-local span builder. Single-threaded; must outlive any Cursor or
// Apply call it is handed to. All operations are no-ops when constructed
// without a recorder, so call sites need no null checks beyond holding a
// possibly-disabled context.
class TraceContext {
 public:
  // Spans beyond this per-trace cap are dropped (the root is annotated
  // with the drop count). Bounds both request memory and ring pollution.
  static constexpr std::size_t kMaxSpans = 512;

  TraceContext() = default;
  explicit TraceContext(TraceRecorder* recorder);
  TraceContext(TraceRecorder* recorder, std::uint64_t trace_id);
  ~TraceContext();

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;
  TraceContext(TraceContext&& other) noexcept;
  TraceContext& operator=(TraceContext&& other) noexcept;

  bool enabled() const { return recorder_ != nullptr; }
  std::uint64_t trace_id() const { return trace_id_; }

  // Span id of the first (root) span, or 0 if none started yet. Layers that
  // add top-level work to a caller's trace parent to this.
  std::uint32_t root() const { return spans_.empty() ? 0 : 1; }

  std::uint64_t NowNs() const;

  // Starts a span; returns its id (0 when disabled or over the cap — all
  // other operations accept 0 as "no span").
  std::uint32_t StartSpan(const char* name, std::uint32_t parent = 0);
  void EndSpan(std::uint32_t span);

  // Records an already-measured interval (e.g. parse/plan timers that ran
  // before the context reached this layer).
  std::uint32_t AddCompleteSpan(const char* name, std::uint32_t parent,
                                std::uint64_t start_ns,
                                std::uint64_t duration_ns);

  void Annotate(std::uint32_t span, const char* key, std::string_view value);
  void Annotate(std::uint32_t span, const char* key, std::uint64_t value);

  // Ends every open span and publishes the whole trace to the recorder.
  // Idempotent; runs from the destructor if not called explicitly.
  void Flush();

  // Spans accumulated so far (open spans have duration kOpenDuration).
  const std::vector<TraceSpan>& spans() const { return spans_; }

  // JSON array of the spans accumulated so far; open spans are rendered
  // with their duration up to now. Usable before Flush() for inline
  // `?trace=1` responses.
  std::string SpansJson() const;

 private:
  TraceRecorder* recorder_ = nullptr;
  std::uint64_t trace_id_ = 0;
  std::uint32_t dropped_ = 0;
  bool flushed_ = false;
  std::vector<TraceSpan> spans_;
};

// RAII span: starts on construction (if the context traces), ends on scope
// exit. `ctx` may be null.
class ScopedTraceSpan {
 public:
  ScopedTraceSpan(TraceContext* ctx, const char* name, std::uint32_t parent = 0)
      : ctx_(ctx),
        id_(ctx != nullptr && ctx->enabled() ? ctx->StartSpan(name, parent)
                                             : 0) {}
  ~ScopedTraceSpan() {
    if (id_ != 0) ctx_->EndSpan(id_);
  }

  ScopedTraceSpan(const ScopedTraceSpan&) = delete;
  ScopedTraceSpan& operator=(const ScopedTraceSpan&) = delete;

  std::uint32_t id() const { return id_; }

  void Annotate(const char* key, std::string_view value) {
    if (id_ != 0) ctx_->Annotate(id_, key, value);
  }
  void Annotate(const char* key, std::uint64_t value) {
    if (id_ != 0) ctx_->Annotate(id_, key, value);
  }

 private:
  TraceContext* ctx_;
  std::uint32_t id_;
};

}  // namespace wdsparql

#endif  // WDSPARQL_PUBLIC_TRACE_H_
