#ifndef WDSPARQL_PUBLIC_BINDING_TABLE_H_
#define WDSPARQL_PUBLIC_BINDING_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

/// \file
/// Columnar query results.
///
/// `BindingTable` is the batch-consumer counterpart of the row-at-a-time
/// `Cursor`: one dictionary-encoded column per projected variable, cells
/// holding dense ids into a table-local value dictionary (the layout of
/// Arrow dictionary arrays and of result blocks in columnar engines).
/// Unbound cells — SPARQL's partial answers — carry the `kUnbound`
/// sentinel. The table owns its spellings outright, so it outlives the
/// database, session and cursor that produced it — and, being fully
/// self-contained, a built table may be read from any number of threads
/// (building one remains a single-thread affair).

namespace wdsparql {

/// A columnar table of variable bindings.
class BindingTable {
 public:
  /// Cell sentinel: the variable is unbound in this row.
  static constexpr uint32_t kUnbound = 0xFFFFFFFFu;

  BindingTable() = default;

  /// Creates an empty table with the given column headers (display form,
  /// e.g. "?x").
  explicit BindingTable(std::vector<std::string> column_names);

  /// Appends a row; `cells` must have one entry per column, nullopt for
  /// unbound. Values are interned into the table-local dictionary.
  void AppendRow(const std::vector<std::optional<std::string_view>>& cells);

  std::size_t NumRows() const { return num_rows_; }
  std::size_t NumColumns() const { return column_names_.size(); }

  /// The header of column `col` (e.g. "?x").
  const std::string& ColumnName(std::size_t col) const { return column_names_.at(col); }

  /// The index of the column headed `name` (with or without the leading
  /// '?'), or nullopt.
  std::optional<std::size_t> ColumnIndex(std::string_view name) const;

  /// True iff the cell holds a value.
  bool IsBound(std::size_t row, std::size_t col) const {
    return CellId(row, col) != kUnbound;
  }

  /// The table-local value id of a cell, or `kUnbound`.
  uint32_t CellId(std::size_t row, std::size_t col) const {
    return columns_.at(col).at(row);
  }

  /// The spelling of a cell; empty for unbound cells.
  const std::string& Value(std::size_t row, std::size_t col) const;

  /// One whole column of cell ids — the batch access path.
  const std::vector<uint32_t>& Column(std::size_t col) const { return columns_.at(col); }

  /// The table-local value dictionary (index == cell id).
  const std::vector<std::string>& values() const { return values_; }

  /// Renders the table in a compact aligned ASCII form (for tools and
  /// examples; not a stable format).
  std::string ToString() const;

 private:
  std::vector<std::string> column_names_;
  std::vector<std::vector<uint32_t>> columns_;  // [col][row] -> value id.
  std::vector<std::string> values_;             // Local dictionary.
  std::unordered_map<std::string, uint32_t> value_ids_;
  std::size_t num_rows_ = 0;
};

}  // namespace wdsparql

#endif  // WDSPARQL_PUBLIC_BINDING_TABLE_H_
