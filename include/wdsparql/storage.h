#ifndef WDSPARQL_PUBLIC_STORAGE_H_
#define WDSPARQL_PUBLIC_STORAGE_H_

#include <cstddef>
#include <cstdint>

/// \file
/// Persistence options for `Database::Open` / `Save` / `Checkpoint`.
///
/// A database persists as a versioned, checksummed **single-file
/// snapshot** (the term-pool string heap, the term dictionary, and the
/// three sorted SPO/POS/OSP permutation runs laid out as page-aligned
/// sections behind a section directory — see docs/FILE_FORMAT.md) plus,
/// when opened with `Durability::kWal`, a **write-ahead log** sitting
/// next to it (`<snapshot>.wal`). Opening a snapshot memory-maps it and
/// consumes the term heap and index runs in place, so reopen cost is
/// O(header + directory + checksum verification), not O(re-parse +
/// re-sort); mutations are framed and CRC-protected in the log before
/// they touch the in-memory delta, and `Database::Checkpoint` folds
/// base + delta into a fresh snapshot (atomic rename) and truncates the
/// log. A torn final log frame — the signature of a crash mid-append —
/// is discarded on open; every earlier acknowledged mutation replays.
///
/// Thread-safety: `Open`, `Save` and `Checkpoint` are writer-side
/// operations (one thread, not concurrent with mutations). Readers on
/// other threads are unaffected throughout: a mapped snapshot stays
/// alive for exactly as long as some pinned read view still borrows
/// from it, even across the checkpoint that supersedes it. The options
/// structs here are plain values.

namespace wdsparql {

/// What `Database::Open` promises about mutations.
enum class Durability {
  /// Read-mostly: mutations live only in memory until an explicit
  /// `Save`/`Checkpoint`. Open never creates or appends files.
  kNone = 0,
  /// Every acknowledged mutation is framed into `<snapshot>.wal` before
  /// the in-memory indexes change, and the log tail is replayed on open.
  kWal = 1,
};

/// When the write-ahead log is flushed to stable storage.
enum class WalSyncMode {
  /// Let the OS schedule writeback (survives process crashes, not power
  /// loss). The default: appends run at memory speed.
  kNone = 0,
  /// fsync after every appended frame (survives power loss; each
  /// mutation pays a device flush).
  kEveryRecord = 1,
};

/// Options for `Database::Open`.
struct OpenOptions {
  /// Mutation durability (see `Durability`).
  Durability durability = Durability::kNone;

  /// WAL flush policy; only consulted when `durability == kWal`.
  WalSyncMode wal_sync = WalSyncMode::kNone;

  /// With `kWal`: start from an empty database when the snapshot file
  /// does not exist yet (the first `Checkpoint` creates it). Without it,
  /// opening a missing snapshot is `kNotFound`.
  bool create_if_missing = false;

  /// Verify the CRC32 of every snapshot section at open. This is a
  /// linear memory-speed pass (still orders of magnitude cheaper than
  /// re-parsing N-Triples); disabling it trusts the file blindly.
  bool verify_checksums = true;

  /// Memory-map the snapshot (the fast path). When false — or when
  /// mapping fails — the file is read into an anonymous buffer instead,
  /// which behaves identically but pays the copy up front.
  bool use_mmap = true;

  /// Delta size (pending inserts + tombstones) that triggers an
  /// automatic merge, as `DatabaseOptions::merge_threshold`.
  std::size_t merge_threshold = 4096;

  /// Flight-recorder span capacity, as `DatabaseOptions::trace_capacity`
  /// (0 disables tracing).
  std::size_t trace_capacity = 4096;
};

namespace storage_format {

/// Snapshot format version written by this library; `Open` rejects
/// newer-versioned files with `kCorruption` rather than misreading them.
/// Version 2 added the six optional cardinality-statistics sections
/// (the optimizer's aggregated counts); version-1 files still open —
/// the statistics are rebuilt lazily on the first Compact.
inline constexpr uint32_t kSnapshotVersion = 2;

/// WAL format version. Version 2 added group frames (one CRC-framed
/// record carrying a whole `WriteBatch`, replayed all-or-nothing);
/// version-1 logs still open and replay, while a version-2 log is
/// rejected loudly by version-1 readers instead of being silently
/// truncated at its first group frame.
inline constexpr uint32_t kWalVersion = 2;

}  // namespace storage_format

}  // namespace wdsparql

#endif  // WDSPARQL_PUBLIC_STORAGE_H_
