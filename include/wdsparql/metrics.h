#ifndef WDSPARQL_PUBLIC_METRICS_H_
#define WDSPARQL_PUBLIC_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

/// \file
/// Engine-wide metrics.
///
/// `MetricsRegistry` is the database's always-on instrument panel: named
/// counters, gauges and exponential-bucket histograms covering the write
/// path (commit sizes, delta-build/WAL-append/fsync durations), storage
/// (checkpoint duration, snapshot bytes, WAL replay facts) and the view
/// lifecycle (live read views, compactions). `Database` owns one
/// registry (`Database::metrics()`) and exports it as text or JSON via
/// `Database::DumpMetrics`.
///
/// Cost model: instruments are updated with relaxed atomics — safe from
/// any thread, TSan-clean, and cheap enough for per-commit paths. The
/// per-*row* enumeration hot path never touches them: cursors count into
/// cursor-local `ExecStats` (see wdsparql/stats.h) and merge into the
/// registry once, when they finish. Lookup by name takes a mutex; call
/// sites cache the returned reference (instrument addresses are stable
/// for the registry's lifetime).

namespace wdsparql {

/// A monotonically increasing counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A gauge: a value that can move both ways (live view count, bytes on
/// disk).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// An exponential-bucket histogram over non-negative integer samples
/// (durations in nanoseconds, sizes in bytes/ops). Bucket `i` counts
/// samples whose value fits in `i` bits: 0, 1, [2,4), [4,8), ... —
/// power-of-2 boundaries, so `Observe` is a bit scan, not a search.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Observe(uint64_t sample) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (sample > seen &&
           !max_.compare_exchange_weak(seen, sample, std::memory_order_relaxed)) {
    }
    buckets_[BucketOf(sample)].fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t mean() const {
    uint64_t n = count();
    return n == 0 ? 0 : sum() / n;
  }
  uint64_t bucket(int i) const { return buckets_[i].load(std::memory_order_relaxed); }

  /// Bucket-interpolated quantile (`0 < q < 1`) over a point-in-time
  /// snapshot of the buckets: finds the bucket holding the q-th ranked
  /// sample and interpolates linearly between its bounds. Exact to within
  /// one power-of-two bucket; returns 0 on an empty histogram.
  double Quantile(double q) const {
    uint64_t snapshot[kBuckets];
    uint64_t total = 0;
    for (int i = 0; i < kBuckets; ++i) {
      snapshot[i] = bucket(i);
      total += snapshot[i];
    }
    if (total == 0) return 0.0;
    const double rank = q * static_cast<double>(total);
    uint64_t cum = 0;
    for (int i = 0; i < kBuckets; ++i) {
      if (snapshot[i] == 0) continue;
      if (static_cast<double>(cum + snapshot[i]) >= rank) {
        if (i == 0) return 0.0;  // bucket 0 holds only the value 0
        const double lo = static_cast<double>(BucketLowerBound(i));
        const double hi = static_cast<double>(BucketLowerBound(i + 1));
        const double within =
            (rank - static_cast<double>(cum)) / static_cast<double>(snapshot[i]);
        return lo + (hi - lo) * within;
      }
      cum += snapshot[i];
    }
    return static_cast<double>(max());
  }

  /// Lower bound of bucket `i` (inclusive): 0, 1, 2, 4, 8, ...
  static uint64_t BucketLowerBound(int i) {
    return i == 0 ? 0 : (uint64_t{1} << (i - 1));
  }

  /// Bucket index of a sample: the number of significant bits.
  static int BucketOf(uint64_t sample) {
    int bits = 0;
    while (sample != 0) {
      ++bits;
      sample >>= 1;
    }
    return bits;
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> buckets_[kBuckets] = {};
};

/// Output flavours of `MetricsRegistry::Dump` / `Database::DumpMetrics`.
enum class MetricsFormat {
  kText,        ///< One line per instrument, sorted by name.
  kJson,        ///< One JSON object keyed by instrument name.
  kPrometheus,  ///< Prometheus text exposition format 0.0.4.
};

/// A named registry of counters, gauges and histograms. Instruments are
/// created on first lookup and live as long as the registry; returned
/// references are stable, so hot call sites look up once and cache.
///
/// Thread-safety: lookups are mutex-guarded; instrument updates are
/// lock-free relaxed atomics. Dumping while writers update is safe (the
/// dump is a relaxed point-in-time read, not a consistent cut).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The counter named `name`, created on first use.
  Counter& counter(const std::string& name);

  /// The gauge named `name`, created on first use.
  Gauge& gauge(const std::string& name);

  /// The histogram named `name`, created on first use.
  Histogram& histogram(const std::string& name);

  /// Every instrument, rendered. Text: `name kind value...` lines,
  /// sorted by name. JSON: `{"name": {...}, ...}`.
  std::string Dump(MetricsFormat format = MetricsFormat::kText) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace wdsparql

#endif  // WDSPARQL_PUBLIC_METRICS_H_
