#ifndef WDSPARQL_PUBLIC_CHECK_H_
#define WDSPARQL_PUBLIC_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Invariant-checking macros.
///
/// The library uses CHECK-style macros (always on, including release
/// builds) for internal invariants whose violation indicates a programming
/// error, and DCHECK for expensive checks enabled only in debug builds.
/// API-level, user-triggerable failures are reported through
/// `wdsparql::Status` instead (see status.h); exceptions are not used.

namespace wdsparql {
namespace internal {

/// Prints a fatal-check diagnostic and aborts the process.
[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace wdsparql

/// Aborts with a diagnostic if `cond` is false. Enabled in all builds.
#define WDSPARQL_CHECK(cond)                                          \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::wdsparql::internal::CheckFailed(__FILE__, __LINE__, #cond);   \
    }                                                                 \
  } while (0)

/// Debug-only variant of WDSPARQL_CHECK.
#ifdef NDEBUG
#define WDSPARQL_DCHECK(cond) \
  do {                        \
  } while (0)
#else
#define WDSPARQL_DCHECK(cond) WDSPARQL_CHECK(cond)
#endif

#endif  // WDSPARQL_PUBLIC_CHECK_H_
