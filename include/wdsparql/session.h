#ifndef WDSPARQL_PUBLIC_SESSION_H_
#define WDSPARQL_PUBLIC_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "wdsparql/binding_table.h"
#include "wdsparql/cursor.h"
#include "wdsparql/diagnostics.h"
#include "wdsparql/exec_options.h"
#include "wdsparql/mapping.h"
#include "wdsparql/snapshot.h"

/// \file
/// Sessions and prepared statements.
///
/// A `Session` is a cheap read view over a `Database` (a pointer and an
/// options struct — copy freely, one per thread or per request). It
/// prepares pattern text into `Statement`s: parse → well-designedness →
/// wdpf planning, with the outcome carried in structured
/// `QueryDiagnostics` rather than a bare status string. Statements are
/// immutable, shareable, and executed through pull-based `Cursor`s or
/// materialised into columnar `BindingTable`s.
///
/// Concurrency: sessions are value objects bound to the database's
/// move-stable internals — copy them freely, one per thread or per
/// request. On the indexed backend (the default), preparing statements
/// and iterating cursors from many threads is safe even while a single
/// writer thread mutates the database: execution pins an immutable read
/// view, and `Prepare`'s interning of query terms into the shared
/// `TermPool` synchronises internally. Naive-backend (`kNaiveHash`)
/// execution reads the live hash graph and is only safe while nobody
/// mutates. See docs/CONCURRENCY.md.

namespace wdsparql {

class Database;
class GraphPattern;   // Internal AST node; see sparql/ast.h.
struct DatabaseImpl;  // Internal owning state; stable across Database moves.
struct StatementImpl;

/// Storage/execution backend selector.
enum class Backend {
  kNaiveHash,  ///< Hash-indexed TripleSet + CSP solver (the paper-faithful
               ///< oracle, kept for differential testing).
  kIndexed,    ///< Dictionary-encoded permutation store + merge joins.
};

/// Human-readable backend name ("naive-hash" / "indexed").
const char* BackendToString(Backend backend);

/// Per-session execution options.
struct SessionOptions {
  Backend backend = Backend::kIndexed;

  /// Domination-width promise k for membership tests on the naive
  /// backend: 0 uses exact homomorphism extension tests (always
  /// correct), k >= 1 the polynomial (k+1)-pebble relaxation of
  /// Theorem 1 (correct under dw <= k).
  int pebble_promise = 0;
};

/// A parsed, validated and planned query. Immutable and cheap to copy
/// (shared state); produced by `Session::Prepare`. Because the prepared
/// state never changes, one statement may be executed from many threads
/// concurrently — every execution opens an independent cursor.
class Statement {
 public:
  /// An unprepared statement (kInternal diagnostics); placeholder only.
  Statement();
  /// \internal Wraps prepared state.
  explicit Statement(std::shared_ptr<const StatementImpl> impl);

  /// True iff the statement is executable.
  bool ok() const;

  /// Full preparation diagnostics (also available on failed statements —
  /// that is the point).
  const QueryDiagnostics& diagnostics() const;

  /// vars(P) in display form ("?x"), first-occurrence order.
  const std::vector<std::string>& variables() const;

  /// Opens a cursor over all variables.
  Cursor Execute() const;

  /// SELECT-style execution: a cursor over the named variable subset
  /// (names with or without the leading '?'), with duplicate projected
  /// rows eliminated. Unknown names yield a kFailed cursor carrying
  /// kInvalidProjection diagnostics.
  Cursor Execute(const std::vector<std::string>& projection) const;

  /// Bounded execution: the cursor observes `options`' row limit,
  /// deadline and cancellation token mid-enumeration (see
  /// wdsparql/exec_options.h). Note `Execute({})` is ambiguous between
  /// this and the projection overload — spell the empty case
  /// `Execute()` or `Execute(ExecOptions{})`.
  Cursor Execute(const ExecOptions& options) const;
  Cursor Execute(const std::vector<std::string>& projection,
                 const ExecOptions& options) const;

  /// Snapshot-bound execution: the cursor enumerates exactly the state
  /// `snapshot` pinned, regardless of batches committed since —
  /// repeatable reads across many cursors (see wdsparql/snapshot.h).
  /// Both backends serve snapshots: the indexed backend enumerates the
  /// pinned view in place; the naive-hash oracle materialises a private
  /// copy of the pinned content at Open (O(dataset) per cursor — meant
  /// for differential testing, not production reads). An invalid
  /// snapshot or one from another database yields a kFailed cursor
  /// with kInternal diagnostics.
  Cursor Execute(const Snapshot& snapshot, const ExecOptions& options = {}) const;
  Cursor Execute(const std::vector<std::string>& projection,
                 const Snapshot& snapshot, const ExecOptions& options = {}) const;

  /// Materialises the execution into a columnar table.
  BindingTable ExecuteTable() const;
  BindingTable ExecuteTable(const std::vector<std::string>& projection) const;

  /// Materialises all answers, sorted and duplicate-free.
  std::vector<Mapping> Solutions() const;

  /// |JPKG| (post-filtered).
  uint64_t Count() const;

  /// wdEVAL membership: decides mu ∈ JPKG on the session's backend
  /// (false on failed statements). On the indexed backend the test pins
  /// the current read view for its duration, so it is safe concurrently
  /// with the writer.
  bool Contains(const Mapping& mu) const;

  /// Snapshot-bound membership: decides mu ∈ JPKG against exactly the
  /// state `snapshot` pinned, regardless of batches committed since —
  /// the membership analogue of the snapshot `Execute` overloads, so a
  /// server can answer a stream of membership probes from one
  /// repeatable-read point. Indexed backend only: returns false on the
  /// naive-hash oracle backend (which cannot pin a view), on an invalid
  /// snapshot, or on a snapshot from another database — mirroring the
  /// plain overload's false-on-failed-statement convention.
  bool Contains(const Mapping& mu, const Snapshot& snapshot) const;

  /// \internal Shared prepared state.
  const std::shared_ptr<const StatementImpl>& impl() const { return impl_; }

 private:
  /// The one execution funnel behind every `Execute` overload.
  Cursor ExecuteInternal(const std::vector<std::string>& projection,
                         const Snapshot* snapshot,
                         const ExecOptions& options) const;

  std::shared_ptr<const StatementImpl> impl_;
};

/// A cheap, concurrently-usable handle preparing queries against one
/// database. Obtained from `Database::OpenSession`. Sessions (and the
/// statements/cursors they produce) bind to the database's internal
/// state, which is stable across `Database` moves — only destroying the
/// database invalidates them.
class Session {
 public:
  /// Full preparation pipeline over the pattern text. Top-level FILTER
  /// conditions are peeled and installed as execution-time post-filters
  /// (so FILTER queries run on the configured backend); FILTER below
  /// AND/OPT is reported as kUnsupported.
  Statement Prepare(std::string_view pattern_text) const;

  /// Prepares an already-parsed pattern (advanced/internal callers; the
  /// pattern must use the database's TermPool).
  Statement PrepareParsed(const std::shared_ptr<const GraphPattern>& pattern) const;

  const SessionOptions& options() const { return options_; }

 private:
  friend class Database;
  Session(const DatabaseImpl* db, SessionOptions options)
      : db_(db), options_(options) {}

  const DatabaseImpl* db_;
  SessionOptions options_;
};

}  // namespace wdsparql

#endif  // WDSPARQL_PUBLIC_SESSION_H_
