#ifndef WDSPARQL_PUBLIC_HASH_H_
#define WDSPARQL_PUBLIC_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

/// \file
/// Hash-combination helpers used by the interned-id containers throughout
/// the library (triple indexes, partial-homomorphism tables, memo caches).
/// All stateless and reentrant: safe from any thread.

namespace wdsparql {

/// Mixes `value` into `seed` (boost::hash_combine-style with a 64-bit
/// avalanche constant). Deterministic across runs and platforms.
inline void HashCombine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hashes a range of hashable elements into a single value.
template <typename It>
std::size_t HashRange(It first, It last) {
  std::size_t seed = 0xcbf29ce484222325ULL;
  for (It it = first; it != last; ++it) {
    HashCombine(seed, std::hash<std::decay_t<decltype(*it)>>{}(*it));
  }
  return seed;
}

/// Hash functor for std::pair, usable as an unordered_map hasher.
struct PairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const {
    std::size_t seed = std::hash<A>{}(p.first);
    HashCombine(seed, std::hash<B>{}(p.second));
    return seed;
  }
};

/// Hash functor for std::vector of hashable elements.
struct VectorHash {
  template <typename T>
  std::size_t operator()(const std::vector<T>& v) const {
    return HashRange(v.begin(), v.end());
  }
};

}  // namespace wdsparql

#endif  // WDSPARQL_PUBLIC_HASH_H_
