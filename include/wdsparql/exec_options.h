#ifndef WDSPARQL_PUBLIC_EXEC_OPTIONS_H_
#define WDSPARQL_PUBLIC_EXEC_OPTIONS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>

/// \file
/// Per-execution resource bounds.
///
/// Well-designed-pattern enumeration is exponential in the pattern in
/// the worst case, and even easy queries can enumerate huge answer
/// sets. A server cannot hand such an execution an unbounded slice of a
/// worker thread: it needs every request bounded (row limits), timed
/// (deadlines), and individually revocable (cancellation). `ExecOptions`
/// carries those knobs per `Statement::Execute` call; the enumeration
/// state machine checks them *mid-subtree* — between candidates and
/// between maximality certificates, every `check_interval` steps — so a
/// runaway query stops within a bounded amount of work, not at the next
/// answer boundary.
///
/// Outcomes surface on the cursor: a reached row limit parks it in
/// `Cursor::State::kLimited` (the delivered rows are exact answers — a
/// LIMIT-style prefix, not an error); an expired deadline or a fired
/// cancellation token parks it in `kCancelled` with
/// `kDeadlineExceeded` / `kCancelled` diagnostics.
///
/// Thread-safety: the struct is a plain value. The cancellation flag is
/// shared state by design — flip it from any thread (a signal handler,
/// a connection-reaper, an admin endpoint) and every execution holding
/// the token stops at its next check.

namespace wdsparql {

class TraceContext;  // See wdsparql/trace.h.

/// A shared cancellation flag. Create one per revocable unit of work,
/// hand it to any number of executions, and `store(true)` to stop them
/// all at their next check.
using CancelToken = std::shared_ptr<std::atomic<bool>>;

/// Allocates a fresh, unfired cancellation token.
inline CancelToken MakeCancelToken() {
  return std::make_shared<std::atomic<bool>>(false);
}

/// Per-execution bounds, passed to `Statement::Execute`. The default
/// state bounds nothing (unlimited rows, no deadline, no token).
struct ExecOptions {
  /// Maximum rows the cursor delivers; 0 = unlimited. The pull after
  /// the last permitted row returns false with `kLimited`.
  uint64_t row_limit = 0;

  /// Absolute wall-clock bound on enumeration work (steady clock, so
  /// immune to system clock steps). Unset = no deadline.
  std::optional<std::chrono::steady_clock::time_point> deadline;

  /// Cooperative cancellation flag; null = not cancellable. Checked
  /// (relaxed load) every `check_interval` enumeration steps.
  CancelToken cancel;

  /// Enumeration steps (candidates generated or certified) between
  /// deadline/cancellation checks. Smaller = more responsive, more
  /// clock reads; 0 is treated as 1.
  uint32_t check_interval = 64;

  /// Worker threads enumerating this execution's candidate space in
  /// parallel over one pinned view; 0 and 1 both mean serial. Indexed
  /// backend only — the naive-hash oracle ignores it and runs serially.
  /// The delivered solution *set* is identical to a serial run
  /// (deduplicated once at the merge), but rows arrive in
  /// nondeterministic order: consumers needing determinism sort, exactly
  /// as they already must across backends. Deadlines, cancellation and
  /// row limits are honored promptly: every worker observes a stop
  /// within one `check_interval`.
  uint32_t parallelism = 0;

  /// Cost-based variable-order optimization (indexed backend only):
  /// when true and the store carries cardinality statistics, each wdpf
  /// subtree's leapfrog binding order is chosen by the bottom-up planner
  /// instead of the built-in most-constrained-first heuristic. The
  /// answer *set* is identical either way (the order only changes work);
  /// set false to reproduce pre-optimizer plans exactly (A/B runs,
  /// plan-regression triage).
  bool optimize = true;

  /// Collect per-execution `ExecStats` (see wdsparql/stats.h) on the
  /// cursor: counters per subpattern, scan/dictionary totals and phase
  /// timers, retrievable via `Cursor::stats()`. Off by default: the
  /// disabled path allocates nothing and leaves the enumeration hot
  /// path untouched.
  bool collect_stats = false;

  /// Request-scoped tracing (see wdsparql/trace.h): when non-null, the
  /// execution emits parse/check/plan/enumerate and per-wdpf-subtree
  /// spans into this context, parented under `trace_parent`. The context
  /// is single-threaded and must outlive the cursor. Null (the default)
  /// costs one branch per instrumentation site — no clocks, no
  /// allocation, no atomics.
  TraceContext* trace = nullptr;

  /// Span id in `trace` to parent this execution's spans under
  /// (0 = top level of the trace).
  uint32_t trace_parent = 0;

  /// Convenience: a deadline `budget` from now.
  ExecOptions& WithTimeout(std::chrono::steady_clock::duration budget) {
    deadline = std::chrono::steady_clock::now() + budget;
    return *this;
  }

  /// True iff any bound is set (the cursor skips all checking
  /// machinery otherwise).
  bool bounded() const {
    return row_limit != 0 || deadline.has_value() || cancel != nullptr;
  }
};

}  // namespace wdsparql

#endif  // WDSPARQL_PUBLIC_EXEC_OPTIONS_H_
