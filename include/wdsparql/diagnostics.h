#ifndef WDSPARQL_PUBLIC_DIAGNOSTICS_H_
#define WDSPARQL_PUBLIC_DIAGNOSTICS_H_

#include <cstddef>
#include <string>
#include <vector>

/// \file
/// Structured preparation diagnostics.
///
/// `Session::Prepare` never reports through bare status strings: every
/// prepared `Statement` carries a `QueryDiagnostics` describing exactly
/// where in the pipeline the query stands — parse, well-designedness,
/// fragment support, plan shape — with the offending variable surfaced
/// as a field rather than buried in prose. Tools branch on `code`;
/// humans read `message`. Plain value type: the copies returned by
/// `Statement::diagnostics()`/`Cursor::diagnostics()` reference no
/// shared mutable state.

namespace wdsparql {

/// Where (if anywhere) preparation stopped, and what the planner learned.
struct QueryDiagnostics {
  /// Outcome category, ordered by pipeline stage.
  enum class Code {
    kOk = 0,             ///< Prepared; the statement is executable.
    kParseError,         ///< The pattern text did not parse.
    kNotWellDesigned,    ///< Violates the well-designedness condition.
    kUnsupported,        ///< Parses but sits outside the executable fragment
                         ///< (e.g. FILTER below AND/OPT).
    kInvalidProjection,  ///< An execution-time projection named an unknown
                         ///< variable.
    kInvalidated,        ///< The database mutated under an open
                         ///< naive-backend cursor (indexed cursors pin
                         ///< an immutable view instead; see cursor.h).
    kCancelled,          ///< Execution stopped by a fired cancellation
                         ///< token (see wdsparql/exec_options.h).
    kDeadlineExceeded,   ///< Execution stopped at its deadline.
    kUnimplemented,      ///< The requested combination is not served by
                         ///< this backend (e.g. snapshot-bound execution
                         ///< on the naive oracle backend).
    kInternal,           ///< Pipeline invariant failure (library bug).
  };

  Code code = Code::kOk;

  /// Human-readable explanation (empty when kOk).
  std::string message;

  /// The variable violating well-designedness ("?x" display form), when
  /// the checker can name one; empty otherwise.
  std::string offending_variable;

  /// The original pattern text (empty for pre-parsed patterns).
  std::string pattern_text;

  // Pipeline facts (valid for the stages that completed) --------------

  bool parsed = false;          ///< Pattern text parsed into an AST.
  bool well_designed = false;   ///< Passed the well-designedness check.
  bool union_free = false;      ///< No UNION operator anywhere.

  /// Number of top-level FILTER conditions peeled off and applied as a
  /// post-filter over the enumerated bindings (0 for pure AND/OPT/UNION
  /// queries). Nested FILTERs are rejected as kUnsupported instead.
  std::size_t post_filters = 0;

  /// Trees in wdpf(P) (0 until planning succeeds).
  std::size_t num_trees = 0;

  /// Triple-pattern leaves in the core pattern.
  std::size_t num_triple_patterns = 0;

  /// vars(P) in display form ("?x"), first-occurrence order.
  std::vector<std::string> variables;

  bool ok() const { return code == Code::kOk; }

  /// Renders as "<code>: <message>" ("OK" when healthy).
  std::string ToString() const;
};

/// Human-readable name of a diagnostics code (e.g. "NotWellDesigned").
const char* DiagnosticsCodeToString(QueryDiagnostics::Code code);

}  // namespace wdsparql

#endif  // WDSPARQL_PUBLIC_DIAGNOSTICS_H_
