#ifndef WDSPARQL_PUBLIC_STATS_H_
#define WDSPARQL_PUBLIC_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Per-query execution statistics.
///
/// `ExecStats` is the per-execution observability record: one plain
/// struct of counters and phase timers, filled in by a single cursor as
/// it enumerates and retrievable from that cursor at any point
/// (`Cursor::stats()`), final once the cursor finishes. Collection is
/// opt-in per execution (`ExecOptions::collect_stats`); when it is off
/// nothing is allocated and the enumeration hot path is untouched —
/// `Cursor::stats()` simply returns null.
///
/// The counters are *cursor-local*: plain (non-atomic) integers owned by
/// the one thread driving the cursor, so collection adds increments, not
/// cache-line contention, to the hot path. Engine-wide aggregation
/// happens once, at cursor finish, into the database's
/// `MetricsRegistry` (see wdsparql/metrics.h).
///
/// Two renderings are provided: `ToText()` — an EXPLAIN-style tree of
/// the execution (phases, totals, one line per enumerated subpattern) —
/// and `ToJson()` for machine consumption. `docs/OBSERVABILITY.md`
/// holds the counter glossary and a worked example.

namespace wdsparql {

/// Counters and timers of one statement execution. A plain value: copy
/// it out of the cursor to keep it past the cursor's lifetime.
struct ExecStats {
  /// Per-subpattern breakdown: one entry for every subtree pattern the
  /// enumerator opened that produced at least one candidate (empty
  /// subtrees are summarised by `empty_subpatterns`). Entries appear in
  /// enumeration order.
  struct Subpattern {
    std::size_t tree = 0;     ///< Index of the pattern tree in wdpf(P).
    std::size_t subtree = 0;  ///< Index of the subtree within its tree.
    std::string pattern;      ///< Rendered pat(T'), e.g. "(?x knows ?y)".
    uint64_t candidates = 0;  ///< Homomorphism candidates buffered.
    uint64_t dedup_rejected = 0;    ///< Dropped: already emitted elsewhere.
    uint64_t non_maximal = 0;       ///< Dropped: a child pattern extends them.
    uint64_t maximality_tests = 0;  ///< Extension certificates run.
    uint64_t rows = 0;        ///< Answers this subpattern contributed.

    // Cost-based optimizer report (indexed backend with statistics;
    // est_rows stays -1 when no plan was chosen — e.g.
    // `ExecOptions::optimize = false` or a stats-less legacy snapshot).
    double est_rows = -1;     ///< Estimated candidates (compare `candidates`).
    double est_cost = 0;      ///< Estimated scan volume of the chosen order.
    uint64_t plan_ns = 0;     ///< Time the optimizer spent on this subtree.
    std::string plan;         ///< Chosen order, e.g. "order=[?y ?x] scans=[POS SPO]".
  };

  // Phase timers (nanoseconds). Parse/check/plan are properties of the
  // prepared statement (paid once, copied into every execution's stats);
  // enumerate_ns accumulates the wall-clock time this cursor spent
  // inside Next().
  uint64_t parse_ns = 0;      ///< Pattern text -> AST.
  uint64_t check_ns = 0;      ///< Well-designedness check.
  uint64_t plan_ns = 0;       ///< wdpf forest construction + projection.
  uint64_t optimize_ns = 0;   ///< Cost-based variable-order planning.
  uint64_t enumerate_ns = 0;  ///< Time spent pulling rows.

  /// Summed estimated scan volume across the planned subpatterns (0 when
  /// the optimizer never ran — see `Subpattern::est_rows`).
  double est_cost = 0;

  // Enumeration totals.
  uint64_t rows_emitted = 0;     ///< Rows the cursor delivered (== Cursor::rows()).
  uint64_t candidates = 0;       ///< Candidates generated across subpatterns.
  uint64_t dedup_rejected = 0;   ///< Candidates dropped as duplicates.
  uint64_t non_maximal = 0;      ///< Candidates dropped as extendable.
  uint64_t maximality_tests = 0; ///< Extension certificates run.
  uint64_t filtered_out = 0;     ///< Answers dropped by post-FILTERs.
  uint64_t projection_dedup_rejected = 0;  ///< Dropped by SELECT dedup.
  uint64_t empty_subpatterns = 0;  ///< Subtrees whose match set was empty.
  uint64_t interrupt_checks = 0;   ///< Deadline/cancellation probe calls.

  // Storage counters (indexed backend; zero on the naive-hash oracle).
  uint64_t ranges_scanned = 0;        ///< Permutation ranges materialised.
  uint64_t values_probed = 0;         ///< Candidate values tested in merges.
  uint64_t base_triples_scanned = 0;  ///< Triples read from base runs.
  uint64_t delta_triples_scanned = 0; ///< Triples read from delta runs.
  uint64_t dict_encodes = 0;          ///< Term -> DataId dictionary probes.
  uint64_t dict_decodes = 0;          ///< DataId -> Term resolutions.

  /// Backend the execution ran on ("indexed" / "naive-hash").
  std::string backend;

  std::vector<Subpattern> subpatterns;

  /// Human-readable EXPLAIN-style rendering: phases, totals, then one
  /// line per subpattern with its candidate/rejection/row counts.
  std::string ToText() const;

  /// The same content as one JSON object.
  std::string ToJson() const;
};

}  // namespace wdsparql

#endif  // WDSPARQL_PUBLIC_STATS_H_
