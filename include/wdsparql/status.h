#ifndef WDSPARQL_PUBLIC_STATUS_H_
#define WDSPARQL_PUBLIC_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "wdsparql/check.h"

/// \file
/// Error propagation primitives.
///
/// Fallible, user-facing operations (parsing, validation, file I/O) return
/// `Status` or `Result<T>` rather than throwing. This follows the
/// RocksDB/Arrow convention for database libraries: error codes are part of
/// the API contract and must be inspected by the caller.
///
/// Thread-safety: `Status` and `Result` are value types; distinct
/// instances are independent. (`Database::storage_status()` returns a
/// fresh copy, so polling it from any thread is safe.)

namespace wdsparql {

/// Machine-readable error category.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,   ///< Malformed input (e.g. parse errors).
  kNotWellDesigned = 2,   ///< A SPARQL pattern violates the well-designedness condition.
  kNotFound = 3,          ///< A referenced entity does not exist.
  kResourceExhausted = 4, ///< An algorithm exceeded a configured limit.
  kInternal = 5,          ///< Invariant violation surfaced as a recoverable error.
  kCorruption = 6,        ///< Persistent data failed validation (bad magic, CRC, bounds).
  kIoError = 7,           ///< The operating system rejected a file operation.
  kFailedPrecondition = 8,///< The operation needs state the object is not in.
};

/// Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation that produces no value.
///
/// A `Status` is either OK or carries a code plus a diagnostic message.
/// It is cheap to copy in the OK case and must be checked by callers
/// (the library never silently drops errors).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns the OK status.
  static Status OK() { return Status(); }
  /// Returns an InvalidArgument status with `message`.
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  /// Returns a NotWellDesigned status with `message`.
  static Status NotWellDesigned(std::string message) {
    return Status(StatusCode::kNotWellDesigned, std::move(message));
  }
  /// Returns a NotFound status with `message`.
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  /// Returns a ResourceExhausted status with `message`.
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  /// Returns an Internal status with `message`.
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  /// Returns a Corruption status with `message`.
  static Status Corruption(std::string message) {
    return Status(StatusCode::kCorruption, std::move(message));
  }
  /// Returns an IoError status with `message`.
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  /// Returns a FailedPrecondition status with `message`.
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }

  /// True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The diagnostic message (empty for OK statuses).
  const std::string& message() const { return message_; }

  /// Renders the status as "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result of a fallible operation producing a `T` on success.
///
/// Either holds a value (status OK) or an error status. Accessing the
/// value of an errored result is a checked fatal error.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Constructs a failed result from a non-OK `status`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    WDSPARQL_CHECK(!status_.ok());
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }
  /// The status (OK iff a value is present).
  const Status& status() const { return status_; }

  /// Returns the held value; fatal if `!ok()`.
  const T& value() const& {
    WDSPARQL_CHECK(ok());
    return *value_;
  }
  /// Moves out the held value; fatal if `!ok()`.
  T&& value() && {
    WDSPARQL_CHECK(ok());
    return std::move(*value_);
  }
  /// Dereference sugar for `value()`.
  const T& operator*() const& { return value(); }
  /// Member-access sugar for `value()`.
  const T* operator->() const { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace wdsparql

/// Propagates a non-OK Status out of the enclosing function.
#define WDSPARQL_RETURN_IF_ERROR(expr)          \
  do {                                          \
    ::wdsparql::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (0)

#endif  // WDSPARQL_PUBLIC_STATUS_H_
