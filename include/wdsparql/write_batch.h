#ifndef WDSPARQL_PUBLIC_WRITE_BATCH_H_
#define WDSPARQL_PUBLIC_WRITE_BATCH_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "wdsparql/status.h"
#include "wdsparql/term.h"
#include "wdsparql/triple.h"

/// \file
/// Batched, atomic mutation.
///
/// A `WriteBatch` accumulates an ordered sequence of add/remove
/// operations as a plain value — no database reference, no locks, no
/// I/O — and `Database::Apply` installs the whole sequence at once:
/// ONE merged copy-on-write delta build, ONE atomic read-view publish,
/// and (under `Durability::kWal`) ONE CRC-framed group record in the
/// write-ahead log. This is the RocksDB batch discipline adapted to a
/// triple store: per-mutation cost is amortised over the batch, readers
/// observe either none or all of it, and a crash replays it
/// all-or-nothing.
///
/// Operations carry term *spellings* (the portable currency this
/// library already uses in the WAL), so a batch can be built on any
/// thread, long before the target database exists, and shipped around
/// freely. Order matters exactly as much as replaying the operations
/// one by one would: a later operation on the same triple supersedes an
/// earlier one (`Add` then `Remove` cancels out; `Remove` then `Add`
/// nets to an insert).
///
/// Thread-safety: a plain value. Build on one thread at a time; copy or
/// move freely between threads.

namespace wdsparql {

/// Net outcome of one `Database::Apply`: what actually changed after
/// in-batch cancellation and comparison against the current state, plus
/// the commit's observability facts — what the WAL and the view publish
/// machinery did on its behalf — so batch callers no longer infer them
/// from generation deltas or log sizes.
struct ApplyResult {
  std::size_t added = 0;    ///< Triples newly inserted.
  std::size_t removed = 0;  ///< Previously present triples removed.

  /// Write-ahead-log bytes this commit appended (frame headers
  /// included). 0 without `Durability::kWal` or for a no-op batch.
  uint64_t wal_bytes = 0;

  /// WAL frames written: 1 for every practical batch; more when the
  /// batch exceeded the group payload budget and degraded into several
  /// consecutive group frames. 0 without kWal or for a no-op.
  uint64_t wal_groups = 0;

  /// Read-view publishes this commit performed: 1 for an effective
  /// batch, 2 when the grown delta crossed the merge threshold (the
  /// fold publishes too), 0 for a no-op.
  uint64_t publishes = 0;

  /// Net operations applied (adds + removes after cancellation).
  std::size_t net_ops() const { return added + removed; }

  /// True iff the batch changed nothing (no publish happened).
  bool no_op() const { return added == 0 && removed == 0; }
};

/// An ordered, self-contained sequence of triple mutations, applied
/// atomically by `Database::Apply`.
class WriteBatch {
 public:
  /// One accumulated operation (spelling form).
  struct Op {
    bool add;  ///< true = insert, false = remove.
    std::string subject;
    std::string predicate;
    std::string object;
  };

  WriteBatch() = default;

  /// Queues an insert of the ground triple with the given IRI spellings
  /// (no angle brackets, as `Database::AddTriple`).
  void Add(std::string_view subject, std::string_view predicate,
           std::string_view object);

  /// Queues a removal by spelling. Removing a triple the database never
  /// held (and that no earlier `Add` in this batch introduces) is a
  /// silent no-op at apply time.
  void Remove(std::string_view subject, std::string_view predicate,
              std::string_view object);

  /// Queues an insert of `t`, resolving spellings through `pool` (use
  /// the database's own `Database::pool()`). Returns false — and queues
  /// nothing — when `t` contains a variable: only ground triples are
  /// storable facts.
  bool Add(const TermPool& pool, const Triple& t);

  /// Queues a removal of `t` via `pool` spellings; false for non-ground
  /// triples.
  bool Remove(const TermPool& pool, const Triple& t);

  /// Parses N-Triples text (the rdf/ntriples.h subset) and queues an
  /// `Add` per triple. Atomic on parse errors: either every line's
  /// triple is queued or the batch is left untouched.
  Status LoadNTriples(std::string_view text);

  /// Reads the file at `path` and queues it as `LoadNTriples`.
  Status LoadNTriplesFile(const std::string& path);

  /// Number of queued operations (not net effect: an add/remove pair of
  /// the same triple counts twice here and zero at apply time).
  std::size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  /// Drops every queued operation; the batch is reusable afterwards.
  void Clear() { ops_.clear(); }

  /// The queued operations, in order. Stable surface for tooling and
  /// for `Database::Apply` itself.
  const std::vector<Op>& ops() const { return ops_; }

 private:
  std::vector<Op> ops_;
};

}  // namespace wdsparql

#endif  // WDSPARQL_PUBLIC_WRITE_BATCH_H_
