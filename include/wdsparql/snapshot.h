#ifndef WDSPARQL_PUBLIC_SNAPSHOT_H_
#define WDSPARQL_PUBLIC_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "wdsparql/triple.h"

/// \file
/// User-held pinned read views.
///
/// Cursors have always pinned the store's current read view at `Open`,
/// but that pin was private: every `Execute` re-pinned the freshest
/// state, so two statements — or two executions of one statement —
/// could observe different database generations. A `Snapshot` makes the
/// pin a first-class value: `Database::GetSnapshot()` captures the
/// current view, and every `Statement::Execute` overload taking the
/// snapshot enumerates exactly that state, however many cursors, and
/// whatever the writer commits in between. This is the repeatable-read
/// handle of production stores (RocksDB's `GetSnapshot`, RDF-3X's
/// query-time version), built on the same epoch-published `ReadView`
/// machinery the cursors already use — taking one is one atomic load
/// plus a refcount, never a copy.
///
/// Lifetime rules (docs/CONCURRENCY.md has the full contract):
///  * A snapshot keeps its view's storage alive — superseded base runs,
///    delta runs, and a mapped snapshot file the view may borrow — for
///    exactly as long as the snapshot (or any cursor opened from it)
///    exists. Holding snapshots indefinitely on a mutating database
///    therefore holds memory; drop them when done.
///  * The `Database` must outlive the snapshot (the snapshot pins
///    storage, not the database object).
///  * Snapshots are immutable and freely copyable; copies share the pin.
///  * Both backends serve snapshot-bound executions. The indexed
///    backend reads the pinned view in place; the naive oracle
///    materialises a private copy of the pinned content per cursor —
///    O(dataset) at Open, intended for differential testing against
///    the indexed engine under a live writer.

namespace wdsparql {

class ReadView;       // Internal pinned view; see engine/read_view.h.
struct DatabaseImpl;  // Internal owning state; stable across Database moves.

/// An immutable, copyable handle on one published database state.
/// Obtained from `Database::GetSnapshot()`; bound into executions via
/// the `Statement::Execute` snapshot overloads.
class Snapshot {
 public:
  /// An empty, invalid snapshot (binds to nothing; executing against it
  /// yields a failed cursor).
  Snapshot() = default;

  /// True iff the snapshot pins a database state.
  bool valid() const { return view_ != nullptr; }

  /// The `Database::generation()` this snapshot pinned (0 if invalid).
  uint64_t generation() const;

  /// Number of triples in the pinned state (0 if invalid).
  std::size_t size() const;

  /// True iff the ground triple is present in the pinned state. Safe on
  /// any thread, concurrent with the writer — the answer never changes
  /// for a given snapshot.
  bool Contains(const Triple& t) const;

 private:
  friend class Database;   // Constructs snapshots in GetSnapshot().
  friend class Statement;  // Binds the pinned view into cursors.

  Snapshot(const DatabaseImpl* db, std::shared_ptr<const ReadView> view)
      : db_(db), view_(std::move(view)) {}

  const DatabaseImpl* db_ = nullptr;
  std::shared_ptr<const ReadView> view_;
};

}  // namespace wdsparql

#endif  // WDSPARQL_PUBLIC_SNAPSHOT_H_
