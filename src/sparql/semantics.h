#ifndef WDSPARQL_SPARQL_SEMANTICS_H_
#define WDSPARQL_SPARQL_SEMANTICS_H_

#include <vector>

#include "rdf/graph.h"
#include "sparql/ast.h"
#include "sparql/mapping.h"

/// \file
/// The textbook set semantics of AND/OPT/UNION patterns (Section 2).
///
/// `Evaluate` materialises the full answer set JPKG bottom-up, exactly
/// following the recursive definition of Pérez et al. This evaluator is
/// exponential in |P| in the worst case and serves as (i) the ground
/// truth oracle for every other algorithm in the library and (ii) the
/// "materialise everything" baseline of experiment E9. The paper's
/// algorithms (naive coNP check, Theorem 1 pebble algorithm) never call
/// it.

namespace wdsparql {

/// Computes JPKG as a duplicate-free vector sorted lexicographically by
/// bindings (deterministic output).
std::vector<Mapping> Evaluate(const GraphPattern& pattern, const RdfGraph& graph);

/// Decides mu in JPKG by materialising JPKG (exponential baseline for
/// wdEVAL).
bool EvaluateContains(const GraphPattern& pattern, const RdfGraph& graph,
                      const Mapping& mu);

/// Computes JtKG for a single triple pattern (exposed for testing and for
/// the join-order-free leaf case).
std::vector<Mapping> EvaluateTriple(const Triple& t, const RdfGraph& graph);

}  // namespace wdsparql

#endif  // WDSPARQL_SPARQL_SEMANTICS_H_
