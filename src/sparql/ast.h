#ifndef WDSPARQL_SPARQL_AST_H_
#define WDSPARQL_SPARQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "rdf/term.h"
#include "rdf/triple.h"
#include "sparql/filter.h"

/// \file
/// The SPARQL graph-pattern algebra (Section 2 of the paper).
///
/// A graph pattern is either a triple pattern or P1 op P2 for
/// op in {AND, OPT, UNION}. Patterns are immutable and shared via
/// `PatternPtr`; factory functions build them compositionally, which the
/// query-family generators rely on.

namespace wdsparql {

class GraphPattern;

/// Shared handle to an immutable graph pattern.
using PatternPtr = std::shared_ptr<const GraphPattern>;

/// The operator (or leaf-ness) of a pattern node.
enum class PatternKind {
  kTriple,  ///< A SPARQL triple pattern (leaf).
  kAnd,     ///< P1 AND P2.
  kOpt,     ///< P1 OPT P2 (OPTIONAL).
  kUnion,   ///< P1 UNION P2.
  kFilter,  ///< P FILTER R (the Section 5 extension; unary, see filter.h).
};

/// An immutable SPARQL graph-pattern node.
class GraphPattern {
 public:
  /// The node's operator / leaf kind.
  PatternKind kind() const { return kind_; }

  /// The triple of a leaf node; fatal on inner nodes.
  const Triple& triple() const {
    WDSPARQL_CHECK(kind_ == PatternKind::kTriple);
    return triple_;
  }

  /// Left operand of a binary node (or the child of a FILTER); fatal on
  /// leaves.
  const PatternPtr& left() const {
    WDSPARQL_CHECK(kind_ != PatternKind::kTriple);
    return left_;
  }

  /// Right operand of a binary node; fatal on leaves and FILTER nodes.
  const PatternPtr& right() const {
    WDSPARQL_CHECK(kind_ != PatternKind::kTriple && kind_ != PatternKind::kFilter);
    return right_;
  }

  /// The condition of a FILTER node; fatal otherwise.
  const FilterCondition& condition() const {
    WDSPARQL_CHECK(kind_ == PatternKind::kFilter);
    return condition_;
  }

  /// vars(P): the distinct variables of the pattern, in first-occurrence
  /// order.
  std::vector<TermId> Variables() const;

  /// Number of triple-pattern leaves.
  int NumTriples() const;

  /// Total number of AST nodes (|P| up to constants).
  int NumNodes() const;

  /// True iff the pattern contains no UNION operator.
  bool IsUnionFree() const;

  /// Renders the pattern with explicit parentheses, e.g.
  /// "((?x p ?y) OPT (?y q ?z))".
  std::string ToString(const TermPool& pool) const;

  // Factories -------------------------------------------------------------

  /// A leaf triple pattern.
  static PatternPtr MakeTriple(const Triple& t);
  /// P1 AND P2.
  static PatternPtr MakeAnd(PatternPtr left, PatternPtr right);
  /// P1 OPT P2.
  static PatternPtr MakeOpt(PatternPtr left, PatternPtr right);
  /// P1 UNION P2.
  static PatternPtr MakeUnion(PatternPtr left, PatternPtr right);
  /// P FILTER R.
  static PatternPtr MakeFilter(PatternPtr child, FilterCondition condition);

  /// AND-folds `patterns` left-associatively; fatal on empty input.
  static PatternPtr MakeAndAll(const std::vector<PatternPtr>& patterns);
  /// UNION-folds `patterns` left-associatively; fatal on empty input.
  static PatternPtr MakeUnionAll(const std::vector<PatternPtr>& patterns);

 private:
  GraphPattern(PatternKind kind, Triple triple, PatternPtr left, PatternPtr right)
      : kind_(kind), triple_(triple), left_(std::move(left)), right_(std::move(right)) {}

  void CollectVariables(std::vector<TermId>* out) const;

  PatternKind kind_;
  Triple triple_;              // Valid only for kTriple.
  PatternPtr left_;
  PatternPtr right_;           // Null for kFilter.
  FilterCondition condition_;  // Valid only for kFilter.
};

/// Renders the operator keyword ("AND", "OPT", "UNION").
const char* PatternKindToString(PatternKind kind);

}  // namespace wdsparql

#endif  // WDSPARQL_SPARQL_AST_H_
