#include "sparql/ast.h"

#include <algorithm>

namespace wdsparql {

void GraphPattern::CollectVariables(std::vector<TermId>* out) const {
  if (kind_ == PatternKind::kTriple) {
    for (TermId var : triple_.Variables()) {
      if (std::find(out->begin(), out->end(), var) == out->end()) out->push_back(var);
    }
    return;
  }
  left_->CollectVariables(out);
  if (kind_ == PatternKind::kFilter) {
    // vars(P FILTER R) = vars(P) per the formalisation; with safe
    // filters (enforced by CheckWellDesigned) vars(R) adds nothing.
    return;
  }
  right_->CollectVariables(out);
}

std::vector<TermId> GraphPattern::Variables() const {
  std::vector<TermId> out;
  CollectVariables(&out);
  return out;
}

int GraphPattern::NumTriples() const {
  if (kind_ == PatternKind::kTriple) return 1;
  if (kind_ == PatternKind::kFilter) return left_->NumTriples();
  return left_->NumTriples() + right_->NumTriples();
}

int GraphPattern::NumNodes() const {
  if (kind_ == PatternKind::kTriple) return 1;
  if (kind_ == PatternKind::kFilter) return 1 + left_->NumNodes();
  return 1 + left_->NumNodes() + right_->NumNodes();
}

bool GraphPattern::IsUnionFree() const {
  if (kind_ == PatternKind::kTriple) return true;
  if (kind_ == PatternKind::kUnion) return false;
  if (kind_ == PatternKind::kFilter) return left_->IsUnionFree();
  return left_->IsUnionFree() && right_->IsUnionFree();
}

std::string GraphPattern::ToString(const TermPool& pool) const {
  if (kind_ == PatternKind::kTriple) {
    std::string out = "(";
    out += pool.ToParsableString(triple_.subject);
    out += ' ';
    out += pool.ToParsableString(triple_.predicate);
    out += ' ';
    out += pool.ToParsableString(triple_.object);
    out += ')';
    return out;
  }
  if (kind_ == PatternKind::kFilter) {
    std::string out = "(";
    out += left_->ToString(pool);
    out += " FILTER (";
    out += condition_.ToString(pool);
    out += "))";
    return out;
  }
  std::string out = "(";
  out += left_->ToString(pool);
  out += ' ';
  out += PatternKindToString(kind_);
  out += ' ';
  out += right_->ToString(pool);
  out += ')';
  return out;
}

PatternPtr GraphPattern::MakeTriple(const Triple& t) {
  return PatternPtr(new GraphPattern(PatternKind::kTriple, t, nullptr, nullptr));
}

PatternPtr GraphPattern::MakeAnd(PatternPtr left, PatternPtr right) {
  WDSPARQL_CHECK(left != nullptr && right != nullptr);
  return PatternPtr(new GraphPattern(PatternKind::kAnd, Triple(), std::move(left),
                                     std::move(right)));
}

PatternPtr GraphPattern::MakeOpt(PatternPtr left, PatternPtr right) {
  WDSPARQL_CHECK(left != nullptr && right != nullptr);
  return PatternPtr(new GraphPattern(PatternKind::kOpt, Triple(), std::move(left),
                                     std::move(right)));
}

PatternPtr GraphPattern::MakeUnion(PatternPtr left, PatternPtr right) {
  WDSPARQL_CHECK(left != nullptr && right != nullptr);
  return PatternPtr(new GraphPattern(PatternKind::kUnion, Triple(), std::move(left),
                                     std::move(right)));
}

PatternPtr GraphPattern::MakeFilter(PatternPtr child, FilterCondition condition) {
  WDSPARQL_CHECK(child != nullptr);
  auto* node =
      new GraphPattern(PatternKind::kFilter, Triple(), std::move(child), nullptr);
  node->condition_ = std::move(condition);
  return PatternPtr(node);
}

PatternPtr GraphPattern::MakeAndAll(const std::vector<PatternPtr>& patterns) {
  WDSPARQL_CHECK(!patterns.empty());
  PatternPtr out = patterns[0];
  for (std::size_t i = 1; i < patterns.size(); ++i) out = MakeAnd(out, patterns[i]);
  return out;
}

PatternPtr GraphPattern::MakeUnionAll(const std::vector<PatternPtr>& patterns) {
  WDSPARQL_CHECK(!patterns.empty());
  PatternPtr out = patterns[0];
  for (std::size_t i = 1; i < patterns.size(); ++i) out = MakeUnion(out, patterns[i]);
  return out;
}

const char* PatternKindToString(PatternKind kind) {
  switch (kind) {
    case PatternKind::kTriple:
      return "TRIPLE";
    case PatternKind::kAnd:
      return "AND";
    case PatternKind::kOpt:
      return "OPT";
    case PatternKind::kUnion:
      return "UNION";
    case PatternKind::kFilter:
      return "FILTER";
  }
  return "?";
}

}  // namespace wdsparql
