#ifndef WDSPARQL_SPARQL_WELL_DESIGNED_H_
#define WDSPARQL_SPARQL_WELL_DESIGNED_H_

#include <vector>

#include "sparql/ast.h"
#include "util/status.h"

/// \file
/// Well-designedness (Pérez, Arenas, Gutierrez; Section 2 of the paper).
///
/// A UNION-free pattern P is well designed iff for every subpattern
/// P' = (P1 OPT P2) of P, every variable occurring in P2 but not in P1
/// does not occur outside P' in P. A general pattern is well designed iff
/// it is of the form P1 UNION ... UNION Pm (UNION at top level only,
/// "UNION normal form") with each Pi UNION-free well designed.

namespace wdsparql {

/// Checks whether `pattern` is a well-designed graph pattern. Returns OK,
/// or NotWellDesigned with an explanation naming the offending variable /
/// operator nesting.
Status CheckWellDesigned(const PatternPtr& pattern, const TermPool& pool);

/// Structured outcome of the well-designedness check: the status plus the
/// offending variable as a field (for diagnostics objects), when the
/// violation names one (the UNION-nesting violation does not).
struct WellDesignedness {
  Status status;
  bool has_offending_variable = false;
  TermId offending_variable = 0;  ///< Valid iff has_offending_variable.
};

/// Like CheckWellDesigned, reporting the offending variable structurally.
WellDesignedness CheckWellDesignedDetailed(const PatternPtr& pattern,
                                           const TermPool& pool);

/// True iff `pattern` is well designed.
bool IsWellDesigned(const PatternPtr& pattern, const TermPool& pool);

/// Splits a well-designed pattern into its top-level UNION operands
/// P1, ..., Pm (each UNION-free). Returns NotWellDesigned if a UNION
/// occurs under AND or OPT.
Result<std::vector<PatternPtr>> UnionNormalForm(const PatternPtr& pattern);

}  // namespace wdsparql

#endif  // WDSPARQL_SPARQL_WELL_DESIGNED_H_
