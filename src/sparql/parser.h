#ifndef WDSPARQL_SPARQL_PARSER_H_
#define WDSPARQL_SPARQL_PARSER_H_

#include <string_view>

#include "sparql/ast.h"
#include "util/status.h"

/// \file
/// Parser for the algebraic SPARQL fragment of the paper.
///
/// The concrete syntax mirrors the paper's notation:
///
///     ((?x p ?y) OPT ((?z q ?x) AND (?w q ?z))) UNION (?x p ?x)
///
/// * triple patterns are written `(term term term)`;
/// * terms are variables `?x`, bare identifiers, or `<`-quoted IRIs;
/// * operators `AND`, `OPT` (or `OPTIONAL`) and `UNION` are
///   left-associative, with precedence AND > OPT > UNION, and parentheses
///   override grouping.
///
/// Disambiguation: after `(` the parser sees either another `(`
/// (a parenthesised subexpression) or a term (a triple pattern), so the
/// grammar is LL(1).

namespace wdsparql {

/// Parses `text` into a graph pattern, interning terms in `pool`.
Result<PatternPtr> ParsePattern(std::string_view text, TermPool* pool);

}  // namespace wdsparql

#endif  // WDSPARQL_SPARQL_PARSER_H_
