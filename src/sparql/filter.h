#ifndef WDSPARQL_SPARQL_FILTER_H_
#define WDSPARQL_SPARQL_FILTER_H_

#include <string>
#include <vector>

#include "rdf/term.h"
#include "sparql/mapping.h"

/// \file
/// FILTER conditions (the Section 5 extension).
///
/// The paper's classified fragment is AND/OPT/UNION; Section 5 explains
/// that adding FILTER breaks the PTIME-vs-W[1]-hard dichotomy, because
/// well-designed patterns with FILTER express conjunctive queries with
/// inequalities, whose evaluation landscape embeds the open EMB(H)
/// classification. This header provides the FILTER substrate so the
/// library can (a) evaluate FILTER patterns under the textbook semantics
/// and (b) exhibit the CQ-with-inequalities embedding behind the
/// Section 5 discussion (see tests/filter_test.cc). FILTER patterns are
/// deliberately rejected by the pattern-forest pipeline: they sit outside
/// the fragment the dichotomy classifies.

namespace wdsparql {

/// Comparison operator of a filter atom.
enum class FilterOp {
  kEquals,     ///< lhs = rhs.
  kNotEquals,  ///< lhs != rhs.
};

/// One comparison between two terms (variables or IRIs).
struct FilterAtom {
  TermId lhs;
  TermId rhs;
  FilterOp op = FilterOp::kEquals;

  friend bool operator==(const FilterAtom& a, const FilterAtom& b) {
    return a.lhs == b.lhs && a.rhs == b.rhs && a.op == b.op;
  }
};

/// A conjunction of filter atoms (the only connective we support; the
/// SPARQL standard's && maps onto it directly).
struct FilterCondition {
  std::vector<FilterAtom> atoms;

  /// The distinct variables mentioned by the condition.
  std::vector<TermId> Variables() const;

  /// SPARQL effective-boolean semantics collapsed to two values: an atom
  /// whose variable operand is unbound evaluates to false (an "error" in
  /// the standard, which FILTER treats as elimination).
  bool Satisfied(const Mapping& mu) const;

  /// Renders as "?x != ?y AND ?z = c".
  std::string ToString(const TermPool& pool) const;

  friend bool operator==(const FilterCondition& a, const FilterCondition& b) {
    return a.atoms == b.atoms;
  }
};

/// Builds the all-pairs disequality condition over `vars` (the gadget
/// that turns homomorphism into *embedding*; Section 5's EMB(H) link).
FilterCondition AllDistinct(const std::vector<TermId>& vars);

}  // namespace wdsparql

#endif  // WDSPARQL_SPARQL_FILTER_H_
