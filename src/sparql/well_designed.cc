#include "sparql/well_designed.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace wdsparql {
namespace {

/// Counts, for each variable, the number of triple-pattern occurrences
/// (a variable may occur in several leaves; per-leaf multiplicity is
/// irrelevant for the well-designedness condition, so we count leaves).
void CountLeafOccurrences(const GraphPattern& p,
                          std::unordered_map<TermId, int>* counts) {
  if (p.kind() == PatternKind::kTriple) {
    for (TermId var : p.triple().Variables()) ++(*counts)[var];
    return;
  }
  if (p.kind() == PatternKind::kFilter) {
    // Safe filters (vars(R) ⊆ vars(P)) add no fresh occurrence sites
    // beyond the subpattern's own leaves; count the condition as one
    // extra occurrence site per variable so leaks through filters are
    // still detected when safety fails.
    for (TermId var : p.condition().Variables()) ++(*counts)[var];
    CountLeafOccurrences(*p.left(), counts);
    return;
  }
  CountLeafOccurrences(*p.left(), counts);
  CountLeafOccurrences(*p.right(), counts);
}

/// Recursively verifies the OPT condition within a UNION-free pattern.
///
/// `total` holds the leaf-occurrence counts of each variable in the whole
/// UNION-free pattern; a variable occurs outside a subpattern P' iff its
/// count inside P' is strictly smaller than its total count.
Status CheckUnionFree(const GraphPattern& p,
                      const std::unordered_map<TermId, int>& total,
                      const TermPool& pool, TermId* offending) {
  if (p.kind() == PatternKind::kTriple) return Status::OK();
  WDSPARQL_CHECK(p.kind() != PatternKind::kUnion);
  if (p.kind() == PatternKind::kFilter) {
    // Safety ([23]): a filter may only mention variables of its operand.
    std::vector<TermId> child_vars = p.left()->Variables();
    std::unordered_set<TermId> child_set(child_vars.begin(), child_vars.end());
    for (TermId var : p.condition().Variables()) {
      if (child_set.count(var) == 0) {
        if (offending != nullptr) *offending = var;
        return Status::NotWellDesigned(
            "unsafe FILTER: variable ?" + std::string(pool.Spelling(var)) +
            " does not occur in the filtered subpattern");
      }
    }
    return CheckUnionFree(*p.left(), total, pool, offending);
  }
  WDSPARQL_RETURN_IF_ERROR(CheckUnionFree(*p.left(), total, pool, offending));
  WDSPARQL_RETURN_IF_ERROR(CheckUnionFree(*p.right(), total, pool, offending));
  if (p.kind() != PatternKind::kOpt) return Status::OK();

  std::vector<TermId> left_vars = p.left()->Variables();
  std::unordered_set<TermId> left_set(left_vars.begin(), left_vars.end());

  std::unordered_map<TermId, int> inside;
  CountLeafOccurrences(p, &inside);

  for (TermId var : p.right()->Variables()) {
    if (left_set.count(var) > 0) continue;
    // var occurs in P2 but not in P1: it must not occur outside P'.
    auto total_it = total.find(var);
    WDSPARQL_CHECK(total_it != total.end());
    if (inside.at(var) < total_it->second) {
      if (offending != nullptr) *offending = var;
      return Status::NotWellDesigned(
          "variable ?" + std::string(pool.Spelling(var)) +
          " occurs in the optional side of an OPT but also outside that OPT "
          "subpattern");
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<PatternPtr>> UnionNormalForm(const PatternPtr& pattern) {
  WDSPARQL_CHECK(pattern != nullptr);
  if (pattern->kind() == PatternKind::kUnion) {
    Result<std::vector<PatternPtr>> left = UnionNormalForm(pattern->left());
    if (!left.ok()) return left;
    Result<std::vector<PatternPtr>> right = UnionNormalForm(pattern->right());
    if (!right.ok()) return right;
    std::vector<PatternPtr> out = left.value();
    out.insert(out.end(), right.value().begin(), right.value().end());
    return out;
  }
  if (!pattern->IsUnionFree()) {
    return Result<std::vector<PatternPtr>>(Status::NotWellDesigned(
        "UNION occurs below AND or OPT; well-designed patterns require UNION "
        "at the top level only"));
  }
  return std::vector<PatternPtr>{pattern};
}

Status CheckWellDesigned(const PatternPtr& pattern, const TermPool& pool) {
  return CheckWellDesignedDetailed(pattern, pool).status;
}

WellDesignedness CheckWellDesignedDetailed(const PatternPtr& pattern,
                                           const TermPool& pool) {
  WellDesignedness report;
  Result<std::vector<PatternPtr>> operands = UnionNormalForm(pattern);
  if (!operands.ok()) {
    report.status = operands.status();
    return report;
  }
  for (const PatternPtr& operand : operands.value()) {
    std::unordered_map<TermId, int> total;
    CountLeafOccurrences(*operand, &total);
    TermId offending = 0;
    Status st = CheckUnionFree(*operand, total, pool, &offending);
    if (!st.ok()) {
      report.status = std::move(st);
      report.has_offending_variable = true;
      report.offending_variable = offending;
      return report;
    }
  }
  return report;
}

bool IsWellDesigned(const PatternPtr& pattern, const TermPool& pool) {
  return CheckWellDesigned(pattern, pool).ok();
}

}  // namespace wdsparql
