#ifndef WDSPARQL_SHIM_SRC_SPARQL_MAPPING_H
#define WDSPARQL_SHIM_SRC_SPARQL_MAPPING_H

/// \file
/// Compatibility forwarder: this header moved to the stable public
/// surface at include/wdsparql/mapping.h. Internal code may keep the old
/// path; new code should include "wdsparql/mapping.h" directly.

#include "wdsparql/mapping.h"

#endif  // WDSPARQL_SHIM_SRC_SPARQL_MAPPING_H
