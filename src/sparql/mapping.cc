#include "sparql/mapping.h"

#include <algorithm>

#include "util/check.h"

namespace wdsparql {

bool Mapping::Bind(TermId var, TermId iri) {
  WDSPARQL_CHECK(IsVariable(var));
  WDSPARQL_CHECK(IsIri(iri));
  auto it = std::lower_bound(
      bindings_.begin(), bindings_.end(), var,
      [](const std::pair<TermId, TermId>& b, TermId v) { return b.first < v; });
  if (it != bindings_.end() && it->first == var) return it->second == iri;
  bindings_.insert(it, {var, iri});
  return true;
}

std::optional<TermId> Mapping::Get(TermId var) const {
  auto it = std::lower_bound(
      bindings_.begin(), bindings_.end(), var,
      [](const std::pair<TermId, TermId>& b, TermId v) { return b.first < v; });
  if (it != bindings_.end() && it->first == var) return it->second;
  return std::nullopt;
}

std::vector<TermId> Mapping::Domain() const {
  std::vector<TermId> out;
  out.reserve(bindings_.size());
  for (const auto& [var, iri] : bindings_) out.push_back(var);
  return out;
}

bool Mapping::Compatible(const Mapping& a, const Mapping& b) {
  // Merge-scan over the sorted binding vectors.
  std::size_t i = 0, j = 0;
  while (i < a.bindings_.size() && j < b.bindings_.size()) {
    if (a.bindings_[i].first < b.bindings_[j].first) {
      ++i;
    } else if (a.bindings_[i].first > b.bindings_[j].first) {
      ++j;
    } else {
      if (a.bindings_[i].second != b.bindings_[j].second) return false;
      ++i;
      ++j;
    }
  }
  return true;
}

std::optional<Mapping> Mapping::Union(const Mapping& a, const Mapping& b) {
  if (!Compatible(a, b)) return std::nullopt;
  Mapping out;
  out.bindings_.reserve(a.bindings_.size() + b.bindings_.size());
  std::size_t i = 0, j = 0;
  while (i < a.bindings_.size() || j < b.bindings_.size()) {
    if (j >= b.bindings_.size() ||
        (i < a.bindings_.size() && a.bindings_[i].first <= b.bindings_[j].first)) {
      if (j < b.bindings_.size() && a.bindings_[i].first == b.bindings_[j].first) ++j;
      out.bindings_.push_back(a.bindings_[i++]);
    } else {
      out.bindings_.push_back(b.bindings_[j++]);
    }
  }
  return out;
}

bool Mapping::IsSubmapping(const Mapping& a, const Mapping& b) {
  for (const auto& [var, iri] : a.bindings_) {
    std::optional<TermId> image = b.Get(var);
    if (!image.has_value() || *image != iri) return false;
  }
  return true;
}

Mapping Mapping::RestrictedTo(const std::vector<TermId>& vars) const {
  Mapping out;
  for (const auto& [var, iri] : bindings_) {
    if (std::find(vars.begin(), vars.end(), var) != vars.end()) {
      out.Bind(var, iri);
    }
  }
  return out;
}

Triple Mapping::Apply(const Triple& t) const {
  Triple out = t;
  for (int pos = 0; pos < 3; ++pos) {
    TermId term = t[pos];
    if (IsVariable(term)) {
      std::optional<TermId> image = Get(term);
      WDSPARQL_CHECK(image.has_value());
      out.Set(pos, *image);
    }
  }
  return out;
}

Triple Mapping::ApplyPartial(const Triple& t) const {
  Triple out = t;
  for (int pos = 0; pos < 3; ++pos) {
    TermId term = t[pos];
    if (IsVariable(term)) {
      std::optional<TermId> image = Get(term);
      if (image.has_value()) out.Set(pos, *image);
    }
  }
  return out;
}

std::string Mapping::ToString(const TermPool& pool) const {
  std::string out = "{";
  bool first = true;
  for (const auto& [var, iri] : bindings_) {
    if (!first) out += ", ";
    first = false;
    out += pool.ToDisplayString(var);
    out += " -> ";
    out += pool.ToDisplayString(iri);
  }
  out += "}";
  return out;
}

}  // namespace wdsparql
