#include "sparql/filter.h"

#include <algorithm>

namespace wdsparql {

std::vector<TermId> FilterCondition::Variables() const {
  std::vector<TermId> out;
  for (const FilterAtom& atom : atoms) {
    for (TermId term : {atom.lhs, atom.rhs}) {
      if (IsVariable(term) && std::find(out.begin(), out.end(), term) == out.end()) {
        out.push_back(term);
      }
    }
  }
  return out;
}

namespace {

/// Resolves `term` under `mu`: IRIs to themselves, bound variables to
/// their image; nullopt for unbound variables.
std::optional<TermId> Resolve(TermId term, const Mapping& mu) {
  if (!IsVariable(term)) return term;
  return mu.Get(term);
}

}  // namespace

bool FilterCondition::Satisfied(const Mapping& mu) const {
  for (const FilterAtom& atom : atoms) {
    std::optional<TermId> lhs = Resolve(atom.lhs, mu);
    std::optional<TermId> rhs = Resolve(atom.rhs, mu);
    if (!lhs.has_value() || !rhs.has_value()) return false;  // Error -> eliminated.
    bool equal = *lhs == *rhs;
    if (atom.op == FilterOp::kEquals ? !equal : equal) return false;
  }
  return true;
}

std::string FilterCondition::ToString(const TermPool& pool) const {
  std::string out;
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out += " AND ";
    out += pool.ToParsableString(atoms[i].lhs);
    out += atoms[i].op == FilterOp::kEquals ? " = " : " != ";
    out += pool.ToParsableString(atoms[i].rhs);
  }
  return out;
}

FilterCondition AllDistinct(const std::vector<TermId>& vars) {
  FilterCondition condition;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    for (std::size_t j = i + 1; j < vars.size(); ++j) {
      condition.atoms.push_back(FilterAtom{vars[i], vars[j], FilterOp::kNotEquals});
    }
  }
  return condition;
}

}  // namespace wdsparql
