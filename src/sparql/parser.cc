#include "sparql/parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "util/strings.h"

namespace wdsparql {
namespace {

enum class TokenKind {
  kLParen,
  kRParen,
  kAnd,
  kOpt,
  kUnion,
  kFilter,
  kEquals,
  kNotEquals,
  kVar,
  kIri,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;   // Spelling for kVar (without '?') and kIri.
  std::size_t offset; // Byte offset in the input, for diagnostics.
};

/// Splits the input into tokens; returns an error on unknown characters.
Status Tokenize(std::string_view text, std::vector<Token>* out) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    char c = text[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    if (c == '(') {
      out->push_back({TokenKind::kLParen, "", pos});
      ++pos;
      continue;
    }
    if (c == ')') {
      out->push_back({TokenKind::kRParen, "", pos});
      ++pos;
      continue;
    }
    if (c == '?') {
      std::size_t start = ++pos;
      while (pos < text.size() && IsIdentChar(text[pos])) ++pos;
      if (pos == start) {
        return Status::InvalidArgument("empty variable name at offset " +
                                       std::to_string(start - 1));
      }
      out->push_back({TokenKind::kVar, std::string(text.substr(start, pos - start)),
                      start - 1});
      continue;
    }
    if (c == '=') {
      out->push_back({TokenKind::kEquals, "", pos});
      ++pos;
      continue;
    }
    if (c == '!' && pos + 1 < text.size() && text[pos + 1] == '=') {
      out->push_back({TokenKind::kNotEquals, "", pos});
      pos += 2;
      continue;
    }
    if (c == '<') {
      std::size_t close = text.find('>', pos);
      if (close == std::string_view::npos) {
        return Status::InvalidArgument("unterminated '<' IRI at offset " +
                                       std::to_string(pos));
      }
      out->push_back({TokenKind::kIri, std::string(text.substr(pos + 1, close - pos - 1)),
                      pos});
      pos = close + 1;
      continue;
    }
    if (IsIdentChar(c)) {
      std::size_t start = pos;
      while (pos < text.size() && IsIdentChar(text[pos])) ++pos;
      std::string word(text.substr(start, pos - start));
      if (word == "AND") {
        out->push_back({TokenKind::kAnd, "", start});
      } else if (word == "OPT" || word == "OPTIONAL") {
        out->push_back({TokenKind::kOpt, "", start});
      } else if (word == "UNION") {
        out->push_back({TokenKind::kUnion, "", start});
      } else if (word == "FILTER") {
        out->push_back({TokenKind::kFilter, "", start});
      } else {
        out->push_back({TokenKind::kIri, std::move(word), start});
      }
      continue;
    }
    return Status::InvalidArgument("unexpected character '" + std::string(1, c) +
                                   "' at offset " + std::to_string(pos));
  }
  out->push_back({TokenKind::kEnd, "", text.size()});
  return Status::OK();
}

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  Parser(std::vector<Token> tokens, TermPool* pool)
      : tokens_(std::move(tokens)), pool_(pool) {}

  Result<PatternPtr> Parse() {
    Result<PatternPtr> pattern = ParseUnion();
    if (!pattern.ok()) return pattern;
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after pattern");
    }
    return pattern;
  }

 private:
  const Token& Peek() const { return tokens_[index_]; }
  const Token& Advance() { return tokens_[index_++]; }

  Status ErrorStatus(const std::string& message) const {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(Peek().offset));
  }
  Result<PatternPtr> Error(const std::string& message) const {
    return Result<PatternPtr>(ErrorStatus(message));
  }

  Result<PatternPtr> ParseUnion() {
    Result<PatternPtr> left = ParseOpt();
    if (!left.ok()) return left;
    PatternPtr acc = left.value();
    while (Peek().kind == TokenKind::kUnion) {
      Advance();
      Result<PatternPtr> right = ParseOpt();
      if (!right.ok()) return right;
      acc = GraphPattern::MakeUnion(acc, right.value());
    }
    return acc;
  }

  Result<PatternPtr> ParseOpt() {
    Result<PatternPtr> left = ParseAnd();
    if (!left.ok()) return left;
    PatternPtr acc = left.value();
    while (Peek().kind == TokenKind::kOpt) {
      Advance();
      Result<PatternPtr> right = ParseAnd();
      if (!right.ok()) return right;
      acc = GraphPattern::MakeOpt(acc, right.value());
    }
    return acc;
  }

  Result<PatternPtr> ParseAnd() {
    Result<PatternPtr> left = ParseFiltered();
    if (!left.ok()) return left;
    PatternPtr acc = left.value();
    while (Peek().kind == TokenKind::kAnd) {
      Advance();
      Result<PatternPtr> right = ParseFiltered();
      if (!right.ok()) return right;
      acc = GraphPattern::MakeAnd(acc, right.value());
    }
    return acc;
  }

  /// filtered := primary ('FILTER' '(' atom ('AND' atom)* ')')*.
  Result<PatternPtr> ParseFiltered() {
    Result<PatternPtr> inner = ParsePrimary();
    if (!inner.ok()) return inner;
    PatternPtr acc = inner.value();
    while (Peek().kind == TokenKind::kFilter) {
      Advance();
      if (Peek().kind != TokenKind::kLParen) return Error("expected '(' after FILTER");
      Advance();
      FilterCondition condition;
      for (;;) {
        FilterAtom atom;
        Status lhs = ParseFilterTerm(&atom.lhs);
        if (!lhs.ok()) return Result<PatternPtr>(lhs);
        if (Peek().kind == TokenKind::kEquals) {
          atom.op = FilterOp::kEquals;
        } else if (Peek().kind == TokenKind::kNotEquals) {
          atom.op = FilterOp::kNotEquals;
        } else {
          return Error("expected '=' or '!=' in FILTER condition");
        }
        Advance();
        Status rhs = ParseFilterTerm(&atom.rhs);
        if (!rhs.ok()) return Result<PatternPtr>(rhs);
        condition.atoms.push_back(atom);
        if (Peek().kind != TokenKind::kAnd) break;
        Advance();
      }
      if (Peek().kind != TokenKind::kRParen) {
        return Error("expected ')' closing FILTER condition");
      }
      Advance();
      acc = GraphPattern::MakeFilter(acc, std::move(condition));
    }
    return acc;
  }

  Status ParseFilterTerm(TermId* out) {
    const Token& token = Peek();
    if (token.kind == TokenKind::kVar) {
      *out = pool_->InternVariable(token.text);
    } else if (token.kind == TokenKind::kIri) {
      *out = pool_->InternIri(token.text);
    } else {
      return ErrorStatus("expected a term in FILTER condition");
    }
    Advance();
    return Status::OK();
  }

  /// primary := '(' union ')' | '(' term term term ')'.
  Result<PatternPtr> ParsePrimary() {
    if (Peek().kind != TokenKind::kLParen) {
      return Error("expected '('");
    }
    Advance();
    if (Peek().kind == TokenKind::kLParen) {
      // Parenthesised subexpression.
      Result<PatternPtr> inner = ParseUnion();
      if (!inner.ok()) return inner;
      if (Peek().kind != TokenKind::kRParen) return Error("expected ')'");
      Advance();
      return inner;
    }
    // Triple pattern.
    TermId terms[3];
    for (int i = 0; i < 3; ++i) {
      const Token& token = Peek();
      if (token.kind == TokenKind::kVar) {
        terms[i] = pool_->InternVariable(token.text);
      } else if (token.kind == TokenKind::kIri) {
        terms[i] = pool_->InternIri(token.text);
      } else {
        return Error("expected a term inside triple pattern");
      }
      Advance();
    }
    if (Peek().kind != TokenKind::kRParen) {
      return Error("expected ')' closing triple pattern");
    }
    Advance();
    return GraphPattern::MakeTriple(Triple(terms[0], terms[1], terms[2]));
  }

  std::vector<Token> tokens_;
  TermPool* pool_;
  std::size_t index_ = 0;
};

}  // namespace

Result<PatternPtr> ParsePattern(std::string_view text, TermPool* pool) {
  WDSPARQL_CHECK(pool != nullptr);
  std::vector<Token> tokens;
  Status tokenize_status = Tokenize(text, &tokens);
  if (!tokenize_status.ok()) return Result<PatternPtr>(tokenize_status);
  Parser parser(std::move(tokens), pool);
  return parser.Parse();
}

}  // namespace wdsparql
