#include "sparql/semantics.h"

#include <algorithm>
#include <unordered_set>

namespace wdsparql {
namespace {

/// Deduplicates and sorts a mapping list (deterministic result order).
std::vector<Mapping> Canonicalise(std::vector<Mapping> mappings) {
  std::sort(mappings.begin(), mappings.end());
  mappings.erase(std::unique(mappings.begin(), mappings.end()), mappings.end());
  return mappings;
}

std::vector<Mapping> EvaluateRec(const GraphPattern& p, const RdfGraph& g) {
  switch (p.kind()) {
    case PatternKind::kTriple:
      return EvaluateTriple(p.triple(), g);
    case PatternKind::kAnd: {
      std::vector<Mapping> left = EvaluateRec(*p.left(), g);
      std::vector<Mapping> right = EvaluateRec(*p.right(), g);
      std::vector<Mapping> out;
      for (const Mapping& mu1 : left) {
        for (const Mapping& mu2 : right) {
          std::optional<Mapping> joined = Mapping::Union(mu1, mu2);
          if (joined.has_value()) out.push_back(std::move(*joined));
        }
      }
      return out;
    }
    case PatternKind::kOpt: {
      std::vector<Mapping> left = EvaluateRec(*p.left(), g);
      std::vector<Mapping> right = EvaluateRec(*p.right(), g);
      std::vector<Mapping> out;
      for (const Mapping& mu1 : left) {
        bool extended = false;
        for (const Mapping& mu2 : right) {
          std::optional<Mapping> joined = Mapping::Union(mu1, mu2);
          if (joined.has_value()) {
            out.push_back(std::move(*joined));
            extended = true;
          }
        }
        if (!extended) out.push_back(mu1);
      }
      return out;
    }
    case PatternKind::kUnion: {
      std::vector<Mapping> out = EvaluateRec(*p.left(), g);
      std::vector<Mapping> right = EvaluateRec(*p.right(), g);
      out.insert(out.end(), right.begin(), right.end());
      return out;
    }
    case PatternKind::kFilter: {
      std::vector<Mapping> out;
      for (Mapping& mu : EvaluateRec(*p.left(), g)) {
        if (p.condition().Satisfied(mu)) out.push_back(std::move(mu));
      }
      return out;
    }
  }
  WDSPARQL_CHECK(false);
  return {};
}

}  // namespace

std::vector<Mapping> EvaluateTriple(const Triple& t, const RdfGraph& graph) {
  const TripleSet& triples = graph.triples();

  // Pick the most selective bound position to drive the scan.
  int bound_pos = -1;
  std::size_t best_size = triples.size() + 1;
  for (int pos = 0; pos < 3; ++pos) {
    if (IsIri(t[pos])) {
      std::size_t size = triples.TriplesWithTermAt(pos, t[pos]).size();
      if (size < best_size) {
        best_size = size;
        bound_pos = pos;
      }
    }
  }

  std::vector<Mapping> out;
  auto try_match = [&](const Triple& data) {
    Mapping mu;
    for (int pos = 0; pos < 3; ++pos) {
      TermId term = t[pos];
      if (IsVariable(term)) {
        if (!mu.Bind(term, data[pos])) return;  // Repeated variable mismatch.
      } else if (term != data[pos]) {
        return;
      }
    }
    out.push_back(std::move(mu));
  };

  if (bound_pos >= 0) {
    for (uint32_t idx : triples.TriplesWithTermAt(bound_pos, t[bound_pos])) {
      try_match(triples.triples()[idx]);
    }
  } else {
    for (const Triple& data : triples) try_match(data);
  }
  return Canonicalise(std::move(out));
}

std::vector<Mapping> Evaluate(const GraphPattern& pattern, const RdfGraph& graph) {
  return Canonicalise(EvaluateRec(pattern, graph));
}

bool EvaluateContains(const GraphPattern& pattern, const RdfGraph& graph,
                      const Mapping& mu) {
  std::vector<Mapping> answers = Evaluate(pattern, graph);
  return std::find(answers.begin(), answers.end(), mu) != answers.end();
}

}  // namespace wdsparql
