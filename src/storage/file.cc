#include "storage/file.h"

#include <cerrno>
#include <cstring>

#if defined(_WIN32)
#define WDSPARQL_STORAGE_NO_MMAP 1
#include <cstdio>
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace wdsparql {
namespace storage {
namespace {

std::string ErrnoMessage(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}

}  // namespace

FileBuffer::~FileBuffer() { Release(); }

FileBuffer::FileBuffer(FileBuffer&& other) noexcept { *this = std::move(other); }

FileBuffer& FileBuffer::operator=(FileBuffer&& other) noexcept {
  if (this == &other) return *this;
  Release();
  heap_ = std::move(other.heap_);
  mapped_ = other.mapped_;
  size_ = other.size_;
  data_ = mapped_ ? other.data_ : heap_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  return *this;
}

void FileBuffer::Release() {
#if !defined(WDSPARQL_STORAGE_NO_MMAP)
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  heap_.clear();
}

Result<FileBuffer> FileBuffer::Load(const std::string& path, bool prefer_mmap) {
#if defined(WDSPARQL_STORAGE_NO_MMAP)
  (void)prefer_mmap;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open file: " + path);
  // Chunked read to EOF: no ftell, whose long return is 32-bit on LLP64
  // platforms and would mis-size files over 2 GiB.
  FileBuffer buffer;
  char chunk[1 << 16];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buffer.heap_.insert(buffer.heap_.end(), chunk, chunk + n);
  }
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IoError("read failure on " + path);
  buffer.size_ = buffer.heap_.size();
  buffer.data_ = buffer.heap_.data();
  return buffer;
#else
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::IoError(ErrnoMessage("open", path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status status = Status::IoError(ErrnoMessage("fstat", path));
    ::close(fd);
    return status;
  }
  std::size_t size = static_cast<std::size_t>(st.st_size);
  FileBuffer buffer;
  buffer.size_ = size;
  if (prefer_mmap && size > 0) {
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr != MAP_FAILED) {
      ::close(fd);  // The mapping keeps the pages; the fd is not needed.
      buffer.data_ = static_cast<const uint8_t*>(addr);
      buffer.mapped_ = true;
      return buffer;
    }
    // Fall through to the buffered path: mapping can legitimately fail
    // (e.g. special filesystems); the caller asked for the bytes, not
    // the mechanism.
  }
  buffer.heap_.resize(size);
  std::size_t done = 0;
  while (done < size) {
    ssize_t n = ::read(fd, buffer.heap_.data() + done, size - done);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Status status = Status::IoError(ErrnoMessage("read", path));
      ::close(fd);
      return status;
    }
    done += static_cast<std::size_t>(n);
  }
  ::close(fd);
  buffer.data_ = buffer.heap_.data();
  return buffer;
#endif
}

bool FileExists(const std::string& path) {
#if defined(WDSPARQL_STORAGE_NO_MMAP)
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f != nullptr) std::fclose(f);
  return f != nullptr;
#else
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
#endif
}

Status WriteFileAtomic(const std::string& path, const void* bytes, std::size_t size) {
#if defined(WDSPARQL_STORAGE_NO_MMAP)
  // Portable fallback: stage into a sibling and rename. Weaker than the
  // POSIX path (no fsync, and the remove/rename pair is a two-step
  // window) but never truncates the only durable copy in place.
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot create " + tmp);
  if (size > 0 && std::fwrite(bytes, 1, size, f) != size) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::IoError("short write to " + tmp);
  }
  std::fclose(f);
  std::remove(path.c_str());  // Windows rename refuses to overwrite.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot publish " + path);
  }
  return Status::OK();
#else
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError(ErrnoMessage("open", tmp));
  const uint8_t* cursor = static_cast<const uint8_t*>(bytes);
  std::size_t remaining = size;
  while (remaining > 0) {
    ssize_t n = ::write(fd, cursor, remaining);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Status status = Status::IoError(ErrnoMessage("write", tmp));
      ::close(fd);
      ::unlink(tmp.c_str());
      return status;
    }
    cursor += n;
    remaining -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status status = Status::IoError(ErrnoMessage("fsync", tmp));
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status status = Status::IoError(ErrnoMessage("rename", tmp));
    ::unlink(tmp.c_str());
    return status;
  }
  SyncParentDir(path);
  return Status::OK();
#endif
}

void SyncParentDir(const std::string& path) {
#if defined(WDSPARQL_STORAGE_NO_MMAP)
  (void)path;
#else
  // Best effort — some filesystems refuse directory fds.
  std::string::size_type slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
#endif
}

AtomicFileWriter::~AtomicFileWriter() {
#if !defined(WDSPARQL_STORAGE_NO_MMAP)
  if (fd_ >= 0) {
    ::close(fd_);
    if (!committed_) ::unlink((path_ + ".tmp").c_str());
  }
#endif
}

AtomicFileWriter::AtomicFileWriter(AtomicFileWriter&& other) noexcept {
  *this = std::move(other);
}

AtomicFileWriter& AtomicFileWriter::operator=(AtomicFileWriter&& other) noexcept {
  if (this == &other) return *this;
#if !defined(WDSPARQL_STORAGE_NO_MMAP)
  if (fd_ >= 0) {
    ::close(fd_);
    if (!committed_) ::unlink((path_ + ".tmp").c_str());
  }
#endif
  path_ = std::move(other.path_);
  fd_ = other.fd_;
  committed_ = other.committed_;
  other.fd_ = -1;
  other.committed_ = false;
  return *this;
}

Result<AtomicFileWriter> AtomicFileWriter::Create(const std::string& path) {
#if defined(WDSPARQL_STORAGE_NO_MMAP)
  return Status::Internal("streaming snapshot writes are not supported on this platform");
#else
  AtomicFileWriter writer;
  writer.path_ = path;
  std::string tmp = path + ".tmp";
  writer.fd_ = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (writer.fd_ < 0) return Status::IoError(ErrnoMessage("open", tmp));
  return writer;
#endif
}

Status AtomicFileWriter::WriteAt(uint64_t offset, const void* bytes, std::size_t n) {
#if defined(WDSPARQL_STORAGE_NO_MMAP)
  (void)offset; (void)bytes; (void)n;
  return Status::Internal("streaming snapshot writes are not supported on this platform");
#else
  const uint8_t* cursor = static_cast<const uint8_t*>(bytes);
  std::size_t remaining = n;
  while (remaining > 0) {
    ssize_t written = ::pwrite(fd_, cursor, remaining, static_cast<off_t>(offset));
    if (written < 0 && errno == EINTR) continue;
    if (written <= 0) return Status::IoError(ErrnoMessage("write", path_ + ".tmp"));
    cursor += written;
    offset += static_cast<uint64_t>(written);
    remaining -= static_cast<std::size_t>(written);
  }
  return Status::OK();
#endif
}

Status AtomicFileWriter::SetLength(uint64_t size) {
#if defined(WDSPARQL_STORAGE_NO_MMAP)
  (void)size;
  return Status::Internal("streaming snapshot writes are not supported on this platform");
#else
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Status::IoError(ErrnoMessage("ftruncate", path_ + ".tmp"));
  }
  return Status::OK();
#endif
}

Status AtomicFileWriter::Commit() {
#if defined(WDSPARQL_STORAGE_NO_MMAP)
  return Status::Internal("streaming snapshot writes are not supported on this platform");
#else
  std::string tmp = path_ + ".tmp";
  if (::fsync(fd_) != 0) return Status::IoError(ErrnoMessage("fsync", tmp));
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    return Status::IoError(ErrnoMessage("rename", tmp));
  }
  committed_ = true;
  SyncParentDir(path_);
  return Status::OK();
#endif
}

}  // namespace storage
}  // namespace wdsparql
