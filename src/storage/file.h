#ifndef WDSPARQL_STORAGE_FILE_H_
#define WDSPARQL_STORAGE_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

/// \file
/// File access primitives for the persistence layer.
///
/// `FileBuffer` presents an immutable byte view of a whole file, backed
/// by `mmap` when available (the instant-reopen path: the snapshot's
/// term heap and index runs are consumed straight out of the page
/// cache) with a portable read()-into-buffer fallback that behaves
/// identically. `WriteFileAtomic` is the crash-safe publish primitive:
/// write to a temporary sibling, fsync, rename over the target — a
/// reader sees either the old file or the new one, never a torn mix.

namespace wdsparql {
namespace storage {

/// An immutable, contiguous view of a file's bytes. Move-only; unmaps
/// or frees on destruction.
class FileBuffer {
 public:
  FileBuffer() = default;
  ~FileBuffer();
  FileBuffer(FileBuffer&& other) noexcept;
  FileBuffer& operator=(FileBuffer&& other) noexcept;
  FileBuffer(const FileBuffer&) = delete;
  FileBuffer& operator=(const FileBuffer&) = delete;

  /// Loads the file at `path`. With `prefer_mmap` the file is mapped
  /// read-only (falling back to a heap buffer if mapping fails); without
  /// it the bytes are read into a heap buffer. Missing file: kNotFound;
  /// other OS failures: kIoError.
  static Result<FileBuffer> Load(const std::string& path, bool prefer_mmap);

  const uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  /// True when the view is a live memory mapping (diagnostics only).
  bool mapped() const { return mapped_; }

 private:
  void Release();

  const uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;             // data_ came from mmap.
  std::vector<uint8_t> heap_;       // Fallback storage when !mapped_.
};

/// Writes `bytes` to `path` atomically: temporary sibling + fsync +
/// rename, then a best-effort fsync of the containing directory so the
/// rename itself is durable.
Status WriteFileAtomic(const std::string& path, const void* bytes, std::size_t size);

/// Incrementally builds `path` via a temporary sibling: positioned
/// writes (gaps read back as zeros), then `Commit` fsyncs and renames.
/// Destruction without Commit abandons the temporary. Lets the snapshot
/// writer stream sections straight from the live store instead of
/// materialising the whole file in memory first.
class AtomicFileWriter {
 public:
  AtomicFileWriter() = default;
  ~AtomicFileWriter();
  AtomicFileWriter(AtomicFileWriter&& other) noexcept;
  AtomicFileWriter& operator=(AtomicFileWriter&& other) noexcept;
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Opens `<path>.tmp` for writing (truncating any stale leftover).
  static Result<AtomicFileWriter> Create(const std::string& path);

  /// Writes `n` bytes at absolute `offset`.
  Status WriteAt(uint64_t offset, const void* bytes, std::size_t n);

  /// Extends (or trims) the staged file to exactly `size` bytes; the
  /// extension reads back as zeros. Pins the file length when the final
  /// section ends before the laid-out file size.
  Status SetLength(uint64_t size);

  /// fsync + rename over the target + best-effort directory sync.
  Status Commit();

 private:
  std::string path_;  // Final target; temp is path_ + ".tmp".
  int fd_ = -1;
  bool committed_ = false;
};

/// Best-effort fsync of the directory containing `path` (makes a
/// create/rename of `path` itself durable; no-op where unsupported).
void SyncParentDir(const std::string& path);

/// True iff a file (or directory) exists at `path`.
bool FileExists(const std::string& path);

}  // namespace storage
}  // namespace wdsparql

#endif  // WDSPARQL_STORAGE_FILE_H_
