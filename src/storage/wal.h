#ifndef WDSPARQL_STORAGE_WAL_H_
#define WDSPARQL_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include <memory>

#include "storage/format.h"
#include "util/status.h"
#include "wdsparql/metrics.h"
#include "wdsparql/storage.h"
#include "wdsparql/trace.h"

/// \file
/// The write-ahead log.
///
/// One append-only file of CRC-framed mutation records sitting next to
/// the snapshot. Records carry term *spellings*, not ids: ids are an
/// artifact of intern order, and the log must replay into a pool whose
/// tail diverged from the snapshot's. `Open` replays every intact frame
/// through a callback, then truncates the file after the last intact
/// frame — a torn tail (crash mid-append) is discarded exactly once and
/// never corrupts later appends.
///
/// Two frame shapes exist: single records (one mutation each) and
/// *group* records (format version 2): a whole `WriteBatch` commit in
/// one frame under one CRC, written with one contiguous pwrite and one
/// optional fsync. Replay flattens groups into the record stream; the
/// shared CRC makes each group atomic — a crash mid-group discards the
/// whole group, never a prefix of it.

namespace wdsparql {
namespace storage {

/// A decoded log record (single mutation; groups flatten into these on
/// replay).
struct WalRecord {
  WalRecordType type;
  std::string subject;
  std::string predicate;
  std::string object;
};

/// One mutation of a group append, viewing the caller's spellings (they
/// must stay alive for the duration of the `AppendGroup` call).
struct WalOp {
  WalRecordType type;  ///< kAddTriple or kRemoveTriple.
  std::string_view subject;
  std::string_view predicate;
  std::string_view object;
};

/// What `Open` found in the existing log: how many intact mutation
/// records replayed and whether a torn tail (crash mid-append) was
/// discarded. Feeds the storage metrics.
struct WalReplayInfo {
  uint64_t records = 0;   ///< Mutations replayed (groups flattened).
  bool torn_tail = false; ///< A damaged tail frame was truncated away.
};

/// An open, appendable write-ahead log. Move-only (owns the fd).
class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog();
  WriteAheadLog(WriteAheadLog&& other) noexcept;
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Opens (creating if absent) the log at `path`, validates the header,
  /// decodes every intact frame into `*replayed`, truncates the torn
  /// tail if any, and leaves the log positioned for appends. The file is
  /// exclusively locked (flock) for the log's lifetime: a second writer
  /// on the same path gets `kFailedPrecondition` instead of the two
  /// silently overwriting each other's frames. A log whose header is
  /// damaged is `kCorruption` (the caller decides whether to discard
  /// it); OS failures are `kIoError`.
  static Result<WriteAheadLog> Open(const std::string& path, WalSyncMode sync,
                                    std::vector<WalRecord>* replayed,
                                    WalReplayInfo* replay_info = nullptr);

  /// Attaches the engine-wide metrics registry: appends then time the
  /// frame write and the fsync separately (`write.wal_append_ns`,
  /// `write.wal_fsync_ns` histograms) and count frames and bytes
  /// (`write.wal_groups`, `write.wal_bytes`). Null detaches. Instrument
  /// pointers are cached so the append path skips the name lookup.
  void set_metrics(std::shared_ptr<MetricsRegistry> metrics);

  /// Installs a request-scoped trace sink for the duration of a commit:
  /// subsequent appends emit `wal.append` / `wal.fsync` spans into `ctx`
  /// under `parent`. Null detaches. Writer-side only (the WAL has a
  /// single writer); the caller detaches before `ctx` dies.
  void set_trace(TraceContext* ctx, uint32_t parent) {
    trace_ = ctx;
    trace_parent_ = parent;
  }

  /// Appends one framed record; with `WalSyncMode::kEveryRecord` the
  /// frame is fsynced before returning. The record is durable (per the
  /// sync mode) when this returns OK — callers must not mutate the
  /// in-memory state on error.
  Status Append(const WalRecord& record);

  /// Zero-copy append: serialises straight from the views into a
  /// reusable scratch buffer (the mutation hot path — no per-record
  /// string or vector allocations once the buffer is warm).
  Status Append(WalRecordType type, std::string_view subject,
                std::string_view predicate, std::string_view object);

  /// Appends `ops` as ONE group frame: one contiguous pwrite, one CRC,
  /// one fsync (per the sync mode). The group is durable atomically —
  /// replay applies all of it or none of it. `kInvalidArgument` if the
  /// group would exceed the maximum frame size (the caller splits its
  /// batch); nothing is written in that case.
  Status AppendGroup(const std::vector<WalOp>& ops);

  /// Discards every record: truncates the log back to its header and
  /// syncs. Used by `Database::Checkpoint` after the snapshot rename.
  Status Truncate();

  /// Bytes of record data currently in the log (excludes the header).
  uint64_t record_bytes() const { return append_offset_ - sizeof(WalHeader); }

  const std::string& path() const { return path_; }

 private:
  /// CRCs, frames and writes the payload staged in `scratch_` (which
  /// starts with `sizeof(WalFrameHeader)` reserved bytes) as one
  /// contiguous pwrite + optional fsync.
  Status WriteScratchFrame();

  std::string path_;
  int fd_ = -1;
  WalSyncMode sync_ = WalSyncMode::kNone;
  uint64_t append_offset_ = sizeof(WalHeader);
  std::vector<uint8_t> scratch_;  // Reused frame buffer for appends.

  // Metrics (null when detached); see set_metrics.
  std::shared_ptr<MetricsRegistry> metrics_;
  Histogram* append_ns_metric_ = nullptr;
  Histogram* fsync_ns_metric_ = nullptr;
  Counter* bytes_metric_ = nullptr;
  Counter* groups_metric_ = nullptr;

  // Commit-scoped trace sink (null when detached); see set_trace.
  TraceContext* trace_ = nullptr;
  uint32_t trace_parent_ = 0;
};

}  // namespace storage
}  // namespace wdsparql

#endif  // WDSPARQL_STORAGE_WAL_H_
