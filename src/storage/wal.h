#ifndef WDSPARQL_STORAGE_WAL_H_
#define WDSPARQL_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "storage/format.h"
#include "util/status.h"
#include "wdsparql/storage.h"

/// \file
/// The write-ahead log.
///
/// One append-only file of CRC-framed mutation records sitting next to
/// the snapshot. Records carry term *spellings*, not ids: ids are an
/// artifact of intern order, and the log must replay into a pool whose
/// tail diverged from the snapshot's. `Open` replays every intact frame
/// through a callback, then truncates the file after the last intact
/// frame — a torn tail (crash mid-append) is discarded exactly once and
/// never corrupts later appends.

namespace wdsparql {
namespace storage {

/// A decoded log record.
struct WalRecord {
  WalRecordType type;
  std::string subject;
  std::string predicate;
  std::string object;
};

/// An open, appendable write-ahead log. Move-only (owns the fd).
class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog();
  WriteAheadLog(WriteAheadLog&& other) noexcept;
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Opens (creating if absent) the log at `path`, validates the header,
  /// decodes every intact frame into `*replayed`, truncates the torn
  /// tail if any, and leaves the log positioned for appends. The file is
  /// exclusively locked (flock) for the log's lifetime: a second writer
  /// on the same path gets `kFailedPrecondition` instead of the two
  /// silently overwriting each other's frames. A log whose header is
  /// damaged is `kCorruption` (the caller decides whether to discard
  /// it); OS failures are `kIoError`.
  static Result<WriteAheadLog> Open(const std::string& path, WalSyncMode sync,
                                    std::vector<WalRecord>* replayed);

  /// Appends one framed record; with `WalSyncMode::kEveryRecord` the
  /// frame is fsynced before returning. The record is durable (per the
  /// sync mode) when this returns OK — callers must not mutate the
  /// in-memory state on error.
  Status Append(const WalRecord& record);

  /// Zero-copy append: serialises straight from the views into a
  /// reusable scratch buffer (the mutation hot path — no per-record
  /// string or vector allocations once the buffer is warm).
  Status Append(WalRecordType type, std::string_view subject,
                std::string_view predicate, std::string_view object);

  /// Discards every record: truncates the log back to its header and
  /// syncs. Used by `Database::Checkpoint` after the snapshot rename.
  Status Truncate();

  /// Bytes of record data currently in the log (excludes the header).
  uint64_t record_bytes() const { return append_offset_ - sizeof(WalHeader); }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
  WalSyncMode sync_ = WalSyncMode::kNone;
  uint64_t append_offset_ = sizeof(WalHeader);
  std::vector<uint8_t> scratch_;  // Reused frame buffer for appends.
};

}  // namespace storage
}  // namespace wdsparql

#endif  // WDSPARQL_STORAGE_WAL_H_
