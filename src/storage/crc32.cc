#include "storage/crc32.h"

#include <array>

namespace wdsparql {
namespace storage {
namespace {

/// The byte-at-a-time lookup table for the reflected IEEE polynomial
/// 0xEDB88320, computed once at first use.
const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, std::size_t size, uint32_t seed) {
  const std::array<uint32_t, 256>& table = Crc32Table();
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace storage
}  // namespace wdsparql
