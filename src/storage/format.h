#ifndef WDSPARQL_STORAGE_FORMAT_H_
#define WDSPARQL_STORAGE_FORMAT_H_

#include <cstdint>
#include <cstring>

#include "wdsparql/storage.h"

/// \file
/// The on-disk snapshot and WAL layouts (authoritative prose version in
/// docs/FILE_FORMAT.md).
///
/// A snapshot is: fixed-size header, section directory, then the
/// page-aligned section payloads. All integers are little-endian (the
/// `kEndianTag` field makes a byte-swapped reader fail loudly instead of
/// misreading); all structs below are exact on-disk images, so they are
/// trivially copyable, packed by construction (no implicit padding) and
/// `static_assert`ed to their wire size.
///
/// The WAL is: fixed-size header, then a run of frames, each an 8-byte
/// frame header (payload length + payload CRC32) followed by the
/// payload. A frame whose length or CRC does not check out marks the
/// torn tail: everything before it is intact, it and everything after is
/// discarded.

namespace wdsparql {
namespace storage {

/// Snapshot file magic ("WDSQSNAP").
inline constexpr char kSnapshotMagic[8] = {'W', 'D', 'S', 'Q', 'S', 'N', 'A', 'P'};

/// WAL file magic ("WDSQWAL\0").
inline constexpr char kWalMagic[8] = {'W', 'D', 'S', 'Q', 'W', 'A', 'L', '\0'};

/// Written as a native u32; reads back differently on a byte-swapped
/// machine, turning silent misreads into a structured error.
inline constexpr uint32_t kEndianTag = 0x0A0B0C0Du;

/// Section payloads start at multiples of this (mmap-friendly, and the
/// fixed-width sections land on their natural alignment for in-place
/// consumption).
inline constexpr uint64_t kSectionAlignment = 4096;

/// Section directory ids.
enum SectionId : uint32_t {
  /// The term-pool IRI heap: u64 offsets[iri_count + 1], then the
  /// concatenated spelling bytes. Spelling i is bytes [offsets[i],
  /// offsets[i+1]) of the blob.
  kSectionTerms = 1,
  /// The store dictionary: TermId[term_count], indexed by DataId.
  kSectionDict = 2,
  /// The three permutation runs: EncTriple[triple_count], sorted in the
  /// section's order.
  kSectionSpo = 3,
  kSectionPos = 4,
  kSectionOsp = 5,
  /// Cardinality statistics (format version >= 2, optional as a group:
  /// either all six are present or none). The three single-value
  /// sections are `ValueCount[distinct]` sorted by id; the three pair
  /// sections are `PairCount[distinct prefixes]` sorted by (a, b). See
  /// optimizer/cardinality.h for the 16-byte entry layouts and
  /// docs/FILE_FORMAT.md for the validation rules.
  kSectionStatsS = 6,
  kSectionStatsP = 7,
  kSectionStatsO = 8,
  kSectionStatsSp = 9,
  kSectionStatsPo = 10,
  kSectionStatsOs = 11,
};

/// Fixed-size snapshot header, first bytes of the file.
struct SnapshotHeader {
  char magic[8];              ///< kSnapshotMagic.
  uint32_t version;           ///< storage_format::kSnapshotVersion.
  uint32_t endian;            ///< kEndianTag.
  uint64_t file_size;         ///< Total file length in bytes.
  uint64_t triple_count;      ///< Length of each permutation run.
  uint64_t iri_count;         ///< Term-pool IRI spellings.
  uint64_t term_count;        ///< Dictionary entries (distinct DataIds).
  uint64_t dict_sorted_limit; ///< TermId-sorted dictionary prefix length.
  uint32_t section_count;     ///< Entries in the directory.
  uint32_t directory_crc;     ///< CRC32 of the directory array.
  uint32_t header_crc;        ///< CRC32 of this struct with this field zeroed.
  uint32_t reserved;          ///< Zero.
};
static_assert(sizeof(SnapshotHeader) == 72, "on-disk layout drifted");

/// One directory entry; the directory follows the header immediately.
struct SectionEntry {
  uint32_t id;       ///< SectionId.
  uint32_t reserved; ///< Zero.
  uint64_t offset;   ///< Absolute payload offset, kSectionAlignment-aligned.
  uint64_t length;   ///< Payload length in bytes.
  uint32_t crc;      ///< CRC32 of the payload.
  uint32_t pad;      ///< Zero.
};
static_assert(sizeof(SectionEntry) == 32, "on-disk layout drifted");

/// Fixed-size WAL header, first bytes of the log.
struct WalHeader {
  char magic[8];    ///< kWalMagic.
  uint32_t version; ///< storage_format::kWalVersion.
  uint32_t endian;  ///< kEndianTag.
};
static_assert(sizeof(WalHeader) == 16, "on-disk layout drifted");

/// Per-frame header; the payload follows immediately.
struct WalFrameHeader {
  uint32_t payload_length; ///< Bytes of payload after this header.
  uint32_t payload_crc;    ///< CRC32 of the payload bytes.
};
static_assert(sizeof(WalFrameHeader) == 8, "on-disk layout drifted");

/// WAL payload record types (first payload byte).
enum class WalRecordType : uint8_t {
  kAddTriple = 1,
  kRemoveTriple = 2,
  /// A batch commit (WAL version >= 2): u32 op count, then that many
  /// sub-records, each {u8 kAddTriple/kRemoveTriple, three
  /// length-prefixed spellings}. The group shares ONE frame and ONE
  /// CRC, so replay applies it all-or-nothing — a torn group is
  /// discarded exactly like a torn single-record tail.
  kGroup = 3,
};

/// Upper bound on sane directory sizes; a section_count beyond this is
/// corruption, not a real snapshot.
inline constexpr uint32_t kMaxSections = 64;

}  // namespace storage
}  // namespace wdsparql

#endif  // WDSPARQL_STORAGE_FORMAT_H_
