#ifndef WDSPARQL_STORAGE_CRC32_H_
#define WDSPARQL_STORAGE_CRC32_H_

#include <cstddef>
#include <cstdint>

/// \file
/// CRC-32 (the IEEE 802.3 polynomial, as used by zip/zlib) over byte
/// ranges. Every snapshot section and every WAL frame carries one, so a
/// flipped bit anywhere in a persistent file surfaces as a structured
/// `kCorruption` status instead of undefined behaviour downstream.

namespace wdsparql {
namespace storage {

/// CRC-32 of `[data, data + size)`, optionally chained: pass a previous
/// return value as `seed` to checksum discontiguous ranges as one.
uint32_t Crc32(const void* data, std::size_t size, uint32_t seed = 0);

}  // namespace storage
}  // namespace wdsparql

#endif  // WDSPARQL_STORAGE_CRC32_H_
