#ifndef WDSPARQL_STORAGE_SNAPSHOT_H_
#define WDSPARQL_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "engine/indexed_store.h"
#include "optimizer/cardinality.h"
#include "storage/file.h"
#include "storage/format.h"
#include "wdsparql/storage.h"
#include "wdsparql/term.h"

/// \file
/// Single-file snapshot reader and writer.
///
/// `SnapshotView` opens a snapshot and exposes its sections as typed,
/// bounds- and checksum-validated in-place views: the term heap as
/// string_views over the mapped bytes, the dictionary as a `TermId`
/// array, the three permutation runs as `EncTriple` arrays ready to be
/// borrowed by `IndexedStore` without re-sorting or re-encoding. The
/// view owns the mapping; everything that borrows from it (the store's
/// base runs) must keep the view alive — `DatabaseImpl` holds it as a
/// shared_ptr for exactly that reason.
///
/// `WriteSnapshot` serializes a (TermPool, IndexedStore) pair whose
/// delta has been merged, publishing the file with an atomic rename.

namespace wdsparql {
namespace storage {

/// A validated, open snapshot. Move-only (owns the file view).
class SnapshotView {
 public:
  /// Opens and validates the snapshot at `path`: magic, version,
  /// endianness, header/directory CRCs, section bounds and alignment,
  /// per-section CRCs (when `options.verify_checksums`), and term-heap
  /// offset monotonicity. Any violation is `kCorruption` with a message
  /// naming the failed check; a missing file is `kNotFound`.
  static Result<SnapshotView> Open(const std::string& path, const OpenOptions& options);

  uint64_t triple_count() const { return triple_count_; }
  uint64_t iri_count() const { return iri_count_; }
  uint64_t term_count() const { return term_count_; }
  uint64_t dict_sorted_limit() const { return dict_sorted_limit_; }

  /// Spelling `i` of the term-pool IRI heap (borrowed from the view).
  std::string_view IriSpelling(uint64_t i) const {
    return std::string_view(reinterpret_cast<const char*>(term_blob_ + term_offsets_[i]),
                            term_offsets_[i + 1] - term_offsets_[i]);
  }

  /// The dictionary: `TermId[term_count()]`, indexed by `DataId`.
  const TermId* dict_terms() const { return dict_; }

  /// The permutation run sorted in `perm` order: `EncTriple[triple_count()]`.
  const EncTriple* run(Permutation perm) const { return runs_[static_cast<int>(perm)]; }

  /// True when the file carries the six cardinality-statistics sections
  /// (format version >= 2; legacy snapshots answer false and the store
  /// rebuilds the statistics on its first Compact).
  bool has_stats() const { return has_stats_; }

  /// Assembles the persisted statistics as an in-place borrow over the
  /// mapped sections, pinned by `keepalive` (the shared SnapshotView
  /// itself). Null when `has_stats()` is false.
  std::shared_ptr<const CardinalityStats> BorrowStats(
      std::shared_ptr<const void> keepalive) const;

  /// True when the view is a live memory mapping (diagnostics only).
  bool mapped() const { return buffer_.mapped(); }

 private:
  FileBuffer buffer_;
  uint64_t triple_count_ = 0;
  uint64_t iri_count_ = 0;
  uint64_t term_count_ = 0;
  uint64_t dict_sorted_limit_ = 0;
  const uint64_t* term_offsets_ = nullptr;
  const uint8_t* term_blob_ = nullptr;
  const TermId* dict_ = nullptr;
  const EncTriple* runs_[3] = {nullptr, nullptr, nullptr};
  bool has_stats_ = false;
  const ValueCount* stats_single_[3] = {nullptr, nullptr, nullptr};  // S, P, O.
  uint64_t stats_single_count_[3] = {0, 0, 0};
  const PairCount* stats_pair_[3] = {nullptr, nullptr, nullptr};  // SP, PO, OS.
  uint64_t stats_pair_count_[3] = {0, 0, 0};
};

/// Serializes `pool` + `store` to `path` (atomic rename). The store's
/// delta must already be merged (`MergeDelta`); a pending delta is
/// `kFailedPrecondition`.
///
/// When the store carries `CardinalityStats` (and `include_stats` is
/// left true) the file is written at format version 2 with the six
/// statistics sections; otherwise a version-1 file is produced,
/// byte-identical to the legacy writer. `include_stats = false` exists
/// for tests exercising the legacy open-and-rebuild path.
Status WriteSnapshot(const std::string& path, const TermPool& pool,
                     const IndexedStore& store, bool include_stats = true);

}  // namespace storage
}  // namespace wdsparql

#endif  // WDSPARQL_STORAGE_SNAPSHOT_H_
