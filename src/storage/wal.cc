#include "storage/wal.h"

#include <cerrno>
#include <cstring>

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

#include "storage/crc32.h"
#include "storage/file.h"

namespace wdsparql {
namespace storage {
namespace {

/// Frames larger than this are torn/corrupt framing, not real records
/// (a record is one byte of type plus three length-prefixed IRIs).
constexpr uint32_t kMaxFrameBytes = 64u << 20;

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), bytes, bytes + sizeof(v));
}

void AppendString(std::vector<uint8_t>* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

/// Decodes one record payload; false on malformed bytes (treated by the
/// caller exactly like a CRC mismatch: the tail is torn).
bool DecodePayload(const uint8_t* payload, uint32_t length, WalRecord* out) {
  uint32_t pos = 0;
  if (length < 1) return false;
  uint8_t type = payload[pos++];
  if (type != static_cast<uint8_t>(WalRecordType::kAddTriple) &&
      type != static_cast<uint8_t>(WalRecordType::kRemoveTriple)) {
    return false;
  }
  out->type = static_cast<WalRecordType>(type);
  std::string* fields[3] = {&out->subject, &out->predicate, &out->object};
  for (std::string* field : fields) {
    if (length - pos < sizeof(uint32_t)) return false;
    uint32_t n;
    std::memcpy(&n, payload + pos, sizeof(n));
    pos += sizeof(n);
    if (length - pos < n) return false;
    field->assign(reinterpret_cast<const char*>(payload + pos), n);
    pos += n;
  }
  return pos == length;
}

}  // namespace

WriteAheadLog::~WriteAheadLog() {
#if !defined(_WIN32)
  if (fd_ >= 0) ::close(fd_);
#endif
}

WriteAheadLog::WriteAheadLog(WriteAheadLog&& other) noexcept { *this = std::move(other); }

WriteAheadLog& WriteAheadLog::operator=(WriteAheadLog&& other) noexcept {
  if (this == &other) return *this;
#if !defined(_WIN32)
  if (fd_ >= 0) ::close(fd_);
#endif
  path_ = std::move(other.path_);
  fd_ = other.fd_;
  sync_ = other.sync_;
  append_offset_ = other.append_offset_;
  scratch_ = std::move(other.scratch_);
  other.fd_ = -1;
  other.append_offset_ = sizeof(WalHeader);
  return *this;
}

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path, WalSyncMode sync,
                                          std::vector<WalRecord>* replayed) {
#if defined(_WIN32)
  (void)path;
  (void)sync;
  (void)replayed;
  return Status::Internal("write-ahead logging is not supported on this platform");
#else
  replayed->clear();
  uint64_t valid_end = sizeof(WalHeader);
  bool fresh = !FileExists(path);
  if (!fresh) {
    // Decode every intact frame; stop at the first damaged one.
    Result<FileBuffer> loaded = FileBuffer::Load(path, /*prefer_mmap=*/false);
    if (!loaded.ok()) return loaded.status();
    const FileBuffer& buffer = loaded.value();
    if (buffer.size() < sizeof(WalHeader)) {
      // Created but never fully headered (a crash between open and the
      // header write). Frames live past the header, so a sub-header
      // file cannot hold an acknowledged record: reinitialise it.
      fresh = true;
    } else {
      WalHeader header;
      std::memcpy(&header, buffer.data(), sizeof(header));
      if (std::memcmp(header.magic, kWalMagic, sizeof(kWalMagic)) != 0) {
        return Status::Corruption(path + ": bad WAL magic");
      }
      if (header.endian != kEndianTag) {
        return Status::Corruption(path + ": WAL endianness mismatch");
      }
      if (header.version == 0 || header.version > storage_format::kWalVersion) {
        return Status::Corruption(path + ": unsupported WAL version");
      }
      uint64_t pos = sizeof(WalHeader);
      while (pos + sizeof(WalFrameHeader) <= buffer.size()) {
        WalFrameHeader frame;
        std::memcpy(&frame, buffer.data() + pos, sizeof(frame));
        if (frame.payload_length > kMaxFrameBytes ||
            pos + sizeof(frame) + frame.payload_length > buffer.size()) {
          break;  // Torn tail: length field or payload ran off the file.
        }
        const uint8_t* payload = buffer.data() + pos + sizeof(frame);
        if (Crc32(payload, frame.payload_length) != frame.payload_crc) break;
        WalRecord record;
        if (!DecodePayload(payload, frame.payload_length, &record)) break;
        replayed->push_back(std::move(record));
        pos += sizeof(frame) + frame.payload_length;
      }
      valid_end = pos;
    }
  }

  WriteAheadLog wal;
  wal.path_ = path;
  wal.sync_ = sync;
  wal.fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (wal.fd_ < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  // One writer per log: two processes appending at independently
  // tracked offsets would shred each other's frames. The lock lives as
  // long as the fd.
  if (::flock(wal.fd_, LOCK_EX | LOCK_NB) != 0) {
    if (errno == EWOULDBLOCK) {
      return Status::FailedPrecondition(path + " is locked by another process");
    }
    // Filesystems without flock support (e.g. some network mounts)
    // proceed unlocked rather than refusing to run at all.
  }
  if (fresh) {
    WalHeader header{};
    std::memcpy(header.magic, kWalMagic, sizeof(kWalMagic));
    header.version = storage_format::kWalVersion;
    header.endian = kEndianTag;
    if (::pwrite(wal.fd_, &header, sizeof(header), 0) !=
            static_cast<ssize_t>(sizeof(header)) ||
        ::ftruncate(wal.fd_, sizeof(header)) != 0 || ::fsync(wal.fd_) != 0) {
      return Status::IoError("write " + path + ": " + std::strerror(errno));
    }
    // The file itself must be durable before any frame is acknowledged:
    // a frame fsync means nothing if the log's directory entry is lost.
    SyncParentDir(path);
    valid_end = sizeof(WalHeader);
  } else if (::ftruncate(wal.fd_, static_cast<off_t>(valid_end)) != 0) {
    // Drop the torn tail so future replays (and appends) start clean.
    return Status::IoError("ftruncate " + path + ": " + std::strerror(errno));
  }
  wal.append_offset_ = valid_end;
  return wal;
#endif
}

Status WriteAheadLog::Append(const WalRecord& record) {
  return Append(record.type, record.subject, record.predicate, record.object);
}

Status WriteAheadLog::Append(WalRecordType type, std::string_view subject,
                             std::string_view predicate, std::string_view object) {
#if defined(_WIN32)
  (void)type;
  (void)subject;
  (void)predicate;
  (void)object;
  return Status::Internal("write-ahead logging is not supported on this platform");
#else
  if (fd_ < 0) return Status::FailedPrecondition("WAL is not open");
  // Replay treats any frame above kMaxFrameBytes as a torn tail, so an
  // oversize record must be rejected here — acknowledging it would lose
  // it (and every later frame) on the next open.
  uint64_t payload_bytes = 1 + 3 * sizeof(uint32_t) + subject.size() +
                           predicate.size() + object.size();
  if (payload_bytes > kMaxFrameBytes) {
    return Status::InvalidArgument("WAL record exceeds the maximum frame size");
  }
  // One reused buffer holding the whole frame, written with a single
  // contiguous pwrite: either the frame lands in full or the tail is
  // torn — which replay detects and discards.
  scratch_.clear();
  scratch_.reserve(sizeof(WalFrameHeader) + payload_bytes);
  scratch_.resize(sizeof(WalFrameHeader));  // Header patched in below.
  scratch_.push_back(static_cast<uint8_t>(type));
  AppendString(&scratch_, subject);
  AppendString(&scratch_, predicate);
  AppendString(&scratch_, object);

  WalFrameHeader frame;
  frame.payload_length = static_cast<uint32_t>(scratch_.size() - sizeof(frame));
  frame.payload_crc =
      Crc32(scratch_.data() + sizeof(frame), scratch_.size() - sizeof(frame));
  std::memcpy(scratch_.data(), &frame, sizeof(frame));

  ssize_t written = ::pwrite(fd_, scratch_.data(), scratch_.size(),
                             static_cast<off_t>(append_offset_));
  if (written != static_cast<ssize_t>(scratch_.size())) {
    return Status::IoError("append to " + path_ + ": " + std::strerror(errno));
  }
  if (sync_ == WalSyncMode::kEveryRecord && ::fsync(fd_) != 0) {
    return Status::IoError("fsync " + path_ + ": " + std::strerror(errno));
  }
  append_offset_ += scratch_.size();
  return Status::OK();
#endif
}

Status WriteAheadLog::Truncate() {
#if defined(_WIN32)
  return Status::Internal("write-ahead logging is not supported on this platform");
#else
  if (fd_ < 0) return Status::FailedPrecondition("WAL is not open");
  if (::ftruncate(fd_, sizeof(WalHeader)) != 0) {
    return Status::IoError("ftruncate " + path_ + ": " + std::strerror(errno));
  }
  if (::fsync(fd_) != 0) {
    return Status::IoError("fsync " + path_ + ": " + std::strerror(errno));
  }
  append_offset_ = sizeof(WalHeader);
  return Status::OK();
#endif
}

}  // namespace storage
}  // namespace wdsparql
