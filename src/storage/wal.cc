#include "storage/wal.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

#include "storage/crc32.h"
#include "storage/file.h"
#include "util/timer.h"

namespace wdsparql {
namespace storage {
namespace {

/// Frames larger than this are torn/corrupt framing, not real records
/// (a record is one byte of type plus three length-prefixed IRIs).
constexpr uint32_t kMaxFrameBytes = 64u << 20;

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), bytes, bytes + sizeof(v));
}

void AppendString(std::vector<uint8_t>* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

/// Decodes one single-mutation image at `*pos`: u8 type + three
/// length-prefixed spellings. Advances `*pos` past it on success.
bool DecodeMutation(const uint8_t* payload, uint32_t length, uint32_t* pos,
                    WalRecord* out) {
  if (length - *pos < 1) return false;
  uint8_t type = payload[(*pos)++];
  if (type != static_cast<uint8_t>(WalRecordType::kAddTriple) &&
      type != static_cast<uint8_t>(WalRecordType::kRemoveTriple)) {
    return false;
  }
  out->type = static_cast<WalRecordType>(type);
  std::string* fields[3] = {&out->subject, &out->predicate, &out->object};
  for (std::string* field : fields) {
    if (length - *pos < sizeof(uint32_t)) return false;
    uint32_t n;
    std::memcpy(&n, payload + *pos, sizeof(n));
    *pos += sizeof(n);
    if (length - *pos < n) return false;
    field->assign(reinterpret_cast<const char*>(payload + *pos), n);
    *pos += n;
  }
  return true;
}

/// Decodes one frame payload — a single record or a whole group — and
/// appends the decoded mutations to `out` only if the entire payload is
/// well formed (a malformed payload is treated by the caller exactly
/// like a CRC mismatch: the tail is torn, and nothing of this frame may
/// leak into the replay stream).
bool DecodePayload(const uint8_t* payload, uint32_t length,
                   std::vector<WalRecord>* out) {
  uint32_t pos = 0;
  if (length < 1) return false;
  if (payload[0] == static_cast<uint8_t>(WalRecordType::kGroup)) {
    pos = 1;
    if (length - pos < sizeof(uint32_t)) return false;
    uint32_t count;
    std::memcpy(&count, payload + pos, sizeof(count));
    pos += sizeof(count);
    std::vector<WalRecord> group;
    // `count` is untrusted bytes: clamp the reservation by the smallest
    // possible mutation image (13 bytes) so a crafted frame cannot
    // request a huge allocation before decoding fails.
    group.reserve(std::min<uint64_t>(count, length / 13 + 1));
    for (uint32_t i = 0; i < count; ++i) {
      WalRecord record;
      if (!DecodeMutation(payload, length, &pos, &record)) return false;
      group.push_back(std::move(record));
    }
    if (pos != length) return false;
    out->insert(out->end(), std::make_move_iterator(group.begin()),
                std::make_move_iterator(group.end()));
    return true;
  }
  WalRecord record;
  if (!DecodeMutation(payload, length, &pos, &record) || pos != length) {
    return false;
  }
  out->push_back(std::move(record));
  return true;
}

}  // namespace

WriteAheadLog::~WriteAheadLog() {
#if !defined(_WIN32)
  if (fd_ >= 0) ::close(fd_);
#endif
}

WriteAheadLog::WriteAheadLog(WriteAheadLog&& other) noexcept { *this = std::move(other); }

WriteAheadLog& WriteAheadLog::operator=(WriteAheadLog&& other) noexcept {
  if (this == &other) return *this;
#if !defined(_WIN32)
  if (fd_ >= 0) ::close(fd_);
#endif
  path_ = std::move(other.path_);
  fd_ = other.fd_;
  sync_ = other.sync_;
  append_offset_ = other.append_offset_;
  scratch_ = std::move(other.scratch_);
  metrics_ = std::move(other.metrics_);
  append_ns_metric_ = other.append_ns_metric_;
  fsync_ns_metric_ = other.fsync_ns_metric_;
  bytes_metric_ = other.bytes_metric_;
  groups_metric_ = other.groups_metric_;
  trace_ = other.trace_;
  trace_parent_ = other.trace_parent_;
  other.fd_ = -1;
  other.append_offset_ = sizeof(WalHeader);
  other.append_ns_metric_ = nullptr;
  other.fsync_ns_metric_ = nullptr;
  other.bytes_metric_ = nullptr;
  other.groups_metric_ = nullptr;
  other.trace_ = nullptr;
  other.trace_parent_ = 0;
  return *this;
}

void WriteAheadLog::set_metrics(std::shared_ptr<MetricsRegistry> metrics) {
  metrics_ = std::move(metrics);
  if (metrics_ == nullptr) {
    append_ns_metric_ = nullptr;
    fsync_ns_metric_ = nullptr;
    bytes_metric_ = nullptr;
    groups_metric_ = nullptr;
    return;
  }
  // Registry instruments are address-stable, so the append path pays
  // the name lookup once, here.
  append_ns_metric_ = &metrics_->histogram("write.wal_append_ns");
  fsync_ns_metric_ = &metrics_->histogram("write.wal_fsync_ns");
  bytes_metric_ = &metrics_->counter("write.wal_bytes");
  groups_metric_ = &metrics_->counter("write.wal_groups");
}

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path, WalSyncMode sync,
                                          std::vector<WalRecord>* replayed,
                                          WalReplayInfo* replay_info) {
#if defined(_WIN32)
  (void)path;
  (void)sync;
  (void)replayed;
  (void)replay_info;
  return Status::Internal("write-ahead logging is not supported on this platform");
#else
  replayed->clear();
  if (replay_info != nullptr) *replay_info = WalReplayInfo{};
  uint64_t valid_end = sizeof(WalHeader);
  bool fresh = !FileExists(path);
  bool upgrade_header = false;  // Older-version log: stamp it current.
  if (!fresh) {
    // Decode every intact frame; stop at the first damaged one.
    Result<FileBuffer> loaded = FileBuffer::Load(path, /*prefer_mmap=*/false);
    if (!loaded.ok()) return loaded.status();
    const FileBuffer& buffer = loaded.value();
    if (buffer.size() < sizeof(WalHeader)) {
      // Created but never fully headered (a crash between open and the
      // header write). Frames live past the header, so a sub-header
      // file cannot hold an acknowledged record: reinitialise it.
      fresh = true;
    } else {
      WalHeader header;
      std::memcpy(&header, buffer.data(), sizeof(header));
      if (std::memcmp(header.magic, kWalMagic, sizeof(kWalMagic)) != 0) {
        return Status::Corruption(path + ": bad WAL magic");
      }
      if (header.endian != kEndianTag) {
        return Status::Corruption(path + ": WAL endianness mismatch");
      }
      if (header.version == 0 || header.version > storage_format::kWalVersion) {
        return Status::Corruption(path + ": unsupported WAL version");
      }
      // An older-version log replays fine, but this writer may append
      // newer frame shapes (group frames) that an old reader would
      // misdecode as a torn tail and TRUNCATE — destroying acknowledged
      // records. Stamping the header to the current version first makes
      // that old reader fail loudly with kCorruption instead.
      upgrade_header = header.version < storage_format::kWalVersion;
      uint64_t pos = sizeof(WalHeader);
      while (pos + sizeof(WalFrameHeader) <= buffer.size()) {
        WalFrameHeader frame;
        std::memcpy(&frame, buffer.data() + pos, sizeof(frame));
        if (frame.payload_length > kMaxFrameBytes ||
            pos + sizeof(frame) + frame.payload_length > buffer.size()) {
          break;  // Torn tail: length field or payload ran off the file.
        }
        const uint8_t* payload = buffer.data() + pos + sizeof(frame);
        if (Crc32(payload, frame.payload_length) != frame.payload_crc) break;
        if (!DecodePayload(payload, frame.payload_length, replayed)) break;
        pos += sizeof(frame) + frame.payload_length;
      }
      valid_end = pos;
      if (replay_info != nullptr) {
        replay_info->records = replayed->size();
        replay_info->torn_tail = pos < buffer.size();
      }
    }
  }

  WriteAheadLog wal;
  wal.path_ = path;
  wal.sync_ = sync;
  wal.fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (wal.fd_ < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  // One writer per log: two processes appending at independently
  // tracked offsets would shred each other's frames. The lock lives as
  // long as the fd.
  if (::flock(wal.fd_, LOCK_EX | LOCK_NB) != 0) {
    if (errno == EWOULDBLOCK) {
      return Status::FailedPrecondition(path + " is locked by another process");
    }
    // Filesystems without flock support (e.g. some network mounts)
    // proceed unlocked rather than refusing to run at all.
  }
  if (fresh) {
    WalHeader header{};
    std::memcpy(header.magic, kWalMagic, sizeof(kWalMagic));
    header.version = storage_format::kWalVersion;
    header.endian = kEndianTag;
    if (::pwrite(wal.fd_, &header, sizeof(header), 0) !=
            static_cast<ssize_t>(sizeof(header)) ||
        ::ftruncate(wal.fd_, sizeof(header)) != 0 || ::fsync(wal.fd_) != 0) {
      return Status::IoError("write " + path + ": " + std::strerror(errno));
    }
    // The file itself must be durable before any frame is acknowledged:
    // a frame fsync means nothing if the log's directory entry is lost.
    SyncParentDir(path);
    valid_end = sizeof(WalHeader);
  } else if (::ftruncate(wal.fd_, static_cast<off_t>(valid_end)) != 0) {
    // Drop the torn tail so future replays (and appends) start clean.
    return Status::IoError("ftruncate " + path + ": " + std::strerror(errno));
  }
  if (!fresh && upgrade_header) {
    // Durable before any new-shape frame can be acknowledged.
    WalHeader header{};
    std::memcpy(header.magic, kWalMagic, sizeof(kWalMagic));
    header.version = storage_format::kWalVersion;
    header.endian = kEndianTag;
    if (::pwrite(wal.fd_, &header, sizeof(header), 0) !=
            static_cast<ssize_t>(sizeof(header)) ||
        ::fsync(wal.fd_) != 0) {
      return Status::IoError("write " + path + ": " + std::strerror(errno));
    }
  }
  wal.append_offset_ = valid_end;
  return wal;
#endif
}

Status WriteAheadLog::Append(const WalRecord& record) {
  return Append(record.type, record.subject, record.predicate, record.object);
}

Status WriteAheadLog::Append(WalRecordType type, std::string_view subject,
                             std::string_view predicate, std::string_view object) {
#if defined(_WIN32)
  (void)type;
  (void)subject;
  (void)predicate;
  (void)object;
  return Status::Internal("write-ahead logging is not supported on this platform");
#else
  if (fd_ < 0) return Status::FailedPrecondition("WAL is not open");
  // Replay treats any frame above kMaxFrameBytes as a torn tail, so an
  // oversize record must be rejected here — acknowledging it would lose
  // it (and every later frame) on the next open.
  uint64_t payload_bytes = 1 + 3 * sizeof(uint32_t) + subject.size() +
                           predicate.size() + object.size();
  if (payload_bytes > kMaxFrameBytes) {
    return Status::InvalidArgument("WAL record exceeds the maximum frame size");
  }
  // One reused buffer holding the whole frame, written with a single
  // contiguous pwrite: either the frame lands in full or the tail is
  // torn — which replay detects and discards.
  scratch_.clear();
  scratch_.reserve(sizeof(WalFrameHeader) + payload_bytes);
  scratch_.resize(sizeof(WalFrameHeader));  // Header patched in below.
  scratch_.push_back(static_cast<uint8_t>(type));
  AppendString(&scratch_, subject);
  AppendString(&scratch_, predicate);
  AppendString(&scratch_, object);
  return WriteScratchFrame();
#endif
}

Status WriteAheadLog::AppendGroup(const std::vector<WalOp>& ops) {
#if defined(_WIN32)
  (void)ops;
  return Status::Internal("write-ahead logging is not supported on this platform");
#else
  if (fd_ < 0) return Status::FailedPrecondition("WAL is not open");
  uint64_t payload_bytes = 1 + sizeof(uint32_t);
  for (const WalOp& op : ops) {
    payload_bytes += 1 + 3 * sizeof(uint32_t) + op.subject.size() +
                     op.predicate.size() + op.object.size();
  }
  // Oversize groups are refused before anything touches the file: an
  // acknowledged group that replay rejects as a torn tail would lose it
  // (and every later frame) on the next open, silently breaking the
  // all-or-nothing contract.
  if (payload_bytes > kMaxFrameBytes) {
    return Status::InvalidArgument(
        "WAL group exceeds the maximum frame size; split the batch");
  }
  scratch_.clear();
  scratch_.reserve(sizeof(WalFrameHeader) + payload_bytes);
  scratch_.resize(sizeof(WalFrameHeader));
  scratch_.push_back(static_cast<uint8_t>(WalRecordType::kGroup));
  AppendU32(&scratch_, static_cast<uint32_t>(ops.size()));
  for (const WalOp& op : ops) {
    scratch_.push_back(static_cast<uint8_t>(op.type));
    AppendString(&scratch_, op.subject);
    AppendString(&scratch_, op.predicate);
    AppendString(&scratch_, op.object);
  }
  return WriteScratchFrame();
#endif
}

#if !defined(_WIN32)
Status WriteAheadLog::WriteScratchFrame() {
  WalFrameHeader frame;
  frame.payload_length = static_cast<uint32_t>(scratch_.size() - sizeof(frame));
  frame.payload_crc =
      Crc32(scratch_.data() + sizeof(frame), scratch_.size() - sizeof(frame));
  std::memcpy(scratch_.data(), &frame, sizeof(frame));

  // The append and fsync durations are observed separately: the write
  // is buffer-speed, the fsync is device-speed, and conflating them
  // hides which one a slow commit is paying for. (The clock reads are
  // taken regardless — noise against a syscall — but the histogram
  // stores happen only with a registry attached.)
  const bool timed = append_ns_metric_ != nullptr;
  Timer append_timer;
  Status append_status = Status::OK();
  {
    ScopedTraceSpan span(trace_, "wal.append", trace_parent_);
    span.Annotate("bytes", static_cast<uint64_t>(scratch_.size()));
    ssize_t written = ::pwrite(fd_, scratch_.data(), scratch_.size(),
                               static_cast<off_t>(append_offset_));
    if (written != static_cast<ssize_t>(scratch_.size())) {
      append_status =
          Status::IoError("append to " + path_ + ": " + std::strerror(errno));
    }
  }
  if (!append_status.ok()) return append_status;
  if (timed) append_ns_metric_->Observe(append_timer.ElapsedNanos());
  if (sync_ == WalSyncMode::kEveryRecord) {
    Timer fsync_timer;
    Status fsync_status = Status::OK();
    {
      ScopedTraceSpan span(trace_, "wal.fsync", trace_parent_);
      if (::fsync(fd_) != 0) {
        fsync_status =
            Status::IoError("fsync " + path_ + ": " + std::strerror(errno));
      }
    }
    if (!fsync_status.ok()) return fsync_status;
    if (timed) fsync_ns_metric_->Observe(fsync_timer.ElapsedNanos());
  }
  if (timed) {
    bytes_metric_->Add(scratch_.size());
    groups_metric_->Add(1);
  }
  append_offset_ += scratch_.size();
  return Status::OK();
}
#endif

Status WriteAheadLog::Truncate() {
#if defined(_WIN32)
  return Status::Internal("write-ahead logging is not supported on this platform");
#else
  if (fd_ < 0) return Status::FailedPrecondition("WAL is not open");
  if (::ftruncate(fd_, sizeof(WalHeader)) != 0) {
    return Status::IoError("ftruncate " + path_ + ": " + std::strerror(errno));
  }
  if (::fsync(fd_) != 0) {
    return Status::IoError("fsync " + path_ + ": " + std::strerror(errno));
  }
  append_offset_ = sizeof(WalHeader);
  return Status::OK();
#endif
}

}  // namespace storage
}  // namespace wdsparql
