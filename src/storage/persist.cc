#include <algorithm>
#include <fstream>
#include <unordered_set>

#include "engine/api_internal.h"
#include "storage/file.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "util/timer.h"
#include "wdsparql/database.h"

/// \file
/// Database-level persistence: `Open`, `Save`, `Checkpoint`. This is
/// the storage layer's one crossing into the engine pimpl — the
/// snapshot/WAL machinery itself (snapshot.cc, wal.cc) stays ignorant
/// of `Database`.

namespace wdsparql {
namespace {

/// Records the on-disk size of the freshly written snapshot (a gauge:
/// the current footprint, not a running total). Best-effort — a stat
/// failure just leaves the gauge where it was.
void RecordSnapshotBytes(MetricsRegistry* metrics, const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) return;
  metrics->gauge("storage.snapshot_bytes").Set(static_cast<int64_t>(file.tellg()));
}

}  // namespace

Result<Database> Database::Open(const std::string& path, const OpenOptions& options) {
  DatabaseOptions db_options;
  db_options.merge_threshold = options.merge_threshold;
  db_options.trace_capacity = options.trace_capacity;
  Database db(db_options);
  DatabaseImpl* impl = &DatabaseImpl::Get(db);

  if (!storage::FileExists(path)) {
    if (options.durability != Durability::kWal || !options.create_if_missing) {
      return Status::NotFound("no snapshot at " + path);
    }
    // Starting empty: the WAL carries everything until the first
    // Checkpoint materialises the snapshot.
  } else {
    Result<storage::SnapshotView> opened = storage::SnapshotView::Open(path, options);
    if (!opened.ok()) return opened.status();
    auto view = std::make_shared<const storage::SnapshotView>(std::move(opened).value());

    // Term pool: IRI ids are intern order, so re-interning the persisted
    // heap in id order reproduces every id exactly. O(term bytes), the
    // only per-term work on the open path.
    TermPool& pool = *impl->pool;
    for (uint64_t i = 0; i < view->iri_count(); ++i) {
      TermId id = pool.InternIri(view->IriSpelling(i));
      if (id != static_cast<TermId>(i)) {
        return Status::Corruption(path + ": term heap contains duplicate spellings");
      }
    }
    // Dictionary: every DataId must decode to a persisted IRI, and the
    // Build prefix must be strictly ascending for its binary search.
    std::vector<TermId> terms(view->dict_terms(),
                              view->dict_terms() + view->term_count());
    for (std::size_t i = 0; i < terms.size(); ++i) {
      if (!IsIri(terms[i]) || terms[i] >= view->iri_count()) {
        return Status::Corruption(path + ": dictionary references an unknown term");
      }
      if (i > 0 && i < view->dict_sorted_limit() && terms[i - 1] >= terms[i]) {
        return Status::Corruption(path + ": dictionary prefix out of order");
      }
    }
    // A TermId listed twice (e.g. once in the prefix, once appended)
    // would make Encode and the stored runs disagree about its DataId —
    // silently wrong answers, so it must be structural corruption. The
    // prefix is already strictly ascending (duplicate-free), so only the
    // appended suffix needs probing — O(appended), not a full sort on
    // the cold-open path.
    {
      auto prefix_end =
          terms.begin() + static_cast<std::ptrdiff_t>(view->dict_sorted_limit());
      std::unordered_set<TermId> appended_seen;
      for (std::size_t i = view->dict_sorted_limit(); i < terms.size(); ++i) {
        if (std::binary_search(terms.begin(), prefix_end, terms[i]) ||
            !appended_seen.insert(terms[i]).second) {
          return Status::Corruption(path + ": dictionary lists a term twice");
        }
      }
    }
    // The permutation runs are consumed in place: the store borrows the
    // mapped sections, and the shared view travels inside the published
    // base runs as a keepalive — the mapping stays alive exactly as long
    // as the last `ReadView` (pinned cursor included) that borrows it.
    impl->store.AdoptFrom(IndexedStore::FromSnapshot(
        Dictionary::FromParts(std::move(terms),
                              static_cast<std::size_t>(view->dict_sorted_limit())),
        view->run(Permutation::kSpo), view->run(Permutation::kPos),
        view->run(Permutation::kOsp), static_cast<std::size_t>(view->triple_count()),
        view, view->BorrowStats(view)));
    impl->graph_hydrated = false;  // Hash row store hydrates on demand.
  }
  impl->snapshot_path = path;

  if (options.durability == Durability::kWal) {
    std::vector<storage::WalRecord> replayed;
    storage::WalReplayInfo replay_info;
    Result<storage::WriteAheadLog> wal = storage::WriteAheadLog::Open(
        path + ".wal", options.wal_sync, &replayed, &replay_info);
    if (!wal.ok()) return wal.status();
    impl->metrics->counter("storage.wal_replay_records").Add(replay_info.records);
    if (replay_info.torn_tail) {
      impl->metrics->counter("storage.wal_torn_tails").Add(1);
    }
    // Replay the tail into the in-memory delta as ONE batch: the net
    // effect of a record sequence equals its sequential application, so
    // one delta build and one publish reconstruct what used to take a
    // copy-on-write publish per record. Group frames arrive flattened —
    // their atomicity was already enforced at decode time (a torn group
    // never reaches this vector). The WAL is not attached yet, so
    // replayed mutations are not re-logged; records are already durable
    // where they sit.
    WriteBatch replay;
    for (storage::WalRecord& record : replayed) {
      if (record.type == storage::WalRecordType::kAddTriple) {
        replay.Add(record.subject, record.predicate, record.object);
      } else {
        replay.Remove(record.subject, record.predicate, record.object);
      }
    }
    WDSPARQL_RETURN_IF_ERROR(db.Apply(std::move(replay)));
    impl->wal = std::make_unique<storage::WriteAheadLog>(std::move(wal).value());
    impl->wal->set_metrics(impl->metrics);
  }
  return db;
}

Status Database::Save(const std::string& path) {
  // Unconditional: an empty-delta Compact is a no-op unless the base
  // lacks cardinality statistics (legacy snapshot), in which case it
  // rebuilds them so the file written below carries the stats sections.
  Compact();
  WDSPARQL_RETURN_IF_ERROR(storage::WriteSnapshot(path, *impl_->pool, impl_->store));
  RecordSnapshotBytes(impl_->metrics.get(), path);
  return Status::OK();
}

Status Database::Checkpoint() {
  if (impl_->snapshot_path.empty()) {
    return Status::FailedPrecondition(
        "Checkpoint requires a database opened with Database::Open");
  }
  Timer checkpoint_timer;
  // Checkpoints are rare, writer-side events: give each one its own
  // self-rooted trace so /debug/trace answers "what did that latency
  // spike pay for" after the fact.
  TraceContext trace(impl_->trace.get());
  const uint32_t checkpoint_span = trace.StartSpan("checkpoint");
  {
    ScopedTraceSpan span(&trace, "compact", checkpoint_span);
    // Unconditional for the same reason as Save: a stats-less base
    // (legacy snapshot) gets its statistics rebuilt here.
    Compact();
  }
  {
    ScopedTraceSpan span(&trace, "write_snapshot", checkpoint_span);
    WDSPARQL_RETURN_IF_ERROR(storage::WriteSnapshot(
        impl_->snapshot_path, *impl_->pool, impl_->store));
  }
  // Only after the snapshot rename is durable may the log forget its
  // records; the reverse order could lose acknowledged mutations.
  if (impl_->wal != nullptr) {
    ScopedTraceSpan span(&trace, "wal.truncate", checkpoint_span);
    WDSPARQL_RETURN_IF_ERROR(impl_->wal->Truncate());
  }
  trace.EndSpan(checkpoint_span);
  // The snapshot now carries every applied mutation and the log is
  // empty, so a previously latched append failure no longer describes
  // the database: mutations may resume.
  impl_->ClearStorageError();
  impl_->metrics->histogram("storage.checkpoint_ns")
      .Observe(checkpoint_timer.ElapsedNanos());
  RecordSnapshotBytes(impl_->metrics.get(), impl_->snapshot_path);
  return Status::OK();
}

}  // namespace wdsparql
