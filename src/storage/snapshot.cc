#include "storage/snapshot.h"

#include <cstring>
#include <string_view>
#include <vector>

#include "storage/crc32.h"

namespace wdsparql {
namespace storage {
namespace {

static_assert(sizeof(EncTriple) == 12, "EncTriple is the on-disk run element");
static_assert(sizeof(TermId) == 4, "TermId is the on-disk dictionary element");

uint64_t AlignUp(uint64_t offset) {
  return (offset + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::Corruption(path + ": " + what);
}

/// memcpy with an empty-range guard (memcpy from nullptr is UB even for
/// zero bytes; empty stores legitimately have zero-length sections).
void CopyBytes(void* dst, const void* src, uint64_t n) {
  if (n > 0) std::memcpy(dst, src, n);
}

/// The one place the snapshot header is assembled — the streaming and
/// materialised write paths must stay byte-identical.
SnapshotHeader BuildHeader(const std::vector<SectionEntry>& entries,
                           uint32_t version, uint64_t file_size,
                           uint64_t triple_count, uint64_t iri_count,
                           uint64_t term_count, uint64_t dict_sorted_limit) {
  SnapshotHeader header{};
  std::memcpy(header.magic, kSnapshotMagic, sizeof(kSnapshotMagic));
  header.version = version;
  header.endian = kEndianTag;
  header.file_size = file_size;
  header.triple_count = triple_count;
  header.iri_count = iri_count;
  header.term_count = term_count;
  header.dict_sorted_limit = dict_sorted_limit;
  header.section_count = static_cast<uint32_t>(entries.size());
  header.directory_crc = Crc32(entries.data(), entries.size() * sizeof(SectionEntry));
  header.header_crc = 0;
  header.header_crc = Crc32(&header, sizeof(header));
  return header;
}

}  // namespace

Result<SnapshotView> SnapshotView::Open(const std::string& path,
                                        const OpenOptions& options) {
  Result<FileBuffer> loaded = FileBuffer::Load(path, options.use_mmap);
  if (!loaded.ok()) return loaded.status();
  SnapshotView view;
  view.buffer_ = std::move(loaded).value();
  const uint8_t* base = view.buffer_.data();
  const uint64_t size = view.buffer_.size();

  if (size < sizeof(SnapshotHeader)) return Corrupt(path, "truncated header");
  SnapshotHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Corrupt(path, "bad magic (not a wdsparql snapshot)");
  }
  if (header.endian != kEndianTag) return Corrupt(path, "endianness mismatch");
  if (header.version == 0 || header.version > storage_format::kSnapshotVersion) {
    return Corrupt(path, "unsupported format version " + std::to_string(header.version));
  }
  SnapshotHeader crc_copy = header;
  crc_copy.header_crc = 0;
  if (Crc32(&crc_copy, sizeof(crc_copy)) != header.header_crc) {
    return Corrupt(path, "header checksum mismatch");
  }
  if (header.file_size != size) {
    return Corrupt(path, "file size mismatch (truncated or appended)");
  }
  if (header.section_count < 5 || header.section_count > kMaxSections) {
    return Corrupt(path, "implausible section count");
  }
  const uint64_t directory_bytes =
      static_cast<uint64_t>(header.section_count) * sizeof(SectionEntry);
  if (sizeof(SnapshotHeader) + directory_bytes > size) {
    return Corrupt(path, "truncated section directory");
  }
  const uint8_t* directory = base + sizeof(SnapshotHeader);
  if (Crc32(directory, directory_bytes) != header.directory_crc) {
    return Corrupt(path, "directory checksum mismatch");
  }
  if (header.term_count >= kNoDataId || header.dict_sorted_limit > header.term_count) {
    return Corrupt(path, "implausible dictionary metadata");
  }
  // Counts are bounded by the file size (every IRI needs 8 offset-table
  // bytes, every dictionary entry 4, every triple 36 across the runs),
  // so this also keeps the count * element-size arithmetic below from
  // overflowing uint64 on hostile headers.
  if (header.iri_count > size || header.term_count > size ||
      header.triple_count > size) {
    return Corrupt(path, "implausible entity counts");
  }

  view.triple_count_ = header.triple_count;
  view.iri_count_ = header.iri_count;
  view.term_count_ = header.term_count;
  view.dict_sorted_limit_ = header.dict_sorted_limit;

  bool seen[12] = {};
  for (uint32_t i = 0; i < header.section_count; ++i) {
    SectionEntry entry;
    std::memcpy(&entry, directory + i * sizeof(SectionEntry), sizeof(entry));
    if (entry.offset % kSectionAlignment != 0) {
      return Corrupt(path, "misaligned section " + std::to_string(entry.id));
    }
    if (entry.offset > size || entry.length > size - entry.offset) {
      return Corrupt(path, "section " + std::to_string(entry.id) + " out of bounds");
    }
    const uint8_t* payload = base + entry.offset;
    if (options.verify_checksums && Crc32(payload, entry.length) != entry.crc) {
      return Corrupt(path, "section " + std::to_string(entry.id) + " checksum mismatch");
    }
    switch (entry.id) {
      case kSectionTerms: {
        const uint64_t table_bytes = (view.iri_count_ + 1) * sizeof(uint64_t);
        if (entry.length < table_bytes) return Corrupt(path, "terms section too short");
        view.term_offsets_ = reinterpret_cast<const uint64_t*>(payload);
        view.term_blob_ = payload + table_bytes;
        const uint64_t blob_bytes = entry.length - table_bytes;
        // Monotonic offsets within the blob: every spelling decodes to an
        // in-bounds, non-negative-length range.
        for (uint64_t t = 0; t < view.iri_count_; ++t) {
          if (view.term_offsets_[t] > view.term_offsets_[t + 1] ||
              view.term_offsets_[t + 1] > blob_bytes) {
            return Corrupt(path, "terms section offset table out of order");
          }
        }
        break;
      }
      case kSectionDict:
        if (entry.length != view.term_count_ * sizeof(TermId)) {
          return Corrupt(path, "dictionary section length mismatch");
        }
        view.dict_ = reinterpret_cast<const TermId*>(payload);
        break;
      case kSectionSpo:
      case kSectionPos:
      case kSectionOsp: {
        if (entry.length != view.triple_count_ * sizeof(EncTriple)) {
          return Corrupt(path, "permutation run length mismatch");
        }
        const EncTriple* run_data = reinterpret_cast<const EncTriple*>(payload);
        // Every DataId must decode: an out-of-range id would otherwise
        // surface later as a fatal CHECK inside Dictionary::Decode (a
        // crash, not a structured error) or as fabricated solutions.
        // Unconditional — verify_checksums only waives the CRC pass, not
        // the no-crash guarantee.
        for (uint64_t t = 0; t < view.triple_count_; ++t) {
          if (run_data[t].s >= view.term_count_ || run_data[t].p >= view.term_count_ ||
              run_data[t].o >= view.term_count_) {
            return Corrupt(path, "permutation run references an unknown term");
          }
        }
        int run = entry.id == kSectionSpo ? 0 : (entry.id == kSectionPos ? 1 : 2);
        view.runs_[run] = run_data;
        break;
      }
      case kSectionStatsS:
      case kSectionStatsP:
      case kSectionStatsO: {
        // Single-value counts: sorted, in-dictionary keys whose counts
        // sum to the triple count. Unconditional like the run checks —
        // a corrupt census must fail structurally, never surface as a
        // silently wrong plan.
        if (entry.length % sizeof(ValueCount) != 0) {
          return Corrupt(path, "stats section " + std::to_string(entry.id) +
                                   " length mismatch");
        }
        const uint64_t n = entry.length / sizeof(ValueCount);
        const ValueCount* data = reinterpret_cast<const ValueCount*>(payload);
        uint64_t sum = 0;
        for (uint64_t t = 0; t < n; ++t) {
          if (data[t].id >= view.term_count_ ||
              (t > 0 && data[t].id <= data[t - 1].id)) {
            return Corrupt(path, "stats section " + std::to_string(entry.id) +
                                     " keys out of order");
          }
          sum += data[t].count;
        }
        if (sum != view.triple_count_) {
          return Corrupt(path, "stats section " + std::to_string(entry.id) +
                                   " count sum mismatch");
        }
        int slot = static_cast<int>(entry.id) - kSectionStatsS;
        view.stats_single_[slot] = data;
        view.stats_single_count_[slot] = n;
        break;
      }
      case kSectionStatsSp:
      case kSectionStatsPo:
      case kSectionStatsOs: {
        if (entry.length % sizeof(PairCount) != 0) {
          return Corrupt(path, "stats section " + std::to_string(entry.id) +
                                   " length mismatch");
        }
        const uint64_t n = entry.length / sizeof(PairCount);
        const PairCount* data = reinterpret_cast<const PairCount*>(payload);
        uint64_t sum = 0;
        for (uint64_t t = 0; t < n; ++t) {
          if (data[t].a >= view.term_count_ || data[t].b >= view.term_count_ ||
              (t > 0 && !(data[t - 1].a < data[t].a ||
                          (data[t - 1].a == data[t].a && data[t - 1].b < data[t].b)))) {
            return Corrupt(path, "stats section " + std::to_string(entry.id) +
                                     " keys out of order");
          }
          sum += data[t].count;
        }
        if (sum != view.triple_count_) {
          return Corrupt(path, "stats section " + std::to_string(entry.id) +
                                   " count sum mismatch");
        }
        int slot = static_cast<int>(entry.id) - kSectionStatsSp;
        view.stats_pair_[slot] = data;
        view.stats_pair_count_[slot] = n;
        break;
      }
      default:
        // Unknown sections from a newer minor revision are skippable by
        // construction; their CRC was still verified above.
        continue;
    }
    if (entry.id < 12) {
      if (seen[entry.id]) return Corrupt(path, "duplicate section " + std::to_string(entry.id));
      seen[entry.id] = true;
    }
  }
  for (uint32_t id = kSectionTerms; id <= kSectionOsp; ++id) {
    if (!seen[id]) return Corrupt(path, "missing section " + std::to_string(id));
  }
  // The statistics sections travel as a group: all six or none. A file
  // carrying only some is a torn/corrupt write, not a legacy snapshot.
  int stats_sections = 0;
  for (int slot = 0; slot < 3; ++slot) {
    if (view.stats_single_[slot] != nullptr) ++stats_sections;
    if (view.stats_pair_[slot] != nullptr) ++stats_sections;
  }
  if (stats_sections == 6) {
    view.has_stats_ = true;
  } else if (stats_sections != 0) {
    return Corrupt(path, "incomplete statistics sections");
  }
  return view;
}

std::shared_ptr<const CardinalityStats> SnapshotView::BorrowStats(
    std::shared_ptr<const void> keepalive) const {
  if (!has_stats_) return nullptr;
  return CardinalityStats::Borrow(
      stats_single_[0], stats_single_count_[0], stats_single_[1],
      stats_single_count_[1], stats_single_[2], stats_single_count_[2],
      stats_pair_[0], stats_pair_count_[0], stats_pair_[1], stats_pair_count_[1],
      stats_pair_[2], stats_pair_count_[2], triple_count_, std::move(keepalive));
}

Status WriteSnapshot(const std::string& path, const TermPool& pool,
                     const IndexedStore& store, bool include_stats) {
  if (store.delta_size() != 0) {
    return Status::FailedPrecondition(
        "snapshot requires a merged store (call MergeDelta/Compact first)");
  }
  const Dictionary& dict = store.dictionary();
  const uint64_t iri_count = pool.NumIris();
  const uint64_t term_count = dict.size();
  const uint64_t triple_count = store.base_size();
  // A store without built statistics (possible via direct WriteSnapshot
  // calls; Save/Checkpoint always compact first, which builds them)
  // degrades to a version-1 file rather than inventing empty sections.
  const CardinalityStats* stats = include_stats ? store.stats().get() : nullptr;
  const uint32_t version = stats != nullptr ? storage_format::kSnapshotVersion : 1;

  // The terms offset table is the only piece not already contiguous in
  // memory; everything else streams straight from the live structures.
  std::vector<uint64_t> term_offsets(iri_count + 1);
  uint64_t blob_bytes = 0;
  for (uint64_t i = 0; i < iri_count; ++i) {
    term_offsets[i] = blob_bytes;
    blob_bytes += pool.Spelling(static_cast<TermId>(i)).size();
  }
  term_offsets[iri_count] = blob_bytes;
  const uint64_t terms_table_bytes = term_offsets.size() * sizeof(uint64_t);

  // The section manifest. Index 0 (terms) is assembled by streaming and
  // carries no flat payload pointer; everything else is one contiguous
  // array in the live structures.
  struct FlatSection {
    uint32_t id;
    const void* data;
    uint64_t length;
  };
  std::vector<FlatSection> sections;
  sections.push_back({kSectionTerms, nullptr, terms_table_bytes + blob_bytes});
  sections.push_back({kSectionDict, dict.terms_data(), term_count * sizeof(TermId)});
  sections.push_back({kSectionSpo, store.base_data(Permutation::kSpo),
                      triple_count * sizeof(EncTriple)});
  sections.push_back({kSectionPos, store.base_data(Permutation::kPos),
                      triple_count * sizeof(EncTriple)});
  sections.push_back({kSectionOsp, store.base_data(Permutation::kOsp),
                      triple_count * sizeof(EncTriple)});
  if (stats != nullptr) {
    for (int pos = 0; pos < 3; ++pos) {
      sections.push_back({static_cast<uint32_t>(kSectionStatsS + pos),
                          stats->single_data(pos),
                          stats->single_size(pos) * sizeof(ValueCount)});
    }
    for (int kind = 0; kind < 3; ++kind) {
      sections.push_back({static_cast<uint32_t>(kSectionStatsSp + kind),
                          stats->pair_data(static_cast<PairKind>(kind)),
                          stats->pair_size(static_cast<PairKind>(kind)) *
                              sizeof(PairCount)});
    }
  }

  // Lay the file out: header, directory, aligned payloads.
  uint64_t cursor =
      sizeof(SnapshotHeader) + sections.size() * sizeof(SectionEntry);
  std::vector<SectionEntry> entries(sections.size());
  for (std::size_t i = 0; i < sections.size(); ++i) {
    cursor = AlignUp(cursor);
    entries[i].id = sections[i].id;
    entries[i].reserved = 0;
    entries[i].offset = cursor;
    entries[i].length = sections[i].length;
    entries[i].crc = 0;
    entries[i].pad = 0;
    cursor += sections[i].length;
  }
  const uint64_t directory_bytes = entries.size() * sizeof(SectionEntry);

  Result<AtomicFileWriter> created = AtomicFileWriter::Create(path);
  if (!created.ok() && created.status().code() != StatusCode::kInternal) {
    return created.status();
  }
  if (created.ok()) {
    // Streaming path: sections go to disk straight from the live store
    // (CRCs chained along the way), so peak extra memory is one staging
    // chunk — Save/Checkpoint and the bulk loader never materialise the
    // file.
    AtomicFileWriter writer = std::move(created).value();
    WDSPARQL_RETURN_IF_ERROR(writer.WriteAt(entries[0].offset, term_offsets.data(),
                                            terms_table_bytes));
    uint32_t terms_crc = Crc32(term_offsets.data(), terms_table_bytes);
    {
      std::vector<uint8_t> chunk;
      chunk.reserve(1u << 20);
      uint64_t flushed = 0;
      uint64_t blob_base = entries[0].offset + terms_table_bytes;
      for (uint64_t i = 0; i < iri_count; ++i) {
        std::string_view spelling = pool.Spelling(static_cast<TermId>(i));
        chunk.insert(chunk.end(), spelling.begin(), spelling.end());
        if (chunk.size() >= (1u << 20) || i + 1 == iri_count) {
          if (!chunk.empty()) {
            WDSPARQL_RETURN_IF_ERROR(
                writer.WriteAt(blob_base + flushed, chunk.data(), chunk.size()));
            terms_crc = Crc32(chunk.data(), chunk.size(), terms_crc);
            flushed += chunk.size();
            chunk.clear();
          }
        }
      }
    }
    entries[0].crc = terms_crc;
    for (std::size_t i = 1; i < sections.size(); ++i) {
      if (entries[i].length > 0) {
        WDSPARQL_RETURN_IF_ERROR(
            writer.WriteAt(entries[i].offset, sections[i].data, entries[i].length));
      }
      entries[i].crc = Crc32(sections[i].data, entries[i].length);
    }
    // Pin the declared file size (the last section may be empty, ending
    // the writes before the laid-out end; the gap reads back as zeros).
    WDSPARQL_RETURN_IF_ERROR(writer.SetLength(cursor));

    SnapshotHeader header = BuildHeader(entries, version, cursor, triple_count,
                                        iri_count, term_count, dict.sorted_limit());
    WDSPARQL_RETURN_IF_ERROR(writer.WriteAt(0, &header, sizeof(header)));
    WDSPARQL_RETURN_IF_ERROR(
        writer.WriteAt(sizeof(SnapshotHeader), entries.data(), directory_bytes));
    return writer.Commit();
  }

  // Fallback for platforms without streaming writes: materialise the
  // whole file and publish it in one atomic write.
  std::vector<uint8_t> file(cursor, 0);
  {
    uint8_t* payload = file.data() + entries[0].offset;
    CopyBytes(payload, term_offsets.data(), terms_table_bytes);
    uint8_t* blob = payload + terms_table_bytes;
    for (uint64_t i = 0; i < iri_count; ++i) {
      std::string_view spelling = pool.Spelling(static_cast<TermId>(i));
      CopyBytes(blob + term_offsets[i], spelling.data(), spelling.size());
    }
  }
  for (std::size_t i = 1; i < sections.size(); ++i) {
    CopyBytes(file.data() + entries[i].offset, sections[i].data, entries[i].length);
  }
  for (SectionEntry& entry : entries) {
    entry.crc = Crc32(file.data() + entry.offset, entry.length);
  }
  std::memcpy(file.data() + sizeof(SnapshotHeader), entries.data(), directory_bytes);

  SnapshotHeader header = BuildHeader(entries, version, file.size(), triple_count,
                                      iri_count, term_count, dict.sorted_limit());
  std::memcpy(file.data(), &header, sizeof(header));

  return WriteFileAtomic(path, file.data(), file.size());
}

}  // namespace storage
}  // namespace wdsparql
