#include "storage/snapshot.h"

#include <cstring>
#include <string_view>
#include <vector>

#include "storage/crc32.h"

namespace wdsparql {
namespace storage {
namespace {

static_assert(sizeof(EncTriple) == 12, "EncTriple is the on-disk run element");
static_assert(sizeof(TermId) == 4, "TermId is the on-disk dictionary element");

uint64_t AlignUp(uint64_t offset) {
  return (offset + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::Corruption(path + ": " + what);
}

/// memcpy with an empty-range guard (memcpy from nullptr is UB even for
/// zero bytes; empty stores legitimately have zero-length sections).
void CopyBytes(void* dst, const void* src, uint64_t n) {
  if (n > 0) std::memcpy(dst, src, n);
}

/// The one place the snapshot header is assembled — the streaming and
/// materialised write paths must stay byte-identical.
SnapshotHeader BuildHeader(const SectionEntry (&entries)[5], uint64_t file_size,
                           uint64_t triple_count, uint64_t iri_count,
                           uint64_t term_count, uint64_t dict_sorted_limit) {
  SnapshotHeader header{};
  std::memcpy(header.magic, kSnapshotMagic, sizeof(kSnapshotMagic));
  header.version = storage_format::kSnapshotVersion;
  header.endian = kEndianTag;
  header.file_size = file_size;
  header.triple_count = triple_count;
  header.iri_count = iri_count;
  header.term_count = term_count;
  header.dict_sorted_limit = dict_sorted_limit;
  header.section_count = 5;
  header.directory_crc = Crc32(entries, sizeof(entries));
  header.header_crc = 0;
  header.header_crc = Crc32(&header, sizeof(header));
  return header;
}

}  // namespace

Result<SnapshotView> SnapshotView::Open(const std::string& path,
                                        const OpenOptions& options) {
  Result<FileBuffer> loaded = FileBuffer::Load(path, options.use_mmap);
  if (!loaded.ok()) return loaded.status();
  SnapshotView view;
  view.buffer_ = std::move(loaded).value();
  const uint8_t* base = view.buffer_.data();
  const uint64_t size = view.buffer_.size();

  if (size < sizeof(SnapshotHeader)) return Corrupt(path, "truncated header");
  SnapshotHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Corrupt(path, "bad magic (not a wdsparql snapshot)");
  }
  if (header.endian != kEndianTag) return Corrupt(path, "endianness mismatch");
  if (header.version == 0 || header.version > storage_format::kSnapshotVersion) {
    return Corrupt(path, "unsupported format version " + std::to_string(header.version));
  }
  SnapshotHeader crc_copy = header;
  crc_copy.header_crc = 0;
  if (Crc32(&crc_copy, sizeof(crc_copy)) != header.header_crc) {
    return Corrupt(path, "header checksum mismatch");
  }
  if (header.file_size != size) {
    return Corrupt(path, "file size mismatch (truncated or appended)");
  }
  if (header.section_count < 5 || header.section_count > kMaxSections) {
    return Corrupt(path, "implausible section count");
  }
  const uint64_t directory_bytes =
      static_cast<uint64_t>(header.section_count) * sizeof(SectionEntry);
  if (sizeof(SnapshotHeader) + directory_bytes > size) {
    return Corrupt(path, "truncated section directory");
  }
  const uint8_t* directory = base + sizeof(SnapshotHeader);
  if (Crc32(directory, directory_bytes) != header.directory_crc) {
    return Corrupt(path, "directory checksum mismatch");
  }
  if (header.term_count >= kNoDataId || header.dict_sorted_limit > header.term_count) {
    return Corrupt(path, "implausible dictionary metadata");
  }
  // Counts are bounded by the file size (every IRI needs 8 offset-table
  // bytes, every dictionary entry 4, every triple 36 across the runs),
  // so this also keeps the count * element-size arithmetic below from
  // overflowing uint64 on hostile headers.
  if (header.iri_count > size || header.term_count > size ||
      header.triple_count > size) {
    return Corrupt(path, "implausible entity counts");
  }

  view.triple_count_ = header.triple_count;
  view.iri_count_ = header.iri_count;
  view.term_count_ = header.term_count;
  view.dict_sorted_limit_ = header.dict_sorted_limit;

  bool seen[6] = {false, false, false, false, false, false};
  for (uint32_t i = 0; i < header.section_count; ++i) {
    SectionEntry entry;
    std::memcpy(&entry, directory + i * sizeof(SectionEntry), sizeof(entry));
    if (entry.offset % kSectionAlignment != 0) {
      return Corrupt(path, "misaligned section " + std::to_string(entry.id));
    }
    if (entry.offset > size || entry.length > size - entry.offset) {
      return Corrupt(path, "section " + std::to_string(entry.id) + " out of bounds");
    }
    const uint8_t* payload = base + entry.offset;
    if (options.verify_checksums && Crc32(payload, entry.length) != entry.crc) {
      return Corrupt(path, "section " + std::to_string(entry.id) + " checksum mismatch");
    }
    switch (entry.id) {
      case kSectionTerms: {
        const uint64_t table_bytes = (view.iri_count_ + 1) * sizeof(uint64_t);
        if (entry.length < table_bytes) return Corrupt(path, "terms section too short");
        view.term_offsets_ = reinterpret_cast<const uint64_t*>(payload);
        view.term_blob_ = payload + table_bytes;
        const uint64_t blob_bytes = entry.length - table_bytes;
        // Monotonic offsets within the blob: every spelling decodes to an
        // in-bounds, non-negative-length range.
        for (uint64_t t = 0; t < view.iri_count_; ++t) {
          if (view.term_offsets_[t] > view.term_offsets_[t + 1] ||
              view.term_offsets_[t + 1] > blob_bytes) {
            return Corrupt(path, "terms section offset table out of order");
          }
        }
        break;
      }
      case kSectionDict:
        if (entry.length != view.term_count_ * sizeof(TermId)) {
          return Corrupt(path, "dictionary section length mismatch");
        }
        view.dict_ = reinterpret_cast<const TermId*>(payload);
        break;
      case kSectionSpo:
      case kSectionPos:
      case kSectionOsp: {
        if (entry.length != view.triple_count_ * sizeof(EncTriple)) {
          return Corrupt(path, "permutation run length mismatch");
        }
        const EncTriple* run_data = reinterpret_cast<const EncTriple*>(payload);
        // Every DataId must decode: an out-of-range id would otherwise
        // surface later as a fatal CHECK inside Dictionary::Decode (a
        // crash, not a structured error) or as fabricated solutions.
        // Unconditional — verify_checksums only waives the CRC pass, not
        // the no-crash guarantee.
        for (uint64_t t = 0; t < view.triple_count_; ++t) {
          if (run_data[t].s >= view.term_count_ || run_data[t].p >= view.term_count_ ||
              run_data[t].o >= view.term_count_) {
            return Corrupt(path, "permutation run references an unknown term");
          }
        }
        int run = entry.id == kSectionSpo ? 0 : (entry.id == kSectionPos ? 1 : 2);
        view.runs_[run] = run_data;
        break;
      }
      default:
        // Unknown sections from a newer minor revision are skippable by
        // construction; their CRC was still verified above.
        continue;
    }
    if (entry.id < 6) {
      if (seen[entry.id]) return Corrupt(path, "duplicate section " + std::to_string(entry.id));
      seen[entry.id] = true;
    }
  }
  for (uint32_t id = kSectionTerms; id <= kSectionOsp; ++id) {
    if (!seen[id]) return Corrupt(path, "missing section " + std::to_string(id));
  }
  return view;
}

Status WriteSnapshot(const std::string& path, const TermPool& pool,
                     const IndexedStore& store) {
  if (store.delta_size() != 0) {
    return Status::FailedPrecondition(
        "snapshot requires a merged store (call MergeDelta/Compact first)");
  }
  const Dictionary& dict = store.dictionary();
  const uint64_t iri_count = pool.NumIris();
  const uint64_t term_count = dict.size();
  const uint64_t triple_count = store.base_size();

  // The terms offset table is the only piece not already contiguous in
  // memory; everything else streams straight from the live structures.
  std::vector<uint64_t> term_offsets(iri_count + 1);
  uint64_t blob_bytes = 0;
  for (uint64_t i = 0; i < iri_count; ++i) {
    term_offsets[i] = blob_bytes;
    blob_bytes += pool.Spelling(static_cast<TermId>(i)).size();
  }
  term_offsets[iri_count] = blob_bytes;
  const uint64_t terms_table_bytes = term_offsets.size() * sizeof(uint64_t);

  const uint64_t section_lengths[5] = {
      terms_table_bytes + blob_bytes,
      term_count * sizeof(TermId),
      triple_count * sizeof(EncTriple),
      triple_count * sizeof(EncTriple),
      triple_count * sizeof(EncTriple),
  };
  const uint32_t section_ids[5] = {kSectionTerms, kSectionDict, kSectionSpo,
                                   kSectionPos, kSectionOsp};

  // Lay the file out: header, directory, aligned payloads.
  uint64_t cursor = sizeof(SnapshotHeader) + 5 * sizeof(SectionEntry);
  SectionEntry entries[5];
  for (int i = 0; i < 5; ++i) {
    cursor = AlignUp(cursor);
    entries[i].id = section_ids[i];
    entries[i].reserved = 0;
    entries[i].offset = cursor;
    entries[i].length = section_lengths[i];
    entries[i].crc = 0;
    entries[i].pad = 0;
    cursor += section_lengths[i];
  }

  // The contiguous payloads: dictionary array and the three runs.
  const void* flat_payloads[5] = {nullptr, dict.terms_data(),
                                  store.base_data(Permutation::kSpo),
                                  store.base_data(Permutation::kPos),
                                  store.base_data(Permutation::kOsp)};

  Result<AtomicFileWriter> created = AtomicFileWriter::Create(path);
  if (!created.ok() && created.status().code() != StatusCode::kInternal) {
    return created.status();
  }
  if (created.ok()) {
    // Streaming path: sections go to disk straight from the live store
    // (CRCs chained along the way), so peak extra memory is one staging
    // chunk — Save/Checkpoint and the bulk loader never materialise the
    // file.
    AtomicFileWriter writer = std::move(created).value();
    WDSPARQL_RETURN_IF_ERROR(writer.WriteAt(entries[0].offset, term_offsets.data(),
                                            terms_table_bytes));
    uint32_t terms_crc = Crc32(term_offsets.data(), terms_table_bytes);
    {
      std::vector<uint8_t> chunk;
      chunk.reserve(1u << 20);
      uint64_t flushed = 0;
      uint64_t blob_base = entries[0].offset + terms_table_bytes;
      for (uint64_t i = 0; i < iri_count; ++i) {
        std::string_view spelling = pool.Spelling(static_cast<TermId>(i));
        chunk.insert(chunk.end(), spelling.begin(), spelling.end());
        if (chunk.size() >= (1u << 20) || i + 1 == iri_count) {
          if (!chunk.empty()) {
            WDSPARQL_RETURN_IF_ERROR(
                writer.WriteAt(blob_base + flushed, chunk.data(), chunk.size()));
            terms_crc = Crc32(chunk.data(), chunk.size(), terms_crc);
            flushed += chunk.size();
            chunk.clear();
          }
        }
      }
    }
    entries[0].crc = terms_crc;
    for (int i = 1; i < 5; ++i) {
      if (entries[i].length > 0) {
        WDSPARQL_RETURN_IF_ERROR(
            writer.WriteAt(entries[i].offset, flat_payloads[i], entries[i].length));
      }
      entries[i].crc = Crc32(flat_payloads[i], entries[i].length);
    }
    // Pin the declared file size (the last section may be empty, ending
    // the writes before the laid-out end; the gap reads back as zeros).
    WDSPARQL_RETURN_IF_ERROR(writer.SetLength(cursor));

    SnapshotHeader header = BuildHeader(entries, cursor, triple_count, iri_count,
                                        term_count, dict.sorted_limit());
    WDSPARQL_RETURN_IF_ERROR(writer.WriteAt(0, &header, sizeof(header)));
    WDSPARQL_RETURN_IF_ERROR(
        writer.WriteAt(sizeof(SnapshotHeader), entries, sizeof(entries)));
    return writer.Commit();
  }

  // Fallback for platforms without streaming writes: materialise the
  // whole file and publish it in one atomic write.
  std::vector<uint8_t> file(cursor, 0);
  {
    uint8_t* payload = file.data() + entries[0].offset;
    CopyBytes(payload, term_offsets.data(), terms_table_bytes);
    uint8_t* blob = payload + terms_table_bytes;
    for (uint64_t i = 0; i < iri_count; ++i) {
      std::string_view spelling = pool.Spelling(static_cast<TermId>(i));
      CopyBytes(blob + term_offsets[i], spelling.data(), spelling.size());
    }
  }
  for (int i = 1; i < 5; ++i) {
    CopyBytes(file.data() + entries[i].offset, flat_payloads[i], entries[i].length);
  }
  for (SectionEntry& entry : entries) {
    entry.crc = Crc32(file.data() + entry.offset, entry.length);
  }
  std::memcpy(file.data() + sizeof(SnapshotHeader), entries, sizeof(entries));

  SnapshotHeader header = BuildHeader(entries, file.size(), triple_count, iri_count,
                                      term_count, dict.sorted_limit());
  std::memcpy(file.data(), &header, sizeof(header));

  return WriteFileAtomic(path, file.data(), file.size());
}

}  // namespace storage
}  // namespace wdsparql
