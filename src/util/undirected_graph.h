#ifndef WDSPARQL_UTIL_UNDIRECTED_GRAPH_H_
#define WDSPARQL_UTIL_UNDIRECTED_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

/// \file
/// Simple undirected graphs over dense vertex ids 0..n-1.
///
/// Used for (i) Gaifman graphs of generalised t-graphs, (ii) the treewidth
/// machinery, (iii) the CLIQUE instances of the Theorem 2 hardness
/// reduction, and (iv) grids/cliques whose minors drive the Lemma 2 gadget.

namespace wdsparql {

/// An undirected graph with dense integer vertices and no self loops.
///
/// Parallel edges are collapsed; `AddEdge(u, u)` is ignored. The adjacency
/// representation is a bit-matrix plus adjacency lists, so `HasEdge` is
/// O(1) and neighbour iteration is O(degree).
class UndirectedGraph {
 public:
  /// Creates a graph with `n` isolated vertices.
  explicit UndirectedGraph(int n = 0);

  /// Number of vertices.
  int NumVertices() const { return n_; }
  /// Number of (undirected) edges.
  int NumEdges() const { return num_edges_; }

  /// Adds a vertex and returns its id.
  int AddVertex();

  /// Adds edge {u, v}. Self loops and duplicates are ignored.
  void AddEdge(int u, int v);

  /// True iff {u, v} is an edge.
  bool HasEdge(int u, int v) const;

  /// Neighbours of `u`, in insertion order.
  const std::vector<int>& Neighbors(int u) const { return adj_[u]; }

  /// Degree of `u`.
  int Degree(int u) const { return static_cast<int>(adj_[u].size()); }

  /// All edges as (u, v) with u < v, in insertion order.
  const std::vector<std::pair<int, int>>& Edges() const { return edges_; }

  /// Returns the vertex sets of the connected components (deterministic
  /// order: by smallest contained vertex).
  std::vector<std::vector<int>> ConnectedComponents() const;

  /// The subgraph induced by `vertices`; out_index maps new id -> old id.
  UndirectedGraph InducedSubgraph(const std::vector<int>& vertices,
                                  std::vector<int>* out_index = nullptr) const;

  /// Degeneracy of the graph (max over subgraphs of min degree); a lower
  /// bound on treewidth.
  int Degeneracy() const;

  /// True iff `clique` is a set of pairwise adjacent, distinct vertices.
  bool IsClique(const std::vector<int>& clique) const;

  /// The complete graph K_n.
  static UndirectedGraph Complete(int n);
  /// The cycle C_n (n >= 3).
  static UndirectedGraph Cycle(int n);
  /// The path with n vertices.
  static UndirectedGraph Path(int n);
  /// The (rows x cols) grid; vertex (i, j) has id i*cols + j.
  static UndirectedGraph Grid(int rows, int cols);

 private:
  int n_ = 0;
  int num_edges_ = 0;
  std::vector<std::vector<int>> adj_;
  std::vector<std::vector<bool>> matrix_;
  std::vector<std::pair<int, int>> edges_;
};

}  // namespace wdsparql

#endif  // WDSPARQL_UTIL_UNDIRECTED_GRAPH_H_
