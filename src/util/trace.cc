#include "wdsparql/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>

#include "util/json.h"
#include "util/trace.h"

namespace wdsparql {

namespace {

void CopyBounded(char* dst, std::size_t dst_size, std::string_view src) {
  const std::size_t n = std::min(src.size(), dst_size - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

std::size_t RoundUpPow2(std::size_t v) {
  std::size_t p = 16;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

// ---------------------------------------------------------------------
// TraceSpan
// ---------------------------------------------------------------------

void TraceSpan::SetName(const char* n) {
  CopyBounded(name, sizeof(name), n != nullptr ? std::string_view(n)
                                               : std::string_view());
}

void TraceSpan::Annotate(const char* key, std::string_view value) {
  if (annotation_count >= kMaxAnnotations) return;
  Annotation& a = annotations[annotation_count++];
  CopyBounded(a.key, sizeof(a.key),
              key != nullptr ? std::string_view(key) : std::string_view());
  CopyBounded(a.value, sizeof(a.value), value);
}

void TraceSpan::Annotate(const char* key, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  Annotate(key, std::string_view(buf));
}

// ---------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------

TraceRecorder::TraceRecorder(std::size_t capacity_spans)
    : capacity_(RoundUpPow2(capacity_spans == 0 ? 1 : capacity_spans)),
      slots_(new Slot[capacity_]),
      epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t TraceRecorder::NewTraceId() {
  return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t TraceRecorder::NowNs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceRecorder::Publish(const TraceSpan* spans, std::size_t count) {
  if (count == 0) return;
  if (count > capacity_) {
    // A trace larger than the whole ring can never be read back complete;
    // keep the newest slice so the root (first span) is what gets dropped
    // and the reader's completeness check discards it cleanly.
    spans += count - capacity_;
    count = capacity_;
  }
  const std::uint64_t base = head_.fetch_add(count, std::memory_order_relaxed);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t pos = base + i;
    Slot& slot = slots_[pos & (capacity_ - 1)];
    // Seqlock writer: mark the slot busy, fence so the payload stores
    // cannot become visible before the busy mark, write, then mark
    // complete with a sequence derived from the absolute position (a
    // reader expecting position `pos` rejects recycled slots outright).
    slot.seq.store(2 * pos + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    std::uint64_t words[kSpanWords];
    std::memcpy(words, &spans[i], sizeof(TraceSpan));
    for (std::size_t w = 0; w < kSpanWords; ++w) {
      slot.words[w].store(words[w], std::memory_order_relaxed);
    }
    slot.seq.store(2 * pos + 2, std::memory_order_release);
  }
}

std::vector<std::vector<TraceSpan>> TraceRecorder::CollectTraces(
    std::size_t max_traces) const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t begin = head > capacity_ ? head - capacity_ : 0;

  struct Group {
    std::vector<TraceSpan> spans;
    std::uint64_t newest_pos = 0;
  };
  std::map<std::uint64_t, Group> groups;

  for (std::uint64_t pos = begin; pos < head; ++pos) {
    const Slot& slot = slots_[pos & (capacity_ - 1)];
    const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 != 2 * pos + 2) continue;  // busy, recycled, or never written
    std::uint64_t words[kSpanWords];
    for (std::size_t w = 0; w < kSpanWords; ++w) {
      words[w] = slot.words[w].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != s1) continue;  // torn
    TraceSpan span;
    std::memcpy(&span, words, sizeof(TraceSpan));
    if (span.trace_id == 0) continue;
    Group& g = groups[span.trace_id];
    g.spans.push_back(span);
    g.newest_pos = std::max(g.newest_pos, pos);
  }

  // A trace is reportable only if its root survived and every span the
  // flush recorded is still present (partially-overwritten traces drop).
  std::vector<std::pair<std::uint64_t, Group*>> complete;
  for (auto& [id, g] : groups) {
    (void)id;
    std::sort(g.spans.begin(), g.spans.end(),
              [](const TraceSpan& a, const TraceSpan& b) {
                return a.span_id < b.span_id;
              });
    const TraceSpan& root = g.spans.front();
    if (root.span_id != 1 || root.parent_id != 0) continue;
    if (root.trace_spans == 0 || g.spans.size() != root.trace_spans) continue;
    bool distinct = true;
    for (std::size_t i = 1; i < g.spans.size(); ++i) {
      if (g.spans[i].span_id == g.spans[i - 1].span_id) distinct = false;
    }
    if (!distinct) continue;
    complete.emplace_back(g.newest_pos, &g);
  }
  std::sort(complete.begin(), complete.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::vector<std::vector<TraceSpan>> out;
  out.reserve(std::min(max_traces, complete.size()));
  for (auto& [pos, g] : complete) {
    (void)pos;
    if (out.size() >= max_traces) break;
    out.push_back(std::move(g->spans));
  }
  return out;
}

std::string TraceRecorder::DumpJson(std::size_t max_traces) const {
  const std::vector<std::vector<TraceSpan>> traces = CollectTraces(max_traces);
  const std::uint64_t now = NowNs();
  util::JsonWriter w;
  w.BeginObject();
  w.BeginArray("traces");
  for (const std::vector<TraceSpan>& trace : traces) {
    w.BeginObject();
    w.Field("trace_id", util::FormatTraceId(trace.front().trace_id));
    w.BeginArray("spans");
    for (const TraceSpan& span : trace) {
      util::AppendSpanJson(w, span, now);
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).str();
}

// ---------------------------------------------------------------------
// TraceContext
// ---------------------------------------------------------------------

TraceContext::TraceContext(TraceRecorder* recorder)
    : recorder_(recorder),
      trace_id_(recorder != nullptr ? recorder->NewTraceId() : 0) {}

TraceContext::TraceContext(TraceRecorder* recorder, std::uint64_t trace_id)
    : recorder_(recorder), trace_id_(trace_id) {
  if (recorder_ != nullptr && trace_id_ == 0) {
    trace_id_ = recorder_->NewTraceId();
  }
}

TraceContext::~TraceContext() { Flush(); }

TraceContext::TraceContext(TraceContext&& other) noexcept
    : recorder_(other.recorder_),
      trace_id_(other.trace_id_),
      dropped_(other.dropped_),
      flushed_(other.flushed_),
      spans_(std::move(other.spans_)) {
  other.recorder_ = nullptr;
  other.spans_.clear();
}

TraceContext& TraceContext::operator=(TraceContext&& other) noexcept {
  if (this != &other) {
    Flush();
    recorder_ = other.recorder_;
    trace_id_ = other.trace_id_;
    dropped_ = other.dropped_;
    flushed_ = other.flushed_;
    spans_ = std::move(other.spans_);
    other.recorder_ = nullptr;
    other.spans_.clear();
  }
  return *this;
}

std::uint64_t TraceContext::NowNs() const {
  return recorder_ != nullptr ? recorder_->NowNs() : 0;
}

std::uint32_t TraceContext::StartSpan(const char* name, std::uint32_t parent) {
  if (recorder_ == nullptr) return 0;
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    return 0;
  }
  if (spans_.empty()) spans_.reserve(16);
  spans_.emplace_back();
  TraceSpan& span = spans_.back();
  span.trace_id = trace_id_;
  span.span_id = static_cast<std::uint32_t>(spans_.size());
  span.parent_id = parent;
  span.start_ns = recorder_->NowNs();
  span.duration_ns = TraceSpan::kOpenDuration;
  span.SetName(name);
  return span.span_id;
}

void TraceContext::EndSpan(std::uint32_t span) {
  if (span == 0 || recorder_ == nullptr || span > spans_.size()) return;
  TraceSpan& s = spans_[span - 1];
  if (s.duration_ns == TraceSpan::kOpenDuration) {
    const std::uint64_t now = recorder_->NowNs();
    s.duration_ns = now > s.start_ns ? now - s.start_ns : 0;
  }
}

std::uint32_t TraceContext::AddCompleteSpan(const char* name,
                                            std::uint32_t parent,
                                            std::uint64_t start_ns,
                                            std::uint64_t duration_ns) {
  const std::uint32_t id = StartSpan(name, parent);
  if (id == 0) return 0;
  TraceSpan& span = spans_[id - 1];
  span.start_ns = start_ns;
  span.duration_ns = duration_ns;
  return id;
}

void TraceContext::Annotate(std::uint32_t span, const char* key,
                            std::string_view value) {
  if (span == 0 || recorder_ == nullptr || span > spans_.size()) return;
  spans_[span - 1].Annotate(key, value);
}

void TraceContext::Annotate(std::uint32_t span, const char* key,
                            std::uint64_t value) {
  if (span == 0 || recorder_ == nullptr || span > spans_.size()) return;
  spans_[span - 1].Annotate(key, value);
}

void TraceContext::Flush() {
  if (recorder_ == nullptr || flushed_) return;
  flushed_ = true;
  for (std::uint32_t id = 1; id <= spans_.size(); ++id) {
    EndSpan(id);
  }
  if (spans_.empty()) return;
  if (dropped_ != 0) {
    spans_.front().Annotate("dropped", static_cast<std::uint64_t>(dropped_));
  }
  spans_.front().trace_spans = static_cast<std::uint16_t>(spans_.size());
  recorder_->Publish(spans_.data(), spans_.size());
}

std::string TraceContext::SpansJson() const {
  const std::uint64_t now = NowNs();
  util::JsonWriter w;
  w.BeginArray();
  for (const TraceSpan& span : spans_) {
    util::AppendSpanJson(w, span, now);
  }
  w.EndArray();
  return std::move(w).str();
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

namespace util {

void AppendSpanJson(JsonWriter& w, const TraceSpan& span,
                    std::uint64_t now_ns) {
  w.BeginObject();
  w.Field("id", static_cast<std::uint64_t>(span.span_id));
  w.Field("parent", static_cast<std::uint64_t>(span.parent_id));
  w.Field("name", span.name);
  w.Field("start_ns", span.start_ns);
  if (span.duration_ns == TraceSpan::kOpenDuration) {
    w.Field("duration_ns",
            now_ns > span.start_ns ? now_ns - span.start_ns : 0);
    w.Field("open", "true");
  } else {
    w.Field("duration_ns", span.duration_ns);
  }
  if (span.annotation_count != 0) {
    w.BeginObject("annotations");
    const std::uint16_t n =
        std::min<std::uint16_t>(span.annotation_count,
                                TraceSpan::kMaxAnnotations);
    for (std::uint16_t i = 0; i < n; ++i) {
      w.Field(span.annotations[i].key, span.annotations[i].value);
    }
    w.EndObject();
  }
  w.EndObject();
}

std::string FormatTraceId(std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, id);
  return std::string(buf);
}

std::uint64_t TraceIdFromRequestId(std::string_view request_id) {
  if (!request_id.empty() && request_id.size() <= 16) {
    std::uint64_t value = 0;
    bool all_hex = true;
    for (char c : request_id) {
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = c - 'A' + 10;
      } else {
        all_hex = false;
        break;
      }
      value = (value << 4) | static_cast<std::uint64_t>(digit);
    }
    if (all_hex) return value != 0 ? value : 1;
  }
  // FNV-1a 64-bit over the raw bytes.
  std::uint64_t hash = 14695981039346656037ull;
  for (char c : request_id) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash != 0 ? hash : 1;
}

}  // namespace util
}  // namespace wdsparql
