#ifndef WDSPARQL_UTIL_STRINGS_H_
#define WDSPARQL_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

/// \file
/// Small string utilities shared by the parsers and pretty printers.

namespace wdsparql {

/// Returns `s` with leading/trailing ASCII whitespace removed.
std::string_view StripAsciiWhitespace(std::string_view s);

/// Splits `s` on `delim`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view s, char delim);

/// Joins `pieces` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& pieces, std::string_view sep);

/// True iff `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True iff `c` may appear in an identifier ([A-Za-z0-9_.:/#-]).
bool IsIdentChar(char c);

}  // namespace wdsparql

#endif  // WDSPARQL_UTIL_STRINGS_H_
