#include "util/strings.h"

#include <cctype>

namespace wdsparql {

std::string_view StripAsciiWhitespace(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  std::size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> StrSplit(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == ':' || c == '/' || c == '#' || c == '-' || c == '@';
}

}  // namespace wdsparql
