#ifndef WDSPARQL_SHIM_SRC_UTIL_STATUS_H
#define WDSPARQL_SHIM_SRC_UTIL_STATUS_H

/// \file
/// Compatibility forwarder: this header moved to the stable public
/// surface at include/wdsparql/status.h. Internal code may keep the old
/// path; new code should include "wdsparql/status.h" directly.

#include "wdsparql/status.h"

#endif  // WDSPARQL_SHIM_SRC_UTIL_STATUS_H
