#include "util/undirected_graph.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace wdsparql {

UndirectedGraph::UndirectedGraph(int n) : n_(n), adj_(n), matrix_(n) {
  for (auto& row : matrix_) row.assign(n, false);
}

int UndirectedGraph::AddVertex() {
  ++n_;
  adj_.emplace_back();
  for (auto& row : matrix_) row.push_back(false);
  matrix_.emplace_back(n_, false);
  return n_ - 1;
}

void UndirectedGraph::AddEdge(int u, int v) {
  WDSPARQL_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
  if (u == v || matrix_[u][v]) return;
  matrix_[u][v] = matrix_[v][u] = true;
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  edges_.emplace_back(std::min(u, v), std::max(u, v));
  ++num_edges_;
}

bool UndirectedGraph::HasEdge(int u, int v) const {
  WDSPARQL_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
  return matrix_[u][v];
}

std::vector<std::vector<int>> UndirectedGraph::ConnectedComponents() const {
  std::vector<std::vector<int>> components;
  std::vector<bool> seen(n_, false);
  for (int start = 0; start < n_; ++start) {
    if (seen[start]) continue;
    std::vector<int> component;
    std::queue<int> queue;
    queue.push(start);
    seen[start] = true;
    while (!queue.empty()) {
      int u = queue.front();
      queue.pop();
      component.push_back(u);
      for (int v : adj_[u]) {
        if (!seen[v]) {
          seen[v] = true;
          queue.push(v);
        }
      }
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  return components;
}

UndirectedGraph UndirectedGraph::InducedSubgraph(const std::vector<int>& vertices,
                                                 std::vector<int>* out_index) const {
  UndirectedGraph sub(static_cast<int>(vertices.size()));
  std::vector<int> old_to_new(n_, -1);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    WDSPARQL_CHECK(vertices[i] >= 0 && vertices[i] < n_);
    old_to_new[vertices[i]] = static_cast<int>(i);
  }
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (int v : adj_[vertices[i]]) {
      if (old_to_new[v] >= 0) sub.AddEdge(static_cast<int>(i), old_to_new[v]);
    }
  }
  if (out_index != nullptr) *out_index = vertices;
  return sub;
}

int UndirectedGraph::Degeneracy() const {
  std::vector<int> degree(n_);
  std::vector<bool> removed(n_, false);
  for (int u = 0; u < n_; ++u) degree[u] = Degree(u);
  int degeneracy = 0;
  for (int step = 0; step < n_; ++step) {
    int best = -1;
    for (int u = 0; u < n_; ++u) {
      if (!removed[u] && (best == -1 || degree[u] < degree[best])) best = u;
    }
    degeneracy = std::max(degeneracy, degree[best]);
    removed[best] = true;
    for (int v : adj_[best]) {
      if (!removed[v]) --degree[v];
    }
  }
  return degeneracy;
}

bool UndirectedGraph::IsClique(const std::vector<int>& clique) const {
  for (std::size_t i = 0; i < clique.size(); ++i) {
    for (std::size_t j = i + 1; j < clique.size(); ++j) {
      if (clique[i] == clique[j] || !HasEdge(clique[i], clique[j])) return false;
    }
  }
  return true;
}

UndirectedGraph UndirectedGraph::Complete(int n) {
  UndirectedGraph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) g.AddEdge(u, v);
  }
  return g;
}

UndirectedGraph UndirectedGraph::Cycle(int n) {
  WDSPARQL_CHECK(n >= 3);
  UndirectedGraph g(n);
  for (int u = 0; u < n; ++u) g.AddEdge(u, (u + 1) % n);
  return g;
}

UndirectedGraph UndirectedGraph::Path(int n) {
  UndirectedGraph g(n);
  for (int u = 0; u + 1 < n; ++u) g.AddEdge(u, u + 1);
  return g;
}

UndirectedGraph UndirectedGraph::Grid(int rows, int cols) {
  UndirectedGraph g(rows * cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      int id = i * cols + j;
      if (j + 1 < cols) g.AddEdge(id, id + 1);
      if (i + 1 < rows) g.AddEdge(id, id + cols);
    }
  }
  return g;
}

}  // namespace wdsparql
