#include "util/combinatorics.h"

namespace wdsparql {

std::vector<int> MaskToIndices(uint64_t mask) {
  std::vector<int> out;
  for (int i = 0; mask != 0; ++i, mask >>= 1) {
    if (mask & 1) out.push_back(i);
  }
  return out;
}

double BinomialCoefficient(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  if (k > n - k) k = n - k;
  double result = 1.0;
  for (int i = 1; i <= k; ++i) {
    result = result * static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return result;
}

}  // namespace wdsparql
