#include "util/status.h"

namespace wdsparql {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotWellDesigned:
      return "NotWellDesigned";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace wdsparql
