#ifndef WDSPARQL_UTIL_JSON_H_
#define WDSPARQL_UTIL_JSON_H_

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

/// \file
/// A minimal JSON emitter for the observability surfaces (ExecStats,
/// MetricsRegistry dumps). Write-only, no document model: callers drive
/// Begin/End and Field calls in document order; the writer tracks the
/// comma state per nesting level. Output is compact (no whitespace) and
/// valid JSON as long as Begin/End calls balance.

namespace wdsparql {
namespace util {

/// Escapes `s` for inclusion in a JSON string literal (quotes excluded).
inline std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Streaming JSON writer (objects, arrays, string/integer/double
/// fields). Move the result out with `std::move(writer).str()`.
class JsonWriter {
 public:
  void BeginObject() { Open('{'); }
  void BeginObject(std::string_view key) { OpenKeyed(key, '{'); }
  void EndObject() { Close('}'); }
  void BeginArray() { Open('['); }
  void BeginArray(std::string_view key) { OpenKeyed(key, '['); }
  void EndArray() { Close(']'); }

  void Field(std::string_view key, std::string_view value) {
    Key(key);
    out_ << '"' << JsonEscape(value) << '"';
  }
  void Field(std::string_view key, const char* value) {
    Field(key, std::string_view(value));
  }
  void Field(std::string_view key, uint64_t value) {
    Key(key);
    out_ << value;
  }
  void Field(std::string_view key, int64_t value) {
    Key(key);
    out_ << value;
  }
  void Field(std::string_view key, double value) {
    Key(key);
    out_ << value;
  }

  std::string str() && { return out_.str(); }

 private:
  void Separate() {
    if (!comma_.empty() && comma_.back()) out_ << ',';
    if (!comma_.empty()) comma_.back() = true;
  }
  void Open(char bracket) {
    Separate();
    out_ << bracket;
    comma_.push_back(false);
  }
  void OpenKeyed(std::string_view key, char bracket) {
    Separate();
    out_ << '"' << JsonEscape(key) << "\":" << bracket;
    comma_.push_back(false);
  }
  void Close(char bracket) {
    out_ << bracket;
    comma_.pop_back();
  }
  void Key(std::string_view key) {
    Separate();
    out_ << '"' << JsonEscape(key) << "\":";
  }

  std::ostringstream out_;
  std::vector<bool> comma_;
};

}  // namespace util
}  // namespace wdsparql

#endif  // WDSPARQL_UTIL_JSON_H_
