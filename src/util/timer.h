#ifndef WDSPARQL_UTIL_TIMER_H_
#define WDSPARQL_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

/// \file
/// Wall-clock timing — THE shared stopwatch. The experiment harnesses,
/// the command-line tools and the engine's phase timers (ExecStats,
/// MetricsRegistry duration histograms) all measure through this one
/// utility instead of re-deriving std::chrono arithmetic per call site.

namespace wdsparql {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  /// Starts (or restarts) the stopwatch.
  Timer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed whole nanoseconds since construction or the last Reset()
  /// (the unit the observability counters store).
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII phase timer: accumulates the scope's elapsed nanoseconds into
/// `*sink` on destruction. A null sink measures nothing (and skips the
/// clock reads entirely), so instrumented code pays only a branch when
/// stats collection is off:
///
/// ```
/// { ScopedNanos t(stats ? &stats->plan_ns : nullptr);  ... phase ... }
/// ```
class ScopedNanos {
 public:
  explicit ScopedNanos(uint64_t* sink) : sink_(sink) {
    if (sink_ != nullptr) timer_.Reset();
  }
  ~ScopedNanos() {
    if (sink_ != nullptr) *sink_ += timer_.ElapsedNanos();
  }
  ScopedNanos(const ScopedNanos&) = delete;
  ScopedNanos& operator=(const ScopedNanos&) = delete;

 private:
  uint64_t* sink_;
  Timer timer_;
};

}  // namespace wdsparql

#endif  // WDSPARQL_UTIL_TIMER_H_
