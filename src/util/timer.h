#ifndef WDSPARQL_UTIL_TIMER_H_
#define WDSPARQL_UTIL_TIMER_H_

#include <chrono>

/// \file
/// Wall-clock timing for the experiment harnesses.

namespace wdsparql {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  /// Starts (or restarts) the stopwatch.
  Timer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace wdsparql

#endif  // WDSPARQL_UTIL_TIMER_H_
