#ifndef WDSPARQL_SHIM_SRC_UTIL_HASH_H
#define WDSPARQL_SHIM_SRC_UTIL_HASH_H

/// \file
/// Compatibility forwarder: this header moved to the stable public
/// surface at include/wdsparql/hash.h. Internal code may keep the old
/// path; new code should include "wdsparql/hash.h" directly.

#include "wdsparql/hash.h"

#endif  // WDSPARQL_SHIM_SRC_UTIL_HASH_H
