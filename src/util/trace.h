#ifndef WDSPARQL_UTIL_TRACE_H_
#define WDSPARQL_UTIL_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/json.h"
#include "wdsparql/trace.h"

/// \file
/// Internal helpers shared by the trace implementation, the HTTP server
/// (request-id handling, inline `?trace=1` rendering) and the tools.

namespace wdsparql {
namespace util {

/// Renders one span as a JSON object into `w`. A still-open span
/// (duration == TraceSpan::kOpenDuration) is rendered with its duration up
/// to `now_ns` and an `"open":true` marker.
void AppendSpanJson(JsonWriter& w, const TraceSpan& span, std::uint64_t now_ns);

/// Fixed-width lowercase hex rendering of a trace id (the wire form of a
/// generated X-Request-Id).
std::string FormatTraceId(std::uint64_t id);

/// Maps a client-supplied X-Request-Id to a trace id: 1-16 hex digits parse
/// directly, anything else is FNV-1a hashed. Never returns 0.
std::uint64_t TraceIdFromRequestId(std::string_view request_id);

}  // namespace util
}  // namespace wdsparql

#endif  // WDSPARQL_UTIL_TRACE_H_
