#ifndef WDSPARQL_UTIL_RNG_H_
#define WDSPARQL_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

/// \file
/// Deterministic pseudo-random number generation.
///
/// All synthetic workloads (graph generators, random query families) are
/// seeded explicitly so that every experiment in EXPERIMENTS.md is exactly
/// reproducible. We use our own splitmix64/xoshiro mix rather than
/// std::mt19937 so the stream is stable across standard libraries.

namespace wdsparql {

/// Deterministic 64-bit PRNG (splitmix64).
///
/// Not cryptographically secure; intended for workload synthesis only.
class Rng {
 public:
  /// Creates a generator with the given seed. Equal seeds yield equal
  /// streams on every platform.
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  /// Returns the next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Returns a uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBounded(uint64_t bound) {
    WDSPARQL_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = -bound % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Returns a uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    WDSPARQL_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Returns a uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Returns true with probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBounded(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_;
};

}  // namespace wdsparql

#endif  // WDSPARQL_UTIL_RNG_H_
