#ifndef WDSPARQL_SHIM_SRC_UTIL_CHECK_H
#define WDSPARQL_SHIM_SRC_UTIL_CHECK_H

/// \file
/// Compatibility forwarder: this header moved to the stable public
/// surface at include/wdsparql/check.h. Internal code may keep the old
/// path; new code should include "wdsparql/check.h" directly.

#include "wdsparql/check.h"

#endif  // WDSPARQL_SHIM_SRC_UTIL_CHECK_H
