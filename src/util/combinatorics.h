#ifndef WDSPARQL_UTIL_COMBINATORICS_H_
#define WDSPARQL_UTIL_COMBINATORICS_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

/// \file
/// Subset and combination enumeration helpers.
///
/// Used by the treewidth subset DP, subtree enumeration, and the
/// children-assignment enumeration behind GtG(T). All enumerations are in
/// a deterministic order so experiment output is stable.

namespace wdsparql {

/// Calls `fn(combination)` for every size-`k` subset of {0,...,n-1}, in
/// lexicographic order. `combination` is a sorted vector of indices.
template <typename Fn>
void ForEachCombination(int n, int k, Fn&& fn) {
  WDSPARQL_CHECK(k >= 0 && n >= 0);
  if (k > n) return;
  std::vector<int> idx(k);
  for (int i = 0; i < k; ++i) idx[i] = i;
  for (;;) {
    fn(const_cast<const std::vector<int>&>(idx));
    // Advance to the next combination.
    int i = k - 1;
    while (i >= 0 && idx[i] == n - k + i) --i;
    if (i < 0) return;
    ++idx[i];
    for (int j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
}

/// Calls `fn(mask)` for every subset mask of {0,...,n-1} (0 .. 2^n-1) in
/// increasing numeric order. Requires n <= 30.
template <typename Fn>
void ForEachSubsetMask(int n, Fn&& fn) {
  WDSPARQL_CHECK(n >= 0 && n <= 30);
  for (uint32_t mask = 0; mask < (1u << n); ++mask) fn(mask);
}

/// Returns the indices of set bits in `mask`, ascending.
std::vector<int> MaskToIndices(uint64_t mask);

/// Returns n-choose-k as double (for reporting; saturates gracefully).
double BinomialCoefficient(int n, int k);

}  // namespace wdsparql

#endif  // WDSPARQL_UTIL_COMBINATORICS_H_
