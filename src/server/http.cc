#include "server/http.h"

#include <errno.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>

namespace wdsparql {
namespace server {
namespace {

/// Hard cap on the request line + header block. Anything bigger is a
/// client error, not a reason to grow a buffer.
constexpr std::size_t kMaxHeaderBytes = 64 * 1024;

/// Sends all of `data`, riding out short writes. MSG_NOSIGNAL turns a
/// dead peer into an EPIPE return instead of a process signal.
bool SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Splits the raw target into path + decoded params.
void ParseTarget(std::string_view target, HttpRequest* out) {
  std::size_t qmark = target.find('?');
  out->path = UrlDecode(target.substr(0, qmark));
  if (qmark == std::string_view::npos) return;
  std::string_view query = target.substr(qmark + 1);
  while (!query.empty()) {
    std::size_t amp = query.find('&');
    std::string_view pair = query.substr(0, amp);
    std::size_t eq = pair.find('=');
    if (!pair.empty()) {
      std::string key = UrlDecode(pair.substr(0, eq));
      std::string value =
          eq == std::string_view::npos ? "" : UrlDecode(pair.substr(eq + 1));
      out->params[key] = value;
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
}

}  // namespace

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size() && HexValue(s[i + 1]) >= 0 &&
               HexValue(s[i + 2]) >= 0) {
      out += static_cast<char>(HexValue(s[i + 1]) * 16 + HexValue(s[i + 2]));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

HttpParseResult ReadHttpRequest(int fd, std::size_t max_body_bytes,
                                HttpRequest* out) {
  // Accumulate until the blank line ending the header block.
  std::string buffer;
  std::size_t header_end = std::string::npos;
  char chunk[4096];
  while (true) {
    header_end = buffer.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    if (buffer.size() > kMaxHeaderBytes) return HttpParseResult::kHeadersTooLarge;
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) return HttpParseResult::kClosed;
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return HttpParseResult::kTimeout;
      return HttpParseResult::kClosed;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }

  // Request line: METHOD SP target SP HTTP/1.x
  std::string_view head(buffer.data(), header_end);
  std::size_t line_end = head.find("\r\n");
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  std::size_t sp1 = request_line.find(' ');
  std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return HttpParseResult::kMalformed;
  }
  out->method = std::string(request_line.substr(0, sp1));
  std::string_view version = request_line.substr(sp2 + 1);
  if (version.substr(0, 5) != "HTTP/") return HttpParseResult::kMalformed;
  ParseTarget(request_line.substr(sp1 + 1, sp2 - sp1 - 1), out);

  // Header lines.
  std::string_view rest =
      line_end == std::string_view::npos ? std::string_view() : head.substr(line_end + 2);
  while (!rest.empty()) {
    std::size_t eol = rest.find("\r\n");
    std::string_view line = rest.substr(0, eol);
    std::size_t colon = line.find(':');
    if (colon != std::string_view::npos) {
      out->headers[ToLower(Trim(line.substr(0, colon)))] =
          std::string(Trim(line.substr(colon + 1)));
    }
    if (eol == std::string_view::npos) break;
    rest.remove_prefix(eol + 2);
  }

  if (out->headers.count("transfer-encoding") != 0) {
    return HttpParseResult::kUnsupported;  // Request chunking unimplemented.
  }

  std::size_t content_length = 0;
  auto it = out->headers.find("content-length");
  if (it != out->headers.end()) {
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0') return HttpParseResult::kMalformed;
    content_length = static_cast<std::size_t>(parsed);
  }
  if (content_length > max_body_bytes) return HttpParseResult::kBodyTooLarge;

  out->body = buffer.substr(header_end + 4);
  while (out->body.size() < content_length) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) return HttpParseResult::kClosed;
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return HttpParseResult::kTimeout;
      return HttpParseResult::kClosed;
    }
    out->body.append(chunk, static_cast<std::size_t>(n));
  }
  out->body.resize(content_length);  // Drop any pipelined overshoot.
  return HttpParseResult::kOk;
}

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

namespace {

std::string ResponseHead(int status, std::string_view content_type,
                         const std::map<std::string, std::string>& extra_headers,
                         std::string_view framing) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     StatusReason(status) + "\r\n";
  head += "Content-Type: " + std::string(content_type) + "\r\n";
  head += "Connection: close\r\n";
  for (const auto& [name, value] : extra_headers) {
    head += name + ": " + value + "\r\n";
  }
  head += framing;
  head += "\r\n";
  return head;
}

}  // namespace

bool WriteHttpResponse(int fd, int status, std::string_view content_type,
                       std::string_view body,
                       const std::map<std::string, std::string>& extra_headers,
                       uint64_t* bytes_written) {
  std::string head =
      ResponseHead(status, content_type, extra_headers,
                   "Content-Length: " + std::to_string(body.size()) + "\r\n");
  if (!SendAll(fd, head)) return false;
  if (bytes_written != nullptr) *bytes_written += body.size();
  return SendAll(fd, body);
}

bool ChunkedWriter::Begin(int status, std::string_view content_type,
                          const std::map<std::string, std::string>& extra_headers) {
  if (failed_) return false;
  std::string head = ResponseHead(status, content_type, extra_headers,
                                  "Transfer-Encoding: chunked\r\n");
  failed_ = !SendAll(fd_, head);
  return !failed_;
}

bool ChunkedWriter::Write(std::string_view data) {
  if (failed_) return false;
  if (data.empty()) return true;  // An empty chunk would terminate the stream.
  char size_line[32];
  std::snprintf(size_line, sizeof(size_line), "%zx\r\n", data.size());
  std::string frame = size_line;
  frame.append(data);
  frame += "\r\n";
  bytes_written_ += data.size();
  failed_ = !SendAll(fd_, frame);
  return !failed_;
}

bool ChunkedWriter::End() {
  if (failed_) return false;
  failed_ = !SendAll(fd_, "0\r\n\r\n");
  return !failed_;
}

bool PeerClosed(int fd) {
  char probe;
  ssize_t n = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
  if (n == 0) return true;  // Orderly FIN.
  if (n < 0) return errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR;
  return false;  // Pipelined bytes: the peer is alive (and impatient).
}

}  // namespace server
}  // namespace wdsparql
