#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "util/json.h"
#include "util/timer.h"
#include "util/trace.h"
#include "wdsparql/cursor.h"
#include "wdsparql/exec_options.h"
#include "wdsparql/session.h"
#include "wdsparql/snapshot.h"
#include "wdsparql/write_batch.h"

namespace wdsparql {
namespace server {
namespace {

/// Applies the per-socket timeouts so one stalled peer cannot wedge a
/// worker, and disables Nagle so streamed rows leave promptly.
void ConfigureSocket(int fd, int io_timeout_ms) {
  struct timeval tv;
  tv.tv_sec = io_timeout_ms / 1000;
  tv.tv_usec = (io_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool ParseUint(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = parsed;
  return true;
}

/// One query parameter as a non-negative integer; absent -> `fallback`,
/// unparseable -> false.
bool UintParam(const HttpRequest& request, const char* name, uint64_t fallback,
               uint64_t* out) {
  auto it = request.params.find(name);
  if (it == request.params.end()) {
    *out = fallback;
    return true;
  }
  return ParseUint(it->second, out);
}

std::string ErrorJson(const std::string& code, const std::string& message) {
  util::JsonWriter json;
  json.BeginObject();
  json.BeginObject("error");
  json.Field("code", code);
  json.Field("message", message);
  json.EndObject();
  json.EndObject();
  return std::move(json).str();
}

/// The structured-diagnostics payload of a 4xx on /query and /contains:
/// the prepared statement's full `QueryDiagnostics`, machine-branchable
/// by `code` exactly like the C++ surface.
std::string DiagnosticsJson(const QueryDiagnostics& diag) {
  util::JsonWriter json;
  json.BeginObject();
  json.BeginObject("error");
  json.Field("code", DiagnosticsCodeToString(diag.code));
  json.Field("message", diag.message);
  if (!diag.offending_variable.empty()) {
    json.Field("offending_variable", diag.offending_variable);
  }
  json.Field("parsed", diag.parsed ? "true" : "false");
  json.Field("well_designed", diag.well_designed ? "true" : "false");
  json.EndObject();
  json.EndObject();
  return std::move(json).str();
}

int DiagnosticsHttpStatus(QueryDiagnostics::Code code) {
  switch (code) {
    case QueryDiagnostics::Code::kParseError:
    case QueryDiagnostics::Code::kNotWellDesigned:
    case QueryDiagnostics::Code::kUnsupported:
    case QueryDiagnostics::Code::kInvalidProjection:
      return 400;
    default:
      return 500;
  }
}

/// The trailing "status" field of a streamed /query response.
const char* QueryOutcome(const Cursor& cursor) {
  switch (cursor.state()) {
    case Cursor::State::kExhausted: return "exhausted";
    case Cursor::State::kLimited: return "limited";
    case Cursor::State::kCancelled:
      return cursor.diagnostics().code == QueryDiagnostics::Code::kDeadlineExceeded
                 ? "deadline_exceeded"
                 : "cancelled";
    default: return "error";
  }
}

/// Milliseconds since the Unix epoch, for access-log timestamps.
uint64_t WallClockMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// One result row as a JSON array; unbound OPT columns render as null.
std::string RowJson(const Cursor& cursor) {
  std::string row = "[";
  for (std::size_t col = 0; col < cursor.width(); ++col) {
    if (col != 0) row += ',';
    if (cursor.IsBound(col)) {
      row += '"';
      row += util::JsonEscape(cursor.Value(col));
      row += '"';
    } else {
      row += "null";
    }
  }
  row += ']';
  return row;
}

}  // namespace

Server::Server(Database* db, const ServerOptions& options)
    : db_(db), options_(options) {
  log_stream_ = options_.log_stream != nullptr ? options_.log_stream : stderr;
  MetricsRegistry& metrics = db_->metrics();
  requests_ = &metrics.counter("server.requests");
  queries_ = &metrics.counter("server.queries");
  writes_ = &metrics.counter("server.writes");
  rejected_ = &metrics.counter("server.rejected");
  http_errors_ = &metrics.counter("server.http_errors");
  client_disconnects_ = &metrics.counter("server.client_disconnects");
  bytes_streamed_ = &metrics.counter("server.bytes_streamed");
  inflight_ = &metrics.gauge("server.inflight");
  queue_depth_ = &metrics.gauge("server.queue_depth");
  request_ns_ = &metrics.histogram("server.request_ns");
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_) return Status::FailedPrecondition("server already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("unparseable bind address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    Status status = Status::IoError("bind " + options_.host + ":" +
                                    std::to_string(options_.port) + ": " +
                                    std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  // Seed the fallback request-id generator from the wall clock so
  // generated ids stay distinct across server restarts even when the
  // flight recorder (whose trace-id counter otherwise supplies ids) is
  // disabled.
  request_seq_.store(WallClockMs() * 1'000'003 + 1,
                     std::memory_order_relaxed);

  stopping_ = false;
  running_ = true;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  int workers = options_.num_workers < 1 ? 1 : options_.num_workers;
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void Server::Stop() {
  if (!running_) return;
  stopping_.store(true, std::memory_order_relaxed);
  { std::lock_guard<std::mutex> lock(queue_mutex_); }   // Pairs with waiters.
  { std::lock_guard<std::mutex> lock(block_mutex_); }
  // Shutting down the listening socket refuses new connections
  // immediately and unblocks the acceptor's accept(2) with EINVAL. The
  // close (and the fd reset) waits until the acceptor has joined: the
  // acceptor still reads `listen_fd_`, and an early close would both
  // race that read and let the fd number be reused under it.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  queue_cv_.notify_all();
  // Drain semantics: /block parkers count as in-flight work and must
  // finish, so the stop signal releases them.
  block_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  running_ = false;
}

void Server::UnblockTestRequests() {
  std::lock_guard<std::mutex> lock(block_mutex_);
  unblocked_ = true;
  block_cv_.notify_all();
}

void Server::AcceptLoop() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // The listening socket was closed (Stop) or is unusable.
    }
    ConfigureSocket(fd, options_.io_timeout_ms);
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (stopping_.load(std::memory_order_relaxed) ||
          queue_.size() >= options_.queue_capacity) {
        shed = true;
      } else {
        queue_.push_back(fd);
        queue_depth_->Set(static_cast<int64_t>(queue_.size()));
      }
    }
    if (shed) {
      // Admission control: the acceptor itself answers — a full queue
      // costs one small write and one close, never more memory.
      rejected_->Add(1);
      WriteHttpResponse(
          fd, 503, "application/json",
          ErrorJson("Overloaded", "admission queue full; retry later"),
          {{"Retry-After", std::to_string(options_.retry_after_s)}});
      // Lingering close: the client's request bytes are still unread,
      // and close(2) with unread data resets the connection — an RST
      // racing (and often destroying) the 503 we just wrote. Signal
      // end-of-response, then drain until the client's FIN, briefly.
      ::shutdown(fd, SHUT_WR);
      struct timeval linger_tv;
      linger_tv.tv_sec = 0;
      linger_tv.tv_usec = 250 * 1000;  // Bounds the acceptor's stall.
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &linger_tv, sizeof(linger_tv));
      char drain[1024];
      while (::recv(fd, drain, sizeof(drain), 0) > 0) {
      }
      ::close(fd);
      continue;
    }
    queue_cv_.notify_one();
  }
}

void Server::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_relaxed) || !queue_.empty();
      });
      if (queue_.empty()) return;  // Stopping and fully drained.
      fd = queue_.front();
      queue_.pop_front();
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
    inflight_->Add(1);
    Timer request_timer;
    HandleConnection(fd);
    request_ns_->Observe(request_timer.ElapsedNanos());
    ::close(fd);
    inflight_->Add(-1);
  }
}

void Server::HandleConnection(int fd) {
  HttpRequest request;
  HttpParseResult parsed = ReadHttpRequest(fd, options_.max_body_bytes, &request);
  switch (parsed) {
    case HttpParseResult::kOk: break;
    case HttpParseResult::kClosed:
    case HttpParseResult::kTimeout:
      return;  // Nobody is listening for an error page.
    case HttpParseResult::kMalformed:
      WriteError(fd, nullptr, 400, "MalformedRequest",
                 "unparseable HTTP request");
      return;
    case HttpParseResult::kHeadersTooLarge:
      WriteError(fd, nullptr, 431, "HeadersTooLarge",
                 "request header block too large");
      return;
    case HttpParseResult::kBodyTooLarge:
      WriteError(fd, nullptr, 413, "BodyTooLarge",
                 "request body exceeds max_body_bytes (" +
                     std::to_string(options_.max_body_bytes) + ")");
      return;
    case HttpParseResult::kUnsupported:
      WriteError(fd, nullptr, 411, "LengthRequired",
                 "chunked request bodies are not supported; send Content-Length");
      return;
  }
  requests_->Add(1);

  // Request identity: honour a client-supplied X-Request-Id (hashed onto
  // a trace id when it is not already one), otherwise mint one. The id
  // is echoed on every response and keys the trace, the access-log line
  // and the slow-query log together.
  RequestContext ctx;
  TraceRecorder* recorder = db_->trace_recorder();
  uint64_t trace_id;
  auto id_header = request.headers.find("x-request-id");
  if (id_header != request.headers.end() && !id_header->second.empty()) {
    ctx.request_id = id_header->second;
    trace_id = util::TraceIdFromRequestId(ctx.request_id);
  } else {
    trace_id = recorder != nullptr
                   ? recorder->NewTraceId()
                   : request_seq_.fetch_add(1, std::memory_order_relaxed) | 1;
    ctx.request_id = util::FormatTraceId(trace_id);
  }
  if (recorder != nullptr) {
    ctx.trace = TraceContext(recorder, trace_id);
    ctx.root_span = ctx.trace.StartSpan("request");
    ctx.trace.Annotate(ctx.root_span, "method", request.method);
    ctx.trace.Annotate(ctx.root_span, "path", request.path);
  }

  Timer request_timer;
  Dispatch(fd, request, ctx);
  uint64_t duration_ns = request_timer.ElapsedNanos();

  if (ctx.root_span != 0) {
    ctx.trace.Annotate(ctx.root_span, "status",
                       static_cast<uint64_t>(ctx.status));
    ctx.trace.EndSpan(ctx.root_span);
  }
  ctx.trace.Flush();

  if (!options_.quiet) {
    // One structured access-log line per parsed request; status 0 means
    // the peer disappeared before (or while) a response was written.
    util::JsonWriter line;
    line.BeginObject();
    line.Field("ts_ms", WallClockMs());
    line.Field("request_id", ctx.request_id);
    line.Field("method", request.method);
    line.Field("path", request.path);
    line.Field("status", static_cast<int64_t>(ctx.status));
    line.Field("duration_ms",
               static_cast<double>(duration_ns) / 1e6);
    line.Field("rows", ctx.rows);
    line.Field("bytes", ctx.bytes);
    line.EndObject();
    LogLine(std::move(line).str());
  }
}

void Server::Dispatch(int fd, const HttpRequest& request, RequestContext& ctx) {
  if (request.path == "/query") {
    if (request.method != "POST") {
      WriteError(fd, &ctx, 405, "MethodNotAllowed", "/query takes POST");
      return;
    }
    HandleQuery(fd, request, ctx);
  } else if (request.path == "/contains") {
    if (request.method != "POST") {
      WriteError(fd, &ctx, 405, "MethodNotAllowed", "/contains takes POST");
      return;
    }
    HandleContains(fd, request, ctx);
  } else if (request.path == "/write") {
    if (request.method != "POST") {
      WriteError(fd, &ctx, 405, "MethodNotAllowed", "/write takes POST");
      return;
    }
    HandleWrite(fd, request, ctx);
  } else if (request.path == "/metrics") {
    if (request.method != "GET") {
      WriteError(fd, &ctx, 405, "MethodNotAllowed", "/metrics takes GET");
      return;
    }
    HandleMetrics(fd, request, ctx);
  } else if (request.path == "/debug/trace") {
    if (request.method != "GET") {
      WriteError(fd, &ctx, 405, "MethodNotAllowed", "/debug/trace takes GET");
      return;
    }
    HandleDebugTrace(fd, request, ctx);
  } else if (request.path == "/healthz") {
    if (request.method != "GET") {
      WriteError(fd, &ctx, 405, "MethodNotAllowed", "/healthz takes GET");
      return;
    }
    HandleHealth(fd, ctx);
  } else if (request.path == "/block" && options_.enable_test_endpoints) {
    HandleBlock(fd, ctx);
  } else {
    WriteError(fd, &ctx, 404, "NotFound", "no such endpoint: " + request.path);
  }
}

void Server::HandleQuery(int fd, const HttpRequest& request,
                         RequestContext& ctx) {
  queries_->Add(1);
  Timer query_timer;
  uint64_t limit = 0;
  uint64_t deadline_ms = 0;
  uint64_t parallelism = 0;
  if (!UintParam(request, "limit", 0, &limit) ||
      !UintParam(request, "deadline_ms", options_.default_deadline_ms,
                 &deadline_ms) ||
      !UintParam(request, "parallelism", 0, &parallelism)) {
    WriteError(fd, &ctx, 400, "InvalidParameter",
               "limit, deadline_ms and parallelism must be non-negative "
               "integers");
    return;
  }
  // Default parallelism policy: a request that names no `?parallelism=`
  // gets a server-chosen degree — the machine's core count divided by
  // the requests currently in flight (this one included), so a lone
  // query fans wide while a busy pool degrades towards serial instead of
  // oversubscribing every core `max_parallelism`-fold. An explicit
  // `parallelism=0` still means "serial, please" — the policy only fills
  // silence, it never overrides a choice.
  if (request.params.find("parallelism") == request.params.end()) {
    uint32_t hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    int64_t inflight = inflight_->value();
    if (inflight < 1) inflight = 1;
    parallelism = hw / static_cast<uint64_t>(inflight);
    if (parallelism < 1) parallelism = 1;
  }
  // Parallelism is clamped to the server ceiling, not refused: unlike a
  // loosened deadline it cannot change the answer set, only how many
  // threads one request may occupy.
  if (parallelism > options_.max_parallelism) {
    parallelism = options_.max_parallelism;
  }
  // The server default is a *hard* ceiling: a request may tighten its
  // deadline, never escape it (unless the server runs unbounded).
  if (options_.default_deadline_ms != 0 &&
      (deadline_ms == 0 || deadline_ms > options_.default_deadline_ms)) {
    deadline_ms = options_.default_deadline_ms;
  }
  bool want_stats = false;
  {
    auto it = request.params.find("stats");
    want_stats = it != request.params.end() && it->second == "1";
  }
  bool want_trace = false;
  {
    auto it = request.params.find("trace");
    want_trace = it != request.params.end() && it->second == "1";
  }
  // The slow-query log captures the EXPLAIN tree, so while the log is
  // armed every query collects stats whether or not it asked to.
  const bool slow_log = options_.slow_query_ms >= 0;

  // `?optimize=0` bypasses the cost-based planner for this query (A/B
  // comparisons, plan-regression triage); anything else keeps it on.
  bool optimize = true;
  {
    auto it = request.params.find("optimize");
    optimize = it == request.params.end() || it->second != "0";
  }

  ExecOptions exec;
  exec.row_limit = limit;
  exec.optimize = optimize;
  exec.parallelism = static_cast<uint32_t>(parallelism);
  exec.cancel = MakeCancelToken();
  exec.collect_stats = want_stats || slow_log;
  if (ctx.trace.enabled()) {
    exec.trace = &ctx.trace;
    exec.trace_parent = ctx.root_span;
  }
  if (deadline_ms != 0) {
    exec.WithTimeout(std::chrono::milliseconds(deadline_ms));
  }

  // Pin the published state once: however long this response streams and
  // whatever /write commits meanwhile, every row comes from one
  // generation. The pin is released with the cursor, below.
  Snapshot snapshot = db_->GetSnapshot();
  Session session = db_->OpenSession();
  Statement stmt = session.Prepare(request.body);
  if (!stmt.ok()) {
    const QueryDiagnostics& diag = stmt.diagnostics();
    http_errors_->Add(1);
    WriteResponse(fd, ctx, DiagnosticsHttpStatus(diag.code),
                  "application/json", DiagnosticsJson(diag));
    return;
  }
  Cursor cursor = stmt.Execute(snapshot, exec);

  // Pull the first row before committing to a 200: an execution that
  // fails outright (library bug, refused snapshot) still gets a clean
  // error status.
  bool has_row = cursor.Next();
  if (!has_row && cursor.state() == Cursor::State::kFailed) {
    const QueryDiagnostics& diag = cursor.diagnostics();
    http_errors_->Add(1);
    WriteResponse(fd, ctx, DiagnosticsHttpStatus(diag.code),
                  "application/json", DiagnosticsJson(diag));
    return;
  }

  std::string head = "{\"vars\":[";
  const std::vector<std::string>& vars = stmt.variables();
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (i != 0) head += ',';
    head += '"';
    head += util::JsonEscape(vars[i]);
    head += '"';
  }
  head += "],\"rows\":[";

  // One JSON line per offending query while the slow-query log is armed:
  // everything an operator needs to act on the query from the log alone —
  // the request id (keys the access log and /debug/trace), the pattern,
  // how it ended, and the captured EXPLAIN tree.
  auto maybe_log_slow = [&](const char* outcome) {
    if (!slow_log) return;
    uint64_t elapsed_ns = query_timer.ElapsedNanos();
    if (elapsed_ns / 1'000'000 <
        static_cast<uint64_t>(options_.slow_query_ms)) {
      return;
    }
    std::string line = "{\"slow_query\":true,\"request_id\":\"";
    line += util::JsonEscape(ctx.request_id);
    line += "\",\"pattern\":\"";
    line += util::JsonEscape(std::string_view(request.body).substr(0, 512));
    line += "\",\"outcome\":\"";
    line += outcome;
    line += "\",\"duration_ms\":";
    line += std::to_string(static_cast<double>(elapsed_ns) / 1e6);
    line += ",\"rows\":" + std::to_string(cursor.rows());
    if (cursor.stats() != nullptr) {
      line += ",\"explain\":" + cursor.stats()->ToJson();
    }
    line += "}";
    LogLine(line);
  };

  ChunkedWriter writer(fd);
  bool alive = writer.Begin(200, "application/json",
                            {{"X-Request-Id", ctx.request_id}}) &&
               writer.Write(head);
  ctx.status = 200;
  uint64_t streamed = 0;
  uint32_t probe_every = options_.disconnect_probe_interval == 0
                             ? 1
                             : options_.disconnect_probe_interval;
  while (alive && has_row) {
    std::string row = streamed == 0 ? RowJson(cursor) : ("," + RowJson(cursor));
    alive = writer.Write(row);
    ++streamed;
    // Liveness probe between rows: a mid-stream disconnect must stop
    // the enumeration promptly, not at the end of the answer set.
    if (alive && streamed % probe_every == 0 && PeerClosed(fd)) alive = false;
    if (alive) has_row = cursor.Next();
  }
  ctx.rows = streamed;

  if (!alive) {
    // The client went away mid-stream. Fire the request's token (the
    // enumerator stops mid-subtree at its next check) and close the
    // cursor NOW: its pinned read view must not outlive the connection.
    exec.cancel->store(true, std::memory_order_relaxed);
    cursor.Close();
    client_disconnects_->Add(1);
    bytes_streamed_->Add(writer.bytes_written());
    ctx.bytes += writer.bytes_written();
    ctx.status = 0;  // Nobody received the response.
    maybe_log_slow("client_disconnect");
    return;
  }

  std::string tail = "],\"status\":\"";
  tail += QueryOutcome(cursor);
  tail += "\",\"row_count\":" + std::to_string(cursor.rows());
  tail += ",\"generation\":" + std::to_string(snapshot.generation());
  if (want_stats && cursor.stats() != nullptr) {
    // Trailing stats object, Trident-style: results first, the
    // execution's own account of itself alongside.
    tail += ",\"stats\":" + cursor.stats()->ToJson();
  }
  if (want_trace && ctx.trace.enabled()) {
    // Inline spans after the status trailer. The root `request` span is
    // still open here (the response itself is part of it) and renders
    // with its duration so far.
    tail += ",\"trace\":{\"trace_id\":\"";
    tail += util::FormatTraceId(ctx.trace.trace_id());
    tail += "\",\"spans\":" + ctx.trace.SpansJson() + "}";
  }
  tail += "}";
  if (writer.Write(tail)) writer.End();
  bytes_streamed_->Add(writer.bytes_written());
  ctx.bytes += writer.bytes_written();
  maybe_log_slow(QueryOutcome(cursor));
}

void Server::HandleContains(int fd, const HttpRequest& request,
                            RequestContext& ctx) {
  queries_->Add(1);
  // Body: line 1 = pattern text, then one "?var value" binding per line.
  std::string_view body = request.body;
  std::size_t eol = body.find('\n');
  std::string_view pattern = body.substr(0, eol);
  Snapshot snapshot = db_->GetSnapshot();
  Session session = db_->OpenSession();
  Statement stmt = session.Prepare(pattern);
  if (!stmt.ok()) {
    const QueryDiagnostics& diag = stmt.diagnostics();
    http_errors_->Add(1);
    WriteResponse(fd, ctx, DiagnosticsHttpStatus(diag.code),
                  "application/json", DiagnosticsJson(diag));
    return;
  }

  TermPool& pool = db_->pool();
  Mapping mu;
  bool definitely_absent = false;
  std::string_view rest = eol == std::string_view::npos ? std::string_view()
                                                        : body.substr(eol + 1);
  while (!rest.empty()) {
    std::size_t line_end = rest.find('\n');
    std::string_view line = rest.substr(0, line_end);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    rest = line_end == std::string_view::npos ? std::string_view()
                                              : rest.substr(line_end + 1);
    while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
    if (line.empty()) continue;
    std::size_t space = line.find(' ');
    if (space == std::string_view::npos) {
      WriteError(fd, &ctx, 400, "InvalidBinding",
                 "binding lines are \"?var value\": " + std::string(line));
      return;
    }
    std::string_view var_name = line.substr(0, space);
    std::string_view value = line.substr(space + 1);
    while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    if (var_name.empty() || var_name.front() != '?' || value.empty()) {
      WriteError(fd, &ctx, 400, "InvalidBinding",
                 "binding lines are \"?var value\": " + std::string(line));
      return;
    }
    const std::vector<std::string>& vars = stmt.variables();
    if (std::find(vars.begin(), vars.end(), std::string(var_name)) == vars.end()) {
      WriteError(fd, &ctx, 400, "InvalidBinding",
                 "variable " + std::string(var_name) + " is not in the pattern");
      return;
    }
    // Accept both the pool's bare spelling and N-Triples-style <...>
    // (the pool interns IRIs without the angle brackets).
    if (value.size() >= 2 && value.front() == '<' && value.back() == '>') {
      value = value.substr(1, value.size() - 2);
    }
    std::optional<TermId> var = pool.FindVariable(var_name.substr(1));
    std::optional<TermId> iri = pool.FindIri(value);
    if (!var.has_value()) {
      WriteError(fd, &ctx, 500, "Internal",
                 "statement variable missing from pool");
      return;
    }
    if (!iri.has_value()) {
      // A spelling the database never interned cannot appear in any
      // answer; the membership test is decided without running it.
      definitely_absent = true;
      continue;
    }
    if (!mu.Bind(*var, *iri)) {
      WriteError(fd, &ctx, 400, "InvalidBinding",
                 "conflicting bindings for " + std::string(var_name));
      return;
    }
  }

  bool contains = !definitely_absent && stmt.Contains(mu, snapshot);
  std::string body_json = std::string("{\"contains\":") +
                          (contains ? "true" : "false") +
                          ",\"generation\":" +
                          std::to_string(snapshot.generation()) + "}";
  WriteResponse(fd, ctx, 200, "application/json", body_json);
}

void Server::HandleWrite(int fd, const HttpRequest& request,
                         RequestContext& ctx) {
  writes_->Add(1);
  WriteBatch batch;
  Status parsed = batch.LoadNTriples(request.body);
  if (!parsed.ok()) {
    WriteError(fd, &ctx, 400, StatusCodeToString(parsed.code()),
               parsed.message());
    return;
  }
  ApplyResult result;
  Status applied;
  {
    // The engine is single-writer: concurrent /write requests commit
    // one after another. Readers (and open /query streams) never wait —
    // they hold pinned views.
    std::lock_guard<std::mutex> lock(write_mutex_);
    applied = db_->Apply(std::move(batch), &result,
                         ctx.trace.enabled() ? &ctx.trace : nullptr);
  }
  if (!applied.ok()) {
    WriteError(fd, &ctx, 500, StatusCodeToString(applied.code()),
               applied.message());
    return;
  }
  util::JsonWriter json;
  json.BeginObject();
  json.Field("added", static_cast<uint64_t>(result.added));
  json.Field("removed", static_cast<uint64_t>(result.removed));
  json.Field("wal_bytes", result.wal_bytes);
  json.Field("wal_groups", result.wal_groups);
  json.Field("publishes", result.publishes);
  json.Field("generation", db_->generation());
  json.EndObject();
  WriteResponse(fd, ctx, 200, "application/json", std::move(json).str());
}

void Server::HandleMetrics(int fd, const HttpRequest& request,
                           RequestContext& ctx) {
  auto it = request.params.find("format");
  std::string format = it == request.params.end() ? "json" : it->second;
  if (format == "prometheus") {
    WriteResponse(fd, ctx, 200, "text/plain; version=0.0.4; charset=utf-8",
                  db_->DumpMetrics(MetricsFormat::kPrometheus));
  } else if (format == "text") {
    WriteResponse(fd, ctx, 200, "text/plain; charset=utf-8",
                  db_->DumpMetrics(MetricsFormat::kText));
  } else if (format == "json") {
    WriteResponse(fd, ctx, 200, "application/json",
                  db_->DumpMetrics(MetricsFormat::kJson));
  } else {
    WriteError(fd, &ctx, 400, "InvalidParameter",
               "format must be json, text or prometheus");
  }
}

void Server::HandleDebugTrace(int fd, const HttpRequest& request,
                              RequestContext& ctx) {
  uint64_t n = 0;
  if (!UintParam(request, "n", 16, &n) || n == 0) {
    WriteError(fd, &ctx, 400, "InvalidParameter",
               "n must be a positive integer");
    return;
  }
  // The recorder holds a bounded window anyway; clamping keeps one
  // debug poll from building an arbitrarily large response.
  if (n > 256) n = 256;
  WriteResponse(fd, ctx, 200, "application/json", db_->DumpTraces(n));
}

void Server::HandleHealth(int fd, RequestContext& ctx) {
  Status storage = db_->storage_status();
  if (storage.ok()) {
    std::string body = "{\"status\":\"ok\",\"triples\":" +
                       std::to_string(db_->size()) +
                       ",\"generation\":" + std::to_string(db_->generation()) +
                       "}";
    WriteResponse(fd, ctx, 200, "application/json", body);
  } else {
    WriteResponse(fd, ctx, 503, "application/json",
                  ErrorJson(StatusCodeToString(storage.code()),
                            storage.message()));
  }
}

void Server::HandleBlock(int fd, RequestContext& ctx) {
  // Test-only: park this worker until the test (or a drain) releases
  // it. Gives tests a deterministic way to fill the pool and the
  // admission queue.
  {
    std::unique_lock<std::mutex> lock(block_mutex_);
    block_cv_.wait(lock, [this] {
      return unblocked_ || stopping_.load(std::memory_order_relaxed);
    });
  }
  WriteResponse(fd, ctx, 200, "application/json", "{\"status\":\"unblocked\"}");
}

void Server::WriteResponse(int fd, RequestContext& ctx, int status,
                           std::string_view content_type,
                           std::string_view body,
                           std::map<std::string, std::string> extra_headers) {
  extra_headers["X-Request-Id"] = ctx.request_id;
  uint64_t bytes = 0;
  WriteHttpResponse(fd, status, content_type, body, extra_headers, &bytes);
  ctx.status = status;
  ctx.bytes += bytes;
}

void Server::WriteError(int fd, RequestContext* ctx, int status,
                        const std::string& code, const std::string& message) {
  if (status >= 400) http_errors_->Add(1);
  if (ctx != nullptr) {
    WriteResponse(fd, *ctx, status, "application/json",
                  ErrorJson(code, message));
  } else {
    WriteHttpResponse(fd, status, "application/json", ErrorJson(code, message));
  }
}

void Server::LogLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(log_mutex_);
  std::fwrite(line.data(), 1, line.size(), log_stream_);
  std::fputc('\n', log_stream_);
  std::fflush(log_stream_);
}

}  // namespace server
}  // namespace wdsparql
