#ifndef WDSPARQL_SERVER_SERVER_H_
#define WDSPARQL_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "server/http.h"
#include "wdsparql/database.h"
#include "wdsparql/metrics.h"
#include "wdsparql/status.h"

/// \file
/// `wdsparql_serve`'s serving core: an HTTP front door over one
/// `Database`, built entirely on the public execution surface —
/// per-request `ExecOptions` (deadline / row limit / cancellation),
/// a pinned `Snapshot` per query so a streaming response never observes
/// concurrent commits, `WriteBatch` commits for ingestion, and the
/// engine's `MetricsRegistry` for observability.
///
/// Endpoints (docs/SERVING.md is the full reference):
///   POST /query     body = pattern text; chunked JSON rows streamed
///                   from the cursor as they are produced. Params:
///                   `limit`, `deadline_ms`, `stats=1`.
///   POST /contains  wdEVAL membership: line 1 = pattern, then one
///                   "?var value" binding per line; snapshot-bound.
///   POST /write     N-Triples body applied as ONE WriteBatch.
///   GET  /metrics   `Database::DumpMetrics` — JSON by default,
///                   Prometheus text exposition with `?format=prometheus`.
///   GET  /healthz   liveness + triple count + storage health.
///   GET  /debug/trace  the flight recorder's most recent complete
///                   traces as JSON (`?n=K`, default 16).
///
/// Request identity and tracing: every request gets a request id —
/// honoured from an `X-Request-Id` header or generated — echoed back in
/// the response headers. When the database's flight recorder is enabled
/// the server opens a root `request` span per request; query execution
/// (parse/plan/enumerate/subtree) and commits attach below it, and
/// `?trace=1` on /query additionally inlines the spans after the status
/// trailer. A structured access-log line per request (and a slow-query
/// log line with the captured EXPLAIN, when `slow_query_ms` is set)
/// goes to `log_stream`.
///
/// Robustness model:
///  * A fixed worker pool (`num_workers`) handles requests; accepted
///    connections wait in a bounded admission queue. When the queue is
///    full the acceptor itself answers `503` with `Retry-After` and
///    closes — overload sheds load in O(1) memory instead of queuing
///    unboundedly.
///  * Every query gets a hard deadline (`default_deadline_ms` unless
///    the request asks for less) and a fresh `CancelToken`. Between
///    streamed rows the worker probes the connection; a client that
///    disconnected mid-stream fires the token and the cursor is closed
///    immediately — no orphaned cursor keeps pinning a read view.
///  * `Stop()` drains gracefully: the listener closes first (new
///    connections are refused), queued and in-flight requests finish,
///    workers join. The caller then checkpoints and exits.
///
/// Thread-safety: `Start`/`Stop` from one controlling thread. Handlers
/// run on worker threads and use only thread-safe database surfaces;
/// mutations (`/write`) serialise on an internal writer mutex, honouring
/// the engine's single-writer contract.

namespace wdsparql {
namespace server {

struct ServerOptions {
  /// Bind address. The default binds loopback only; serving a network
  /// means explicitly asking for it ("0.0.0.0").
  std::string host = "127.0.0.1";

  /// TCP port; 0 picks an ephemeral port (see `Server::port()`).
  uint16_t port = 0;

  /// Worker threads executing requests.
  int num_workers = 4;

  /// Accepted connections allowed to wait for a worker. Above this the
  /// acceptor sheds with 503 + Retry-After.
  std::size_t queue_capacity = 64;

  /// Hard per-query deadline applied when the request sends none (or
  /// asks for more). 0 = unbounded queries allowed.
  uint64_t default_deadline_ms = 10'000;

  /// `Retry-After` seconds advertised on 503 responses.
  int retry_after_s = 1;

  /// Largest accepted request body (queries and /write batches).
  std::size_t max_body_bytes = 16 * 1024 * 1024;

  /// Socket send/receive timeout: a peer stalled longer than this
  /// forfeits its request (the worker moves on).
  int io_timeout_ms = 10'000;

  /// Rows streamed between connection-liveness probes on /query.
  uint32_t disconnect_probe_interval = 16;

  /// Adds `GET /block` (parks a worker until `UnblockTestRequests`) so
  /// tests can fill the pool and the admission queue deterministically.
  /// Never enable in production builds of the tool.
  bool enable_test_endpoints = false;

  /// Ceiling on `?parallelism=` requests (`ExecOptions::parallelism`
  /// worker threads per query, fanned over the request's pinned
  /// snapshot). Requests above the ceiling are clamped, not refused —
  /// parallelism is a hint, unlike the deadline it never changes the
  /// answer set. 0 disables parallel execution entirely.
  ///
  /// A request that sends no `?parallelism=` gets a server-chosen
  /// degree: hardware cores divided by in-flight requests, clamped to
  /// [1, this ceiling]. An explicit `parallelism=0` stays serial.
  uint32_t max_parallelism = 8;

  /// Slow-query log threshold: a /query taking at least this many
  /// milliseconds end-to-end writes one JSON line (request id, pattern,
  /// outcome, duration, rows, and the EXPLAIN tree — `collect_stats` is
  /// forced on /query while enabled so the EXPLAIN is always captured).
  /// 0 logs every query; negative (the default) disables the log.
  int64_t slow_query_ms = -1;

  /// Suppresses the per-request access log (the slow-query log, if
  /// enabled, still writes).
  bool quiet = false;

  /// Destination of the access and slow-query logs; null means stderr.
  std::FILE* log_stream = nullptr;
};

/// Per-request state threaded through the handlers: the request id
/// (honoured from `X-Request-Id` or generated, echoed on every
/// response), the trace context writing into the database's flight
/// recorder, and the response facts the access log reports.
struct RequestContext {
  std::string request_id;
  TraceContext trace;      ///< Disabled (null recorder) when tracing is off.
  uint32_t root_span = 0;  ///< The root `request` span; 0 when disabled.
  int status = 0;          ///< HTTP status written; 0 = none (peer vanished).
  uint64_t rows = 0;       ///< Result rows streamed (/query only).
  uint64_t bytes = 0;      ///< Response payload bytes written.
};

/// The HTTP server. Construct over a database, `Start`, eventually
/// `Stop` (drain). One server per database; the database must outlive
/// the server.
class Server {
 public:
  Server(Database* db, const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the acceptor + worker threads. Fails
  /// with `kIoError` when the address cannot be bound.
  Status Start();

  /// Graceful drain: refuse new connections, finish every queued and
  /// in-flight request, join all threads. Idempotent.
  void Stop();

  /// The bound port (resolves port 0 after `Start`).
  uint16_t port() const { return port_; }

  /// True between a successful `Start` and `Stop`.
  bool running() const { return running_; }

  /// Releases every request parked on the test-only /block endpoint.
  void UnblockTestRequests();

 private:
  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(int fd);
  void Dispatch(int fd, const HttpRequest& request, RequestContext& ctx);
  void HandleQuery(int fd, const HttpRequest& request, RequestContext& ctx);
  void HandleContains(int fd, const HttpRequest& request, RequestContext& ctx);
  void HandleWrite(int fd, const HttpRequest& request, RequestContext& ctx);
  void HandleMetrics(int fd, const HttpRequest& request, RequestContext& ctx);
  void HandleDebugTrace(int fd, const HttpRequest& request,
                        RequestContext& ctx);
  void HandleHealth(int fd, RequestContext& ctx);
  void HandleBlock(int fd, RequestContext& ctx);

  /// Writes one whole response with the request id echoed and records
  /// the status / payload size on `ctx` for the access log.
  void WriteResponse(int fd, RequestContext& ctx, int status,
                     std::string_view content_type, std::string_view body,
                     std::map<std::string, std::string> extra_headers = {});

  /// Writes a `{"error": ...}` response and counts it. `ctx` may be null
  /// for errors raised before a request context exists (parse failures).
  void WriteError(int fd, RequestContext* ctx, int status,
                  const std::string& code, const std::string& message);

  /// Appends one line to the access / slow-query log (serialised).
  void LogLine(const std::string& line);

  Database* db_;
  ServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  bool running_ = false;

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  // Bounded admission queue of accepted connection fds.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;
  /// Set once by `Stop` (atomic: both condition variables consult it
  /// without nesting their mutexes).
  std::atomic<bool> stopping_{false};

  // Test-only /block latch.
  std::mutex block_mutex_;
  std::condition_variable block_cv_;
  bool unblocked_ = false;

  // The engine is single-writer: /write commits (and nothing else in
  // the server) serialise here.
  std::mutex write_mutex_;

  // Access / slow-query log sink (options_.log_stream or stderr) and the
  // mutex keeping concurrent workers' lines whole.
  std::mutex log_mutex_;
  std::FILE* log_stream_ = nullptr;

  // Fallback request-id generator for servers whose database runs with
  // the flight recorder disabled (seeded from the wall clock at Start so
  // ids stay distinct across restarts).
  std::atomic<uint64_t> request_seq_{1};

  // Cached instrument pointers (stable addresses for the registry's
  // lifetime; see wdsparql/metrics.h).
  Counter* requests_;
  Counter* queries_;
  Counter* writes_;
  Counter* rejected_;
  Counter* http_errors_;
  Counter* client_disconnects_;
  Counter* bytes_streamed_;
  Gauge* inflight_;
  Gauge* queue_depth_;
  Histogram* request_ns_;
};

}  // namespace server
}  // namespace wdsparql

#endif  // WDSPARQL_SERVER_SERVER_H_
