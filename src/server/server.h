#ifndef WDSPARQL_SERVER_SERVER_H_
#define WDSPARQL_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/http.h"
#include "wdsparql/database.h"
#include "wdsparql/metrics.h"
#include "wdsparql/status.h"

/// \file
/// `wdsparql_serve`'s serving core: an HTTP front door over one
/// `Database`, built entirely on the public execution surface —
/// per-request `ExecOptions` (deadline / row limit / cancellation),
/// a pinned `Snapshot` per query so a streaming response never observes
/// concurrent commits, `WriteBatch` commits for ingestion, and the
/// engine's `MetricsRegistry` for observability.
///
/// Endpoints (docs/SERVING.md is the full reference):
///   POST /query     body = pattern text; chunked JSON rows streamed
///                   from the cursor as they are produced. Params:
///                   `limit`, `deadline_ms`, `stats=1`.
///   POST /contains  wdEVAL membership: line 1 = pattern, then one
///                   "?var value" binding per line; snapshot-bound.
///   POST /write     N-Triples body applied as ONE WriteBatch.
///   GET  /metrics   `Database::DumpMetrics(kJson)` verbatim.
///   GET  /healthz   liveness + triple count + storage health.
///
/// Robustness model:
///  * A fixed worker pool (`num_workers`) handles requests; accepted
///    connections wait in a bounded admission queue. When the queue is
///    full the acceptor itself answers `503` with `Retry-After` and
///    closes — overload sheds load in O(1) memory instead of queuing
///    unboundedly.
///  * Every query gets a hard deadline (`default_deadline_ms` unless
///    the request asks for less) and a fresh `CancelToken`. Between
///    streamed rows the worker probes the connection; a client that
///    disconnected mid-stream fires the token and the cursor is closed
///    immediately — no orphaned cursor keeps pinning a read view.
///  * `Stop()` drains gracefully: the listener closes first (new
///    connections are refused), queued and in-flight requests finish,
///    workers join. The caller then checkpoints and exits.
///
/// Thread-safety: `Start`/`Stop` from one controlling thread. Handlers
/// run on worker threads and use only thread-safe database surfaces;
/// mutations (`/write`) serialise on an internal writer mutex, honouring
/// the engine's single-writer contract.

namespace wdsparql {
namespace server {

struct ServerOptions {
  /// Bind address. The default binds loopback only; serving a network
  /// means explicitly asking for it ("0.0.0.0").
  std::string host = "127.0.0.1";

  /// TCP port; 0 picks an ephemeral port (see `Server::port()`).
  uint16_t port = 0;

  /// Worker threads executing requests.
  int num_workers = 4;

  /// Accepted connections allowed to wait for a worker. Above this the
  /// acceptor sheds with 503 + Retry-After.
  std::size_t queue_capacity = 64;

  /// Hard per-query deadline applied when the request sends none (or
  /// asks for more). 0 = unbounded queries allowed.
  uint64_t default_deadline_ms = 10'000;

  /// `Retry-After` seconds advertised on 503 responses.
  int retry_after_s = 1;

  /// Largest accepted request body (queries and /write batches).
  std::size_t max_body_bytes = 16 * 1024 * 1024;

  /// Socket send/receive timeout: a peer stalled longer than this
  /// forfeits its request (the worker moves on).
  int io_timeout_ms = 10'000;

  /// Rows streamed between connection-liveness probes on /query.
  uint32_t disconnect_probe_interval = 16;

  /// Adds `GET /block` (parks a worker until `UnblockTestRequests`) so
  /// tests can fill the pool and the admission queue deterministically.
  /// Never enable in production builds of the tool.
  bool enable_test_endpoints = false;
};

/// The HTTP server. Construct over a database, `Start`, eventually
/// `Stop` (drain). One server per database; the database must outlive
/// the server.
class Server {
 public:
  Server(Database* db, const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the acceptor + worker threads. Fails
  /// with `kIoError` when the address cannot be bound.
  Status Start();

  /// Graceful drain: refuse new connections, finish every queued and
  /// in-flight request, join all threads. Idempotent.
  void Stop();

  /// The bound port (resolves port 0 after `Start`).
  uint16_t port() const { return port_; }

  /// True between a successful `Start` and `Stop`.
  bool running() const { return running_; }

  /// Releases every request parked on the test-only /block endpoint.
  void UnblockTestRequests();

 private:
  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(int fd);
  void HandleQuery(int fd, const HttpRequest& request);
  void HandleContains(int fd, const HttpRequest& request);
  void HandleWrite(int fd, const HttpRequest& request);
  void HandleMetrics(int fd);
  void HandleHealth(int fd);
  void HandleBlock(int fd);

  /// Writes a `{"error": ...}` response and counts it.
  void WriteError(int fd, int status, const std::string& code,
                  const std::string& message);

  Database* db_;
  ServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  bool running_ = false;

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  // Bounded admission queue of accepted connection fds.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;
  /// Set once by `Stop` (atomic: both condition variables consult it
  /// without nesting their mutexes).
  std::atomic<bool> stopping_{false};

  // Test-only /block latch.
  std::mutex block_mutex_;
  std::condition_variable block_cv_;
  bool unblocked_ = false;

  // The engine is single-writer: /write commits (and nothing else in
  // the server) serialise here.
  std::mutex write_mutex_;

  // Cached instrument pointers (stable addresses for the registry's
  // lifetime; see wdsparql/metrics.h).
  Counter* requests_;
  Counter* queries_;
  Counter* writes_;
  Counter* rejected_;
  Counter* http_errors_;
  Counter* client_disconnects_;
  Counter* bytes_streamed_;
  Gauge* inflight_;
  Gauge* queue_depth_;
  Histogram* request_ns_;
};

}  // namespace server
}  // namespace wdsparql

#endif  // WDSPARQL_SERVER_SERVER_H_
