#ifndef WDSPARQL_SERVER_HTTP_H_
#define WDSPARQL_SERVER_HTTP_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

/// \file
/// Minimal HTTP/1.1 framing over POSIX sockets.
///
/// The serving front door (server/server.h) speaks just enough HTTP for
/// a query endpoint: one request per connection, request bodies framed
/// by Content-Length, responses either written whole or streamed with
/// chunked transfer encoding. Self-contained by design — the repo's
/// zero-dependency rule applies to the network layer too — and small
/// enough to audit: no keep-alive, no pipelining, no TLS, no request
/// chunking. Every read respects the socket's receive timeout (set by
/// the server) so a stalled client can never wedge a worker forever.
///
/// Thread-safety: free functions plus a per-connection writer object;
/// nothing here is shared between threads.

namespace wdsparql {
namespace server {

/// One parsed request. Header names are lower-cased; query-string
/// parameters are percent-decoded.
struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // "/query" (no query string).
  std::map<std::string, std::string> params;   // Decoded query parameters.
  std::map<std::string, std::string> headers;  // Lower-cased names.
  std::string body;
};

/// Outcome of `ReadHttpRequest`, mapped by the server onto an HTTP
/// status for malformed traffic.
enum class HttpParseResult {
  kOk = 0,
  kClosed,           ///< The peer closed before a full request arrived.
  kTimeout,          ///< The socket receive timeout expired mid-request.
  kMalformed,        ///< Not parseable as HTTP/1.1 (-> 400).
  kHeadersTooLarge,  ///< Header block over the hard cap (-> 431).
  kBodyTooLarge,     ///< Content-Length over `max_body_bytes` (-> 413).
  kUnsupported,      ///< Transfer-Encoding request bodies (-> 411).
};

/// Reads and parses one request from `fd` (blocking, honouring the
/// socket timeouts). Bodies larger than `max_body_bytes` are rejected
/// without being buffered.
HttpParseResult ReadHttpRequest(int fd, std::size_t max_body_bytes,
                                HttpRequest* out);

/// Percent-decodes `s` ('+' becomes space, "%XY" its byte); invalid
/// escapes pass through verbatim.
std::string UrlDecode(std::string_view s);

/// The canonical reason phrase for `status` ("OK", "Not Found", ...).
const char* StatusReason(int status);

/// Serialises one response onto `fd`. Writes with MSG_NOSIGNAL: a peer
/// that went away yields `false`, never SIGPIPE. `bytes_written`, when
/// non-null, accumulates the payload bytes actually sent (headers
/// excluded) whether or not the write completed.
bool WriteHttpResponse(int fd, int status, std::string_view content_type,
                       std::string_view body,
                       const std::map<std::string, std::string>& extra_headers = {},
                       uint64_t* bytes_written = nullptr);

/// Streaming (chunked) response writer for one connection. Usage:
/// `Begin` once, `Write` any number of times (each flushes one chunk to
/// the socket — the client sees rows as they are produced), `End` once.
/// Every method returns false as soon as the peer is gone; callers stop
/// streaming (and cancel the producing cursor) on the first failure.
class ChunkedWriter {
 public:
  explicit ChunkedWriter(int fd) : fd_(fd) {}

  /// Writes the status line and headers with
  /// `Transfer-Encoding: chunked`.
  bool Begin(int status, std::string_view content_type,
             const std::map<std::string, std::string>& extra_headers = {});

  /// Sends `data` as one chunk (empty data is a no-op, not a
  /// terminator).
  bool Write(std::string_view data);

  /// Sends the terminating zero-length chunk.
  bool End();

  /// Payload bytes handed to the socket so far (chunk framing excluded).
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  int fd_;
  bool failed_ = false;
  uint64_t bytes_written_ = 0;
};

/// True iff the peer has closed its end of the connection (a FIN/RST
/// arrived). Non-blocking — safe to call between streamed rows; bytes
/// the client may have pipelined are left unread.
bool PeerClosed(int fd);

}  // namespace server
}  // namespace wdsparql

#endif  // WDSPARQL_SERVER_HTTP_H_
