#ifndef WDSPARQL_SERVER_HTTP_CLIENT_H_
#define WDSPARQL_SERVER_HTTP_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "wdsparql/status.h"

/// \file
/// A minimal blocking HTTP/1.1 client — just enough to drive the
/// serving front door from the load-generator bench and the tests
/// without external dependencies. One request per connection (matching
/// the server), Content-Length and chunked response bodies decoded.
///
/// Thread-safety: `HttpClient` is a plain value (host/port/timeout);
/// each `Fetch` opens its own connection, so one client may be shared
/// across threads.

namespace wdsparql {
namespace server {

/// One decoded response.
struct HttpResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // Lower-cased names.
  std::string body;
};

class HttpClient {
 public:
  HttpClient(std::string host, uint16_t port, int timeout_ms = 10'000)
      : host_(std::move(host)), port_(port), timeout_ms_(timeout_ms) {}

  /// Performs one request; fails with `kIoError` when the connection
  /// cannot be established or dies mid-response. `extra_headers` are
  /// sent verbatim (e.g. `{"X-Request-Id", "abc"}`).
  Status Fetch(std::string_view method, std::string_view target,
               std::string_view body, HttpResponse* out,
               const std::map<std::string, std::string>& extra_headers = {})
      const;

  Status Get(std::string_view target, HttpResponse* out) const {
    return Fetch("GET", target, "", out);
  }
  Status Post(std::string_view target, std::string_view body,
              HttpResponse* out) const {
    return Fetch("POST", target, body, out);
  }

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

 private:
  std::string host_;
  uint16_t port_;
  int timeout_ms_;
};

/// Dials `host:port` and returns a connected socket fd (-1 on failure).
/// Exposed for tests that need raw-socket behaviour (early disconnect).
int DialTcp(const std::string& host, uint16_t port, int timeout_ms);

}  // namespace server
}  // namespace wdsparql

#endif  // WDSPARQL_SERVER_HTTP_CLIENT_H_
