#include "server/http_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>

namespace wdsparql {
namespace server {
namespace {

bool SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

/// Reads until EOF or error; the server closes after each response, so
/// EOF frames the transfer.
bool ReadAll(int fd, std::string* out) {
  char chunk[8192];
  while (true) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) return true;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    out->append(chunk, static_cast<std::size_t>(n));
  }
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Decodes a chunked transfer-coded payload; false on framing errors.
bool DecodeChunked(std::string_view raw, std::string* out) {
  while (true) {
    std::size_t eol = raw.find("\r\n");
    if (eol == std::string_view::npos) return false;
    char* end = nullptr;
    std::string size_line(raw.substr(0, eol));
    unsigned long long size = std::strtoull(size_line.c_str(), &end, 16);
    if (end == size_line.c_str()) return false;
    raw.remove_prefix(eol + 2);
    if (size == 0) return true;
    if (raw.size() < size + 2) return false;
    out->append(raw.data(), size);
    raw.remove_prefix(size + 2);  // Payload + trailing CRLF.
  }
}

}  // namespace

int DialTcp(const std::string& host, uint16_t port, int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

Status HttpClient::Fetch(
    std::string_view method, std::string_view target, std::string_view body,
    HttpResponse* out,
    const std::map<std::string, std::string>& extra_headers) const {
  int fd = DialTcp(host_, port_, timeout_ms_);
  if (fd < 0) {
    return Status::IoError("connect " + host_ + ":" + std::to_string(port_) +
                           ": " + std::strerror(errno));
  }
  std::string request;
  request.append(method).append(" ").append(target).append(" HTTP/1.1\r\n");
  request += "Host: " + host_ + ":" + std::to_string(port_) + "\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  for (const auto& [name, value] : extra_headers) {
    request += name + ": " + value + "\r\n";
  }
  request += "Connection: close\r\n\r\n";
  request.append(body);
  std::string raw;
  bool io_ok = SendAll(fd, request) && ReadAll(fd, &raw);
  ::close(fd);
  if (!io_ok) return Status::IoError("request I/O failed");

  std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::IoError("truncated HTTP response");
  }
  std::string_view head(raw.data(), header_end);
  std::size_t line_end = head.find("\r\n");
  std::string_view status_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  std::size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos) return Status::IoError("bad status line");
  out->status = std::atoi(std::string(status_line.substr(sp + 1, 3)).c_str());

  out->headers.clear();
  std::string_view rest =
      line_end == std::string_view::npos ? std::string_view() : head.substr(line_end + 2);
  while (!rest.empty()) {
    std::size_t eol = rest.find("\r\n");
    std::string_view line = rest.substr(0, eol);
    std::size_t colon = line.find(':');
    if (colon != std::string_view::npos) {
      out->headers[ToLower(Trim(line.substr(0, colon)))] =
          std::string(Trim(line.substr(colon + 1)));
    }
    if (eol == std::string_view::npos) break;
    rest.remove_prefix(eol + 2);
  }

  std::string_view payload(raw.data() + header_end + 4,
                           raw.size() - header_end - 4);
  auto te = out->headers.find("transfer-encoding");
  out->body.clear();
  if (te != out->headers.end() && ToLower(te->second) == "chunked") {
    if (!DecodeChunked(payload, &out->body)) {
      return Status::IoError("bad chunked framing in response");
    }
  } else {
    out->body.assign(payload);
  }
  return Status::OK();
}

}  // namespace server
}  // namespace wdsparql
