#ifndef WDSPARQL_PTREE_PATTERN_TREE_H_
#define WDSPARQL_PTREE_PATTERN_TREE_H_

#include <string>
#include <vector>

#include "rdf/triple_set.h"
#include "util/status.h"

/// \file
//// Well-designed pattern trees (wdPTs; Section 2.1 of the paper).
///
/// A wdPT is a rooted tree whose nodes are labelled with t-graphs, the
/// tree shape encoding the nesting of OPT operators of a UNION-free
/// well-designed pattern. Node 0 is always the root. Trees satisfy the
/// variable-connectivity condition (the nodes mentioning any fixed
/// variable induce a connected subgraph) and — after `ToNrNormalForm` —
/// the NR ("non-redundant") condition: every non-root node mentions a
/// variable its parent does not.

namespace wdsparql {

/// Node id within a PatternTree (0 is the root).
using NodeId = int;

/// A well-designed pattern tree.
class PatternTree {
 public:
  /// Creates a tree with a single root labelled `root_pattern`.
  explicit PatternTree(TripleSet root_pattern);

  /// Adds a node labelled `pattern` under `parent`; returns its id.
  NodeId AddNode(NodeId parent, TripleSet pattern);

  /// Number of nodes.
  int NumNodes() const { return static_cast<int>(nodes_.size()); }
  /// The root id (always 0).
  NodeId root() const { return 0; }
  /// Parent of `n` (-1 for the root).
  NodeId parent(NodeId n) const { return nodes_[n].parent; }
  /// Children of `n`, in insertion order.
  const std::vector<NodeId>& children(NodeId n) const { return nodes_[n].children; }

  /// pat(n): the t-graph labelling node `n`.
  const TripleSet& pattern(NodeId n) const { return nodes_[n].pattern; }
  /// vars(n): the variables of pat(n), sorted.
  const std::vector<TermId>& variables(NodeId n) const { return nodes_[n].variables; }

  /// pat(T): union of all node patterns.
  TripleSet TreePattern() const;
  /// vars(T): all variables of the tree, sorted.
  std::vector<TermId> TreeVariables() const;

  /// Checks structural sanity plus the variable-connectivity condition
  /// (condition 3 of the wdPT definition).
  Status Validate() const;

  /// True iff every non-root node adds a variable missing from its
  /// parent (NR normal form).
  bool IsNrNormalForm() const;

  /// Rewrites the tree into an equivalent NR normal form: a non-root node
  /// n with vars(n) ⊆ vars(parent) is deleted after merging pat(n) into
  /// each of its children (semantics-preserving under the Lemma 1
  /// characterisation; see ptree/semantics.h tests).
  void ToNrNormalForm();

  /// Renders an indented dump of the tree.
  std::string ToString(const TermPool& pool) const;

 private:
  struct Node {
    TripleSet pattern;
    std::vector<TermId> variables;  // Sorted.
    NodeId parent = -1;
    std::vector<NodeId> children;
  };

  void RebuildAfterDeletion(const std::vector<bool>& deleted);

  std::vector<Node> nodes_;
};

}  // namespace wdsparql

#endif  // WDSPARQL_PTREE_PATTERN_TREE_H_
