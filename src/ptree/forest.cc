#include "ptree/forest.h"

#include "sparql/well_designed.h"

namespace wdsparql {
namespace {

/// Intermediate recursive tree used while flattening the AST.
struct RawTree {
  TripleSet pattern;
  std::vector<RawTree> children;
};

/// Builds the raw tree of a UNION-free pattern: AND merges roots and
/// concatenates child lists, OPT grafts the right tree under the left
/// root.
RawTree BuildRaw(const GraphPattern& p) {
  switch (p.kind()) {
    case PatternKind::kTriple: {
      RawTree leaf;
      leaf.pattern.Insert(p.triple());
      return leaf;
    }
    case PatternKind::kAnd: {
      RawTree left = BuildRaw(*p.left());
      RawTree right = BuildRaw(*p.right());
      left.pattern.InsertAll(right.pattern);
      for (RawTree& child : right.children) left.children.push_back(std::move(child));
      return left;
    }
    case PatternKind::kOpt: {
      RawTree left = BuildRaw(*p.left());
      left.children.push_back(BuildRaw(*p.right()));
      return left;
    }
    case PatternKind::kUnion:
    case PatternKind::kFilter:
      WDSPARQL_CHECK(false);  // Caller splits unions / rejects filters first.
  }
  WDSPARQL_CHECK(false);
  return RawTree{};
}

/// True iff the pattern contains a FILTER node anywhere.
bool ContainsFilter(const GraphPattern& p) {
  if (p.kind() == PatternKind::kTriple) return false;
  if (p.kind() == PatternKind::kFilter) return true;
  return ContainsFilter(*p.left()) || ContainsFilter(*p.right());
}

void AttachRaw(PatternTree* tree, NodeId parent, RawTree&& raw) {
  NodeId id = tree->AddNode(parent, std::move(raw.pattern));
  for (RawTree& child : raw.children) AttachRaw(tree, id, std::move(child));
}

PatternTree RawToPatternTree(RawTree&& raw) {
  PatternTree tree(std::move(raw.pattern));
  for (RawTree& child : raw.children) AttachRaw(&tree, tree.root(), std::move(child));
  return tree;
}

}  // namespace

Result<PatternTree> BuildPatternTree(const PatternPtr& pattern, const TermPool& pool,
                                     const WdpfOptions& options) {
  WDSPARQL_CHECK(pattern != nullptr);
  if (!pattern->IsUnionFree()) {
    return Result<PatternTree>(
        Status::NotWellDesigned("BuildPatternTree requires a UNION-free pattern"));
  }
  if (ContainsFilter(*pattern)) {
    return Result<PatternTree>(Status::InvalidArgument(
        "FILTER is outside the classified AND/OPT/UNION fragment; evaluate "
        "FILTER patterns with sparql/semantics.h (see Section 5 of the paper)"));
  }
  Status wd = CheckWellDesigned(pattern, pool);
  if (!wd.ok()) return Result<PatternTree>(wd);

  RawTree raw = BuildRaw(*pattern);
  PatternTree tree = RawToPatternTree(std::move(raw));
  if (options.nr_normal_form) tree.ToNrNormalForm();
  Status valid = tree.Validate();
  if (!valid.ok()) return Result<PatternTree>(valid);
  return tree;
}

Result<PatternForest> BuildPatternForest(const PatternPtr& pattern, const TermPool& pool,
                                         const WdpfOptions& options) {
  Status wd = CheckWellDesigned(pattern, pool);
  if (!wd.ok()) return Result<PatternForest>(wd);
  Result<std::vector<PatternPtr>> operands = UnionNormalForm(pattern);
  if (!operands.ok()) return Result<PatternForest>(operands.status());

  PatternForest forest;
  for (const PatternPtr& operand : operands.value()) {
    Result<PatternTree> tree = BuildPatternTree(operand, pool, options);
    if (!tree.ok()) return Result<PatternForest>(tree.status());
    forest.trees.push_back(std::move(tree).value());
  }
  return forest;
}

}  // namespace wdsparql
