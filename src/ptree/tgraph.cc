#include "ptree/tgraph.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "hom/core.h"
#include "hom/homomorphism.h"
#include "hom/pebble.h"
#include "util/check.h"

namespace wdsparql {

GeneralizedTGraph::GeneralizedTGraph(TripleSet s, std::vector<TermId> x)
    : S(std::move(s)) {
  std::vector<TermId> vars = S.Variables();
  std::unordered_set<TermId> var_set(vars.begin(), vars.end());
  for (TermId v : x) {
    WDSPARQL_CHECK(IsVariable(v));
    if (var_set.count(v) > 0) X.push_back(v);
  }
  std::sort(X.begin(), X.end());
  X.erase(std::unique(X.begin(), X.end()), X.end());
}

std::vector<TermId> GeneralizedTGraph::FreeVariables() const {
  std::vector<TermId> out;
  for (TermId v : S.Variables()) {
    if (!std::binary_search(X.begin(), X.end(), v)) out.push_back(v);
  }
  return out;
}

UndirectedGraph GaifmanGraph(const GeneralizedTGraph& g, std::vector<TermId>* out_vars) {
  std::vector<TermId> vars = g.FreeVariables();
  std::unordered_map<TermId, int> index;
  for (std::size_t i = 0; i < vars.size(); ++i) index[vars[i]] = static_cast<int>(i);

  UndirectedGraph graph(static_cast<int>(vars.size()));
  for (const Triple& t : g.S.triples()) {
    std::vector<TermId> t_vars = t.Variables();
    for (std::size_t i = 0; i < t_vars.size(); ++i) {
      for (std::size_t j = i + 1; j < t_vars.size(); ++j) {
        auto it_i = index.find(t_vars[i]);
        auto it_j = index.find(t_vars[j]);
        if (it_i != index.end() && it_j != index.end()) {
          graph.AddEdge(it_i->second, it_j->second);
        }
      }
    }
  }
  if (out_vars != nullptr) *out_vars = std::move(vars);
  return graph;
}

TreewidthResult TreewidthOf(const GeneralizedTGraph& g) {
  UndirectedGraph gaifman = GaifmanGraph(g);
  TreewidthResult result = ComputeTreewidth(gaifman);
  // Paper convention: tw(S, X) := 1 when the Gaifman graph has no
  // vertices or no edges; also floor proper graphs at width 1.
  result.lower = std::max(result.lower, 1);
  result.upper = std::max(result.upper, 1);
  return result;
}

GeneralizedTGraph CoreOf(const GeneralizedTGraph& g) {
  TripleSet core = ComputeCore(g.S, g.X);
  return GeneralizedTGraph(std::move(core), g.X);
}

TreewidthResult CoreTreewidthOf(const GeneralizedTGraph& g) {
  return TreewidthOf(CoreOf(g));
}

bool HomTo(const GeneralizedTGraph& from, const GeneralizedTGraph& to) {
  WDSPARQL_CHECK(from.X == to.X);
  return HasHomomorphism(from.S, IdentityOn(from.X), to.S);
}

VarAssignment MappingToAssignment(const Mapping& mu) {
  VarAssignment out;
  for (const auto& [var, iri] : mu.bindings()) out[var] = iri;
  return out;
}

bool HomToUnder(const GeneralizedTGraph& from, const Mapping& mu,
                const TripleSet& target) {
  return HasHomomorphism(from.S, MappingToAssignment(mu), target);
}

bool PebbleToUnder(const GeneralizedTGraph& from, const Mapping& mu,
                   const TripleSet& target, int k) {
  return PebbleGameWins(from.S, MappingToAssignment(mu), target, k);
}

std::string ToString(const GeneralizedTGraph& g, const TermPool& pool) {
  std::string out = "({";
  bool first = true;
  for (const Triple& t : g.S.triples()) {
    if (!first) out += ", ";
    first = false;
    out += "(" + pool.ToDisplayString(t.subject) + " " +
           pool.ToDisplayString(t.predicate) + " " + pool.ToDisplayString(t.object) +
           ")";
  }
  out += "}, {";
  first = true;
  for (TermId v : g.X) {
    if (!first) out += ", ";
    first = false;
    out += pool.ToDisplayString(v);
  }
  out += "})";
  return out;
}

}  // namespace wdsparql
