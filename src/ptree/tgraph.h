#ifndef WDSPARQL_PTREE_TGRAPH_H_
#define WDSPARQL_PTREE_TGRAPH_H_

#include <string>
#include <vector>

#include "hom/homomorphism.h"
#include "hom/treewidth.h"
#include "rdf/triple_set.h"
#include "sparql/mapping.h"
#include "util/undirected_graph.h"

/// \file
/// Generalised t-graphs (Section 3 of the paper).
///
/// A generalised t-graph is a pair (S, X) where S is a t-graph (a finite
/// set of triple patterns) and X ⊆ vars(S) is a set of distinguished
/// variables. Homomorphisms between generalised t-graphs fix X pointwise;
/// (S, X) corresponds to a conjunctive query with free variables X over a
/// single ternary relation. This header bundles the derived notions the
/// paper builds on the pair: the Gaifman graph over the *non-distinguished*
/// variables, tw(S, X), and ctw(S, X) (treewidth of the core).

namespace wdsparql {

/// A generalised t-graph (S, X).
struct GeneralizedTGraph {
  TripleSet S;               ///< The t-graph.
  std::vector<TermId> X;     ///< Distinguished variables (sorted, unique).

  GeneralizedTGraph() = default;
  /// Builds (S, X); X is sorted/deduplicated; variables of X not in
  /// vars(S) are permitted transiently but trimmed (the paper requires
  /// X ⊆ vars(S)).
  GeneralizedTGraph(TripleSet s, std::vector<TermId> x);

  /// vars(S) \ X.
  std::vector<TermId> FreeVariables() const;
};

/// The Gaifman graph G(S, X): vertices are vars(S)\X; edges join distinct
/// variables co-occurring in a triple of S. `out_vars[i]` names vertex i.
UndirectedGraph GaifmanGraph(const GeneralizedTGraph& g,
                             std::vector<TermId>* out_vars = nullptr);

/// tw(S, X): treewidth of the Gaifman graph, floored at 1 (paper
/// convention: no vertices or no edges give treewidth 1).
TreewidthResult TreewidthOf(const GeneralizedTGraph& g);

/// The core of (S, X) (unique up to renaming; see hom/core.h).
GeneralizedTGraph CoreOf(const GeneralizedTGraph& g);

/// ctw(S, X): treewidth of the core of (S, X), floored at 1.
TreewidthResult CoreTreewidthOf(const GeneralizedTGraph& g);

/// (S, X) -> (S', X): homomorphism fixing X pointwise. Requires equal X
/// (the paper only compares generalised t-graphs over the same X).
bool HomTo(const GeneralizedTGraph& from, const GeneralizedTGraph& to);

/// (S, X) ->mu G: homomorphism into an RDF graph `target` extending mu
/// (dom(mu) must be exactly X).
bool HomToUnder(const GeneralizedTGraph& from, const Mapping& mu,
                const TripleSet& target);

/// (S, X) ->mu_k G: the existential k-pebble relaxation of HomToUnder.
bool PebbleToUnder(const GeneralizedTGraph& from, const Mapping& mu,
                   const TripleSet& target, int k);

/// Converts a Mapping into the solver's pre-assignment representation.
VarAssignment MappingToAssignment(const Mapping& mu);

/// Renders (S, X) for debugging: triples then distinguished variables.
std::string ToString(const GeneralizedTGraph& g, const TermPool& pool);

}  // namespace wdsparql

#endif  // WDSPARQL_PTREE_TGRAPH_H_
