#include "ptree/subtree.h"

#include <algorithm>

#include "util/check.h"

namespace wdsparql {

bool Subtree::Contains(NodeId n) const {
  return std::binary_search(nodes.begin(), nodes.end(), n);
}

TripleSet SubtreePattern(const Subtree& subtree) {
  TripleSet out;
  for (NodeId n : subtree.nodes) out.InsertAll(subtree.tree->pattern(n));
  return out;
}

std::vector<TermId> SubtreeVariables(const Subtree& subtree) {
  std::vector<TermId> vars;
  for (NodeId n : subtree.nodes) {
    const auto& node_vars = subtree.tree->variables(n);
    vars.insert(vars.end(), node_vars.begin(), node_vars.end());
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

std::vector<NodeId> SubtreeChildren(const Subtree& subtree) {
  std::vector<NodeId> out;
  for (NodeId n : subtree.nodes) {
    for (NodeId c : subtree.tree->children(n)) {
      if (!subtree.Contains(c)) out.push_back(c);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

void EnumerateRec(const PatternTree& tree, std::vector<NodeId>* frontier,
                  std::vector<NodeId>* current,
                  const std::function<void(const Subtree&)>& fn) {
  if (frontier->empty()) {
    Subtree subtree;
    subtree.tree = &tree;
    subtree.nodes = *current;
    std::sort(subtree.nodes.begin(), subtree.nodes.end());
    fn(subtree);
    return;
  }
  NodeId next = frontier->back();
  frontier->pop_back();

  // Exclude `next` (and thereby its whole subtree).
  EnumerateRec(tree, frontier, current, fn);

  // Include `next`: its children join the frontier.
  current->push_back(next);
  std::size_t added = 0;
  for (NodeId c : tree.children(next)) {
    frontier->push_back(c);
    ++added;
  }
  EnumerateRec(tree, frontier, current, fn);
  for (std::size_t i = 0; i < added; ++i) frontier->pop_back();
  current->pop_back();

  frontier->push_back(next);
}

}  // namespace

void EnumerateSubtrees(const PatternTree& tree,
                       const std::function<void(const Subtree&)>& fn) {
  std::vector<NodeId> frontier = tree.children(tree.root());
  std::vector<NodeId> current = {tree.root()};
  EnumerateRec(tree, &frontier, &current, fn);
}

namespace {

double CountRec(const PatternTree& tree, NodeId n) {
  double product = 1.0;
  for (NodeId c : tree.children(n)) product *= 1.0 + CountRec(tree, c);
  return product;
}

}  // namespace

double CountSubtrees(const PatternTree& tree) { return CountRec(tree, tree.root()); }

std::optional<Subtree> MaximalSubtreeWithVars(const PatternTree& tree,
                                              const std::vector<TermId>& vars) {
  WDSPARQL_DCHECK(std::is_sorted(vars.begin(), vars.end()));
  auto covered = [&vars](const std::vector<TermId>& node_vars) {
    return std::includes(vars.begin(), vars.end(), node_vars.begin(), node_vars.end());
  };
  if (!covered(tree.variables(tree.root()))) return std::nullopt;

  Subtree subtree;
  subtree.tree = &tree;
  std::vector<NodeId> stack = {tree.root()};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    subtree.nodes.push_back(n);
    for (NodeId c : tree.children(n)) {
      if (covered(tree.variables(c))) stack.push_back(c);
    }
  }
  std::sort(subtree.nodes.begin(), subtree.nodes.end());
  return subtree;
}

std::optional<Subtree> FindWitnessSubtree(const PatternTree& tree,
                                          const std::vector<TermId>& vars) {
  std::optional<Subtree> maximal = MaximalSubtreeWithVars(tree, vars);
  if (!maximal.has_value()) return std::nullopt;
  if (SubtreeVariables(*maximal) != vars) return std::nullopt;
  return maximal;
}

std::optional<Subtree> FindMatchingSubtree(const PatternTree& tree, const Mapping& mu,
                                           const TripleSet& graph) {
  HashTripleSource scan(graph);
  return FindMatchingSubtree(tree, mu, scan);
}

std::optional<Subtree> FindMatchingSubtree(const PatternTree& tree, const Mapping& mu,
                                           const TripleSource& graph) {
  auto qualifies = [&](NodeId n) {
    for (TermId var : tree.variables(n)) {
      if (!mu.IsDefinedOn(var)) return false;
    }
    for (const Triple& t : tree.pattern(n).triples()) {
      if (!graph.Contains(mu.Apply(t))) return false;
    }
    return true;
  };
  if (!qualifies(tree.root())) return std::nullopt;

  Subtree subtree;
  subtree.tree = &tree;
  std::vector<NodeId> stack = {tree.root()};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    subtree.nodes.push_back(n);
    for (NodeId c : tree.children(n)) {
      if (qualifies(c)) stack.push_back(c);
    }
  }
  std::sort(subtree.nodes.begin(), subtree.nodes.end());

  // dom(mu) must be exactly the subtree's variables.
  std::vector<TermId> vars = SubtreeVariables(subtree);
  std::vector<TermId> domain = mu.Domain();
  if (vars != domain) return std::nullopt;
  return subtree;
}

}  // namespace wdsparql
