#ifndef WDSPARQL_PTREE_SUBTREE_H_
#define WDSPARQL_PTREE_SUBTREE_H_

#include <functional>
#include <optional>
#include <vector>

#include "ptree/pattern_tree.h"
#include "rdf/scan.h"
#include "rdf/triple_set.h"
#include "sparql/mapping.h"

/// \file
/// The subtree calculus of wdPTs (Sections 2.1 and 3.1).
///
/// A subtree T' of a wdPT T always contains the root and is closed under
/// parents. Children of a subtree are the nodes just below it. The
/// domination-width machinery additionally needs, for a subtree T of a
/// forest member, the *witness* subtree T^sp(i) of every other tree with
/// the same variable set (unique in NR normal form), and the evaluation
/// algorithms need the unique subtree matching a mapping.

namespace wdsparql {

/// A subtree of a PatternTree: sorted node ids, containing the root and
/// closed under parents. The referenced tree must outlive the subtree.
struct Subtree {
  const PatternTree* tree = nullptr;
  std::vector<NodeId> nodes;  ///< Sorted; always contains 0.

  /// True iff `n` belongs to the subtree.
  bool Contains(NodeId n) const;
};

/// pat(T'): union of the node patterns of the subtree.
TripleSet SubtreePattern(const Subtree& subtree);

/// vars(T'): sorted variables of pat(T').
std::vector<TermId> SubtreeVariables(const Subtree& subtree);

/// The children of the subtree: nodes outside it whose parent is inside.
std::vector<NodeId> SubtreeChildren(const Subtree& subtree);

/// Enumerates every subtree of `tree` (all parent-closed node sets
/// containing the root), invoking `fn` for each. The count is exponential
/// in the tree size in general; recognition-level APIs only.
void EnumerateSubtrees(const PatternTree& tree,
                       const std::function<void(const Subtree&)>& fn);

/// Number of subtrees of `tree` (product formula), as a double to avoid
/// overflow on wide trees.
double CountSubtrees(const PatternTree& tree);

/// The maximal subtree whose node variable sets are contained in `vars`
/// (`vars` must be sorted). Greedy from the root; the root is included
/// unconditionally iff vars(root) ⊆ vars, otherwise returns nullopt.
std::optional<Subtree> MaximalSubtreeWithVars(const PatternTree& tree,
                                              const std::vector<TermId>& vars);

/// The witness subtree with vars(T') == `vars` exactly (T^sp in the
/// paper); nullopt if none. Unique when `tree` is in NR normal form.
std::optional<Subtree> FindWitnessSubtree(const PatternTree& tree,
                                          const std::vector<TermId>& vars);

/// The unique subtree T^mu such that mu is a homomorphism from pat(T^mu)
/// to `graph` with dom(mu) = vars(T^mu): grows greedily from the root,
/// including a child iff its variables are bound by mu and its pattern is
/// satisfied, then checks that the subtree's variables cover dom(mu).
/// Returns nullopt if the root fails or coverage does not hold.
std::optional<Subtree> FindMatchingSubtree(const PatternTree& tree, const Mapping& mu,
                                           const TripleSet& graph);

/// Backend-generic variant: membership probes go through the
/// `TripleSource` interface, so any storage engine can serve as `graph`.
std::optional<Subtree> FindMatchingSubtree(const PatternTree& tree, const Mapping& mu,
                                           const TripleSource& graph);

}  // namespace wdsparql

#endif  // WDSPARQL_PTREE_SUBTREE_H_
