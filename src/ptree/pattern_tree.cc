#include "ptree/pattern_tree.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"

namespace wdsparql {
namespace {

std::vector<TermId> SortedVariables(const TripleSet& pattern) {
  std::vector<TermId> vars = pattern.Variables();
  std::sort(vars.begin(), vars.end());
  return vars;
}

bool IsSubset(const std::vector<TermId>& a, const std::vector<TermId>& b) {
  // Both sorted.
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace

PatternTree::PatternTree(TripleSet root_pattern) {
  Node root;
  root.pattern = std::move(root_pattern);
  root.variables = SortedVariables(root.pattern);
  root.parent = -1;
  nodes_.push_back(std::move(root));
}

NodeId PatternTree::AddNode(NodeId parent, TripleSet pattern) {
  WDSPARQL_CHECK(parent >= 0 && parent < NumNodes());
  Node node;
  node.pattern = std::move(pattern);
  node.variables = SortedVariables(node.pattern);
  node.parent = parent;
  NodeId id = NumNodes();
  nodes_.push_back(std::move(node));
  nodes_[parent].children.push_back(id);
  return id;
}

TripleSet PatternTree::TreePattern() const {
  TripleSet out;
  for (const Node& node : nodes_) out.InsertAll(node.pattern);
  return out;
}

std::vector<TermId> PatternTree::TreeVariables() const {
  return SortedVariables(TreePattern());
}

Status PatternTree::Validate() const {
  // Structural sanity: parent/child mutual consistency, acyclicity by id
  // ordering is not required, so walk explicitly.
  for (NodeId n = 0; n < NumNodes(); ++n) {
    if (n == 0) {
      if (nodes_[n].parent != -1) return Status::Internal("root has a parent");
    } else {
      NodeId p = nodes_[n].parent;
      if (p < 0 || p >= NumNodes()) return Status::Internal("dangling parent id");
      const auto& siblings = nodes_[p].children;
      if (std::find(siblings.begin(), siblings.end(), n) == siblings.end()) {
        return Status::Internal("parent does not list node as child");
      }
    }
  }
  // Condition 3: for every variable, the nodes mentioning it induce a
  // connected subgraph of the tree. Since the structure is a rooted tree,
  // it suffices that for every non-root node n and variable x in vars(n),
  // if x occurs in any proper ancestor of n then it occurs in the parent.
  for (NodeId n = 1; n < NumNodes(); ++n) {
    for (TermId x : nodes_[n].variables) {
      bool in_parent = std::binary_search(nodes_[nodes_[n].parent].variables.begin(),
                                          nodes_[nodes_[n].parent].variables.end(), x);
      if (in_parent) continue;
      // Check all non-descendant nodes for an occurrence of x: the set
      // {m : x in vars(m)} must be connected; n is in it, so any other
      // occurrence outside n's subtree disconnects it unless the parent
      // also mentions x.
      std::vector<bool> in_subtree(NumNodes(), false);
      // Mark n's subtree.
      for (NodeId m = 0; m < NumNodes(); ++m) {
        NodeId walk = m;
        while (walk != -1 && walk != n) walk = nodes_[walk].parent;
        in_subtree[m] = (walk == n);
      }
      for (NodeId m = 0; m < NumNodes(); ++m) {
        if (in_subtree[m]) continue;
        if (std::binary_search(nodes_[m].variables.begin(), nodes_[m].variables.end(),
                               x)) {
          return Status::Internal("variable occurrence set is not connected");
        }
      }
    }
  }
  return Status::OK();
}

bool PatternTree::IsNrNormalForm() const {
  for (NodeId n = 1; n < NumNodes(); ++n) {
    if (IsSubset(nodes_[n].variables, nodes_[nodes_[n].parent].variables)) return false;
  }
  return true;
}

void PatternTree::RebuildAfterDeletion(const std::vector<bool>& deleted) {
  std::vector<Node> new_nodes;
  std::vector<NodeId> remap(nodes_.size(), -1);
  for (NodeId n = 0; n < NumNodes(); ++n) {
    if (deleted[n]) continue;
    remap[n] = static_cast<NodeId>(new_nodes.size());
    new_nodes.push_back(std::move(nodes_[n]));
  }
  for (Node& node : new_nodes) {
    if (node.parent != -1) {
      WDSPARQL_CHECK(remap[node.parent] != -1);
      node.parent = remap[node.parent];
    }
    std::vector<NodeId> children;
    for (NodeId c : node.children) {
      if (remap[c] != -1) children.push_back(remap[c]);
    }
    node.children = std::move(children);
  }
  nodes_ = std::move(new_nodes);
}

void PatternTree::ToNrNormalForm() {
  for (;;) {
    NodeId redundant = -1;
    for (NodeId n = 1; n < NumNodes(); ++n) {
      if (IsSubset(nodes_[n].variables, nodes_[nodes_[n].parent].variables)) {
        redundant = n;
        break;
      }
    }
    if (redundant == -1) return;

    NodeId parent = nodes_[redundant].parent;
    // Push pat(redundant) into each child and reattach children to the
    // grandparent; then delete the node. This preserves the Lemma 1
    // semantics: an answer that matches the parent either fails
    // pat(redundant) (then it cannot extend into the old child either,
    // since the child now requires pat(redundant)) or passes it (then the
    // gate was transparent).
    for (NodeId c : nodes_[redundant].children) {
      nodes_[c].pattern.InsertAll(nodes_[redundant].pattern);
      nodes_[c].variables = SortedVariables(nodes_[c].pattern);
      nodes_[c].parent = parent;
      nodes_[parent].children.push_back(c);
    }
    nodes_[redundant].children.clear();
    auto& siblings = nodes_[parent].children;
    siblings.erase(std::remove(siblings.begin(), siblings.end(), redundant),
                   siblings.end());

    std::vector<bool> deleted(nodes_.size(), false);
    deleted[redundant] = true;
    RebuildAfterDeletion(deleted);
  }
}

std::string PatternTree::ToString(const TermPool& pool) const {
  std::string out;
  // Depth-first dump.
  std::vector<std::pair<NodeId, int>> stack = {{0, 0}};
  while (!stack.empty()) {
    auto [n, depth] = stack.back();
    stack.pop_back();
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
    out += "node " + std::to_string(n) + ": {";
    bool first = true;
    for (const Triple& t : nodes_[n].pattern.triples()) {
      if (!first) out += ", ";
      first = false;
      out += "(" + pool.ToDisplayString(t.subject) + " " +
             pool.ToDisplayString(t.predicate) + " " + pool.ToDisplayString(t.object) +
             ")";
    }
    out += "}\n";
    const auto& kids = nodes_[n].children;
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back({*it, depth + 1});
  }
  return out;
}

}  // namespace wdsparql
