#ifndef WDSPARQL_PTREE_SEMANTICS_H_
#define WDSPARQL_PTREE_SEMANTICS_H_

#include <vector>

#include "ptree/forest.h"
#include "ptree/subtree.h"
#include "rdf/graph.h"
#include "sparql/mapping.h"

/// \file
/// The Lemma 1 semantics of wdPTs.
///
/// For a wdPT T in NR normal form, mu ∈ JTKG iff there is a subtree T'
/// with (1) mu a homomorphism from pat(T') to G and (2) no child n of T'
/// admitting a homomorphism from pat(n) to G compatible with mu. The
/// enumeration here materialises JTKG / JFKG by exhausting subtrees and
/// homomorphisms; it is the tree-level ground-truth oracle matching
/// sparql/semantics.h at the AST level (tested for agreement).

namespace wdsparql {

/// mu ∈ JTKG, decided directly from the Lemma 1 characterisation using
/// exact (exponential) homomorphism checks.
bool TreeContains(const PatternTree& tree, const RdfGraph& graph, const Mapping& mu);

/// mu ∈ JFKG = JT1KG u ... u JTmKG.
bool ForestContains(const PatternForest& forest, const RdfGraph& graph,
                    const Mapping& mu);

/// Materialises JTKG (duplicate-free, sorted). Exponential; testing and
/// example-sized inputs only.
std::vector<Mapping> EnumerateTreeSolutions(const PatternTree& tree,
                                            const RdfGraph& graph);

/// Materialises JFKG (duplicate-free, sorted).
std::vector<Mapping> EnumerateForestSolutions(const PatternForest& forest,
                                              const RdfGraph& graph);

}  // namespace wdsparql

#endif  // WDSPARQL_PTREE_SEMANTICS_H_
