#include "ptree/semantics.h"

#include <algorithm>

#include "hom/homomorphism.h"

namespace wdsparql {
namespace {

/// True iff some child of `subtree` admits a homomorphism into `graph`
/// compatible with `mu` (the negation of Lemma 1, condition 2).
bool SomeChildExtends(const Subtree& subtree, const TripleSet& graph,
                      const Mapping& mu) {
  for (NodeId child : SubtreeChildren(subtree)) {
    const TripleSet& child_pattern = subtree.tree->pattern(child);
    // A homomorphism nu from pat(child) compatible with mu is exactly a
    // homomorphism extending mu's bindings on the shared variables.
    VarAssignment fixed;
    for (TermId var : subtree.tree->variables(child)) {
      std::optional<TermId> image = mu.Get(var);
      if (image.has_value()) fixed[var] = *image;
    }
    if (HasHomomorphism(child_pattern, fixed, graph)) return true;
  }
  return false;
}

}  // namespace

bool TreeContains(const PatternTree& tree, const RdfGraph& graph, const Mapping& mu) {
  // Lemma 1: the only possible witness is the maximal subtree whose nodes
  // mu satisfies (any excluded-but-qualifying child would violate
  // condition 2), so check that one.
  std::optional<Subtree> subtree = FindMatchingSubtree(tree, mu, graph.triples());
  if (!subtree.has_value()) return false;
  return !SomeChildExtends(*subtree, graph.triples(), mu);
}

bool ForestContains(const PatternForest& forest, const RdfGraph& graph,
                    const Mapping& mu) {
  for (const PatternTree& tree : forest.trees) {
    if (TreeContains(tree, graph, mu)) return true;
  }
  return false;
}

std::vector<Mapping> EnumerateTreeSolutions(const PatternTree& tree,
                                            const RdfGraph& graph) {
  std::vector<Mapping> out;
  EnumerateSubtrees(tree, [&](const Subtree& subtree) {
    TripleSet pattern = SubtreePattern(subtree);
    EnumerateHomomorphisms(pattern, VarAssignment{}, graph.triples(),
                           [&](const VarAssignment& assignment) {
                             Mapping mu;
                             for (const auto& [var, value] : assignment) {
                               WDSPARQL_CHECK(mu.Bind(var, value));
                             }
                             if (!SomeChildExtends(subtree, graph.triples(), mu)) {
                               out.push_back(std::move(mu));
                             }
                             return true;
                           });
  });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<Mapping> EnumerateForestSolutions(const PatternForest& forest,
                                              const RdfGraph& graph) {
  std::vector<Mapping> out;
  for (const PatternTree& tree : forest.trees) {
    std::vector<Mapping> tree_solutions = EnumerateTreeSolutions(tree, graph);
    out.insert(out.end(), tree_solutions.begin(), tree_solutions.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace wdsparql
