#ifndef WDSPARQL_PTREE_FOREST_H_
#define WDSPARQL_PTREE_FOREST_H_

#include <vector>

#include "ptree/pattern_tree.h"
#include "sparql/ast.h"
#include "util/status.h"

/// \file
/// Well-designed pattern forests and the wdpf(·) translation.
///
/// A well-designed graph pattern P = P1 UNION ... UNION Pm translates to
/// the forest {T1, ..., Tm} of the pattern trees of its UNION-free
/// operands (Section 2.1). The translation is the paper's fixed
/// polynomial-time function wdpf: AND merges roots (grafting children),
/// OPT hangs the right tree below the left root, and the result is
/// normalised to NR normal form.

namespace wdsparql {

/// A well-designed pattern forest F = {T1, ..., Tm}.
struct PatternForest {
  std::vector<PatternTree> trees;
};

/// Options for the wdpf translation.
struct WdpfOptions {
  /// Rewrite each tree to NR normal form (the paper assumes all wdPTs are
  /// NR; disable only for tests of the rewriting itself).
  bool nr_normal_form = true;
};

/// wdpf(P): translates a *well-designed* graph pattern into an equivalent
/// pattern forest. Fails with NotWellDesigned otherwise.
Result<PatternForest> BuildPatternForest(const PatternPtr& pattern, const TermPool& pool,
                                         const WdpfOptions& options = {});

/// Translates a UNION-free well-designed pattern into a single wdPT.
Result<PatternTree> BuildPatternTree(const PatternPtr& pattern, const TermPool& pool,
                                     const WdpfOptions& options = {});

}  // namespace wdsparql

#endif  // WDSPARQL_PTREE_FOREST_H_
