#ifndef WDSPARQL_OPTIMIZER_PLANNER_H_
#define WDSPARQL_OPTIMIZER_PLANNER_H_

#include <optional>
#include <string>
#include <vector>

#include "engine/read_view.h"
#include "wdsparql/term.h"

/// \file
/// Cost-based variable-order planning for one conjunctive subtree.
///
/// The engine evaluates a well-designed pattern forest subtree by
/// subtree; inside one subtree the pattern is purely conjunctive, and
/// its solution set — the homomorphisms of the triple-pattern set — is
/// independent of the order in which the leapfrog join binds variables.
/// That is the legality boundary the optimizer lives inside: *any*
/// variable order within a subtree is a correct plan, while reordering
/// *across* subtrees would change which maximality certificates wdEVAL
/// tests and is never attempted. So the search space per subtree is
/// (variable order) x (scan permutation per conjunct), where the
/// permutation is a function of the order (the store picks the index
/// whose sort prefix covers the bound positions of each scan).
///
/// Costing follows RDF-3X: exact cardinalities for the conjunct's
/// constant bindings from `CardinalityStats`, the independence
/// assumption for positions bound by earlier variables (divide by the
/// position's distinct-value count), and a bottom-up dynamic program
/// over variable subsets (Held-Karp style, exact up to `kDpMaxVars`
/// variables, greedy beyond) minimising estimated scan volume.
///
/// Determinism matters beyond reproducibility: parallel workers each
/// plan their own cursor over the same pinned view and partition work
/// by position in the cursor's candidate sequence — identical plans are
/// what keeps the partition exact. `PlanSubtree` is a pure function of
/// (view stats, patterns) with deterministic tie-breaking.

namespace wdsparql {
namespace optimizer {

/// Exact dynamic programming is used up to this many unbound variables
/// per subtree (2^n subset states); larger subtrees fall back to the
/// same cost model driven greedily.
inline constexpr int kDpMaxVars = 12;

/// The chosen plan for one conjunctive subtree.
struct SubtreePlan {
  /// Variable binding order (global `TermId`s, first-bound first) —
  /// what `JoinCursor` consumes.
  std::vector<TermId> var_order;
  /// Per non-ground conjunct, in pattern order: the permutation index
  /// its first scan under `var_order` touches (reporting only; the
  /// store re-derives this from bound positions at scan time).
  std::vector<Permutation> scan_perms;
  /// Estimated solutions of the subtree (independence assumption).
  double est_rows = 0;
  /// Estimated scan volume of the whole descent under `var_order`.
  double est_cost = 0;
};

/// Plans one subtree against `view`. Returns nullopt when there is
/// nothing to plan with or for: the view carries no statistics, the
/// pattern has no unbound variables, or a constant is absent from the
/// view (the join is provably empty; any order is equally cheap).
std::optional<SubtreePlan> PlanSubtree(const ReadView& view,
                                       const std::vector<Triple>& patterns);

/// Renders the plan for EXPLAIN output, e.g.
/// "order=[?y ?x] scans=[POS SPO]".
std::string DescribePlan(const SubtreePlan& plan, const TermPool& pool);

}  // namespace optimizer
}  // namespace wdsparql

#endif  // WDSPARQL_OPTIMIZER_PLANNER_H_
