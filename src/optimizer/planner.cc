#include "optimizer/planner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "optimizer/cardinality.h"
#include "util/check.h"

namespace wdsparql {
namespace optimizer {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Fixed per-scan overhead (the binary searches locating a range): keeps
/// the model from calling a plan free just because its ranges are empty.
constexpr double kScanOverhead = 1.0;

/// One non-ground conjunct, encoded like the join encodes it (constant
/// DataIds, local variable indexes) plus its exact base cardinality —
/// the stats lookup for whatever constants it carries.
struct Conjunct {
  DataId constant[3];  // kNoDataId where a variable sits.
  int var[3];          // -1 where a constant sits.
  double base = 0;
};

/// Exact matches of `c` under its constants alone (no variables bound):
/// total / single-value / pair lookup by constant count. Three constants
/// cannot occur (ground conjuncts are dropped before planning).
double BaseCardinality(const CardinalityStats& stats, const Conjunct& c) {
  int bound[3];
  int n = 0;
  for (int pos = 0; pos < 3; ++pos) {
    if (c.var[pos] < 0) bound[n++] = pos;
  }
  switch (n) {
    case 0:
      return static_cast<double>(stats.total());
    case 1:
      return static_cast<double>(stats.Count1(bound[0], c.constant[bound[0]]));
    default: {
      // The pair aggregates cover exactly the three 2-subsets of
      // positions: SP, PO and OS (the latter keyed (o, s)).
      if (bound[0] == 0 && bound[1] == 1) {
        return static_cast<double>(
            stats.CountPair(PairKind::kSp, c.constant[0], c.constant[1]));
      }
      if (bound[0] == 1 && bound[1] == 2) {
        return static_cast<double>(
            stats.CountPair(PairKind::kPo, c.constant[1], c.constant[2]));
      }
      return static_cast<double>(
          stats.CountPair(PairKind::kOs, c.constant[2], c.constant[0]));
    }
  }
}

/// The whole cost-model state for one subtree: conjuncts, variable
/// count, and the selectivity/row/cost estimators over variable subsets
/// (bitmask `mask`, bit v = local variable v bound).
struct Model {
  const CardinalityStats* stats;
  std::vector<Conjunct> conjuncts;
  int num_vars = 0;

  /// Expected triples matching `c` for one random binding of the
  /// variables in `mask` (independence assumption: each var-bound
  /// position divides the base cardinality by the position's distinct
  /// count, capped so a division never inflates the estimate).
  double EstMatches(const Conjunct& c, uint32_t mask) const {
    double m = c.base;
    for (int pos = 0; pos < 3; ++pos) {
      int v = c.var[pos];
      if (v >= 0 && ((mask >> v) & 1u) != 0) {
        double distinct = static_cast<double>(stats->Distinct(pos));
        m /= std::max(1.0, std::min(distinct, std::max(1.0, c.base)));
      }
    }
    return m;
  }

  /// Expected candidate values for variable `v` with `mask` bound: the
  /// intersection is at most the smallest contributor, and a conjunct
  /// contributes at most one distinct value per matching triple.
  double Selectivity(int v, uint32_t mask) const {
    double sel = kInf;
    for (const Conjunct& c : conjuncts) {
      bool contains = false;
      for (int pos = 0; pos < 3; ++pos) {
        if (c.var[pos] == v) {
          contains = true;
          sel = std::min(sel, static_cast<double>(stats->Distinct(pos)));
        }
      }
      if (contains) sel = std::min(sel, EstMatches(c, mask));
    }
    return sel == kInf ? 0.0 : sel;
  }

  /// Scan work at the level binding `v` (per partial binding above it):
  /// each conjunct containing `v` walks its estimated matching range.
  double LevelWork(int v, uint32_t mask) const {
    double work = 0;
    for (const Conjunct& c : conjuncts) {
      bool contains = c.var[0] == v || c.var[1] == v || c.var[2] == v;
      if (contains) work += EstMatches(c, mask) + kScanOverhead;
    }
    return work;
  }

  /// Estimated bindings of the variable set `mask`, computed canonically
  /// (variables folded in ascending local index) so the value is a
  /// function of the set, not of the path the DP reached it by.
  double Rows(uint32_t mask, std::vector<double>* memo) const {
    if (mask == 0) return 1.0;
    double& slot = (*memo)[mask];
    if (slot >= 0) return slot;
    int top = 31 - __builtin_clz(mask);
    uint32_t rest = mask & ~(1u << top);
    slot = Rows(rest, memo) * Selectivity(top, rest);
    return slot;
  }
};

/// Exact bottom-up DP over variable subsets: best_cost[S] = cheapest
/// total scan work reaching "S bound", expanded one variable at a time.
/// Deterministic: ascending mask and variable iteration with strict
/// improvement, so ties resolve to the lowest-index extension.
std::vector<int> OrderByDp(const Model& model, double* est_cost) {
  const int n = model.num_vars;
  const uint32_t full = (1u << n) - 1;
  std::vector<double> best_cost(full + 1, kInf);
  std::vector<int> pred(full + 1, -1);
  std::vector<double> rows_memo(full + 1, -1.0);
  best_cost[0] = 0;
  for (uint32_t mask = 0; mask <= full; ++mask) {
    if (best_cost[mask] == kInf) continue;
    const double rows = model.Rows(mask, &rows_memo);
    for (int v = 0; v < n; ++v) {
      if ((mask >> v) & 1u) continue;
      uint32_t next = mask | (1u << v);
      double cost = best_cost[mask] + rows * model.LevelWork(v, mask);
      if (cost < best_cost[next]) {
        best_cost[next] = cost;
        pred[next] = v;
      }
    }
  }
  std::vector<int> order(n);
  uint32_t mask = full;
  for (int i = n - 1; i >= 0; --i) {
    order[i] = pred[mask];
    mask &= ~(1u << pred[mask]);
  }
  *est_cost = best_cost[full];
  return order;
}

/// Greedy fallback past kDpMaxVars: same cost model, locally cheapest
/// next variable (ties to the lowest index — deterministic).
std::vector<int> OrderGreedy(const Model& model, double* est_cost) {
  const int n = model.num_vars;
  std::vector<int> order;
  order.reserve(n);
  uint32_t mask = 0;
  double rows = 1.0;
  double cost = 0;
  for (int step = 0; step < n; ++step) {
    int best = -1;
    double best_work = kInf;
    for (int v = 0; v < n; ++v) {
      if ((mask >> v) & 1u) continue;
      double work = rows * model.LevelWork(v, mask);
      if (work < best_work) {
        best_work = work;
        best = v;
      }
    }
    cost += best_work;
    rows *= model.Selectivity(best, mask);
    order.push_back(best);
    mask |= 1u << best;
  }
  *est_cost = cost;
  return order;
}

const char* PermName(Permutation perm) {
  switch (perm) {
    case Permutation::kSpo: return "SPO";
    case Permutation::kPos: return "POS";
    default: return "OSP";
  }
}

}  // namespace

std::optional<SubtreePlan> PlanSubtree(const ReadView& view,
                                       const std::vector<Triple>& patterns) {
  const CardinalityStats* stats = view.stats();
  if (stats == nullptr) return std::nullopt;

  // Encode the conjuncts exactly like JoinCursor::Setup: local variable
  // indexes in first-occurrence order, ground conjuncts dropped, absent
  // constants aborting (the join is provably empty — nothing to plan).
  Model model;
  model.stats = stats;
  std::vector<TermId> vars;
  std::unordered_map<TermId, int> var_index;
  for (const Triple& t : patterns) {
    Conjunct c;
    bool ground = true;
    for (int pos = 0; pos < 3; ++pos) {
      TermId term = t[pos];
      if (IsVariable(term)) {
        auto it = var_index.find(term);
        int idx;
        if (it != var_index.end()) {
          idx = it->second;
        } else {
          idx = static_cast<int>(vars.size());
          var_index[term] = idx;
          vars.push_back(term);
        }
        c.constant[pos] = kNoDataId;
        c.var[pos] = idx;
        ground = false;
        continue;
      }
      DataId id = view.dict().Encode(term);
      if (id == kNoDataId) return std::nullopt;  // Provably empty join.
      c.constant[pos] = id;
      c.var[pos] = -1;
    }
    if (ground) continue;
    c.base = BaseCardinality(*stats, c);
    model.conjuncts.push_back(c);
  }
  model.num_vars = static_cast<int>(vars.size());
  if (model.num_vars == 0) return std::nullopt;  // Nothing to order.

  SubtreePlan plan;
  std::vector<int> order;
  if (model.num_vars <= kDpMaxVars) {
    order = OrderByDp(model, &plan.est_cost);
  } else {
    order = OrderGreedy(model, &plan.est_cost);
  }

  plan.var_order.reserve(order.size());
  for (int v : order) plan.var_order.push_back(vars[v]);
  {
    std::vector<double> rows_memo((1u << std::min(model.num_vars, kDpMaxVars)), -1.0);
    if (model.num_vars <= kDpMaxVars) {
      plan.est_rows = model.Rows((1u << model.num_vars) - 1, &rows_memo);
    } else {
      // Too many variables for subset memoisation: fold selectivities
      // along the chosen order instead.
      double rows = 1.0;
      uint32_t mask = 0;
      for (int v : order) {
        rows *= model.Selectivity(v, mask);
        mask |= 1u << v;
      }
      plan.est_rows = rows;
    }
  }

  // Report, per conjunct, the permutation its first scan touches: at
  // the first level binding one of its variables, the bound positions
  // are its constants plus variables bound at earlier levels.
  plan.scan_perms.assign(model.conjuncts.size(), Permutation::kSpo);
  std::vector<char> scanned(model.conjuncts.size(), 0);
  uint32_t bound = 0;
  for (int v : order) {
    for (std::size_t ci = 0; ci < model.conjuncts.size(); ++ci) {
      const Conjunct& c = model.conjuncts[ci];
      bool contains = c.var[0] == v || c.var[1] == v || c.var[2] == v;
      if (!contains || scanned[ci]) continue;
      int mask3 = 0;
      for (int pos = 0; pos < 3; ++pos) {
        bool is_bound = c.var[pos] < 0 ||
                        (c.var[pos] != v && ((bound >> c.var[pos]) & 1u) != 0);
        if (is_bound) mask3 |= 1 << pos;
      }
      plan.scan_perms[ci] = enc_order::PermForBoundMask(mask3);
      scanned[ci] = 1;
    }
    bound |= 1u << v;
  }
  return plan;
}

std::string DescribePlan(const SubtreePlan& plan, const TermPool& pool) {
  std::string out = "order=[";
  for (std::size_t i = 0; i < plan.var_order.size(); ++i) {
    if (i > 0) out += ' ';
    out += '?';
    out += pool.Spelling(plan.var_order[i]);
  }
  out += "] scans=[";
  for (std::size_t i = 0; i < plan.scan_perms.size(); ++i) {
    if (i > 0) out += ' ';
    out += PermName(plan.scan_perms[i]);
  }
  out += ']';
  return out;
}

}  // namespace optimizer
}  // namespace wdsparql
