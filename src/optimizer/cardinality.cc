#include "optimizer/cardinality.h"

#include <algorithm>

namespace wdsparql {

namespace {

// One pass over a run sorted on (first, second, ...): emits the count
// per distinct `first` value and per distinct (first, second) prefix.
// `first`/`second` are the triple positions the run sorts on.
void Aggregate(const EncTriple* run, std::size_t count, int first, int second,
               std::vector<ValueCount>* singles, std::vector<PairCount>* pairs) {
  singles->clear();
  pairs->clear();
  for (std::size_t i = 0; i < count; ++i) {
    const DataId a = run[i][first];
    const DataId b = run[i][second];
    if (singles->empty() || singles->back().id != a) {
      singles->push_back(ValueCount{a, 0, 0});
    }
    ++singles->back().count;
    if (pairs->empty() || pairs->back().a != a || pairs->back().b != b) {
      pairs->push_back(PairCount{a, b, 0});
    }
    ++pairs->back().count;
  }
}

}  // namespace

std::shared_ptr<const CardinalityStats> CardinalityStats::Build(
    const EncTriple* spo, const EncTriple* pos, const EncTriple* osp,
    std::size_t count) {
  auto stats = std::shared_ptr<CardinalityStats>(new CardinalityStats());
  stats->total_ = count;
  std::vector<ValueCount> singles;
  std::vector<PairCount> pairs;
  Aggregate(spo, count, 0, 1, &singles, &pairs);
  stats->single_[0].Assign(std::move(singles));
  stats->pair_[0].Assign(std::move(pairs));
  Aggregate(pos, count, 1, 2, &singles, &pairs);
  stats->single_[1].Assign(std::move(singles));
  stats->pair_[1].Assign(std::move(pairs));
  Aggregate(osp, count, 2, 0, &singles, &pairs);
  stats->single_[2].Assign(std::move(singles));
  stats->pair_[2].Assign(std::move(pairs));
  return stats;
}

std::shared_ptr<const CardinalityStats> CardinalityStats::Borrow(
    const ValueCount* s, std::size_t s_n, const ValueCount* p, std::size_t p_n,
    const ValueCount* o, std::size_t o_n, const PairCount* sp, std::size_t sp_n,
    const PairCount* po, std::size_t po_n, const PairCount* os, std::size_t os_n,
    uint64_t total, std::shared_ptr<const void> keepalive) {
  auto stats = std::shared_ptr<CardinalityStats>(new CardinalityStats());
  stats->total_ = total;
  stats->single_[0].Borrow(s, s_n);
  stats->single_[1].Borrow(p, p_n);
  stats->single_[2].Borrow(o, o_n);
  stats->pair_[0].Borrow(sp, sp_n);
  stats->pair_[1].Borrow(po, po_n);
  stats->pair_[2].Borrow(os, os_n);
  stats->keepalive_ = std::move(keepalive);
  return stats;
}

uint64_t CardinalityStats::Count1(int pos, DataId id) const {
  const Array<ValueCount>& arr = single_[pos];
  const ValueCount* end = arr.data + arr.size;
  const ValueCount* it = std::lower_bound(
      arr.data, end, id,
      [](const ValueCount& entry, DataId key) { return entry.id < key; });
  if (it == end || it->id != id) return 0;
  return it->count;
}

uint64_t CardinalityStats::CountPair(PairKind kind, DataId a, DataId b) const {
  const Array<PairCount>& arr = pair_[static_cast<int>(kind)];
  const PairCount* end = arr.data + arr.size;
  const PairCount* it = std::lower_bound(
      arr.data, end, std::make_pair(a, b),
      [](const PairCount& entry, const std::pair<DataId, DataId>& key) {
        return entry.a != key.first ? entry.a < key.first : entry.b < key.second;
      });
  if (it == end || it->a != a || it->b != b) return 0;
  return it->count;
}

}  // namespace wdsparql
