#ifndef WDSPARQL_OPTIMIZER_CARDINALITY_H_
#define WDSPARQL_OPTIMIZER_CARDINALITY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "engine/dictionary.h"
#include "engine/read_view.h"

/// \file
/// Cardinality statistics over one immutable base (the optimizer's
/// input, RDF-3X style).
///
/// RDF-3X keeps, next to its six full permutation indexes, *aggregated*
/// indexes that store counts instead of triples: how many triples share
/// a given S value, a given (S,P) prefix, and so on. Those counts are
/// what turns a cost model from guesswork into arithmetic — the
/// selectivity of a triple pattern with bound positions is an exact
/// lookup, not an estimate. This store keeps three permutations
/// (SPO/POS/OSP), so one linear pass over each yields the six
/// aggregates that matter for planning:
///
///   SPO  ->  count per S value,  count per (S,P) prefix
///   POS  ->  count per P value,  count per (P,O) prefix
///   OSP  ->  count per O value,  count per (O,S) prefix
///
/// A `CardinalityStats` is immutable and describes exactly one set of
/// base runs — the engine builds it when the base changes (delta merge
/// / Compact / Checkpoint) and hangs it off `BaseRuns`, so every pinned
/// `ReadView` carries the statistics consistent with the runs it scans.
/// Pending delta triples are *not* reflected (they are few by
/// construction — the merge threshold bounds them — and folding them in
/// on every write would put a linear pass on the commit path); the
/// planner treats stats as a slightly stale census, which estimation
/// tolerates by design.
///
/// The entry structs double as the on-disk snapshot section images
/// (sections 6..11, see docs/FILE_FORMAT.md): fixed 16-byte layouts,
/// explicit padding, sorted by key so the reader can validate and
/// binary-search them in place. Like `EncRun`, the arrays are either
/// owned (built in memory) or borrowed from a mapped snapshot kept
/// alive by `keepalive_`.

namespace wdsparql {

/// On-disk / in-memory entry: number of base triples whose `pos`
/// component equals `id`.
struct ValueCount {
  DataId id = 0;
  uint32_t pad = 0;  ///< Zero on disk; keeps the layout explicit.
  uint64_t count = 0;
};
static_assert(sizeof(ValueCount) == 16, "snapshot section layout");

/// On-disk / in-memory entry: number of base triples matching a
/// two-position prefix `(a, b)` of one permutation.
struct PairCount {
  DataId a = 0;
  DataId b = 0;
  uint64_t count = 0;
};
static_assert(sizeof(PairCount) == 16, "snapshot section layout");

/// The two-position prefix kinds (named by the permutation that sorts
/// on them: SP from SPO, PO from POS, OS from OSP).
enum class PairKind { kSp = 0, kPo = 1, kOs = 2 };

/// Immutable aggregated triple counts over one base. Thread-safe for
/// concurrent reads (it is never mutated after construction).
class CardinalityStats {
 public:
  /// Builds the six aggregates in one linear pass per permutation run.
  /// The three runs must describe the same triple set in SPO/POS/OSP
  /// order respectively (the `BaseRuns` invariant).
  static std::shared_ptr<const CardinalityStats> Build(const EncTriple* spo,
                                                       const EncTriple* pos,
                                                       const EncTriple* osp,
                                                       std::size_t count);

  /// Wraps persisted section images in place (no copy). `keepalive`
  /// pins the mapping the pointers reach into; the caller (snapshot
  /// open) has already validated sortedness and count sums.
  static std::shared_ptr<const CardinalityStats> Borrow(
      const ValueCount* s, std::size_t s_n, const ValueCount* p, std::size_t p_n,
      const ValueCount* o, std::size_t o_n, const PairCount* sp, std::size_t sp_n,
      const PairCount* po, std::size_t po_n, const PairCount* os, std::size_t os_n,
      uint64_t total, std::shared_ptr<const void> keepalive);

  /// Total triples in the base the stats describe.
  uint64_t total() const { return total_; }

  /// Exact number of base triples whose position `pos` (0=S, 1=P, 2=O)
  /// equals `id`; 0 when `id` does not occur there.
  uint64_t Count1(int pos, DataId id) const;

  /// Exact number of base triples matching the two-position prefix.
  uint64_t CountPair(PairKind kind, DataId a, DataId b) const;

  /// Number of distinct values occurring at position `pos`.
  uint64_t Distinct(int pos) const { return single_[pos].size; }

  /// Raw section images, index 0..2 = S/P/O (for persistence).
  const ValueCount* single_data(int pos) const { return single_[pos].data; }
  std::size_t single_size(int pos) const { return single_[pos].size; }
  /// Raw section images, by pair kind (for persistence).
  const PairCount* pair_data(PairKind kind) const {
    return pair_[static_cast<int>(kind)].data;
  }
  std::size_t pair_size(PairKind kind) const {
    return pair_[static_cast<int>(kind)].size;
  }

 private:
  template <typename T>
  struct Array {
    const T* data = nullptr;
    std::size_t size = 0;
    std::vector<T> owned;
    void Assign(std::vector<T> values) {
      owned = std::move(values);
      data = owned.data();
      size = owned.size();
    }
    void Borrow(const T* ptr, std::size_t n) {
      owned.clear();
      data = ptr;
      size = n;
    }
  };

  CardinalityStats() = default;

  Array<ValueCount> single_[3];  // S, P, O.
  Array<PairCount> pair_[3];     // SP, PO, OS.
  uint64_t total_ = 0;
  std::shared_ptr<const void> keepalive_;
};

}  // namespace wdsparql

#endif  // WDSPARQL_OPTIMIZER_CARDINALITY_H_
