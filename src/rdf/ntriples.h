#ifndef WDSPARQL_RDF_NTRIPLES_H_
#define WDSPARQL_RDF_NTRIPLES_H_

#include <optional>
#include <string>
#include <string_view>

#include "rdf/graph.h"
#include "util/status.h"

/// \file
/// A line-oriented reader/writer for ground RDF graphs.
///
/// The format is a pragmatic N-Triples subset: one triple per line,
/// whitespace-separated terms, optional trailing '.', '#' line comments.
/// Terms are bare identifiers or '<'-quoted IRIs:
///
///     # people
///     <http://ex.org/alice> knows bob .
///     alice likes coffee
///
/// Variables are not allowed (RDF graphs are ground in this paper).

namespace wdsparql {

/// Parses `text` into `graph`. On error, reports the offending line.
Status ParseNTriples(std::string_view text, RdfGraph* graph);

/// Parses a single line, interning spellings into `pool`. Blank and
/// comment lines succeed with `*out == nullopt`. `line_number` is used
/// only for error messages. This is the streaming entry point: the bulk
/// loader feeds lines straight off a file without materialising the
/// text (or a graph) in memory.
Status ParseNTriplesLine(std::string_view line, int line_number, TermPool* pool,
                         std::optional<Triple>* out);

/// Reads the file at `path` into `graph`.
Status ReadNTriplesFile(const std::string& path, RdfGraph* graph);

/// Serialises `graph` one triple per line with a trailing " .".
std::string WriteNTriples(const RdfGraph& graph);

}  // namespace wdsparql

#endif  // WDSPARQL_RDF_NTRIPLES_H_
