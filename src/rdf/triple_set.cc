#include "rdf/triple_set.h"

#include <algorithm>

namespace wdsparql {

const std::vector<uint32_t> TripleSet::kEmptyIndex;

bool TripleSet::Insert(const Triple& t) {
  if (!set_.insert(t).second) return false;
  uint32_t idx = static_cast<uint32_t>(triples_.size());
  triples_.push_back(t);
  for (int pos = 0; pos < 3; ++pos) index_[pos][t[pos]].push_back(idx);
  return true;
}

bool TripleSet::Erase(const Triple& t) {
  auto it = set_.find(t);
  if (it == set_.end()) return false;
  set_.erase(it);

  // Locate the dense slot of `t` through the (smallest) subject bucket.
  uint32_t idx = 0;
  bool found = false;
  for (uint32_t i : index_[0][t.subject]) {
    if (triples_[i] == t) {
      idx = i;
      found = true;
      break;
    }
  }
  WDSPARQL_CHECK(found);

  auto drop_from_bucket = [this](int pos, TermId term, uint32_t value) {
    auto bucket_it = index_[pos].find(term);
    WDSPARQL_CHECK(bucket_it != index_[pos].end());
    std::vector<uint32_t>& bucket = bucket_it->second;
    bucket.erase(std::find(bucket.begin(), bucket.end(), value));
    if (bucket.empty()) index_[pos].erase(bucket_it);
  };
  for (int pos = 0; pos < 3; ++pos) drop_from_bucket(pos, t[pos], idx);

  // Swap-pop: move the last triple into the vacated slot and repoint its
  // index entries from the old tail position to `idx`.
  uint32_t last = static_cast<uint32_t>(triples_.size()) - 1;
  if (idx != last) {
    const Triple moved = triples_[last];
    triples_[idx] = moved;
    for (int pos = 0; pos < 3; ++pos) {
      std::vector<uint32_t>& bucket = index_[pos][moved[pos]];
      *std::find(bucket.begin(), bucket.end(), last) = idx;
    }
  }
  triples_.pop_back();
  return true;
}

void TripleSet::InsertAll(const TripleSet& other) {
  // Self-insertion would otherwise iterate `triples_` while `Insert`
  // appends to it (iterator invalidation); every triple is already
  // present, so the aliased call must be a no-op.
  if (&other == this) return;
  Reserve(triples_.size() + other.triples_.size());
  // Index-based loop: stays valid even if `other` shares storage with a
  // container being grown elsewhere.
  for (std::size_t i = 0; i < other.triples_.size(); ++i) Insert(other.triples_[i]);
}

void TripleSet::Reserve(std::size_t n) {
  // The per-position index maps are keyed by *distinct* terms, a count
  // unrelated to (and usually far below) the triple count — sizing them
  // for n would allocate mostly-empty bucket arrays; they are left to
  // grow on demand.
  triples_.reserve(n);
  set_.reserve(n);
}

const std::vector<uint32_t>& TripleSet::TriplesWithTermAt(int pos, TermId t) const {
  WDSPARQL_DCHECK(pos >= 0 && pos < 3);
  auto it = index_[pos].find(t);
  return it == index_[pos].end() ? kEmptyIndex : it->second;
}

std::vector<TermId> TripleSet::TermsAt(int pos) const {
  std::vector<TermId> out;
  std::unordered_set<TermId> seen;
  for (const Triple& t : triples_) {
    if (seen.insert(t[pos]).second) out.push_back(t[pos]);
  }
  return out;
}

std::vector<TermId> TripleSet::AllTerms() const {
  std::vector<TermId> out;
  std::unordered_set<TermId> seen;
  for (const Triple& t : triples_) {
    for (int pos = 0; pos < 3; ++pos) {
      if (seen.insert(t[pos]).second) out.push_back(t[pos]);
    }
  }
  return out;
}

std::vector<TermId> TripleSet::Variables() const {
  std::vector<TermId> out;
  for (TermId t : AllTerms()) {
    if (IsVariable(t)) out.push_back(t);
  }
  return out;
}

std::vector<TermId> TripleSet::Iris() const {
  std::vector<TermId> out;
  for (TermId t : AllTerms()) {
    if (IsIri(t)) out.push_back(t);
  }
  return out;
}

bool TripleSet::IsGround() const {
  return std::all_of(triples_.begin(), triples_.end(),
                     [](const Triple& t) { return t.IsGround(); });
}

}  // namespace wdsparql
