#include "rdf/triple_set.h"

#include <algorithm>

namespace wdsparql {

const std::vector<uint32_t> TripleSet::kEmptyIndex;

bool TripleSet::Insert(const Triple& t) {
  if (!set_.insert(t).second) return false;
  uint32_t idx = static_cast<uint32_t>(triples_.size());
  triples_.push_back(t);
  for (int pos = 0; pos < 3; ++pos) index_[pos][t[pos]].push_back(idx);
  return true;
}

void TripleSet::InsertAll(const TripleSet& other) {
  // Self-insertion would otherwise iterate `triples_` while `Insert`
  // appends to it (iterator invalidation); every triple is already
  // present, so the aliased call must be a no-op.
  if (&other == this) return;
  Reserve(triples_.size() + other.triples_.size());
  // Index-based loop: stays valid even if `other` shares storage with a
  // container being grown elsewhere.
  for (std::size_t i = 0; i < other.triples_.size(); ++i) Insert(other.triples_[i]);
}

void TripleSet::Reserve(std::size_t n) {
  // The per-position index maps are keyed by *distinct* terms, a count
  // unrelated to (and usually far below) the triple count — sizing them
  // for n would allocate mostly-empty bucket arrays; they are left to
  // grow on demand.
  triples_.reserve(n);
  set_.reserve(n);
}

const std::vector<uint32_t>& TripleSet::TriplesWithTermAt(int pos, TermId t) const {
  WDSPARQL_DCHECK(pos >= 0 && pos < 3);
  auto it = index_[pos].find(t);
  return it == index_[pos].end() ? kEmptyIndex : it->second;
}

std::vector<TermId> TripleSet::TermsAt(int pos) const {
  std::vector<TermId> out;
  std::unordered_set<TermId> seen;
  for (const Triple& t : triples_) {
    if (seen.insert(t[pos]).second) out.push_back(t[pos]);
  }
  return out;
}

std::vector<TermId> TripleSet::AllTerms() const {
  std::vector<TermId> out;
  std::unordered_set<TermId> seen;
  for (const Triple& t : triples_) {
    for (int pos = 0; pos < 3; ++pos) {
      if (seen.insert(t[pos]).second) out.push_back(t[pos]);
    }
  }
  return out;
}

std::vector<TermId> TripleSet::Variables() const {
  std::vector<TermId> out;
  for (TermId t : AllTerms()) {
    if (IsVariable(t)) out.push_back(t);
  }
  return out;
}

std::vector<TermId> TripleSet::Iris() const {
  std::vector<TermId> out;
  for (TermId t : AllTerms()) {
    if (IsIri(t)) out.push_back(t);
  }
  return out;
}

bool TripleSet::IsGround() const {
  return std::all_of(triples_.begin(), triples_.end(),
                     [](const Triple& t) { return t.IsGround(); });
}

}  // namespace wdsparql
