#include "rdf/triple_set.h"

#include <algorithm>

namespace wdsparql {

const std::vector<uint32_t> TripleSet::kEmptyIndex;

bool TripleSet::Insert(const Triple& t) {
  if (!set_.insert(t).second) return false;
  uint32_t idx = static_cast<uint32_t>(triples_.size());
  triples_.push_back(t);
  for (int pos = 0; pos < 3; ++pos) index_[pos][t[pos]].push_back(idx);
  return true;
}

void TripleSet::InsertAll(const TripleSet& other) {
  for (const Triple& t : other.triples_) Insert(t);
}

const std::vector<uint32_t>& TripleSet::TriplesWithTermAt(int pos, TermId t) const {
  WDSPARQL_DCHECK(pos >= 0 && pos < 3);
  auto it = index_[pos].find(t);
  return it == index_[pos].end() ? kEmptyIndex : it->second;
}

std::vector<TermId> TripleSet::TermsAt(int pos) const {
  std::vector<TermId> out;
  std::unordered_set<TermId> seen;
  for (const Triple& t : triples_) {
    if (seen.insert(t[pos]).second) out.push_back(t[pos]);
  }
  return out;
}

std::vector<TermId> TripleSet::AllTerms() const {
  std::vector<TermId> out;
  std::unordered_set<TermId> seen;
  for (const Triple& t : triples_) {
    for (int pos = 0; pos < 3; ++pos) {
      if (seen.insert(t[pos]).second) out.push_back(t[pos]);
    }
  }
  return out;
}

std::vector<TermId> TripleSet::Variables() const {
  std::vector<TermId> out;
  for (TermId t : AllTerms()) {
    if (IsVariable(t)) out.push_back(t);
  }
  return out;
}

std::vector<TermId> TripleSet::Iris() const {
  std::vector<TermId> out;
  for (TermId t : AllTerms()) {
    if (IsIri(t)) out.push_back(t);
  }
  return out;
}

bool TripleSet::IsGround() const {
  return std::all_of(triples_.begin(), triples_.end(),
                     [](const Triple& t) { return t.IsGround(); });
}

}  // namespace wdsparql
