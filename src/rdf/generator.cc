#include "rdf/generator.h"

#include <string>

namespace wdsparql {
namespace {

std::string NumberedIri(std::string_view prefix, int i) {
  std::string out(prefix);
  out += std::to_string(i);
  return out;
}

}  // namespace

void GenerateRandomGraph(const RandomGraphOptions& options, RdfGraph* graph) {
  WDSPARQL_CHECK(graph != nullptr);
  WDSPARQL_CHECK(options.num_nodes > 0 && options.num_predicates > 0);
  Rng rng(options.seed);
  for (int i = 0; i < options.num_triples; ++i) {
    int s = static_cast<int>(rng.NextBounded(options.num_nodes));
    int p = static_cast<int>(rng.NextBounded(options.num_predicates));
    int o = static_cast<int>(rng.NextBounded(options.num_nodes));
    graph->Insert(NumberedIri(options.node_prefix, s), NumberedIri("p", p),
                  NumberedIri(options.node_prefix, o));
  }
}

void GeneratePathGraph(int length, std::string_view predicate, RdfGraph* graph) {
  WDSPARQL_CHECK(graph != nullptr && length >= 0);
  for (int i = 0; i < length; ++i) {
    graph->Insert(NumberedIri("v", i), predicate, NumberedIri("v", i + 1));
  }
}

void GenerateCycleGraph(int length, std::string_view predicate, RdfGraph* graph) {
  WDSPARQL_CHECK(graph != nullptr && length >= 1);
  for (int i = 0; i < length; ++i) {
    graph->Insert(NumberedIri("v", i), predicate, NumberedIri("v", (i + 1) % length));
  }
}

void EncodeUndirectedGraph(const UndirectedGraph& h, std::string_view edge_predicate,
                           std::string_view vertex_prefix, RdfGraph* graph) {
  WDSPARQL_CHECK(graph != nullptr);
  for (int u = 0; u < h.NumVertices(); ++u) {
    graph->Insert(NumberedIri(vertex_prefix, u), "node", NumberedIri(vertex_prefix, u));
  }
  for (const auto& [u, v] : h.Edges()) {
    graph->Insert(NumberedIri(vertex_prefix, u), edge_predicate,
                  NumberedIri(vertex_prefix, v));
    graph->Insert(NumberedIri(vertex_prefix, v), edge_predicate,
                  NumberedIri(vertex_prefix, u));
  }
}

void GenerateSocialGraph(const SocialGraphOptions& options, RdfGraph* graph) {
  WDSPARQL_CHECK(graph != nullptr);
  WDSPARQL_CHECK(options.num_people > 0 && options.num_cities > 0);
  Rng rng(options.seed);
  for (int i = 0; i < options.num_people; ++i) {
    std::string person = NumberedIri("person", i);
    graph->Insert(person, "type", "Person");
    graph->Insert(person, "livesIn",
                  NumberedIri("city", static_cast<int>(rng.NextBounded(options.num_cities))));
    if (rng.NextBernoulli(options.email_probability)) {
      graph->Insert(person, "email", NumberedIri("mailto:user", i));
    }
    if (rng.NextBernoulli(options.phone_probability)) {
      graph->Insert(person, "phone", NumberedIri("tel:", i));
    }
  }
  for (int i = 0; i < options.num_people; ++i) {
    for (int j = 0; j < options.num_people; ++j) {
      if (i != j && rng.NextBernoulli(options.knows_probability)) {
        graph->Insert(NumberedIri("person", i), "knows", NumberedIri("person", j));
      }
    }
  }
}

UndirectedGraph GenerateErdosRenyi(int n, double p, uint64_t seed) {
  UndirectedGraph g(n);
  Rng rng(seed);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.NextBernoulli(p)) g.AddEdge(u, v);
    }
  }
  return g;
}

UndirectedGraph GeneratePlantedClique(int n, int k, double p, uint64_t seed) {
  WDSPARQL_CHECK(k <= n);
  UndirectedGraph g = GenerateErdosRenyi(n, p, seed);
  // Plant the clique on a pseudo-random vertex subset.
  Rng rng(seed ^ 0xabcdef1234567890ULL);
  std::vector<int> vertices(n);
  for (int i = 0; i < n; ++i) vertices[i] = i;
  rng.Shuffle(vertices);
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) g.AddEdge(vertices[i], vertices[j]);
  }
  return g;
}

}  // namespace wdsparql
