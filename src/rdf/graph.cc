#include "rdf/graph.h"

#include "rdf/ntriples.h"

namespace wdsparql {

std::string RdfGraph::ToString() const { return WriteNTriples(*this); }

}  // namespace wdsparql
