#ifndef WDSPARQL_RDF_TRIPLE_SET_H_
#define WDSPARQL_RDF_TRIPLE_SET_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/triple.h"

/// \file
/// An indexed set of triples.
///
/// `TripleSet` is the common storage behind both RDF graphs (all triples
/// ground) and t-graphs (triples may contain variables). It maintains
/// per-position hash indexes so the homomorphism engine can enumerate the
/// triples matching a partially bound pattern in time proportional to the
/// result, mirroring the SPO/POS/OSP permutation indexes of real triple
/// stores.

namespace wdsparql {

/// A duplicate-free set of triples with subject/predicate/object indexes.
class TripleSet {
 public:
  TripleSet() = default;

  /// Inserts `t`; returns true iff it was not already present.
  bool Insert(const Triple& t);

  /// Removes `t`; returns true iff it was present. The dense slot of the
  /// removed triple is filled by the last triple (swap-pop), so indices
  /// previously obtained from `TriplesWithTermAt` are invalidated.
  bool Erase(const Triple& t);

  /// Inserts every triple of `other`. Safe when `other` aliases `*this`
  /// (a no-op in that case: a set already contains its own triples).
  void InsertAll(const TripleSet& other);

  /// Pre-sizes the dense vector and the dedup set for `n` triples,
  /// cutting rehashing on bulk load.
  void Reserve(std::size_t n);

  /// True iff `t` is present.
  bool Contains(const Triple& t) const { return set_.count(t) > 0; }

  /// Number of triples.
  std::size_t size() const { return triples_.size(); }
  /// True iff the set is empty.
  bool empty() const { return triples_.empty(); }

  /// The triples in insertion order.
  const std::vector<Triple>& triples() const { return triples_; }

  /// Iteration support (insertion order).
  std::vector<Triple>::const_iterator begin() const { return triples_.begin(); }
  std::vector<Triple>::const_iterator end() const { return triples_.end(); }

  /// Indices (into `triples()`) of triples with the given term at
  /// position `pos` (0=subject, 1=predicate, 2=object). Missing terms
  /// yield an empty list.
  const std::vector<uint32_t>& TriplesWithTermAt(int pos, TermId t) const;

  /// The distinct terms occurring at position `pos`, in first-seen order.
  std::vector<TermId> TermsAt(int pos) const;

  /// All distinct terms (IRIs and variables) occurring in the set.
  std::vector<TermId> AllTerms() const;

  /// The distinct variables occurring in the set (vars(S) in the paper).
  std::vector<TermId> Variables() const;

  /// The distinct IRIs occurring in the set; for an RDF graph G this is
  /// dom(G) in the paper.
  std::vector<TermId> Iris() const;

  /// True iff every triple is ground (an RDF graph).
  bool IsGround() const;

  /// Set equality (order-insensitive).
  friend bool operator==(const TripleSet& a, const TripleSet& b) {
    if (a.size() != b.size()) return false;
    for (const Triple& t : a.triples_) {
      if (!b.Contains(t)) return false;
    }
    return true;
  }

 private:
  std::vector<Triple> triples_;
  std::unordered_set<Triple, TripleHash> set_;
  // position -> term -> indices of triples having that term at position.
  std::unordered_map<TermId, std::vector<uint32_t>> index_[3];
  static const std::vector<uint32_t> kEmptyIndex;
};

}  // namespace wdsparql

#endif  // WDSPARQL_RDF_TRIPLE_SET_H_
