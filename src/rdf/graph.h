#ifndef WDSPARQL_RDF_GRAPH_H_
#define WDSPARQL_RDF_GRAPH_H_

#include <string>
#include <string_view>

#include "rdf/triple_set.h"
#include "util/status.h"

/// \file
/// Ground RDF graphs.

namespace wdsparql {

/// A finite set of ground RDF triples (no blank nodes, per the paper).
///
/// `RdfGraph` wraps a `TripleSet` and enforces groundness on insertion.
/// It keeps a pointer to the `TermPool` used to intern its IRIs so that
/// convenience string-based insertion and rendering are available.
class RdfGraph {
 public:
  /// Creates an empty graph interning terms in `pool` (must outlive the
  /// graph).
  explicit RdfGraph(TermPool* pool) : pool_(pool) { WDSPARQL_CHECK(pool != nullptr); }

  /// Inserts a ground triple; fatal if any position is a variable.
  /// Returns true iff newly inserted.
  bool Insert(const Triple& t) {
    WDSPARQL_CHECK(t.IsGround());
    return triples_.Insert(t);
  }

  /// Interns the three IRI spellings and inserts the triple.
  bool Insert(std::string_view s, std::string_view p, std::string_view o) {
    return Insert(Triple(pool_->InternIri(s), pool_->InternIri(p), pool_->InternIri(o)));
  }

  /// Removes a triple; returns true iff it was present.
  bool Remove(const Triple& t) { return triples_.Erase(t); }

  /// Looks the three IRI spellings up (without interning — a miss means
  /// the triple cannot be present) and removes the triple.
  bool Remove(std::string_view s, std::string_view p, std::string_view o) {
    std::optional<TermId> sid = pool_->FindIri(s);
    std::optional<TermId> pid = pool_->FindIri(p);
    std::optional<TermId> oid = pool_->FindIri(o);
    if (!sid.has_value() || !pid.has_value() || !oid.has_value()) return false;
    return Remove(Triple(*sid, *pid, *oid));
  }

  /// True iff the ground triple `t` is present.
  bool Contains(const Triple& t) const { return triples_.Contains(t); }

  /// Pre-sizes the underlying storage for `n` triples (bulk load).
  void Reserve(std::size_t n) { triples_.Reserve(n); }

  /// Number of triples.
  std::size_t size() const { return triples_.size(); }
  /// True iff the graph has no triples.
  bool empty() const { return triples_.empty(); }

  /// The underlying indexed triple container.
  const TripleSet& triples() const { return triples_; }

  /// dom(G): the distinct IRIs appearing in the graph.
  std::vector<TermId> Domain() const { return triples_.Iris(); }

  /// The shared intern pool.
  TermPool* pool() const { return pool_; }

  /// Renders the graph in the N-Triples-like format of ntriples.h.
  std::string ToString() const;

 private:
  TermPool* pool_;
  TripleSet triples_;
};

}  // namespace wdsparql

#endif  // WDSPARQL_RDF_GRAPH_H_
