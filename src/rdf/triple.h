#ifndef WDSPARQL_SHIM_SRC_RDF_TRIPLE_H
#define WDSPARQL_SHIM_SRC_RDF_TRIPLE_H

/// \file
/// Compatibility forwarder: this header moved to the stable public
/// surface at include/wdsparql/triple.h. Internal code may keep the old
/// path; new code should include "wdsparql/triple.h" directly.

#include "wdsparql/triple.h"

#endif  // WDSPARQL_SHIM_SRC_RDF_TRIPLE_H
