#ifndef WDSPARQL_SHIM_SRC_RDF_TERM_H
#define WDSPARQL_SHIM_SRC_RDF_TERM_H

/// \file
/// Compatibility forwarder: this header moved to the stable public
/// surface at include/wdsparql/term.h. Internal code may keep the old
/// path; new code should include "wdsparql/term.h" directly.

#include "wdsparql/term.h"

#endif  // WDSPARQL_SHIM_SRC_RDF_TERM_H
