#ifndef WDSPARQL_RDF_GENERATOR_H_
#define WDSPARQL_RDF_GENERATOR_H_

#include <string_view>

#include "rdf/graph.h"
#include "util/rng.h"
#include "util/undirected_graph.h"

/// \file
/// Deterministic synthetic RDF workload generators.
///
/// The paper evaluates pure algorithms, not datasets, so every experiment
/// in EXPERIMENTS.md runs on synthetic graphs produced here with explicit
/// seeds (see DESIGN.md, "Substitutions").

namespace wdsparql {

/// Options for `GenerateRandomGraph`.
struct RandomGraphOptions {
  int num_nodes = 100;       ///< Number of distinct subject/object IRIs.
  int num_predicates = 4;    ///< Number of distinct predicate IRIs.
  int num_triples = 400;     ///< Triples to attempt (duplicates collapse).
  uint64_t seed = 1;         ///< PRNG seed.
  std::string_view node_prefix = "n";  ///< IRI prefix for nodes.
};

/// Uniform random triples over `num_nodes` nodes and `num_predicates`
/// predicates. Deterministic in the seed.
void GenerateRandomGraph(const RandomGraphOptions& options, RdfGraph* graph);

/// A directed path n0 -p-> n1 -p-> ... of `length` edges.
void GeneratePathGraph(int length, std::string_view predicate, RdfGraph* graph);

/// A directed cycle with `length` >= 1 edges.
void GenerateCycleGraph(int length, std::string_view predicate, RdfGraph* graph);

/// Encodes the undirected graph `h` as RDF: for every edge {u, v} both
/// (u, edge_predicate, v) and (v, edge_predicate, u) are added, plus a
/// (u, "node", u) self-marker for isolated-vertex visibility.
void EncodeUndirectedGraph(const UndirectedGraph& h, std::string_view edge_predicate,
                           std::string_view vertex_prefix, RdfGraph* graph);

/// Options for `GenerateSocialGraph`.
struct SocialGraphOptions {
  int num_people = 50;          ///< Number of person IRIs.
  int num_cities = 5;           ///< Number of city IRIs.
  double knows_probability = 0.08;   ///< P(person i knows person j).
  double email_probability = 0.7;    ///< P(person has an email address).
  double phone_probability = 0.4;    ///< P(person has a phone number).
  uint64_t seed = 7;            ///< PRNG seed.
};

/// A small social network with optional attributes (email/phone), the
/// classic workload motivating OPTIONAL in the SPARQL literature: some
/// people lack the optional attributes, so OPT-queries return partial
/// mappings.
void GenerateSocialGraph(const SocialGraphOptions& options, RdfGraph* graph);

/// An Erdos-Renyi undirected graph G(n, p), deterministic in the seed.
UndirectedGraph GenerateErdosRenyi(int n, double p, uint64_t seed);

/// An undirected graph on `n` vertices containing a planted clique of
/// size `k` plus G(n, p) background edges. Used by the hardness-reduction
/// experiments (E6).
UndirectedGraph GeneratePlantedClique(int n, int k, double p, uint64_t seed);

}  // namespace wdsparql

#endif  // WDSPARQL_RDF_GENERATOR_H_
