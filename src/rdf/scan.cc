#include "rdf/scan.h"

#include <algorithm>

namespace wdsparql {

bool HashTripleSource::ScanPattern(const Triple& pattern,
                                   const TripleScanCallback& fn) const {
  // Probe the most selective bound position's hash index.
  int probe_pos = -1;
  std::size_t probe_size = 0;
  for (int pos = 0; pos < 3; ++pos) {
    if (pattern[pos] == kAnyTerm) continue;
    std::size_t n = set_.TriplesWithTermAt(pos, pattern[pos]).size();
    if (probe_pos == -1 || n < probe_size) {
      probe_pos = pos;
      probe_size = n;
    }
  }

  auto matches = [&](const Triple& t) {
    for (int pos = 0; pos < 3; ++pos) {
      if (pattern[pos] != kAnyTerm && t[pos] != pattern[pos]) return false;
    }
    return true;
  };

  if (probe_pos == -1) {
    for (const Triple& t : set_.triples()) {
      if (!fn(t)) return false;
    }
    return true;
  }
  for (uint32_t idx : set_.TriplesWithTermAt(probe_pos, pattern[probe_pos])) {
    const Triple& t = set_.triples()[idx];
    if (matches(t) && !fn(t)) return false;
  }
  return true;
}

std::vector<TermId> HashTripleSource::AllTerms() const {
  std::vector<TermId> terms = set_.AllTerms();
  std::sort(terms.begin(), terms.end());
  return terms;
}

}  // namespace wdsparql
