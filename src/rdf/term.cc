#include "rdf/term.h"

#include "util/strings.h"

namespace wdsparql {

TermId TermPool::InternIri(std::string_view spelling) {
  auto it = iri_ids_.find(std::string(spelling));
  if (it != iri_ids_.end()) return it->second;
  WDSPARQL_CHECK(iri_spellings_.size() < kVariableBit);
  TermId id = static_cast<TermId>(iri_spellings_.size());
  iri_spellings_.emplace_back(spelling);
  iri_ids_.emplace(iri_spellings_.back(), id);
  return id;
}

TermId TermPool::InternVariable(std::string_view name) {
  auto it = var_ids_.find(std::string(name));
  if (it != var_ids_.end()) return it->second;
  WDSPARQL_CHECK(var_spellings_.size() < kVariableBit);
  TermId id = static_cast<TermId>(var_spellings_.size()) | kVariableBit;
  var_spellings_.emplace_back(name);
  var_ids_.emplace(var_spellings_.back(), id);
  return id;
}

std::optional<TermId> TermPool::FindIri(std::string_view spelling) const {
  auto it = iri_ids_.find(std::string(spelling));
  if (it == iri_ids_.end()) return std::nullopt;
  return it->second;
}

std::optional<TermId> TermPool::FindVariable(std::string_view name) const {
  auto it = var_ids_.find(std::string(name));
  if (it == var_ids_.end()) return std::nullopt;
  return it->second;
}

TermId TermPool::FreshVariable(std::string_view hint) {
  for (;;) {
    std::string name(hint);
    name += '#';
    name += std::to_string(fresh_counter_++);
    if (var_ids_.find(name) == var_ids_.end()) return InternVariable(name);
  }
}

std::string_view TermPool::Spelling(TermId t) const {
  uint32_t index = TermIndex(t);
  if (IsVariable(t)) {
    WDSPARQL_CHECK(index < var_spellings_.size());
    return var_spellings_[index];
  }
  WDSPARQL_CHECK(index < iri_spellings_.size());
  return iri_spellings_[index];
}

std::string TermPool::ToDisplayString(TermId t) const {
  std::string out;
  if (IsVariable(t)) out += '?';
  out += Spelling(t);
  return out;
}

std::string TermPool::ToParsableString(TermId t) const {
  if (IsVariable(t)) return ToDisplayString(t);
  std::string_view spelling = Spelling(t);
  bool bare = !spelling.empty();
  for (char c : spelling) {
    if (!IsIdentChar(c)) {
      bare = false;
      break;
    }
  }
  if (bare) return std::string(spelling);
  std::string out = "<";
  out += spelling;
  out += '>';
  return out;
}

}  // namespace wdsparql
