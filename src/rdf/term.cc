#include "rdf/term.h"

#include "util/strings.h"

namespace wdsparql {

TermId TermPool::InternIri(std::string_view spelling) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = iri_ids_.find(std::string(spelling));
  if (it != iri_ids_.end()) return it->second;
  WDSPARQL_CHECK(iri_spellings_.size() < kVariableBit);
  TermId id = static_cast<TermId>(iri_spellings_.Append(spelling));
  iri_ids_.emplace(std::string(spelling), id);
  return id;
}

TermId TermPool::InternVariableLocked(std::string&& name) {
  WDSPARQL_CHECK(var_spellings_.size() < kVariableBit);
  TermId id = static_cast<TermId>(var_spellings_.Append(name)) | kVariableBit;
  var_ids_.emplace(std::move(name), id);
  return id;
}

TermId TermPool::InternVariable(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = var_ids_.find(std::string(name));
  if (it != var_ids_.end()) return it->second;
  return InternVariableLocked(std::string(name));
}

std::optional<TermId> TermPool::FindIri(std::string_view spelling) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = iri_ids_.find(std::string(spelling));
  if (it == iri_ids_.end()) return std::nullopt;
  return it->second;
}

std::optional<TermId> TermPool::FindVariable(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = var_ids_.find(std::string(name));
  if (it == var_ids_.end()) return std::nullopt;
  return it->second;
}

TermId TermPool::FreshVariable(std::string_view hint) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (;;) {
    std::string name(hint);
    name += '#';
    name += std::to_string(fresh_counter_++);
    if (var_ids_.find(name) != var_ids_.end()) continue;
    return InternVariableLocked(std::move(name));
  }
}

std::string_view TermPool::Spelling(TermId t) const {
  // Lock-free: SpellingTable::At carries its own acquire ordering.
  uint32_t index = TermIndex(t);
  if (IsVariable(t)) return var_spellings_.At(index);
  return iri_spellings_.At(index);
}

std::string TermPool::ToDisplayString(TermId t) const {
  std::string out;
  if (IsVariable(t)) out += '?';
  out += Spelling(t);
  return out;
}

std::string TermPool::ToParsableString(TermId t) const {
  if (IsVariable(t)) return ToDisplayString(t);
  std::string_view spelling = Spelling(t);
  bool bare = !spelling.empty();
  for (char c : spelling) {
    if (!IsIdentChar(c)) {
      bare = false;
      break;
    }
  }
  if (bare) return std::string(spelling);
  std::string out = "<";
  out += spelling;
  out += '>';
  return out;
}

}  // namespace wdsparql
