#include "rdf/ntriples.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace wdsparql {
namespace {

/// Parses one term token starting at `*pos` in `line`; advances `*pos`.
/// Returns false (with `*error` set) on malformed input.
bool ParseTermToken(std::string_view line, std::size_t* pos, std::string* out,
                    std::string* error) {
  while (*pos < line.size() && std::isspace(static_cast<unsigned char>(line[*pos]))) {
    ++*pos;
  }
  if (*pos >= line.size()) {
    *error = "expected a term, found end of line";
    return false;
  }
  if (line[*pos] == '?') {
    *error = "variables are not allowed in RDF graphs";
    return false;
  }
  if (line[*pos] == '<') {
    std::size_t close = line.find('>', *pos);
    if (close == std::string_view::npos) {
      *error = "unterminated '<' IRI";
      return false;
    }
    *out = std::string(line.substr(*pos + 1, close - *pos - 1));
    *pos = close + 1;
    if (out->empty()) {
      *error = "empty IRI";
      return false;
    }
    return true;
  }
  std::size_t start = *pos;
  while (*pos < line.size() && IsIdentChar(line[*pos])) ++*pos;
  if (*pos == start) {
    *error = "unexpected character '" + std::string(1, line[*pos]) + "'";
    return false;
  }
  *out = std::string(line.substr(start, *pos - start));
  return true;
}

}  // namespace

Status ParseNTriplesLine(std::string_view raw_line, int line_number, TermPool* pool,
                         std::optional<Triple>* out) {
  WDSPARQL_CHECK(pool != nullptr && out != nullptr);
  out->reset();
  std::string_view line = StripAsciiWhitespace(raw_line);
  if (line.empty() || line[0] == '#') return Status::OK();
  std::size_t pos = 0;
  std::string terms[3];
  for (int i = 0; i < 3; ++i) {
    std::string error;
    if (!ParseTermToken(line, &pos, &terms[i], &error)) {
      return Status::InvalidArgument("line " + std::to_string(line_number) + ": " +
                                     error);
    }
  }
  std::string_view rest = StripAsciiWhitespace(line.substr(pos));
  if (!rest.empty() && rest != ".") {
    return Status::InvalidArgument("line " + std::to_string(line_number) +
                                   ": trailing content '" + std::string(rest) + "'");
  }
  *out = Triple(pool->InternIri(terms[0]), pool->InternIri(terms[1]),
                pool->InternIri(terms[2]));
  return Status::OK();
}

Status ParseNTriples(std::string_view text, RdfGraph* graph) {
  WDSPARQL_CHECK(graph != nullptr);
  // One triple per line at most, so the line count bounds the triple
  // count; reserving up front avoids rehashing the per-position indexes
  // during bulk load.
  graph->Reserve(static_cast<std::size_t>(
                     std::count(text.begin(), text.end(), '\n')) +
                 1);
  int line_number = 0;
  for (const std::string& raw_line : StrSplit(text, '\n')) {
    ++line_number;
    std::optional<Triple> triple;
    WDSPARQL_RETURN_IF_ERROR(
        ParseNTriplesLine(raw_line, line_number, graph->pool(), &triple));
    if (triple.has_value()) graph->Insert(*triple);
  }
  return Status::OK();
}

Status ReadNTriplesFile(const std::string& path, RdfGraph* graph) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseNTriples(buffer.str(), graph);
}

namespace {

/// Renders an IRI so it re-parses: bare when every character is an
/// identifier character, '<'-quoted otherwise.
std::string RenderIri(const TermPool& pool, TermId iri) {
  std::string_view spelling = pool.Spelling(iri);
  bool bare = !spelling.empty();
  for (char c : spelling) {
    if (!IsIdentChar(c)) {
      bare = false;
      break;
    }
  }
  if (bare) return std::string(spelling);
  std::string out = "<";
  out += spelling;
  out += '>';
  return out;
}

}  // namespace

std::string WriteNTriples(const RdfGraph& graph) {
  std::string out;
  const TermPool& pool = *graph.pool();
  for (const Triple& t : graph.triples()) {
    out += RenderIri(pool, t.subject);
    out += ' ';
    out += RenderIri(pool, t.predicate);
    out += ' ';
    out += RenderIri(pool, t.object);
    out += " .\n";
  }
  return out;
}

}  // namespace wdsparql
