#ifndef WDSPARQL_RDF_SCAN_H_
#define WDSPARQL_RDF_SCAN_H_

#include <functional>
#include <vector>

#include "rdf/triple_set.h"

/// \file
/// The triple-pattern scan interface.
///
/// `TripleSource` abstracts "a set of ground triples that can be scanned
/// by a partially bound pattern". It is the seam between the paper's
/// algorithms (homomorphism search, wdEVAL, enumeration) and the storage
/// backend underneath: the hash-indexed `TripleSet` (paper-faithful
/// oracle) and the dictionary-encoded permutation store of
/// `engine/indexed_store.h` both implement it, so the same search code
/// runs over either and the two can be compared differentially.

namespace wdsparql {

/// Callback invoked once per matching triple. Return false to stop the
/// scan early.
using TripleScanCallback = std::function<bool(const Triple&)>;

/// Wildcard sentinel for `ScanPattern` probes. A probe position holding
/// `kAnyTerm` matches every term; every other id — including variable
/// ids, which are legitimate stored terms in t-graphs — must match
/// exactly. (The sentinel is a variable id whose index no real pool ever
/// reaches, so it cannot collide with an interned term.)
inline constexpr TermId kAnyTerm = 0xFFFFFFFFu;

/// Read-only scan access to a set of ground triples.
class TripleSource {
 public:
  virtual ~TripleSource() = default;

  /// Number of triples.
  virtual std::size_t size() const = 0;

  /// True iff the ground triple `t` is present.
  virtual bool Contains(const Triple& t) const = 0;

  /// Scans the triples matching `pattern`: positions holding `kAnyTerm`
  /// are wildcards, every other position must match exactly (variable
  /// ids included — t-graphs store variables as ordinary terms). Each
  /// wildcard matches independently; callers needing equal images across
  /// positions filter in `fn`. Returns false iff `fn` stopped the scan
  /// early.
  virtual bool ScanPattern(const Triple& pattern, const TripleScanCallback& fn) const = 0;

  /// All distinct terms of the source, ascending by id.
  virtual std::vector<TermId> AllTerms() const = 0;
};

/// `TripleSource` over the hash-indexed `TripleSet` — the paper-faithful
/// naive backend, and the correctness oracle for indexed backends.
///
/// `ScanPattern` probes the per-position hash index of the most selective
/// bound position and filters the remaining bound positions; with no
/// bound position it degrades to a full scan.
class HashTripleSource final : public TripleSource {
 public:
  /// Wraps `set` (must outlive the source).
  explicit HashTripleSource(const TripleSet& set) : set_(set) {}

  std::size_t size() const override { return set_.size(); }
  bool Contains(const Triple& t) const override { return set_.Contains(t); }
  bool ScanPattern(const Triple& pattern, const TripleScanCallback& fn) const override;
  std::vector<TermId> AllTerms() const override;

  /// The wrapped set.
  const TripleSet& triple_set() const { return set_; }

 private:
  const TripleSet& set_;
};

}  // namespace wdsparql

#endif  // WDSPARQL_RDF_SCAN_H_
