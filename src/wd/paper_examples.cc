#include "wd/paper_examples.h"

#include <string>

#include "util/check.h"

namespace wdsparql {
namespace {

TermId Var(TermPool* pool, const std::string& name) {
  return pool->InternVariable(name);
}
TermId Iri(TermPool* pool, const std::string& name) { return pool->InternIri(name); }

PatternPtr TriplePat(TermId s, TermId p, TermId o) {
  return GraphPattern::MakeTriple(Triple(s, p, o));
}

/// Conjunction (left-deep AND) over the triples of `set`.
PatternPtr AndOfTriples(const TripleSet& set) {
  std::vector<PatternPtr> leaves;
  for (const Triple& t : set.triples()) leaves.push_back(GraphPattern::MakeTriple(t));
  return GraphPattern::MakeAndAll(leaves);
}

}  // namespace

TripleSet MakeClique(TermPool* pool, int k, const char* var_prefix,
                     const char* predicate) {
  WDSPARQL_CHECK(k >= 2);
  TermId r = Iri(pool, predicate);
  TripleSet out;
  for (int i = 1; i <= k; ++i) {
    for (int j = i + 1; j <= k; ++j) {
      out.Insert(Triple(Var(pool, var_prefix + std::to_string(i)), r,
                        Var(pool, var_prefix + std::to_string(j))));
    }
  }
  return out;
}

PatternPtr MakeExample1P1(TermPool* pool) {
  TermId x = Var(pool, "x"), y = Var(pool, "y"), z = Var(pool, "z");
  TermId o1 = Var(pool, "o1"), o2 = Var(pool, "o2");
  TermId p = Iri(pool, "p"), q = Iri(pool, "q"), r = Iri(pool, "r");
  return GraphPattern::MakeOpt(
      GraphPattern::MakeOpt(TriplePat(x, p, y), TriplePat(z, q, x)),
      GraphPattern::MakeAnd(TriplePat(y, r, o1), TriplePat(o1, r, o2)));
}

PatternPtr MakeExample1P2(TermPool* pool) {
  TermId x = Var(pool, "x"), y = Var(pool, "y"), z = Var(pool, "z");
  TermId o2 = Var(pool, "o2");
  TermId p = Iri(pool, "p"), q = Iri(pool, "q"), r = Iri(pool, "r");
  return GraphPattern::MakeOpt(
      GraphPattern::MakeOpt(TriplePat(x, p, y), TriplePat(z, q, x)),
      GraphPattern::MakeAnd(TriplePat(y, r, z), TriplePat(z, r, o2)));
}

GeneralizedTGraph MakeExample3S(TermPool* pool, int k) {
  TermId x = Var(pool, "x"), y = Var(pool, "y"), z = Var(pool, "z");
  TermId p = Iri(pool, "p"), q = Iri(pool, "q"), r = Iri(pool, "r");
  TripleSet s = MakeClique(pool, k);
  s.Insert(Triple(x, p, y));
  s.Insert(Triple(z, q, x));
  s.Insert(Triple(y, r, Var(pool, "o1")));
  return GeneralizedTGraph(std::move(s), {x, y, z});
}

GeneralizedTGraph MakeExample3SPrime(TermPool* pool, int k) {
  GeneralizedTGraph s = MakeExample3S(pool, k);
  TermId y = Var(pool, "y"), o = Var(pool, "o"), r = Iri(pool, "r");
  TripleSet extended = s.S;
  extended.Insert(Triple(y, r, o));
  extended.Insert(Triple(o, r, o));
  return GeneralizedTGraph(std::move(extended), s.X);
}

PatternForest MakeFkForest(TermPool* pool, int k) {
  WDSPARQL_CHECK(k >= 2);
  TermId x = Var(pool, "x"), y = Var(pool, "y"), z = Var(pool, "z"),
         w = Var(pool, "w"), o = Var(pool, "o"), o1 = Var(pool, "o1");
  TermId p = Iri(pool, "p"), q = Iri(pool, "q"), r = Iri(pool, "r");

  PatternForest forest;

  // T1: root r1 = {(?x,p,?y)}; children n11 = {(?z,q,?x)} and
  // n12 = {(?y,r,?o1)} u K_k.
  {
    TripleSet root;
    root.Insert(Triple(x, p, y));
    PatternTree t1(std::move(root));
    TripleSet n11;
    n11.Insert(Triple(z, q, x));
    t1.AddNode(t1.root(), std::move(n11));
    TripleSet n12 = MakeClique(pool, k);
    n12.Insert(Triple(y, r, o1));
    t1.AddNode(t1.root(), std::move(n12));
    forest.trees.push_back(std::move(t1));
  }

  // T2: root r2 = {(?x,p,?y)}; child n2 = {(?z,q,?x), (?w,q,?z)}.
  {
    TripleSet root;
    root.Insert(Triple(x, p, y));
    PatternTree t2(std::move(root));
    TripleSet n2;
    n2.Insert(Triple(z, q, x));
    n2.Insert(Triple(w, q, z));
    t2.AddNode(t2.root(), std::move(n2));
    forest.trees.push_back(std::move(t2));
  }

  // T3: root r3 = {(?x,p,?y), (?z,q,?x)}; child n3 = {(?y,r,?o), (?o,r,?o)}.
  {
    TripleSet root;
    root.Insert(Triple(x, p, y));
    root.Insert(Triple(z, q, x));
    PatternTree t3(std::move(root));
    TripleSet n3;
    n3.Insert(Triple(y, r, o));
    n3.Insert(Triple(o, r, o));
    t3.AddNode(t3.root(), std::move(n3));
    forest.trees.push_back(std::move(t3));
  }
  return forest;
}

PatternPtr MakeFkPattern(TermPool* pool, int k) {
  WDSPARQL_CHECK(k >= 2);
  TermId x = Var(pool, "x"), y = Var(pool, "y"), z = Var(pool, "z"),
         w = Var(pool, "w"), o = Var(pool, "o"), o1 = Var(pool, "o1");
  TermId p = Iri(pool, "p"), q = Iri(pool, "q"), r = Iri(pool, "r");

  // P1 = ((?x p ?y) OPT (?z q ?x)) OPT ((?y r ?o1) AND K_k-conjunction).
  TripleSet clique = MakeClique(pool, k);
  PatternPtr clique_and = GraphPattern::MakeAnd(TriplePat(y, r, o1), AndOfTriples(clique));
  PatternPtr p1 = GraphPattern::MakeOpt(
      GraphPattern::MakeOpt(TriplePat(x, p, y), TriplePat(z, q, x)), clique_and);

  // P2 = (?x p ?y) OPT ((?z q ?x) AND (?w q ?z)).
  PatternPtr p2 = GraphPattern::MakeOpt(
      TriplePat(x, p, y), GraphPattern::MakeAnd(TriplePat(z, q, x), TriplePat(w, q, z)));

  // P3 = ((?x p ?y) AND (?z q ?x)) OPT ((?y r ?o) AND (?o r ?o)).
  PatternPtr p3 = GraphPattern::MakeOpt(
      GraphPattern::MakeAnd(TriplePat(x, p, y), TriplePat(z, q, x)),
      GraphPattern::MakeAnd(TriplePat(y, r, o), TriplePat(o, r, o)));

  return GraphPattern::MakeUnionAll({p1, p2, p3});
}

PatternTree MakeBranchFamilyTree(TermPool* pool, int k) {
  WDSPARQL_CHECK(k >= 2);
  TermId y = Var(pool, "y"), o1 = Var(pool, "o1");
  TermId r = Iri(pool, "r");
  TripleSet root;
  root.Insert(Triple(y, r, y));
  PatternTree tree(std::move(root));
  TripleSet child = MakeClique(pool, k);
  child.Insert(Triple(y, r, o1));
  tree.AddNode(tree.root(), std::move(child));
  return tree;
}

PatternPtr MakeBranchFamilyPattern(TermPool* pool, int k) {
  WDSPARQL_CHECK(k >= 2);
  TermId y = Var(pool, "y"), o1 = Var(pool, "o1");
  TermId r = Iri(pool, "r");
  TripleSet clique = MakeClique(pool, k);
  return GraphPattern::MakeOpt(
      TriplePat(y, r, y),
      GraphPattern::MakeAnd(TriplePat(y, r, o1), AndOfTriples(clique)));
}

PatternTree MakeCliqueBranchTree(TermPool* pool, int k) {
  WDSPARQL_CHECK(k >= 2);
  TermId x = Var(pool, "x"), o1 = Var(pool, "o1");
  TermId p = Iri(pool, "p"), q = Iri(pool, "q");
  TripleSet root;
  root.Insert(Triple(x, p, x));
  PatternTree tree(std::move(root));
  TripleSet child = MakeClique(pool, k);
  child.Insert(Triple(x, q, o1));
  tree.AddNode(tree.root(), std::move(child));
  return tree;
}

PatternPtr MakeCliqueBranchPattern(TermPool* pool, int k) {
  WDSPARQL_CHECK(k >= 2);
  TermId x = Var(pool, "x"), o1 = Var(pool, "o1");
  TermId p = Iri(pool, "p"), q = Iri(pool, "q");
  TripleSet clique = MakeClique(pool, k);
  return GraphPattern::MakeOpt(
      TriplePat(x, p, x),
      GraphPattern::MakeAnd(TriplePat(x, q, o1), AndOfTriples(clique)));
}

GeneralizedTGraph MakeRigidGrid(TermPool* pool, int rows, int cols) {
  WDSPARQL_CHECK(rows >= 1 && cols >= 1);
  TermId right = Iri(pool, "right"), down = Iri(pool, "down"), at = Iri(pool, "at");
  TripleSet s;
  auto var_at = [&](int i, int j) {
    return Var(pool, "g" + std::to_string(i) + "_" + std::to_string(j));
  };
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      s.Insert(Triple(var_at(i, j), at,
                      Iri(pool, "cell" + std::to_string(i) + "_" + std::to_string(j))));
      if (j + 1 < cols) s.Insert(Triple(var_at(i, j), right, var_at(i, j + 1)));
      if (i + 1 < rows) s.Insert(Triple(var_at(i, j), down, var_at(i + 1, j)));
    }
  }
  return GeneralizedTGraph(std::move(s), {});
}

}  // namespace wdsparql
