#ifndef WDSPARQL_WD_HARDNESS_H_
#define WDSPARQL_WD_HARDNESS_H_

#include <vector>

#include <optional>

#include "ptree/forest.h"
#include "ptree/tgraph.h"
#include "rdf/graph.h"
#include "sparql/mapping.h"
#include "util/status.h"
#include "util/undirected_graph.h"
#include "wd/domination.h"

/// \file
/// The Theorem 2 hardness machinery (Section 4 and the appendix).
///
/// Lemma 2 adapts Grohe's JACM'07 construction to generalised t-graphs
/// with distinguished elements: from (S, X) whose core has a (k x K)-grid
/// minor (K = k-choose-2) and an undirected graph H, it builds (B, X)
/// such that H has a k-clique iff (S, X) -> (B, X), while (B, X) -> (S, X)
/// always holds. The fpt-reduction from p-CLIQUE then freezes B into an
/// RDF graph G and asks whether mu ∉ JPKG.
///
/// Substitution note (DESIGN.md): the paper invokes the Excluded Grid
/// Theorem to *guarantee* a grid minor once ctw >= w(K) — a
/// non-constructive, astronomically large bound. We run the identical
/// gadget on families whose cores have *explicit* grid minors (cliques
/// K_m with m = k*K give singleton branch sets), exercising the same
/// code path end to end.

namespace wdsparql {

/// A minor map gamma from the (rows x cols)-grid onto a set of variables
/// of a core's Gaifman graph: branch_sets[i*cols + p] is gamma(i, p).
struct GridMinorMap {
  int rows = 0;
  int cols = 0;
  std::vector<std::vector<TermId>> branch_sets;

  /// gamma(i, p).
  const std::vector<TermId>& At(int i, int p) const {
    return branch_sets[static_cast<std::size_t>(i) * cols + p];
  }
};

/// The canonical minor map from the (rows x cols)-grid onto a clique on
/// `clique_vars`: contiguous row-major blocks (singletons when
/// |clique_vars| == rows*cols). Requires |clique_vars| <= rows*cols.
GridMinorMap MinorMapOntoClique(int rows, int cols,
                                const std::vector<TermId>& clique_vars);

/// Verifies that `gamma` is a minor map from the grid onto an induced,
/// connected subgraph of the Gaifman graph of (C, X): branch sets
/// non-empty, disjoint, connected, inside one connected component which
/// they cover, and every grid edge realised by a Gaifman edge.
Status ValidateMinorMap(const GeneralizedTGraph& core, const GridMinorMap& gamma);

/// Limits for the gadget construction.
struct GadgetOptions {
  uint64_t max_triples = 5'000'000;  ///< Abort if B grows beyond this.
  bool validate_minor_map = true;
};

/// Lemma 2: builds (B, X) from (S, X), the clique size `k`, the host
/// graph H and a minor map of the (k x C(k,2))-grid onto a component of
/// the core's Gaifman graph. Postconditions (tested):
///  1. every triple of S over X u I is in B;
///  2. (B, X) -> (S, X);
///  3. H has a k-clique iff (S, X) -> (B, X).
Result<GeneralizedTGraph> BuildCliqueGadget(const GeneralizedTGraph& S,
                                            const UndirectedGraph& H, int k,
                                            const GridMinorMap& gamma, TermPool* pool,
                                            const GadgetOptions& options = {});

/// Freezes the variables of (B, X) into IRIs: G = Psi(B) and
/// mu = Psi restricted to X. `freeze_prefix` namespaces the new IRIs.
void FreezeTGraph(const GeneralizedTGraph& B, TermPool* pool, RdfGraph* out_graph,
                  Mapping* out_mu, const char* freeze_prefix = "frozen:");

/// A complete Theorem 2 reduction instance: deciding whether H contains a
/// k-clique reduces to mu ∉ JforestK_graph.
struct CliqueReductionInstance {
  PatternForest forest;        ///< The clique-branch wdPT family member.
  RdfGraph graph;              ///< G = Psi(B).
  Mapping mu;                  ///< The frozen identity on vars(T).
  int query_clique_size = 0;   ///< m = k * C(k,2): width parameter used.
};

/// Builds the reduction for (H, k) using the clique-branch family
/// (MakeCliqueBranchTree with m = k*C(k,2), whose dw = m-1 certifies the
/// unbounded-width regime). Correctness: H has a k-clique iff
/// mu ∉ Jforest K_graph (tested against brute force).
Result<CliqueReductionInstance> BuildCliqueReduction(const UndirectedGraph& H, int k,
                                                     TermPool* pool,
                                                     const GadgetOptions& options = {});

/// Brute-force k-clique test (reference oracle for the reduction tests).
bool HasCliqueBruteForce(const UndirectedGraph& H, int k);

/// A Lemma 3 witness for a forest of domination width >= k: a subtree T
/// and an element (S, vars(T)) of GtG(T) with
///  1. ctw(S, vars(T)) >= k, and
///  2. homomorphic minimality: every (S', vars(T)) in GtG(T) with
///     (S', vars(T)) -> (S, vars(T)) also satisfies
///     (S, vars(T)) -> (S', vars(T)).
struct Lemma3Witness {
  int tree_index = -1;
  Subtree subtree;
  GtGElement element;
};

/// Implements the Lemma 3 construction: scans the subtrees of `forest`
/// for one whose GtG is not (k-1)-dominated, restricts to the
/// non-dominated wide elements, and picks a member of a source strongly
/// connected component of the homomorphism digraph. Returns nullopt iff
/// dw(forest) <= k-1 (within the given budgets).
Result<std::optional<Lemma3Witness>> FindLemma3Witness(
    const PatternForest& forest, int k, TermPool* pool,
    const DominationOptions& options = {});

}  // namespace wdsparql

#endif  // WDSPARQL_WD_HARDNESS_H_
