#ifndef WDSPARQL_WD_PAPER_EXAMPLES_H_
#define WDSPARQL_WD_PAPER_EXAMPLES_H_

#include "ptree/forest.h"
#include "ptree/tgraph.h"
#include "sparql/ast.h"

/// \file
/// The worked constructions of the paper (Figures 1-3, Examples 1-5,
/// Section 3.2), as programmatic query-family generators.
///
/// These are the paper's "figures": every bench in EXPERIMENTS.md draws
/// its query workloads from here, and the unit tests assert the exact
/// width values the paper derives for them (dw(F_k) = 1, bw(T'_k) = 1,
/// ctw(S, X) = k-1, ctw(S', X) = 1, ...).

namespace wdsparql {

/// K_k(?o1, ..., ?ok) = {(?oi, r, ?oj) : i < j} (Example 3). Variables are
/// named "<var_prefix>1".."<var_prefix>k"; the predicate is `predicate`.
TripleSet MakeClique(TermPool* pool, int k, const char* var_prefix = "o",
                     const char* predicate = "r");

/// P1 of Example 1 (well designed):
/// ((?x,p,?y) OPT (?z,q,?x)) OPT ((?y,r,?o1) AND (?o1,r,?o2)).
PatternPtr MakeExample1P1(TermPool* pool);

/// P2 of Example 1 (NOT well designed): as P1 but with ?z reused inside
/// the second OPT.
PatternPtr MakeExample1P2(TermPool* pool);

/// (S, {?x,?y,?z}) of Example 3 / Figure 1: a core with ctw = k-1.
GeneralizedTGraph MakeExample3S(TermPool* pool, int k);

/// (S', {?x,?y,?z}) of Example 3 / Figure 1: tw = k-1 but ctw = 1 (the
/// clique folds into the self-loop ?o).
GeneralizedTGraph MakeExample3SPrime(TermPool* pool, int k);

/// The forest F_k = {T1, T2, T3} of Example 4 / Figure 2, built directly
/// as pattern trees. dw(F_k) = 1 for every k >= 2 (Example 5), yet the
/// family is not locally tractable (node n12 has local width k-1).
PatternForest MakeFkForest(TermPool* pool, int k);

/// A well-designed graph pattern whose wdpf equals MakeFkForest
/// (a UNION of three UNION-free patterns).
PatternPtr MakeFkPattern(TermPool* pool, int k);

/// The UNION-free family T'_k of Section 3.2: root {(?y,r,?y)} with one
/// child {(?y,r,?o1)} u K_k. bw(T'_k) = 1 (so dw = 1), but local width
/// is k-1: bounded branch treewidth strictly generalises local
/// tractability even without UNION.
PatternTree MakeBranchFamilyTree(TermPool* pool, int k);

/// The pattern form of MakeBranchFamilyTree:
/// (?y r ?y) OPT ((?y r ?o1) AND K_k-conjunction).
PatternPtr MakeBranchFamilyPattern(TermPool* pool, int k);

/// The *intractable* clique-branch family used by the hardness
/// experiments: root {(?x,p,?x)} with child {(?x,q,?o1)} u K_k. Here the
/// clique cannot fold (no r-self-loop exists), so bw = dw = k-1:
/// unbounded width, the Theorem 2 regime.
PatternTree MakeCliqueBranchTree(TermPool* pool, int k);

/// The pattern form of MakeCliqueBranchTree.
PatternPtr MakeCliqueBranchPattern(TermPool* pool, int k);

/// A "rigid" grid t-graph over variables g_{i,j} (row-major), with
/// distinct predicates for right/down edges plus a per-variable anchor
/// triple (g_{i,j}, at, cell_{i,j}) making the t-graph a core; its
/// Gaifman graph is exactly the (rows x cols)-grid. X is empty.
GeneralizedTGraph MakeRigidGrid(TermPool* pool, int rows, int cols);

}  // namespace wdsparql

#endif  // WDSPARQL_WD_PAPER_EXAMPLES_H_
