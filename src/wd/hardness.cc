#include "wd/hardness.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "hom/core.h"
#include "util/combinatorics.h"
#include "wd/paper_examples.h"

namespace wdsparql {
namespace {

/// rho: bijection between {0..K-1} and unordered pairs {i < j} of
/// {0..k-1}, in lexicographic order.
std::vector<std::pair<int, int>> PairBijection(int k) {
  std::vector<std::pair<int, int>> rho;
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) rho.emplace_back(i, j);
  }
  return rho;
}

}  // namespace

GridMinorMap MinorMapOntoClique(int rows, int cols,
                                const std::vector<TermId>& clique_vars) {
  // A grid with rows*cols vertices is a minor of K_m iff m >= rows*cols:
  // branch sets must be non-empty and disjoint. Any partition of the
  // clique vertices into rows*cols non-empty blocks works: every block is
  // connected in a clique and every pair of blocks is adjacent, so all
  // grid edges are realised and the map is onto.
  const int total = rows * cols;
  const int m = static_cast<int>(clique_vars.size());
  WDSPARQL_CHECK(m >= total);
  GridMinorMap gamma;
  gamma.rows = rows;
  gamma.cols = cols;
  gamma.branch_sets.resize(static_cast<std::size_t>(total));
  for (int cell = 0; cell < total; ++cell) {
    long lo = (static_cast<long>(cell) * m) / total;
    long hi = (static_cast<long>(cell + 1) * m) / total;
    for (long v = lo; v < hi; ++v) {
      gamma.branch_sets[cell].push_back(clique_vars[v]);
    }
    WDSPARQL_CHECK(!gamma.branch_sets[cell].empty());
  }
  return gamma;
}

Status ValidateMinorMap(const GeneralizedTGraph& core, const GridMinorMap& gamma) {
  std::vector<TermId> vars;
  UndirectedGraph gaifman = GaifmanGraph(core, &vars);
  std::unordered_map<TermId, int> index;
  for (std::size_t i = 0; i < vars.size(); ++i) index[vars[i]] = static_cast<int>(i);

  // Branch sets: non-empty, disjoint, known variables.
  std::unordered_set<TermId> used;
  for (const auto& branch : gamma.branch_sets) {
    if (branch.empty()) return Status::InvalidArgument("empty branch set");
    for (TermId var : branch) {
      if (index.find(var) == index.end()) {
        return Status::InvalidArgument("branch set variable not in Gaifman graph");
      }
      if (!used.insert(var).second) {
        return Status::InvalidArgument("branch sets are not disjoint");
      }
    }
  }

  // Connectivity of each branch set.
  for (const auto& branch : gamma.branch_sets) {
    std::unordered_set<TermId> in_branch(branch.begin(), branch.end());
    std::vector<TermId> stack = {branch[0]};
    std::unordered_set<TermId> seen = {branch[0]};
    while (!stack.empty()) {
      TermId u = stack.back();
      stack.pop_back();
      for (int nb : gaifman.Neighbors(index.at(u))) {
        TermId w = vars[nb];
        if (in_branch.count(w) > 0 && seen.insert(w).second) stack.push_back(w);
      }
    }
    if (seen.size() != branch.size()) {
      return Status::InvalidArgument("branch set is not connected");
    }
  }

  // Grid edges must be realised.
  auto connected = [&](const std::vector<TermId>& a, const std::vector<TermId>& b) {
    for (TermId u : a) {
      for (TermId w : b) {
        if (gaifman.HasEdge(index.at(u), index.at(w))) return true;
      }
    }
    return false;
  };
  for (int i = 0; i < gamma.rows; ++i) {
    for (int p = 0; p < gamma.cols; ++p) {
      if (p + 1 < gamma.cols && !connected(gamma.At(i, p), gamma.At(i, p + 1))) {
        return Status::InvalidArgument("horizontal grid edge not realised");
      }
      if (i + 1 < gamma.rows && !connected(gamma.At(i, p), gamma.At(i + 1, p))) {
        return Status::InvalidArgument("vertical grid edge not realised");
      }
    }
  }

  // Onto one connected component: the used variables must be exactly one
  // component of the Gaifman graph.
  std::vector<std::vector<int>> components = gaifman.ConnectedComponents();
  for (const std::vector<int>& component : components) {
    bool touches = false;
    for (int v : component) {
      if (used.count(vars[v]) > 0) {
        touches = true;
        break;
      }
    }
    if (!touches) continue;
    for (int v : component) {
      if (used.count(vars[v]) == 0) {
        return Status::InvalidArgument("minor map is not onto its component");
      }
    }
    if (used.size() != component.size()) {
      return Status::InvalidArgument("minor map spans several components");
    }
  }
  return Status::OK();
}

Result<GeneralizedTGraph> BuildCliqueGadget(const GeneralizedTGraph& S,
                                            const UndirectedGraph& H, int k,
                                            const GridMinorMap& gamma, TermPool* pool,
                                            const GadgetOptions& options) {
  WDSPARQL_CHECK(pool != nullptr);
  WDSPARQL_CHECK(k >= 2);
  const int K = k * (k - 1) / 2;
  if (gamma.rows != k || gamma.cols != K) {
    return Result<GeneralizedTGraph>(Status::InvalidArgument(
        "minor map must come from the (k x k-choose-2)-grid"));
  }

  GeneralizedTGraph core = CoreOf(S);
  if (options.validate_minor_map) {
    Status valid = ValidateMinorMap(core, gamma);
    if (!valid.ok()) return Result<GeneralizedTGraph>(valid);
  }

  std::vector<std::pair<int, int>> rho = PairBijection(k);

  // Position (i, p) of each branch-set variable.
  std::unordered_map<TermId, std::pair<int, int>> grid_position;
  for (int i = 0; i < k; ++i) {
    for (int p = 0; p < K; ++p) {
      for (TermId a : gamma.At(i, p)) grid_position[a] = {i, p};
    }
  }

  // Preimage variables ?(v, e, i, p, ?a) with v in e  <=>  i in rho(p).
  struct PreimageVar {
    TermId id;
    int v;
    int e;
  };
  const auto& edges = H.Edges();
  std::unordered_map<TermId, std::vector<PreimageVar>> preimages;
  for (const auto& [a, pos] : grid_position) {
    const auto [i, p] = pos;
    bool i_in_p = (rho[p].first == i || rho[p].second == i);
    std::vector<PreimageVar> list;
    for (int v = 0; v < H.NumVertices(); ++v) {
      for (int e = 0; e < static_cast<int>(edges.size()); ++e) {
        bool v_in_e = (edges[e].first == v || edges[e].second == v);
        if (v_in_e != i_in_p) continue;
        std::string name = "w|v" + std::to_string(v) + "|e" + std::to_string(e) +
                           "|i" + std::to_string(i) + "|p" + std::to_string(p) + "|" +
                           std::string(pool->Spelling(a));
        list.push_back(PreimageVar{pool->InternVariable(name), v, e});
      }
    }
    preimages[a] = std::move(list);
  }

  // Expand each core triple over the preimage candidates, enforcing the
  // consistency conditions (same i => same v, same p => same e).
  TripleSet B;
  for (const Triple& c : core.S.triples()) {
    // Collect the (position, variable) pairs that need expansion.
    std::vector<int> expand_positions;
    for (int pos = 0; pos < 3; ++pos) {
      TermId term = c[pos];
      if (IsVariable(term) && grid_position.count(term) > 0) {
        expand_positions.push_back(pos);
      }
    }
    if (expand_positions.empty()) {
      B.Insert(c);  // Tr0 and the X u I triples, verbatim.
      continue;
    }
    // If any expansion position has no preimage variables (e.g. H has no
    // edges), the triple contributes nothing to Tr'.
    bool any_empty = false;
    for (int pos : expand_positions) {
      if (preimages.at(c[pos]).empty()) {
        any_empty = true;
        break;
      }
    }
    if (any_empty) continue;
    // Cartesian product over candidates (at most 3 positions).
    std::vector<std::size_t> cursor(expand_positions.size(), 0);
    for (;;) {
      Triple t = c;
      bool consistent = true;
      // Selected candidates; check pairwise consistency.
      std::vector<std::pair<std::pair<int, int>, PreimageVar>> chosen;
      for (std::size_t slot = 0; slot < expand_positions.size(); ++slot) {
        TermId a = c[expand_positions[slot]];
        const PreimageVar& w = preimages.at(a)[cursor[slot]];
        chosen.push_back({grid_position.at(a), w});
        t.Set(expand_positions[slot], w.id);
      }
      for (std::size_t s1 = 0; s1 < chosen.size() && consistent; ++s1) {
        for (std::size_t s2 = s1 + 1; s2 < chosen.size() && consistent; ++s2) {
          const auto& [pos1, w1] = chosen[s1];
          const auto& [pos2, w2] = chosen[s2];
          if (pos1.first == pos2.first && w1.v != w2.v) consistent = false;
          if (pos1.second == pos2.second && w1.e != w2.e) consistent = false;
        }
      }
      if (consistent) {
        B.Insert(t);
        if (B.size() > options.max_triples) {
          return Result<GeneralizedTGraph>(Status::ResourceExhausted(
              "Lemma 2 gadget exceeded the configured triple budget"));
        }
      }
      // Advance the product cursor.
      std::size_t slot = 0;
      while (slot < cursor.size()) {
        TermId a = c[expand_positions[slot]];
        if (++cursor[slot] < preimages.at(a).size()) break;
        cursor[slot] = 0;
        ++slot;
      }
      if (slot == cursor.size()) break;
    }
  }
  return GeneralizedTGraph(std::move(B), core.X);
}

void FreezeTGraph(const GeneralizedTGraph& B, TermPool* pool, RdfGraph* out_graph,
                  Mapping* out_mu, const char* freeze_prefix) {
  WDSPARQL_CHECK(out_graph != nullptr && out_mu != nullptr);
  VarAssignment freeze;
  for (TermId var : B.S.Variables()) {
    freeze[var] =
        pool->InternIri(std::string(freeze_prefix) + std::string(pool->Spelling(var)));
  }
  for (const Triple& t : B.S.triples()) {
    out_graph->Insert(ApplyAssignment(freeze, t));
  }
  *out_mu = Mapping();
  for (TermId x : B.X) {
    WDSPARQL_CHECK(out_mu->Bind(x, freeze.at(x)));
  }
}

Result<CliqueReductionInstance> BuildCliqueReduction(const UndirectedGraph& H, int k,
                                                     TermPool* pool,
                                                     const GadgetOptions& options) {
  WDSPARQL_CHECK(pool != nullptr);
  const int K = k * (k - 1) / 2;
  const int m = k * K;

  // The family member: the clique-branch tree with an m-clique child, and
  // its single GtG element (S, {?x}) = pat(root) u pat(child).
  PatternTree tree = MakeCliqueBranchTree(pool, m);
  TripleSet s = tree.pattern(0);
  s.InsertAll(tree.pattern(1));
  GeneralizedTGraph S(std::move(s), {pool->InternVariable("x")});

  // Explicit minor map: (k x K)-grid onto the m-clique, singleton branch
  // sets (m == k*K grid cells).
  std::vector<TermId> clique_vars;
  for (int i = 1; i <= m; ++i) {
    clique_vars.push_back(pool->InternVariable("o" + std::to_string(i)));
  }
  GridMinorMap gamma = MinorMapOntoClique(k, K, clique_vars);

  Result<GeneralizedTGraph> B = BuildCliqueGadget(S, H, k, gamma, pool, options);
  if (!B.ok()) return Result<CliqueReductionInstance>(B.status());

  CliqueReductionInstance instance{PatternForest{}, RdfGraph(pool), Mapping{}, m};
  instance.forest.trees.push_back(std::move(tree));
  FreezeTGraph(B.value(), pool, &instance.graph, &instance.mu);
  return instance;
}

Result<std::optional<Lemma3Witness>> FindLemma3Witness(
    const PatternForest& forest, int k, TermPool* pool,
    const DominationOptions& options) {
  WDSPARQL_CHECK(pool != nullptr && k >= 1);
  std::optional<Lemma3Witness> witness;
  Status failure = Status::OK();
  uint64_t subtree_budget = options.max_subtrees;

  for (std::size_t tree_index = 0;
       tree_index < forest.trees.size() && !witness.has_value() && failure.ok();
       ++tree_index) {
    EnumerateSubtrees(forest.trees[tree_index], [&](const Subtree& subtree) {
      if (witness.has_value() || !failure.ok()) return;
      if (subtree_budget == 0) {
        failure = Status::ResourceExhausted("Lemma 3 subtree budget exceeded");
        return;
      }
      --subtree_budget;

      Result<std::vector<GtGElement>> gtg_result =
          ComputeGtG(forest, subtree, pool, options);
      if (!gtg_result.ok()) {
        failure = gtg_result.status();
        return;
      }
      const std::vector<GtGElement>& gtg = gtg_result.value();

      // The candidate set G: elements of width >= k that no width <= k-1
      // element dominates.
      std::vector<int> candidates;
      for (std::size_t i = 0; i < gtg.size(); ++i) {
        if (gtg[i].core_treewidth < k) continue;
        bool dominated = false;
        for (std::size_t j = 0; j < gtg.size() && !dominated; ++j) {
          if (gtg[j].core_treewidth <= k - 1 && HomTo(gtg[j].graph, gtg[i].graph)) {
            dominated = true;
          }
        }
        if (!dominated) candidates.push_back(static_cast<int>(i));
      }
      if (candidates.empty()) return;  // GtG(T) is (k-1)-dominated.

      // Homomorphism digraph over the candidates; reachability closure.
      int n = static_cast<int>(candidates.size());
      std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
      for (int a = 0; a < n; ++a) {
        for (int b = 0; b < n; ++b) {
          reach[a][b] =
              a == b || HomTo(gtg[candidates[a]].graph, gtg[candidates[b]].graph);
        }
      }
      for (int m = 0; m < n; ++m) {
        for (int a = 0; a < n; ++a) {
          for (int b = 0; b < n; ++b) {
            if (reach[a][m] && reach[m][b]) reach[a][b] = true;
          }
        }
      }
      // A source SCC: a vertex s such that every vertex reaching s is
      // reached back by s (no strictly-above component).
      int source = -1;
      for (int s = 0; s < n && source < 0; ++s) {
        bool is_source = true;
        for (int a = 0; a < n && is_source; ++a) {
          if (reach[a][s] && !reach[s][a]) is_source = false;
        }
        if (is_source) source = s;
      }
      WDSPARQL_CHECK(source >= 0);  // Condensations always have a source.

      Lemma3Witness found;
      found.tree_index = static_cast<int>(tree_index);
      found.subtree = subtree;
      found.element = gtg[candidates[source]];
      witness = std::move(found);
    });
  }
  if (!failure.ok()) return Result<std::optional<Lemma3Witness>>(failure);
  return witness;
}

bool HasCliqueBruteForce(const UndirectedGraph& H, int k) {
  if (k <= 0) return true;
  if (k > H.NumVertices()) return false;
  bool found = false;
  ForEachCombination(H.NumVertices(), k, [&](const std::vector<int>& combo) {
    if (!found && H.IsClique(combo)) found = true;
  });
  return found;
}

}  // namespace wdsparql
