#include "wd/domination.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "hom/homomorphism.h"
#include "ptree/forest.h"

namespace wdsparql {

std::vector<SupportEntry> ComputeSupport(const PatternForest& forest,
                                         const Subtree& subtree) {
  std::vector<TermId> vars = SubtreeVariables(subtree);
  std::vector<SupportEntry> support;
  for (std::size_t i = 0; i < forest.trees.size(); ++i) {
    std::optional<Subtree> witness = FindWitnessSubtree(forest.trees[i], vars);
    if (witness.has_value()) {
      support.push_back(SupportEntry{static_cast<int>(i), std::move(*witness)});
    }
  }
  return support;
}

GeneralizedTGraph BuildSDelta(const PatternForest& forest, const Subtree& subtree,
                              const std::vector<SupportEntry>& support,
                              const ChildrenAssignment& delta, TermPool* pool) {
  WDSPARQL_CHECK(pool != nullptr);
  std::vector<TermId> tree_vars = SubtreeVariables(subtree);

  TripleSet s_delta = SubtreePattern(subtree);
  for (const auto& [tree_index, child] : delta) {
    auto entry = std::find_if(support.begin(), support.end(),
                              [tree_index = tree_index](const SupportEntry& e) {
                                return e.tree_index == tree_index;
                              });
    WDSPARQL_CHECK(entry != support.end());
    const PatternTree& tree = forest.trees[tree_index];
    // rho_Delta(i): rename every variable of the chosen child outside
    // vars(T) to a fresh variable (fresh per (i, variable) pair, so
    // different i never share renamed variables).
    VarAssignment rename;
    for (TermId var : tree.variables(child)) {
      if (!std::binary_search(tree_vars.begin(), tree_vars.end(), var)) {
        rename[var] = pool->FreshVariable(pool->Spelling(var));
      }
    }
    for (const Triple& t : tree.pattern(child).triples()) {
      s_delta.Insert(ApplyAssignment(rename, t));
    }
  }
  return GeneralizedTGraph(std::move(s_delta), tree_vars);
}

bool IsValidAssignment(const PatternForest& forest, const Subtree& subtree,
                       const std::vector<SupportEntry>& support,
                       const ChildrenAssignment& delta,
                       const GeneralizedTGraph& s_delta) {
  (void)forest;
  (void)subtree;
  for (const SupportEntry& entry : support) {
    if (delta.count(entry.tree_index) > 0) continue;
    GeneralizedTGraph witness_graph(SubtreePattern(entry.witness), s_delta.X);
    // vars(T^sp(j)) == vars(T) == X, so the homomorphism fixes every
    // variable; still, route through the generic check for clarity.
    if (HomTo(witness_graph, s_delta)) return false;
  }
  return true;
}

namespace {

/// Enumerates every children assignment (including the empty one, which
/// the caller skips) over the supporting trees; returns false if the
/// budget is exceeded.
bool EnumerateAssignments(const PatternForest& forest,
                          const std::vector<SupportEntry>& support,
                          uint64_t max_assignments,
                          const std::function<void(const ChildrenAssignment&)>& fn) {
  // Choice list per supporting tree: "absent" plus each child of the
  // witness subtree.
  std::vector<std::pair<int, std::vector<NodeId>>> choices;
  for (const SupportEntry& entry : support) {
    std::vector<NodeId> children = SubtreeChildren(entry.witness);
    if (!children.empty()) choices.emplace_back(entry.tree_index, std::move(children));
  }
  (void)forest;

  uint64_t generated = 0;
  ChildrenAssignment current;
  std::function<bool(std::size_t)> rec = [&](std::size_t pos) {
    if (pos == choices.size()) {
      if (++generated > max_assignments) return false;
      fn(current);
      return true;
    }
    // Option 1: tree not in dom(Delta).
    if (!rec(pos + 1)) return false;
    // Option 2: pick each child.
    for (NodeId child : choices[pos].second) {
      current[choices[pos].first] = child;
      bool keep_going = rec(pos + 1);
      current.erase(choices[pos].first);
      if (!keep_going) return false;
    }
    return true;
  };
  return rec(0);
}

}  // namespace

Result<std::vector<GtGElement>> ComputeGtG(const PatternForest& forest,
                                           const Subtree& subtree, TermPool* pool,
                                           const DominationOptions& options) {
  std::vector<SupportEntry> support = ComputeSupport(forest, subtree);
  std::vector<GtGElement> gtg;
  bool within_budget = EnumerateAssignments(
      forest, support, options.max_assignments_per_subtree,
      [&](const ChildrenAssignment& delta) {
        if (delta.empty()) return;  // dom(Delta) must be non-empty.
        GeneralizedTGraph s_delta = BuildSDelta(forest, subtree, support, delta, pool);
        if (!IsValidAssignment(forest, subtree, support, delta, s_delta)) return;
        GtGElement element;
        element.delta = delta;
        element.core_treewidth = CoreTreewidthOf(s_delta).upper;
        element.graph = std::move(s_delta);
        gtg.push_back(std::move(element));
      });
  if (!within_budget) {
    return Result<std::vector<GtGElement>>(Status::ResourceExhausted(
        "children-assignment enumeration exceeded the configured budget"));
  }
  return gtg;
}

int MinDominationWidth(const std::vector<GtGElement>& gtg) {
  if (gtg.empty()) return 1;
  std::vector<int> widths;
  for (const GtGElement& element : gtg) widths.push_back(element.core_treewidth);
  std::sort(widths.begin(), widths.end());
  widths.erase(std::unique(widths.begin(), widths.end()), widths.end());

  for (int k : widths) {
    if (k < 1) continue;
    bool dominated = true;
    for (const GtGElement& high : gtg) {
      if (high.core_treewidth <= k) continue;
      bool covered = false;
      for (const GtGElement& low : gtg) {
        if (low.core_treewidth > k) continue;
        if (HomTo(low.graph, high.graph)) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        dominated = false;
        break;
      }
    }
    if (dominated) return std::max(k, 1);
  }
  // The full set always dominates itself, so the largest width works.
  return std::max(widths.back(), 1);
}

Result<int> DominationWidth(const PatternForest& forest, TermPool* pool,
                            const DominationOptions& options) {
  int width = 1;
  uint64_t subtree_budget = options.max_subtrees;
  for (const PatternTree& tree : forest.trees) {
    bool exhausted = false;
    Status failure = Status::OK();
    EnumerateSubtrees(tree, [&](const Subtree& subtree) {
      if (exhausted || !failure.ok()) return;
      if (subtree_budget == 0) {
        exhausted = true;
        return;
      }
      --subtree_budget;
      Result<std::vector<GtGElement>> gtg = ComputeGtG(forest, subtree, pool, options);
      if (!gtg.ok()) {
        failure = gtg.status();
        return;
      }
      width = std::max(width, MinDominationWidth(gtg.value()));
    });
    if (exhausted) {
      return Result<int>(
          Status::ResourceExhausted("subtree enumeration exceeded the configured budget"));
    }
    if (!failure.ok()) return Result<int>(failure);
  }
  return width;
}

Result<int> DominationWidthOfPattern(const PatternPtr& pattern, TermPool* pool,
                                     const DominationOptions& options) {
  Result<PatternForest> forest = BuildPatternForest(pattern, *pool);
  if (!forest.ok()) return Result<int>(forest.status());
  return DominationWidth(forest.value(), pool, options);
}

}  // namespace wdsparql
