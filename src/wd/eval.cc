#include "wd/eval.h"

#include "hom/homomorphism.h"
#include "hom/pebble.h"
#include "ptree/tgraph.h"

namespace wdsparql {

bool WdEvalWith(const PatternForest& forest, const TripleSource& graph,
                const Mapping& mu, EvalStats* stats,
                const std::function<bool(const TripleSet&)>& extends) {
  for (const PatternTree& tree : forest.trees) {
    if (stats != nullptr) ++stats->trees_probed;
    std::optional<Subtree> matched = FindMatchingSubtree(tree, mu, graph);
    if (!matched.has_value()) continue;
    if (stats != nullptr) ++stats->subtrees_matched;

    TripleSet base = SubtreePattern(*matched);
    bool some_child_extends = false;
    for (NodeId child : SubtreeChildren(*matched)) {
      if (stats != nullptr) ++stats->extension_tests;
      TripleSet combined = base;
      combined.InsertAll(tree.pattern(child));
      if (extends(combined)) {
        some_child_extends = true;
        break;
      }
    }
    if (!some_child_extends) return true;  // mu ∈ JT_iKG.
  }
  return false;
}

bool NaiveWdEval(const PatternForest& forest, const RdfGraph& graph, const Mapping& mu,
                 EvalStats* stats) {
  HashTripleSource scan(graph.triples());
  return NaiveWdEval(forest, scan, mu, stats);
}

bool NaiveWdEval(const PatternForest& forest, const TripleSource& graph,
                 const Mapping& mu, EvalStats* stats) {
  VarAssignment fixed = MappingToAssignment(mu);
  return WdEvalWith(forest, graph, mu, stats, [&](const TripleSet& combined) {
    return HasHomomorphism(combined, fixed, graph);
  });
}

bool PebbleWdEval(const PatternForest& forest, const RdfGraph& graph, const Mapping& mu,
                  int k, EvalStats* stats) {
  WDSPARQL_CHECK(k >= 1);
  VarAssignment fixed = MappingToAssignment(mu);
  HashTripleSource scan(graph.triples());
  return WdEvalWith(forest, scan, mu, stats, [&](const TripleSet& combined) {
    PebbleGameStats game_stats;
    bool wins = PebbleGameWins(combined, fixed, graph.triples(), k + 1, &game_stats);
    if (stats != nullptr) stats->pebble_maps_created += game_stats.maps_created;
    return wins;
  });
}

}  // namespace wdsparql
