#include "wd/enumerate.h"

#include <algorithm>
#include <unordered_set>

#include "hom/homomorphism.h"
#include "hom/pebble.h"
#include "ptree/subtree.h"

namespace wdsparql {
namespace {

/// Shared enumeration skeleton; `extends` decides the per-child
/// maximality test (exact or pebble).
template <typename ExtendsFn>
void EnumerateImpl(const PatternForest& forest, const RdfGraph& graph,
                   const std::function<bool(const Mapping&)>& callback,
                   EnumerateStats* stats, ExtendsFn&& extends) {
  std::unordered_set<Mapping, MappingHash> seen;
  bool stopped = false;
  for (const PatternTree& tree : forest.trees) {
    if (stopped) break;
    EnumerateSubtrees(tree, [&](const Subtree& subtree) {
      if (stopped) return;
      TripleSet pattern = SubtreePattern(subtree);
      std::vector<NodeId> children = SubtreeChildren(subtree);
      EnumerateHomomorphisms(
          pattern, VarAssignment{}, graph.triples(),
          [&](const VarAssignment& assignment) {
            if (stats != nullptr) ++stats->candidates;
            Mapping mu;
            for (const auto& [var, value] : assignment) {
              WDSPARQL_CHECK(mu.Bind(var, value));
            }
            if (seen.count(mu) > 0) return true;
            // Maximality: no child may extend mu.
            bool maximal = true;
            for (NodeId child : children) {
              if (stats != nullptr) ++stats->maximality_tests;
              TripleSet combined = pattern;
              combined.InsertAll(subtree.tree->pattern(child));
              if (extends(combined, mu)) {
                maximal = false;
                break;
              }
            }
            if (!maximal) return true;
            seen.insert(mu);
            if (stats != nullptr) ++stats->emitted;
            if (!callback(mu)) {
              stopped = true;
              return false;
            }
            return true;
          });
    });
  }
}

}  // namespace

void EnumerateSolutionsNaive(const PatternForest& forest, const RdfGraph& graph,
                             const std::function<bool(const Mapping&)>& callback,
                             EnumerateStats* stats) {
  EnumerateImpl(forest, graph, callback, stats,
                [&](const TripleSet& combined, const Mapping& mu) {
                  VarAssignment fixed;
                  for (const auto& [var, value] : mu.bindings()) fixed[var] = value;
                  return HasHomomorphism(combined, fixed, graph.triples());
                });
}

void EnumerateSolutionsPebble(const PatternForest& forest, const RdfGraph& graph,
                              int k, const std::function<bool(const Mapping&)>& callback,
                              EnumerateStats* stats) {
  WDSPARQL_CHECK(k >= 1);
  EnumerateImpl(forest, graph, callback, stats,
                [&](const TripleSet& combined, const Mapping& mu) {
                  VarAssignment fixed;
                  for (const auto& [var, value] : mu.bindings()) fixed[var] = value;
                  return PebbleGameWins(combined, fixed, graph.triples(), k + 1);
                });
}

std::vector<Mapping> AllSolutionsPebble(const PatternForest& forest,
                                        const RdfGraph& graph, int k,
                                        EnumerateStats* stats) {
  std::vector<Mapping> out;
  EnumerateSolutionsPebble(
      forest, graph, k,
      [&out](const Mapping& mu) {
        out.push_back(mu);
        return true;
      },
      stats);
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t CountSolutions(const PatternForest& forest, const RdfGraph& graph) {
  uint64_t count = 0;
  EnumerateSolutionsNaive(forest, graph, [&count](const Mapping&) {
    ++count;
    return true;
  });
  return count;
}

}  // namespace wdsparql
