#include "wd/enumerate.h"

#include <algorithm>
#include <unordered_set>

#include "hom/homomorphism.h"
#include "hom/pebble.h"
#include "ptree/subtree.h"
#include "ptree/tgraph.h"

namespace wdsparql {

void EnumerateSolutionsWith(const PatternForest& forest, const EnumerationHooks& hooks,
                            const std::function<bool(const Mapping&)>& callback,
                            EnumerateStats* stats) {
  std::unordered_set<Mapping, MappingHash> seen;
  bool stopped = false;
  for (const PatternTree& tree : forest.trees) {
    if (stopped) break;
    EnumerateSubtrees(tree, [&](const Subtree& subtree) {
      if (stopped) return;
      TripleSet pattern = SubtreePattern(subtree);
      std::vector<NodeId> children = SubtreeChildren(subtree);
      hooks.candidates(pattern, [&](const VarAssignment& assignment) {
        if (stats != nullptr) ++stats->candidates;
        Mapping mu;
        for (const auto& [var, value] : assignment) {
          WDSPARQL_CHECK(mu.Bind(var, value));
        }
        if (seen.count(mu) > 0) return true;
        // Maximality: no child may extend mu.
        bool maximal = true;
        for (NodeId child : children) {
          if (stats != nullptr) ++stats->maximality_tests;
          TripleSet combined = pattern;
          combined.InsertAll(subtree.tree->pattern(child));
          if (hooks.extends(combined, mu)) {
            maximal = false;
            break;
          }
        }
        if (!maximal) return true;
        seen.insert(mu);
        if (stats != nullptr) ++stats->emitted;
        if (!callback(mu)) {
          stopped = true;
          return false;
        }
        return true;
      });
    });
  }
}

void EnumerateSolutionsNaive(const PatternForest& forest, const RdfGraph& graph,
                             const std::function<bool(const Mapping&)>& callback,
                             EnumerateStats* stats) {
  HashTripleSource scan(graph.triples());
  EnumerateSolutionsNaive(forest, scan, callback, stats);
}

void EnumerateSolutionsNaive(const PatternForest& forest, const TripleSource& graph,
                             const std::function<bool(const Mapping&)>& callback,
                             EnumerateStats* stats) {
  EnumerationHooks hooks;
  hooks.candidates = [&graph](const TripleSet& pattern,
                              const std::function<bool(const VarAssignment&)>& emit) {
    EnumerateHomomorphisms(pattern, VarAssignment{}, graph, emit);
  };
  hooks.extends = [&graph](const TripleSet& combined, const Mapping& mu) {
    return HasHomomorphism(combined, MappingToAssignment(mu), graph);
  };
  EnumerateSolutionsWith(forest, hooks, callback, stats);
}

void EnumerateSolutionsPebble(const PatternForest& forest, const RdfGraph& graph,
                              int k, const std::function<bool(const Mapping&)>& callback,
                              EnumerateStats* stats) {
  WDSPARQL_CHECK(k >= 1);
  HashTripleSource scan(graph.triples());
  EnumerationHooks hooks;
  hooks.candidates = [&scan](const TripleSet& pattern,
                             const std::function<bool(const VarAssignment&)>& emit) {
    EnumerateHomomorphisms(pattern, VarAssignment{}, scan, emit);
  };
  hooks.extends = [&graph, k](const TripleSet& combined, const Mapping& mu) {
    return PebbleGameWins(combined, MappingToAssignment(mu), graph.triples(), k + 1);
  };
  EnumerateSolutionsWith(forest, hooks, callback, stats);
}

std::vector<Mapping> AllSolutionsPebble(const PatternForest& forest,
                                        const RdfGraph& graph, int k,
                                        EnumerateStats* stats) {
  std::vector<Mapping> out;
  EnumerateSolutionsPebble(
      forest, graph, k,
      [&out](const Mapping& mu) {
        out.push_back(mu);
        return true;
      },
      stats);
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t CountSolutions(const PatternForest& forest, const RdfGraph& graph) {
  uint64_t count = 0;
  EnumerateSolutionsNaive(forest, graph, [&count](const Mapping&) {
    ++count;
    return true;
  });
  return count;
}

}  // namespace wdsparql
