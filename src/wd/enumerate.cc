#include "wd/enumerate.h"

#include <algorithm>
#include <unordered_set>

#include "hom/homomorphism.h"
#include "hom/pebble.h"
#include "ptree/subtree.h"
#include "ptree/tgraph.h"

namespace wdsparql {
namespace {

std::string RenderTerm(const TermPool& pool, TermId term) {
  std::string spelling(pool.Spelling(term));
  return IsVariable(term) ? "?" + spelling : spelling;
}

/// Renders pat(T') for the ExecStats subpattern breakdown, e.g.
/// "(?x knows ?y) AND (?y email ?e)".
std::string RenderPattern(const TermPool& pool, const TripleSet& pattern) {
  std::string out;
  for (const Triple& t : pattern.triples()) {
    if (!out.empty()) out += " AND ";
    out += "(" + RenderTerm(pool, t.subject) + " " +
           RenderTerm(pool, t.predicate) + " " + RenderTerm(pool, t.object) + ")";
  }
  return out;
}

/// Batch-hook fallback: the whole candidate set, materialised up front
/// and drained one pull at a time. Keeps hooks that only provide the
/// callback-shaped `candidates` (the naive oracle backends) working
/// unchanged behind the pull interface.
class MaterializedGenerator final : public CandidateGenerator {
 public:
  bool Next(VarAssignment* out) override {
    if (pos_ >= buffer_.size()) return false;
    *out = std::move(buffer_[pos_++]);
    return true;
  }

  std::vector<VarAssignment>& buffer() { return buffer_; }

 private:
  std::vector<VarAssignment> buffer_;
  std::size_t pos_ = 0;
};

}  // namespace

SolutionEnumerator::SolutionEnumerator(const PatternForest& forest,
                                       EnumerationHooks hooks)
    : forest_(&forest), hooks_(std::move(hooks)) {}

SolutionEnumerator::~SolutionEnumerator() { EndSubtreeSpan(); }

ExecStats::Subpattern* SolutionEnumerator::CurSubpattern() {
  return sink_has_cur_ ? &sink_->subpatterns.back() : nullptr;
}

bool SolutionEnumerator::CheckInterrupt() {
  if (interrupted_ || !probe_) return interrupted_;
  if (++steps_since_probe_ < probe_interval_) return false;
  steps_since_probe_ = 0;
  if (sink_ != nullptr) ++sink_->interrupt_checks;
  if (probe_()) interrupted_ = true;
  return interrupted_;
}

bool SolutionEnumerator::AdvanceSubtree() {
  while (true) {
    while (subtree_idx_ >= subtrees_.size()) {
      // Drained the loaded tree (or nothing loaded yet, which the
      // kNoTree sentinel turns into "load tree 0"): materialise the next
      // tree's subtree list — EnumerateSolutionsWith visits the same
      // list; holding it lets the machine suspend between any two
      // candidates.
      std::size_t next = tree_idx_ + 1;  // kNoTree wraps to 0.
      if (next >= forest_->trees.size()) {
        EndSubtreeSpan();
        return false;
      }
      tree_idx_ = next;
      subtrees_.clear();
      EnumerateSubtrees(forest_->trees[tree_idx_],
                        [this](const Subtree& subtree) { subtrees_.push_back(subtree); });
      subtree_idx_ = 0;
    }
    const Subtree& subtree = subtrees_[subtree_idx_++];
    cur_tree_ = subtree.tree;
    pattern_ = SubtreePattern(subtree);
    children_ = SubtreeChildren(subtree);
    cur_candidates_ = 0;
    sink_has_cur_ = false;
    // One span per wdpf subtree, covering its whole candidate pull and
    // the maximality work until the next boundary — this is the subtree-
    // granular "where did the time go" answer; per-candidate cost stays
    // out of the trace entirely.
    if (trace_ != nullptr) {
      EndSubtreeSpan();
      subtree_span_ = trace_->StartSpan("subtree", trace_parent_);
      trace_->Annotate(subtree_span_, "tree",
                       static_cast<uint64_t>(tree_idx_));
      trace_->Annotate(subtree_span_, "subtree",
                       static_cast<uint64_t>(subtree_idx_ - 1));
    }
    if (hooks_.open_candidates) {
      // Suspendable path: the generator carries the whole join state;
      // candidates are produced one `Next` pull at a time, never
      // materialised.
      generator_ = hooks_.open_candidates(pattern_);
      return true;
    }
    // Batch fallback: materialise the subtree's match set up front.
    auto materialized = std::make_unique<MaterializedGenerator>();
    hooks_.candidates(pattern_, [this, &materialized](const VarAssignment& assignment) {
      // The interrupt check sits inside candidate generation, so even a
      // subtree with a huge match set stops within check_interval steps
      // (returning false tells the backend scan to stop mid-range).
      if (CheckInterrupt()) return false;
      materialized->buffer().push_back(assignment);
      return true;
    });
    if (interrupted_) {
      EndSubtreeSpan();
      return false;  // Partial batch: never delivered.
    }
    generator_ = std::move(materialized);
    return true;
  }
}

bool SolutionEnumerator::Next(Mapping* out) {
  WDSPARQL_CHECK(out != nullptr);
  if (state_ == State::kDone) return false;
  state_ = State::kActive;
  VarAssignment assignment;
  while (true) {
    if (CheckInterrupt()) {
      state_ = State::kDone;
      EndSubtreeSpan();
      return false;
    }
    if (generator_ == nullptr) {
      if (!AdvanceSubtree()) {
        state_ = State::kDone;
        return false;
      }
      continue;
    }
    if (!generator_->Next(&assignment)) {
      // Subtree exhausted. Empty subtrees are only tallied (no
      // breakdown entry), or a wide forest would drown the report in
      // zero rows.
      if (sink_ != nullptr && cur_candidates_ == 0) ++sink_->empty_subpatterns;
      generator_.reset();
      continue;
    }
    ++stats_.candidates;
    ++cur_candidates_;
    if (sink_ != nullptr) {
      if (cur_candidates_ == 1) {
        // Lazily opened breakdown entry: with a suspendable generator,
        // whether a subtree has candidates at all is only known at the
        // first successful pull.
        ExecStats::Subpattern sub;
        sub.tree = tree_idx_;
        sub.subtree = subtree_idx_ - 1;
        sub.pattern = RenderPattern(*sink_pool_, pattern_);
        if (const CandidatePlanInfo* info = generator_->plan_info()) {
          sub.est_rows = info->est_rows;
          sub.est_cost = info->est_cost;
          sub.plan_ns = info->plan_ns;
          sub.plan = info->description;
        }
        sink_->subpatterns.push_back(std::move(sub));
        sink_has_cur_ = true;
      }
      ++sink_->candidates;
      ++CurSubpattern()->candidates;
    }
    Mapping candidate;
    for (const auto& [var, value] : assignment) {
      WDSPARQL_CHECK(candidate.Bind(var, value));
    }
    const Mapping& mu = candidate;
    if (seen_.count(mu) > 0) {
      if (sink_ != nullptr) {
        ++sink_->dedup_rejected;
        ++CurSubpattern()->dedup_rejected;
      }
      continue;
    }
    // Maximality: no child may extend mu.
    bool maximal = true;
    for (NodeId child : children_) {
      ++stats_.maximality_tests;
      if (sink_ != nullptr) {
        ++sink_->maximality_tests;
        ++CurSubpattern()->maximality_tests;
      }
      TripleSet combined = pattern_;
      combined.InsertAll(cur_tree_->pattern(child));
      if (hooks_.extends(combined, mu)) {
        maximal = false;
        break;
      }
    }
    if (!maximal) {
      if (sink_ != nullptr) {
        ++sink_->non_maximal;
        ++CurSubpattern()->non_maximal;
      }
      continue;
    }
    seen_.insert(mu);
    ++stats_.emitted;
    if (sink_ != nullptr) ++CurSubpattern()->rows;
    *out = mu;
    return true;
  }
}

void EnumerateSolutionsWith(const PatternForest& forest, const EnumerationHooks& hooks,
                            const std::function<bool(const Mapping&)>& callback,
                            EnumerateStats* stats) {
  SolutionEnumerator enumerator(forest, hooks);
  Mapping mu;
  while (enumerator.Next(&mu)) {
    if (!callback(mu)) break;
  }
  if (stats != nullptr) *stats = enumerator.stats();
}

void EnumerateSolutionsNaive(const PatternForest& forest, const RdfGraph& graph,
                             const std::function<bool(const Mapping&)>& callback,
                             EnumerateStats* stats) {
  HashTripleSource scan(graph.triples());
  EnumerateSolutionsNaive(forest, scan, callback, stats);
}

void EnumerateSolutionsNaive(const PatternForest& forest, const TripleSource& graph,
                             const std::function<bool(const Mapping&)>& callback,
                             EnumerateStats* stats) {
  EnumerationHooks hooks;
  hooks.candidates = [&graph](const TripleSet& pattern,
                              const std::function<bool(const VarAssignment&)>& emit) {
    EnumerateHomomorphisms(pattern, VarAssignment{}, graph, emit);
  };
  hooks.extends = [&graph](const TripleSet& combined, const Mapping& mu) {
    return HasHomomorphism(combined, MappingToAssignment(mu), graph);
  };
  EnumerateSolutionsWith(forest, hooks, callback, stats);
}

void EnumerateSolutionsPebble(const PatternForest& forest, const RdfGraph& graph,
                              int k, const std::function<bool(const Mapping&)>& callback,
                              EnumerateStats* stats) {
  WDSPARQL_CHECK(k >= 1);
  HashTripleSource scan(graph.triples());
  EnumerationHooks hooks;
  hooks.candidates = [&scan](const TripleSet& pattern,
                             const std::function<bool(const VarAssignment&)>& emit) {
    EnumerateHomomorphisms(pattern, VarAssignment{}, scan, emit);
  };
  hooks.extends = [&graph, k](const TripleSet& combined, const Mapping& mu) {
    return PebbleGameWins(combined, MappingToAssignment(mu), graph.triples(), k + 1);
  };
  EnumerateSolutionsWith(forest, hooks, callback, stats);
}

std::vector<Mapping> AllSolutionsPebble(const PatternForest& forest,
                                        const RdfGraph& graph, int k,
                                        EnumerateStats* stats) {
  std::vector<Mapping> out;
  EnumerateSolutionsPebble(
      forest, graph, k,
      [&out](const Mapping& mu) {
        out.push_back(mu);
        return true;
      },
      stats);
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t CountSolutions(const PatternForest& forest, const RdfGraph& graph) {
  uint64_t count = 0;
  EnumerateSolutionsNaive(forest, graph, [&count](const Mapping&) {
    ++count;
    return true;
  });
  return count;
}

}  // namespace wdsparql
