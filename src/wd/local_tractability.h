#ifndef WDSPARQL_WD_LOCAL_TRACTABILITY_H_
#define WDSPARQL_WD_LOCAL_TRACTABILITY_H_

#include <vector>

#include "ptree/forest.h"
#include "ptree/tgraph.h"

/// \file
/// Local tractability (Letelier et al. [17]; recalled after Theorem 1).
///
/// A class C is locally tractable if there is k such that for every
/// pattern's forest, every tree T and every non-root node n with parent
/// n': ctw(pat(n), vars(n) ∩ vars(n')) <= k. Bounded local width implies
/// bounded domination width; the converse fails (Example 5 via node n12
/// of F_k, and the T'_k family of Section 3.2), which experiments E1/E2/E8
/// exhibit: queries of unbounded local width that the paper's algorithm
/// still evaluates in polynomial time.

namespace wdsparql {

/// Per-node local width detail.
struct LocalNodeWidth {
  int tree_index = -1;
  NodeId node = -1;
  int core_treewidth = 0;  ///< ctw(pat(n), vars(n) ∩ vars(parent)).
};

/// Computes the local widths of every non-root node of the forest.
std::vector<LocalNodeWidth> LocalWidths(const PatternForest& forest);

/// The local width of the forest: max over non-root nodes (1 if none).
int LocalWidth(const PatternForest& forest);

}  // namespace wdsparql

#endif  // WDSPARQL_WD_LOCAL_TRACTABILITY_H_
