#include "wd/branch_width.h"

#include <algorithm>

#include "ptree/forest.h"

namespace wdsparql {

std::vector<BranchNodeWidth> BranchWidths(const PatternTree& tree) {
  std::vector<BranchNodeWidth> out;
  for (NodeId n = 1; n < tree.NumNodes(); ++n) {
    // B_n: nodes on the path from the root to n's parent.
    TripleSet branch_pattern;
    for (NodeId walk = tree.parent(n); walk != -1; walk = tree.parent(walk)) {
      branch_pattern.InsertAll(tree.pattern(walk));
    }
    std::vector<TermId> branch_vars = branch_pattern.Variables();
    std::sort(branch_vars.begin(), branch_vars.end());

    TripleSet s_br = branch_pattern;
    s_br.InsertAll(tree.pattern(n));

    BranchNodeWidth detail;
    detail.node = n;
    detail.branch_graph = GeneralizedTGraph(std::move(s_br), branch_vars);
    detail.core_treewidth = CoreTreewidthOf(detail.branch_graph).upper;
    out.push_back(std::move(detail));
  }
  return out;
}

int BranchTreewidth(const PatternTree& tree) {
  int width = 1;
  for (const BranchNodeWidth& detail : BranchWidths(tree)) {
    width = std::max(width, detail.core_treewidth);
  }
  return width;
}

Result<int> BranchTreewidthOfPattern(const PatternPtr& pattern, const TermPool& pool) {
  Result<PatternTree> tree = BuildPatternTree(pattern, pool);
  if (!tree.ok()) return Result<int>(tree.status());
  return BranchTreewidth(tree.value());
}

}  // namespace wdsparql
