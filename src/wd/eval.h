#ifndef WDSPARQL_WD_EVAL_H_
#define WDSPARQL_WD_EVAL_H_

#include <cstdint>
#include <functional>

#include "ptree/forest.h"
#include "ptree/subtree.h"
#include "rdf/graph.h"
#include "rdf/scan.h"
#include "sparql/mapping.h"
#include "util/status.h"

/// \file
/// The wdEVAL evaluation algorithms (Sections 2.2 and 3.1).
///
/// wdEVAL: given a well-designed pattern P (as its forest wdpf(P)), an
/// RDF graph G and a mapping mu, decide mu ∈ JPKG. Two algorithms:
///
/// * `NaiveWdEval` — the natural algorithm of Letelier et al.: find, per
///   tree, the unique subtree T^mu matched by mu, then certify that no
///   child extends mu via an exact homomorphism test. Sound and complete
///   for all well-designed inputs, but the homomorphism tests make it
///   exponential (co-NP-hardness lives there).
///
/// * `PebbleWdEval` — the Theorem 1 algorithm: identical control flow,
///   but each homomorphism test `(pat(T^mu) u pat(n), vars(T^mu)) ->mu G`
///   is replaced by the polynomial existential (k+1)-pebble relaxation
///   `->mu_{k+1}`. Always sound: acceptance is certified, because the
///   relaxation only over-approximates the child extensions (a truly
///   extendable child also passes the pebble test, so a tree that
///   accepts has no extendable child). Complete whenever
///   dw(wdpf(P)) <= k, hence correct and polynomial-time on every class
///   of domination width <= k (Theorem 1).
///
/// `k` is a *promise* parameter: the evaluator never computes dw(P)
/// (recognition is NP-hard); callers either know the class bound or use
/// wd/domination.h diagnostics offline.

namespace wdsparql {

/// Counters describing one evaluation run (reported by the benches).
struct EvalStats {
  uint64_t trees_probed = 0;        ///< Trees whose T^mu was searched.
  uint64_t subtrees_matched = 0;    ///< Trees where T^mu exists.
  uint64_t extension_tests = 0;     ///< Child-extension tests performed.
  uint64_t pebble_maps_created = 0; ///< Pebble-game partial maps built.
};

/// The natural (exact-homomorphism) evaluation algorithm. Decides
/// mu ∈ JFKG for any well-designed forest.
bool NaiveWdEval(const PatternForest& forest, const RdfGraph& graph, const Mapping& mu,
                 EvalStats* stats = nullptr);

/// Backend-generic variant: subtree matching and the homomorphism
/// extension tests run against the `TripleSource` scan interface, so the
/// same algorithm executes over the hash backend or the engine's
/// dictionary-encoded permutation store.
bool NaiveWdEval(const PatternForest& forest, const TripleSource& graph,
                 const Mapping& mu, EvalStats* stats = nullptr);

/// The shared wdEVAL skeleton every variant instantiates: per tree,
/// find the matched subtree T^mu against `graph`, and accept iff some
/// tree has no child for which `extends` certifies an extension of mu.
/// `extends` receives pat(T^mu) ∪ pat(child); plugging in exact
/// homomorphism, pebble-game or merge-join existence tests yields the
/// naive, Theorem 1 and engine evaluators respectively.
bool WdEvalWith(const PatternForest& forest, const TripleSource& graph,
                const Mapping& mu, EvalStats* stats,
                const std::function<bool(const TripleSet&)>& extends);

/// The Theorem 1 algorithm with domination-width promise `k` (uses the
/// existential (k+1)-pebble game).
///
/// Guarantees: a `true` answer is always correct (soundness,
/// unconditional); a `false` answer is correct under the promise
/// dw(forest) <= k, in which case the result equals NaiveWdEval's.
bool PebbleWdEval(const PatternForest& forest, const RdfGraph& graph, const Mapping& mu,
                  int k, EvalStats* stats = nullptr);

}  // namespace wdsparql

#endif  // WDSPARQL_WD_EVAL_H_
