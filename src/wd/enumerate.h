#ifndef WDSPARQL_WD_ENUMERATE_H_
#define WDSPARQL_WD_ENUMERATE_H_

#include <functional>
#include <vector>

#include "hom/homomorphism.h"
#include "ptree/forest.h"
#include "rdf/graph.h"
#include "rdf/scan.h"
#include "sparql/mapping.h"
#include "wd/eval.h"

/// \file
/// Answer enumeration under the domination-width promise.
///
/// The paper's Section 5 lists enumeration as a natural variant of
/// wdEVAL (cf. Kroll-Pichler-Skritek). This module materialises JFKG by
/// enumerating, per tree, the homomorphisms of each subtree pattern and
/// certifying maximality with the same machinery the membership
/// algorithms use:
///
///  * `EnumerateSolutionsNaive`  — exact homomorphism maximality tests
///    (always correct; this is the ptree/semantics.h oracle re-exposed
///    with streaming callbacks and statistics);
///  * `EnumerateSolutionsPebble` — Theorem 1-style (k+1)-pebble
///    maximality tests: every emitted mapping is a genuine answer
///    (soundness is unconditional), and under the promise dw(F) <= k the
///    output is exactly JFKG.
///
/// Candidate generation is exponential in |P| (unavoidable: answers can
/// be exponentially many); the promise only de-NP-hardens the per-
/// candidate maximality certificates, mirroring the paper's separation
/// between candidate structure and extension tests.

namespace wdsparql {

/// Statistics of one enumeration run.
struct EnumerateStats {
  uint64_t candidates = 0;   ///< Homomorphisms considered.
  uint64_t emitted = 0;      ///< Answers produced (pre-deduplication).
  uint64_t maximality_tests = 0;
};

/// Hooks customising the enumeration skeleton.
struct EnumerationHooks {
  /// Streams the homomorphism candidates of one subtree pattern into
  /// `emit`; must stop when `emit` returns false.
  std::function<void(const TripleSet& pattern,
                     const std::function<bool(const VarAssignment&)>& emit)>
      candidates;
  /// Maximality certificate: true iff some homomorphism of `combined`
  /// (the subtree pattern plus one child pattern) extends `mu`.
  std::function<bool(const TripleSet& combined, const Mapping& mu)> extends;
};

/// The enumeration skeleton every variant instantiates: per tree, per
/// subtree, stream candidates, deduplicate across trees/subtrees,
/// certify maximality against each child, emit. Plugging in the CSP
/// solver, the pebble game or the engine's merge join yields the
/// naive, Theorem 1 and indexed enumerators respectively.
void EnumerateSolutionsWith(const PatternForest& forest, const EnumerationHooks& hooks,
                            const std::function<bool(const Mapping&)>& callback,
                            EnumerateStats* stats = nullptr);

/// Streams every mu in JFKG, using exact homomorphism maximality tests.
/// The callback may return false to stop. Duplicates across trees and
/// subtrees are suppressed.
void EnumerateSolutionsNaive(const PatternForest& forest, const RdfGraph& graph,
                             const std::function<bool(const Mapping&)>& callback,
                             EnumerateStats* stats = nullptr);

/// Backend-generic variant: candidate generation and maximality tests
/// run against the `TripleSource` scan interface (hash backend or the
/// engine's dictionary-encoded permutation store).
void EnumerateSolutionsNaive(const PatternForest& forest, const TripleSource& graph,
                             const std::function<bool(const Mapping&)>& callback,
                             EnumerateStats* stats = nullptr);

/// Streams answers using (k+1)-pebble maximality tests. Every emitted
/// mapping is in JFKG; under dw(F) <= k the stream is exactly JFKG.
void EnumerateSolutionsPebble(const PatternForest& forest, const RdfGraph& graph,
                              int k, const std::function<bool(const Mapping&)>& callback,
                              EnumerateStats* stats = nullptr);

/// Convenience: materialise the pebble enumeration, sorted and unique.
std::vector<Mapping> AllSolutionsPebble(const PatternForest& forest,
                                        const RdfGraph& graph, int k,
                                        EnumerateStats* stats = nullptr);

/// |JFKG| via the naive enumeration (counting variant; Section 5).
uint64_t CountSolutions(const PatternForest& forest, const RdfGraph& graph);

}  // namespace wdsparql

#endif  // WDSPARQL_WD_ENUMERATE_H_
