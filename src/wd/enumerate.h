#ifndef WDSPARQL_WD_ENUMERATE_H_
#define WDSPARQL_WD_ENUMERATE_H_

#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "hom/homomorphism.h"
#include "ptree/forest.h"
#include "ptree/subtree.h"
#include "rdf/graph.h"
#include "rdf/scan.h"
#include "sparql/mapping.h"
#include "wd/eval.h"
#include "wdsparql/stats.h"
#include "wdsparql/trace.h"

/// \file
/// Answer enumeration under the domination-width promise.
///
/// The paper's Section 5 lists enumeration as a natural variant of
/// wdEVAL (cf. Kroll-Pichler-Skritek). This module materialises JFKG by
/// enumerating, per tree, the homomorphisms of each subtree pattern and
/// certifying maximality with the same machinery the membership
/// algorithms use:
///
///  * `EnumerateSolutionsNaive`  — exact homomorphism maximality tests
///    (always correct; this is the ptree/semantics.h oracle re-exposed
///    with streaming callbacks and statistics);
///  * `EnumerateSolutionsPebble` — Theorem 1-style (k+1)-pebble
///    maximality tests: every emitted mapping is a genuine answer
///    (soundness is unconditional), and under the promise dw(F) <= k the
///    output is exactly JFKG.
///
/// Candidate generation is exponential in |P| (unavoidable: answers can
/// be exponentially many); the promise only de-NP-hardens the per-
/// candidate maximality certificates, mirroring the paper's separation
/// between candidate structure and extension tests.

namespace wdsparql {

/// Statistics of one enumeration run.
struct EnumerateStats {
  uint64_t candidates = 0;   ///< Homomorphisms considered.
  uint64_t emitted = 0;      ///< Answers produced (pre-deduplication).
  uint64_t maximality_tests = 0;
  /// Duplicates dropped at the cross-worker merge (parallel execution
  /// only; always 0 for a serial enumeration).
  uint64_t merge_dedup = 0;
};

/// What a cost-based generator decided for its subtree, surfaced for
/// EXPLAIN output: the estimates feed `ExecStats::Subpattern` so a
/// report shows estimated next to actual cardinality per subtree.
struct CandidatePlanInfo {
  double est_rows = 0;       ///< Estimated subtree solutions.
  double est_cost = 0;       ///< Estimated scan volume of the descent.
  uint64_t plan_ns = 0;      ///< Time spent planning this subtree.
  std::string description;   ///< e.g. "order=[?y ?x] scans=[POS SPO]".
};

/// A suspendable candidate source: one subtree pattern's homomorphisms,
/// delivered one `Next` call at a time. Generators carry their whole
/// search state between calls, so a consumer that stops early (row
/// limits, cancellation, a partitioned parallel worker) pays only for
/// the candidates it actually pulled — never for the subtree's whole
/// match set.
class CandidateGenerator {
 public:
  virtual ~CandidateGenerator() = default;

  /// Produces the next candidate homomorphism; false once exhausted
  /// (and from then on).
  virtual bool Next(VarAssignment* out) = 0;

  /// The cost-based plan behind this generator, when one was chosen
  /// (the indexed backend with statistics available); null otherwise.
  /// Valid as long as the generator lives.
  virtual const CandidatePlanInfo* plan_info() const { return nullptr; }
};

/// Hooks customising the enumeration skeleton.
struct EnumerationHooks {
  /// Streams the homomorphism candidates of one subtree pattern into
  /// `emit`; must stop when `emit` returns false. Fallback used when
  /// `open_candidates` is unset: the enumerator materialises the batch
  /// up front (the pre-suspendable behaviour — the naive oracle backends
  /// still run this way).
  std::function<void(const TripleSet& pattern,
                     const std::function<bool(const VarAssignment&)>& emit)>
      candidates;
  /// Pull-based candidate source for one subtree pattern; preferred over
  /// `candidates` when set. The engine's indexed backend wires a
  /// resumable `JoinCursor` through here, which is what makes the whole
  /// enumeration suspendable candidate-by-candidate.
  std::function<std::unique_ptr<CandidateGenerator>(const TripleSet& pattern)>
      open_candidates;
  /// Maximality certificate: true iff some homomorphism of `combined`
  /// (the subtree pattern plus one child pattern) extends `mu`.
  std::function<bool(const TripleSet& combined, const Mapping& mu)> extends;
};

/// The enumeration skeleton every variant instantiates: per tree, per
/// subtree, stream candidates, deduplicate across trees/subtrees,
/// certify maximality against each child, emit. Plugging in the CSP
/// solver, the pebble game or the engine's merge join yields the
/// naive, Theorem 1 and indexed enumerators respectively.
void EnumerateSolutionsWith(const PatternForest& forest, const EnumerationHooks& hooks,
                            const std::function<bool(const Mapping&)>& callback,
                            EnumerateStats* stats = nullptr);

/// Pull-based, suspendable instantiation of the same skeleton — the
/// engine's `Cursor` runs on this. The enumeration is an explicit state
/// machine over (tree, subtree, candidate-generator) coordinates: each
/// `Next` call resumes exactly where the previous one stopped, pulls
/// candidates one at a time from the open subtree's generator, performs
/// deduplication and the per-child maximality certificates for as many
/// candidates as it takes to reach the next answer, and suspends again.
/// With a pull-based `open_candidates` hook (the indexed backend's
/// resumable join) nothing is materialised at all: a `row_limit=1`
/// execution generates one candidate, not the subtree's whole match
/// set. Hooks providing only the batch `candidates` callback keep the
/// old materialise-per-subtree behaviour.
///
/// The forest must outlive the enumerator, and the hooks must stay
/// valid (they typically close over the storage backend).
class SolutionEnumerator {
 public:
  enum class State {
    kStart,    ///< No Next() call yet.
    kActive,   ///< Mid-enumeration: at least one answer delivered or sought.
    kDone,     ///< Exhausted: every further Next() returns false.
  };

  SolutionEnumerator(const PatternForest& forest, EnumerationHooks hooks);
  ~SolutionEnumerator();

  /// Advances to the next distinct maximal solution. Returns false when
  /// the solution set is exhausted (state() == kDone from then on) or
  /// when the interruption probe fired (`interrupted()` distinguishes).
  bool Next(Mapping* out);

  /// Installs a cooperative interruption probe, consulted every
  /// `interval` enumeration steps (a step is one candidate generated or
  /// one buffered candidate examined — so the machine stops *mid-
  /// subtree*, within a bounded amount of work, not at the next answer
  /// boundary). Once the probe returns true the enumeration is over:
  /// `Next` returns false from then on and `interrupted()` stays true.
  /// The engine's `Cursor` wires `ExecOptions` deadlines and
  /// cancellation tokens through this.
  void SetInterruptProbe(std::function<bool()> probe, uint32_t interval) {
    probe_ = std::move(probe);
    probe_interval_ = interval == 0 ? 1 : interval;
  }

  /// True iff the enumeration was stopped by the interruption probe
  /// (as opposed to running out of answers).
  bool interrupted() const { return interrupted_; }

  State state() const { return state_; }
  const EnumerateStats& stats() const { return stats_; }

  /// Installs an optional `ExecStats` sink for fine-grained collection:
  /// per-subpattern candidate/rejection/row counters (rendered through
  /// `pool`), interrupt-probe counts and enumeration totals, all written
  /// as plain cursor-local increments. Null sink (the default) keeps the
  /// hot path exactly as uninstrumented. Both pointers must outlive the
  /// enumerator; install before the first `Next`.
  void SetStatsSink(ExecStats* sink, const TermPool* pool) {
    sink_ = sink;
    sink_pool_ = pool;
  }

  /// Installs a request-scoped trace sink (see wdsparql/trace.h): the
  /// enumerator then emits one `subtree` span per wdpf subtree it opens,
  /// parented under `parent` — a span at subtree *boundaries*, never per
  /// candidate or per row, so the hot loop stays untouched. The context
  /// must outlive the enumerator; install before the first `Next`.
  void SetTraceSink(TraceContext* trace, uint32_t parent) {
    trace_ = trace;
    trace_parent_ = parent;
  }

 private:
  /// Opens the next subtree (pattern, children, candidate generator,
  /// trace span). Returns false when every tree is exhausted or the
  /// interruption probe fired mid-materialisation.
  bool AdvanceSubtree();

  /// Counts one enumeration step; every `probe_interval_` steps asks
  /// the probe whether to stop. Returns (and latches) the interrupted
  /// state.
  bool CheckInterrupt();

  /// The `ExecStats::Subpattern` entry of the open subtree (valid only
  /// while `sink_` is set and the current subtree produced candidates).
  ExecStats::Subpattern* CurSubpattern();

  /// Ends the open subtree's trace span, if any (subtree boundary,
  /// exhaustion, interruption, destruction — whichever comes first),
  /// annotating it with the candidates pulled so far — a lazy generator
  /// only knows its candidate count at the boundary, not up front.
  void EndSubtreeSpan() {
    if (subtree_span_ != 0) {
      trace_->Annotate(subtree_span_, "candidates", cur_candidates_);
      trace_->EndSpan(subtree_span_);
      subtree_span_ = 0;
    }
  }

  const PatternForest* forest_;
  EnumerationHooks hooks_;
  EnumerateStats stats_;
  State state_ = State::kStart;

  // Optional fine-grained stats collection (see SetStatsSink).
  ExecStats* sink_ = nullptr;
  const TermPool* sink_pool_ = nullptr;
  bool sink_has_cur_ = false;  // Does subpatterns.back() describe the open subtree?

  // Optional per-subtree tracing (see SetTraceSink). `subtree_span_` is
  // the open subtree's span, ended at the next boundary (or destruction).
  TraceContext* trace_ = nullptr;
  uint32_t trace_parent_ = 0;
  uint32_t subtree_span_ = 0;

  // Cooperative interruption (see SetInterruptProbe).
  std::function<bool()> probe_;
  uint32_t probe_interval_ = 64;
  uint32_t steps_since_probe_ = 0;
  bool interrupted_ = false;

  // Explicit iteration coordinates. kNoTree marks "no tree loaded yet";
  // the first advance wraps it to tree 0.
  static constexpr std::size_t kNoTree = static_cast<std::size_t>(-1);
  std::size_t tree_idx_ = kNoTree;
  const PatternTree* cur_tree_ = nullptr;  // Tree of the open subtree.
  std::vector<Subtree> subtrees_;        // Subtrees of the current tree.
  std::size_t subtree_idx_ = 0;          // Next subtree to open.
  TripleSet pattern_;                    // pat(T') of the open subtree.
  std::vector<NodeId> children_;         // Children of the open subtree.
  /// The open subtree's candidate source (null between subtrees). A
  /// pull-based hook keeps the full suspendable-join state here; the
  /// batch fallback wraps a materialised vector.
  std::unique_ptr<CandidateGenerator> generator_;
  uint64_t cur_candidates_ = 0;          // Candidates pulled from `generator_`.
  std::unordered_set<Mapping, MappingHash> seen_;  // Cross-subtree dedup.
};

/// Streams every mu in JFKG, using exact homomorphism maximality tests.
/// The callback may return false to stop. Duplicates across trees and
/// subtrees are suppressed.
void EnumerateSolutionsNaive(const PatternForest& forest, const RdfGraph& graph,
                             const std::function<bool(const Mapping&)>& callback,
                             EnumerateStats* stats = nullptr);

/// Backend-generic variant: candidate generation and maximality tests
/// run against the `TripleSource` scan interface (hash backend or the
/// engine's dictionary-encoded permutation store).
void EnumerateSolutionsNaive(const PatternForest& forest, const TripleSource& graph,
                             const std::function<bool(const Mapping&)>& callback,
                             EnumerateStats* stats = nullptr);

/// Streams answers using (k+1)-pebble maximality tests. Every emitted
/// mapping is in JFKG; under dw(F) <= k the stream is exactly JFKG.
void EnumerateSolutionsPebble(const PatternForest& forest, const RdfGraph& graph,
                              int k, const std::function<bool(const Mapping&)>& callback,
                              EnumerateStats* stats = nullptr);

/// Convenience: materialise the pebble enumeration, sorted and unique.
std::vector<Mapping> AllSolutionsPebble(const PatternForest& forest,
                                        const RdfGraph& graph, int k,
                                        EnumerateStats* stats = nullptr);

/// |JFKG| via the naive enumeration (counting variant; Section 5).
uint64_t CountSolutions(const PatternForest& forest, const RdfGraph& graph);

}  // namespace wdsparql

#endif  // WDSPARQL_WD_ENUMERATE_H_
