#ifndef WDSPARQL_WD_BRANCH_WIDTH_H_
#define WDSPARQL_WD_BRANCH_WIDTH_H_

#include <vector>

#include "ptree/pattern_tree.h"
#include "ptree/tgraph.h"
#include "sparql/ast.h"
#include "util/status.h"

/// \file
/// Branch treewidth (Definition 3, Section 3.2).
///
/// For a wdPT T and a non-root node n, the branch B_n is the root-to-
/// parent path of n; S^br_n = pat(n) u U_{n' in B_n} pat(n') and
/// X^br_n = vars(U_{n' in B_n} pat(n')). The branch treewidth bw(T) is
/// the least k with ctw(S^br_n, X^br_n) <= k for all non-root n.
/// Proposition 5: for UNION-free well-designed patterns, dw(P) = bw(P);
/// this module provides the simpler measure (and the tests confirm the
/// coincidence against wd/domination.h).

namespace wdsparql {

/// Per-node detail of a branch treewidth computation.
struct BranchNodeWidth {
  NodeId node = -1;
  GeneralizedTGraph branch_graph;  ///< (S^br_n, X^br_n).
  int core_treewidth = 0;          ///< ctw(S^br_n, X^br_n).
};

/// Computes ctw(S^br_n, X^br_n) for every non-root node of `tree`.
std::vector<BranchNodeWidth> BranchWidths(const PatternTree& tree);

/// bw(T): the branch treewidth of the tree (1 for single-node trees).
int BranchTreewidth(const PatternTree& tree);

/// bw(P) for a UNION-free well-designed pattern (Definition 3); fails on
/// patterns with UNION or that are not well designed.
Result<int> BranchTreewidthOfPattern(const PatternPtr& pattern, const TermPool& pool);

}  // namespace wdsparql

#endif  // WDSPARQL_WD_BRANCH_WIDTH_H_
