#include "wd/local_tractability.h"

#include <algorithm>

namespace wdsparql {

std::vector<LocalNodeWidth> LocalWidths(const PatternForest& forest) {
  std::vector<LocalNodeWidth> out;
  for (std::size_t i = 0; i < forest.trees.size(); ++i) {
    const PatternTree& tree = forest.trees[i];
    for (NodeId n = 1; n < tree.NumNodes(); ++n) {
      const std::vector<TermId>& node_vars = tree.variables(n);
      const std::vector<TermId>& parent_vars = tree.variables(tree.parent(n));
      std::vector<TermId> interface;
      std::set_intersection(node_vars.begin(), node_vars.end(), parent_vars.begin(),
                            parent_vars.end(), std::back_inserter(interface));
      GeneralizedTGraph local(tree.pattern(n), interface);
      LocalNodeWidth detail;
      detail.tree_index = static_cast<int>(i);
      detail.node = n;
      detail.core_treewidth = CoreTreewidthOf(local).upper;
      out.push_back(detail);
    }
  }
  return out;
}

int LocalWidth(const PatternForest& forest) {
  int width = 1;
  for (const LocalNodeWidth& detail : LocalWidths(forest)) {
    width = std::max(width, detail.core_treewidth);
  }
  return width;
}

}  // namespace wdsparql
