#ifndef WDSPARQL_WD_DOMINATION_H_
#define WDSPARQL_WD_DOMINATION_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "ptree/forest.h"
#include "ptree/subtree.h"
#include "ptree/tgraph.h"
#include "util/status.h"

/// \file
/// Domination width (Definitions 1 and 2, Section 3.1).
///
/// For a subtree T of a forest F, the paper derives a set GtG(T) of
/// generalised t-graphs (S_Delta, vars(T)), one per *valid children
/// assignment* Delta, capturing every way mu could simultaneously fail
/// to be maximal in all forest members supporting T. GtG(T) is
/// k-dominated if its members of core treewidth <= k homomorphically
/// dominate the rest; dw(F) is the least k making every subtree's GtG
/// k-dominated.
///
/// Everything here is *recognition-level* machinery: enumerating subtrees
/// and children assignments is exponential (the recognition problem is
/// NP-hard already for UNION-free patterns and in Pi^p_2 in general,
/// Section 5), so the APIs carry explicit budgets. The evaluation
/// algorithms in wd/eval.h never call any of this.

namespace wdsparql {

/// A children assignment Delta: tree index -> chosen child node of the
/// witness subtree T^sp(i). Sorted map for deterministic enumeration.
using ChildrenAssignment = std::map<int, NodeId>;

/// supp(T) entry: a supporting tree and its witness subtree T^sp(i).
struct SupportEntry {
  int tree_index = -1;
  Subtree witness;
};

/// Computes supp(T): for each tree of `forest`, the unique subtree with
/// the same variable set as `subtree`, if it exists.
std::vector<SupportEntry> ComputeSupport(const PatternForest& forest,
                                         const Subtree& subtree);

/// The generalised t-graph S_Delta = pat(T) u U_i rho_Delta(i), with
/// variables of each chosen child outside vars(T) renamed fresh via
/// `pool`. `support` must come from ComputeSupport on the same subtree.
GeneralizedTGraph BuildSDelta(const PatternForest& forest, const Subtree& subtree,
                              const std::vector<SupportEntry>& support,
                              const ChildrenAssignment& delta, TermPool* pool);

/// True iff Delta is *valid*: no unsupported index j in supp(T)\dom(Delta)
/// with (pat(T^sp(j)), vars(T)) -> (S_Delta, vars(T)).
bool IsValidAssignment(const PatternForest& forest, const Subtree& subtree,
                       const std::vector<SupportEntry>& support,
                       const ChildrenAssignment& delta,
                       const GeneralizedTGraph& s_delta);

/// An element of GtG(T) with its assignment and core treewidth.
struct GtGElement {
  ChildrenAssignment delta;
  GeneralizedTGraph graph;   ///< (S_Delta, vars(T)).
  int core_treewidth = 0;    ///< ctw(S_Delta, vars(T)).
};

/// Budgets for the recognition computations.
struct DominationOptions {
  uint64_t max_assignments_per_subtree = 1u << 20;
  uint64_t max_subtrees = 1u << 20;
};

/// Computes GtG(T) = {(S_Delta, vars(T)) : Delta valid}, with core
/// treewidths. Fails with ResourceExhausted past the budget.
Result<std::vector<GtGElement>> ComputeGtG(const PatternForest& forest,
                                           const Subtree& subtree, TermPool* pool,
                                           const DominationOptions& options = {});

/// The least k for which `gtg` is k-dominated (Definition 1); 1 if empty.
int MinDominationWidth(const std::vector<GtGElement>& gtg);

/// dw(F): the domination width of the forest (Definition 2).
Result<int> DominationWidth(const PatternForest& forest, TermPool* pool,
                            const DominationOptions& options = {});

/// dw(P) = dw(wdpf(P)) for a well-designed pattern.
Result<int> DominationWidthOfPattern(const PatternPtr& pattern, TermPool* pool,
                                     const DominationOptions& options = {});

}  // namespace wdsparql

#endif  // WDSPARQL_WD_DOMINATION_H_
