#ifndef WDSPARQL_HOM_TREEWIDTH_H_
#define WDSPARQL_HOM_TREEWIDTH_H_

#include <vector>

#include "util/undirected_graph.h"

/// \file
/// Treewidth of undirected graphs (Section 2, "Treewidth").
///
/// Used through the Gaifman graph to define tw(S, X) and ctw(S, X).
/// The library computes:
///  * a lower bound (degeneracy, plus the minor-monotone MMD+ style
///    contraction bound),
///  * an upper bound (min-fill greedy elimination), and
///  * the exact value via the Bodlaender-Fomin-Koster-Kratsch-Thilikos
///    O*(2^n) elimination-ordering subset DP when the (per-component)
///    vertex count is small enough.
///
/// Treewidth is intractable in general; exactness is reported so callers
/// can distinguish "tw = 4" from "tw in [3, 5]".

namespace wdsparql {

/// Result of a treewidth computation: bounds plus tree decomposition.
struct TreewidthResult {
  int lower = 0;  ///< Proven lower bound.
  int upper = 0;  ///< Achieved upper bound (width of `order`-induced decomposition).
  /// Elimination order achieving `upper` (vertex ids of the input graph).
  std::vector<int> elimination_order;

  /// True iff lower == upper.
  bool exact() const { return lower == upper; }
  /// The exact treewidth; fatal if not exact.
  int value() const;
};

/// Options for `ComputeTreewidth`.
struct TreewidthOptions {
  /// Components with at most this many vertices get the exact 2^n DP.
  int exact_dp_max_vertices = 18;
};

/// Computes treewidth bounds for `graph`. Graphs with no edges have
/// treewidth 0 by convention of the underlying measure; the paper's
/// tw(S, X) floors this at 1, which ptree/tgraph.h applies.
TreewidthResult ComputeTreewidth(const UndirectedGraph& graph,
                                 const TreewidthOptions& options = {});

/// Width of eliminating `graph` along `order` (max back-degree over the
/// fill-in closure). Exposed for testing.
int EliminationWidth(const UndirectedGraph& graph, const std::vector<int>& order);

/// A tree decomposition (tree + bags), as produced from an elimination
/// order. Bag i corresponds to tree node i; `parent[i]` is its parent or
/// -1 for the root.
struct TreeDecomposition {
  std::vector<std::vector<int>> bags;
  std::vector<int> parent;

  /// max |bag| - 1.
  int Width() const;
};

/// Builds the tree decomposition induced by an elimination order.
TreeDecomposition DecompositionFromOrder(const UndirectedGraph& graph,
                                         const std::vector<int>& order);

/// Verifies the three tree-decomposition axioms against `graph`
/// (coverage of vertices, coverage of edges, connectivity of occurrences).
bool IsValidTreeDecomposition(const UndirectedGraph& graph,
                              const TreeDecomposition& decomposition);

}  // namespace wdsparql

#endif  // WDSPARQL_HOM_TREEWIDTH_H_
