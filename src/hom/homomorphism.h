#ifndef WDSPARQL_HOM_HOMOMORPHISM_H_
#define WDSPARQL_HOM_HOMOMORPHISM_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/scan.h"
#include "rdf/triple_set.h"

/// \file
/// Homomorphisms between triple sets.
///
/// A homomorphism from a t-graph S to a t-graph (or RDF graph) S' is a
/// function h on vars(S) with h(t) in S' for every triple t in S; IRIs map
/// to themselves. The paper's three uses are all supported through the
/// `fixed` pre-assignment:
///
/// * `(S, X) -> (S', X)`   : fix every x in X to itself;
/// * `(S, X) ->mu G`       : fix every x in X to mu(x);
/// * endomorphisms for cores: source == target, optionally with banned
///   image terms (to search for proper retractions).
///
/// Deciding existence is NP-complete (Chandra-Merlin); the solver is a
/// backtracking CSP search with most-constrained-variable ordering and
/// index-driven candidate generation, exact but exponential in the worst
/// case. The polynomial relaxation `->mu_k` lives in pebble.h.

namespace wdsparql {

/// A (total) variable assignment produced by the solver.
using VarAssignment = std::unordered_map<TermId, TermId>;

/// How aggressively the solver prunes candidate domains.
enum class PropagationLevel {
  /// Pure chronological backtracking: a value is rejected only when a
  /// fully determined triple fails. (Ablation baseline.)
  kNone,
  /// One-step forward checking: after each assignment, revise the
  /// domains of variables sharing a triple with the assigned one, without
  /// cascading. (Ablation midpoint.)
  kForward,
  /// AC-3 at the root plus full re-propagation after every assignment
  /// (MAC). Default; see bench_a1_solver_ablation for the measured gap.
  kFull,
};

/// Optional knobs for the homomorphism search.
struct HomOptions {
  /// Terms of the target that must not appear in the image of any
  /// variable (used by the core computation to force proper retracts).
  std::unordered_set<TermId> banned_image;

  /// Upper bound on backtracking nodes; 0 means unlimited. When the
  /// budget is exhausted the search reports "no" conservatively and sets
  /// `*budget_exhausted` if provided.
  uint64_t max_nodes = 0;
  bool* budget_exhausted = nullptr;

  /// Domain-pruning strategy (see PropagationLevel).
  PropagationLevel propagation = PropagationLevel::kFull;

  /// If non-null, receives the number of search nodes explored.
  uint64_t* nodes_explored = nullptr;
};

/// Searches for a homomorphism h from `source` to `target` extending
/// `fixed` (a pre-assignment of some variables of `source` to terms of
/// the target). Returns the full assignment (including `fixed`) or
/// nullopt.
///
/// The solver generates candidates through the `TripleSource` scan
/// interface, so any backend (hash-indexed or dictionary-encoded
/// permutation store) can serve as the target.
std::optional<VarAssignment> FindHomomorphism(const TripleSet& source,
                                              const VarAssignment& fixed,
                                              const TripleSource& target,
                                              const HomOptions& options = {});

/// Convenience overload over a bare `TripleSet` (hash backend).
std::optional<VarAssignment> FindHomomorphism(const TripleSet& source,
                                              const VarAssignment& fixed,
                                              const TripleSet& target,
                                              const HomOptions& options = {});

/// True iff a homomorphism extending `fixed` exists.
bool HasHomomorphism(const TripleSet& source, const VarAssignment& fixed,
                     const TripleSource& target, const HomOptions& options = {});
bool HasHomomorphism(const TripleSet& source, const VarAssignment& fixed,
                     const TripleSet& target, const HomOptions& options = {});

/// Enumerates every homomorphism from `source` to `target` extending
/// `fixed`, invoking `callback` for each; enumeration stops early if the
/// callback returns false. Deterministic order.
void EnumerateHomomorphisms(const TripleSet& source, const VarAssignment& fixed,
                            const TripleSource& target,
                            const std::function<bool(const VarAssignment&)>& callback);
void EnumerateHomomorphisms(const TripleSet& source, const VarAssignment& fixed,
                            const TripleSet& target,
                            const std::function<bool(const VarAssignment&)>& callback);

/// Applies `assignment` to `t` (variables outside the assignment are kept).
Triple ApplyAssignment(const VarAssignment& assignment, const Triple& t);

/// The image t-graph {h(t) : t in S} of `source` under `assignment`.
TripleSet ApplyAssignment(const VarAssignment& assignment, const TripleSet& source);

/// Builds the identity pre-assignment {x -> x : x in X} used for
/// homomorphisms between generalised t-graphs with the same X.
VarAssignment IdentityOn(const std::vector<TermId>& X);

}  // namespace wdsparql

#endif  // WDSPARQL_HOM_HOMOMORPHISM_H_
