#ifndef WDSPARQL_HOM_PEBBLE_H_
#define WDSPARQL_HOM_PEBBLE_H_

#include <cstdint>

#include "hom/homomorphism.h"
#include "rdf/triple_set.h"

/// \file
/// The existential k-pebble game (Kolaitis-Vardi; Section 2 of the paper).
///
/// For a generalised t-graph (S, X), a target graph G and a mapping mu
/// with dom(mu) = X, the relation (S, X) ->mu_k G holds iff the
/// Duplicator wins the existential k-pebble game. Equivalently
/// (Kolaitis-Vardi), iff there is a non-empty family of partial
/// homomorphisms of size <= k that is closed under restrictions and has
/// the forth (extension) property. We compute the greatest such family by
/// the standard strong-k-consistency deletion fixpoint and report whether
/// the empty map survives.
///
/// Properties implemented here and exercised by the tests:
///  * ->mu implies ->mu_k (the game is a relaxation, eq. (2));
///  * with no free variables, ->mu_k equals ->mu (eq. (1));
///  * if ctw(S, X) <= k-1 then ->mu_k equals ->mu (Dalmau et al.,
///    Proposition 3);
///  * deciding ->mu_k takes polynomial time for fixed k (Proposition 2).

namespace wdsparql {

/// Statistics of a pebble-game fixpoint computation (for the benches).
struct PebbleGameStats {
  uint64_t maps_created = 0;  ///< Partial homomorphisms generated.
  uint64_t maps_deleted = 0;  ///< Maps removed by the fixpoint.
};

/// Decides (S, X) ->mu_k `target`, where `fixed` encodes mu (or the
/// identity on X for t-graph targets). Variables of `source` outside
/// `fixed` are the Spoiler's pebbles; `k` >= 1 is the number of pebbles.
///
/// Setting k >= |free vars| makes the game equivalent to exact
/// homomorphism (every configuration is total).
bool PebbleGameWins(const TripleSet& source, const VarAssignment& fixed,
                    const TripleSet& target, int k,
                    PebbleGameStats* stats = nullptr);

}  // namespace wdsparql

#endif  // WDSPARQL_HOM_PEBBLE_H_
