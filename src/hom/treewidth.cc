#include "hom/treewidth.h"

#include <algorithm>
#include <cstdint>
#include <queue>

#include "util/check.h"

namespace wdsparql {
namespace {

/// Greedy min-fill elimination order; a standard high-quality treewidth
/// upper-bound heuristic.
std::vector<int> MinFillOrder(const UndirectedGraph& graph) {
  int n = graph.NumVertices();
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  for (const auto& [u, v] : graph.Edges()) adj[u][v] = adj[v][u] = true;
  std::vector<bool> eliminated(n, false);
  std::vector<int> order;
  order.reserve(n);

  for (int step = 0; step < n; ++step) {
    int best = -1;
    long best_fill = -1;
    int best_degree = -1;
    for (int v = 0; v < n; ++v) {
      if (eliminated[v]) continue;
      std::vector<int> nbrs;
      for (int u = 0; u < n; ++u) {
        if (u != v && !eliminated[u] && adj[v][u]) nbrs.push_back(u);
      }
      long fill = 0;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
          if (!adj[nbrs[i]][nbrs[j]]) ++fill;
        }
      }
      int degree = static_cast<int>(nbrs.size());
      if (best == -1 || fill < best_fill ||
          (fill == best_fill && degree < best_degree)) {
        best = v;
        best_fill = fill;
        best_degree = degree;
      }
    }
    // Eliminate `best`: connect its remaining neighbours pairwise.
    std::vector<int> nbrs;
    for (int u = 0; u < n; ++u) {
      if (u != best && !eliminated[u] && adj[best][u]) nbrs.push_back(u);
    }
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        adj[nbrs[i]][nbrs[j]] = adj[nbrs[j]][nbrs[i]] = true;
      }
    }
    eliminated[best] = true;
    order.push_back(best);
  }
  return order;
}

/// q(R, v): the number of vertices outside R u {v} reachable from v by a
/// path whose interior lies inside R (v's degree once R is eliminated).
int EliminatedDegree(const UndirectedGraph& graph, uint32_t r_mask, int v) {
  int n = graph.NumVertices();
  std::vector<bool> visited(n, false);
  visited[v] = true;
  std::queue<int> queue;
  queue.push(v);
  int count = 0;
  while (!queue.empty()) {
    int u = queue.front();
    queue.pop();
    for (int w : graph.Neighbors(u)) {
      if (visited[w]) continue;
      visited[w] = true;
      if ((r_mask >> w) & 1) {
        queue.push(w);  // Interior vertex: keep expanding.
      } else {
        ++count;  // Reachable surviving vertex.
      }
    }
  }
  return count;
}

/// Exact treewidth of a connected graph with n <= 31 vertices via the
/// elimination-ordering subset DP; also reconstructs an optimal order.
int ExactTreewidthDp(const UndirectedGraph& graph, std::vector<int>* order) {
  int n = graph.NumVertices();
  WDSPARQL_CHECK(n >= 1 && n <= 31);
  std::vector<int8_t> f(std::size_t(1) << n, 0);
  // f[S] = min over elimination sequences of S (as a prefix) of the max
  // eliminated degree; f[V] is the treewidth.
  for (uint32_t mask = 1; mask < (uint32_t(1) << n); ++mask) {
    int best = n;  // Upper bound: eliminating into <= n-1 neighbours.
    for (int v = 0; v < n; ++v) {
      if (!((mask >> v) & 1)) continue;
      uint32_t rest = mask & ~(uint32_t(1) << v);
      int cost = std::max<int>(f[rest], EliminatedDegree(graph, rest, v));
      best = std::min(best, cost);
    }
    f[mask] = static_cast<int8_t>(best);
  }
  if (order != nullptr) {
    order->clear();
    order->resize(n);
    uint32_t mask = (uint32_t(1) << n) - 1;
    for (int slot = n - 1; slot >= 0; --slot) {
      for (int v = 0; v < n; ++v) {
        if (!((mask >> v) & 1)) continue;
        uint32_t rest = mask & ~(uint32_t(1) << v);
        if (std::max<int>(f[rest], EliminatedDegree(graph, rest, v)) == f[mask]) {
          (*order)[slot] = v;
          mask = rest;
          break;
        }
      }
    }
  }
  return f[(uint32_t(1) << n) - 1];
}

}  // namespace

int EliminationWidth(const UndirectedGraph& graph, const std::vector<int>& order) {
  int n = graph.NumVertices();
  WDSPARQL_CHECK(static_cast<int>(order.size()) == n);
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  for (const auto& [u, v] : graph.Edges()) adj[u][v] = adj[v][u] = true;
  std::vector<bool> eliminated(n, false);
  int width = 0;
  for (int v : order) {
    WDSPARQL_CHECK(!eliminated[v]);
    std::vector<int> nbrs;
    for (int u = 0; u < n; ++u) {
      if (u != v && !eliminated[u] && adj[v][u]) nbrs.push_back(u);
    }
    width = std::max(width, static_cast<int>(nbrs.size()));
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        adj[nbrs[i]][nbrs[j]] = adj[nbrs[j]][nbrs[i]] = true;
      }
    }
    eliminated[v] = true;
  }
  return width;
}

int TreewidthResult::value() const {
  WDSPARQL_CHECK(exact());
  return upper;
}

TreewidthResult ComputeTreewidth(const UndirectedGraph& graph,
                                 const TreewidthOptions& options) {
  TreewidthResult result;
  int n = graph.NumVertices();
  if (n == 0) {
    result.lower = result.upper = 0;
    return result;
  }

  // Work per connected component; treewidth is the max over components.
  std::vector<int> order_global;
  int lower = 0;
  int upper = 0;
  for (const std::vector<int>& component : graph.ConnectedComponents()) {
    std::vector<int> index;
    UndirectedGraph sub = graph.InducedSubgraph(component, &index);
    int comp_n = sub.NumVertices();

    int comp_lower = sub.Degeneracy();
    std::vector<int> comp_order = MinFillOrder(sub);
    int comp_upper = EliminationWidth(sub, comp_order);

    if (comp_lower < comp_upper && comp_n <= options.exact_dp_max_vertices) {
      std::vector<int> exact_order;
      int exact = ExactTreewidthDp(sub, &exact_order);
      WDSPARQL_CHECK(exact >= comp_lower && exact <= comp_upper);
      comp_lower = comp_upper = exact;
      comp_order = std::move(exact_order);
    }

    lower = std::max(lower, comp_lower);
    upper = std::max(upper, comp_upper);
    for (int local : comp_order) order_global.push_back(index[local]);
  }
  result.lower = lower;
  result.upper = upper;
  result.elimination_order = std::move(order_global);
  return result;
}

int TreeDecomposition::Width() const {
  int width = 0;
  for (const std::vector<int>& bag : bags) {
    width = std::max(width, static_cast<int>(bag.size()) - 1);
  }
  return width;
}

TreeDecomposition DecompositionFromOrder(const UndirectedGraph& graph,
                                         const std::vector<int>& order) {
  int n = graph.NumVertices();
  WDSPARQL_CHECK(static_cast<int>(order.size()) == n);
  TreeDecomposition decomposition;
  decomposition.bags.resize(n);
  decomposition.parent.assign(n, -1);

  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  for (const auto& [u, v] : graph.Edges()) adj[u][v] = adj[v][u] = true;
  std::vector<int> position(n);
  for (int i = 0; i < n; ++i) position[order[i]] = i;

  std::vector<bool> eliminated(n, false);
  for (int i = 0; i < n; ++i) {
    int v = order[i];
    std::vector<int> nbrs;
    for (int u = 0; u < n; ++u) {
      if (u != v && !eliminated[u] && adj[v][u]) nbrs.push_back(u);
    }
    decomposition.bags[i].push_back(v);
    decomposition.bags[i].insert(decomposition.bags[i].end(), nbrs.begin(), nbrs.end());
    // Parent: the bag of the earliest-eliminated surviving neighbour; a
    // vertex with no surviving neighbours attaches to the next bag so the
    // decomposition stays a tree.
    if (!nbrs.empty()) {
      int parent_vertex = *std::min_element(
          nbrs.begin(), nbrs.end(),
          [&position](int a, int b) { return position[a] < position[b]; });
      decomposition.parent[i] = position[parent_vertex];
    } else if (i + 1 < n) {
      decomposition.parent[i] = i + 1;
    }
    for (std::size_t a = 0; a < nbrs.size(); ++a) {
      for (std::size_t b = a + 1; b < nbrs.size(); ++b) {
        adj[nbrs[a]][nbrs[b]] = adj[nbrs[b]][nbrs[a]] = true;
      }
    }
    eliminated[v] = true;
  }
  return decomposition;
}

bool IsValidTreeDecomposition(const UndirectedGraph& graph,
                              const TreeDecomposition& decomposition) {
  int n = graph.NumVertices();
  int num_bags = static_cast<int>(decomposition.bags.size());

  // Axiom 1: every vertex appears in some bag.
  std::vector<std::vector<int>> bags_of(n);
  for (int b = 0; b < num_bags; ++b) {
    for (int v : decomposition.bags[b]) {
      if (v < 0 || v >= n) return false;
      bags_of[v].push_back(b);
    }
  }
  for (int v = 0; v < n; ++v) {
    if (bags_of[v].empty()) return false;
  }

  // Axiom 2: every edge is contained in some bag.
  for (const auto& [u, v] : graph.Edges()) {
    bool covered = false;
    for (int b : bags_of[u]) {
      const auto& bag = decomposition.bags[b];
      if (std::find(bag.begin(), bag.end(), v) != bag.end()) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }

  // Axiom 3: the bags containing each vertex induce a connected subtree.
  // Build bidirectional tree adjacency.
  std::vector<std::vector<int>> tree_adj(num_bags);
  for (int b = 0; b < num_bags; ++b) {
    int p = decomposition.parent[b];
    if (p >= 0) {
      tree_adj[b].push_back(p);
      tree_adj[p].push_back(b);
    }
  }
  for (int v = 0; v < n; ++v) {
    std::vector<bool> in_set(num_bags, false);
    for (int b : bags_of[v]) in_set[b] = true;
    std::queue<int> queue;
    queue.push(bags_of[v][0]);
    std::vector<bool> seen(num_bags, false);
    seen[bags_of[v][0]] = true;
    int reached = 0;
    while (!queue.empty()) {
      int b = queue.front();
      queue.pop();
      ++reached;
      for (int nb : tree_adj[b]) {
        if (!seen[nb] && in_set[nb]) {
          seen[nb] = true;
          queue.push(nb);
        }
      }
    }
    if (reached != static_cast<int>(bags_of[v].size())) return false;
  }
  return true;
}

}  // namespace wdsparql
