#include "hom/core.h"

#include <unordered_set>

#include "util/check.h"

namespace wdsparql {
namespace {

/// Searches for an endomorphism of (S, X) that avoids at least one
/// non-distinguished variable in its image; returns the folded image
/// t-graph, or nullopt if (S, X) is a core.
std::optional<TripleSet> TryFold(const TripleSet& S, const VarAssignment& identity_x) {
  for (TermId var : S.Variables()) {
    if (identity_x.find(var) != identity_x.end()) continue;  // Distinguished.
    HomOptions options;
    options.banned_image.insert(var);
    std::optional<VarAssignment> h = FindHomomorphism(S, identity_x, S, options);
    if (h.has_value()) {
      TripleSet image = ApplyAssignment(*h, S);
      WDSPARQL_DCHECK(image.size() <= S.size());
      return image;
    }
  }
  return std::nullopt;
}

}  // namespace

TripleSet ComputeCore(const TripleSet& S, const std::vector<TermId>& X) {
  VarAssignment identity_x = IdentityOn(X);
  TripleSet current = S;
  for (;;) {
    std::optional<TripleSet> folded = TryFold(current, identity_x);
    if (!folded.has_value()) return current;
    current = std::move(*folded);
  }
}

bool IsCore(const TripleSet& S, const std::vector<TermId>& X) {
  VarAssignment identity_x = IdentityOn(X);
  return !TryFold(S, identity_x).has_value();
}

bool HomEquivalent(const TripleSet& S, const TripleSet& S2,
                   const std::vector<TermId>& X) {
  VarAssignment identity_x = IdentityOn(X);
  return HasHomomorphism(S, identity_x, S2) && HasHomomorphism(S2, identity_x, S);
}

}  // namespace wdsparql
