#ifndef WDSPARQL_HOM_CORE_H_
#define WDSPARQL_HOM_CORE_H_

#include <vector>

#include "hom/homomorphism.h"
#include "rdf/triple_set.h"

/// \file
/// Cores of generalised t-graphs (Section 2, Proposition 1).
///
/// A generalised t-graph (S, X) is a core if it admits no homomorphism
/// (fixing X pointwise) to a proper subgraph of itself. Every (S, X) has
/// a unique core up to variable renaming; we compute it by repeatedly
/// folding: find an endomorphism of (S, X) whose image misses some
/// non-distinguished variable and replace S by its image. Each fold
/// removes at least one variable, so at most |vars(S)| exponential
/// endomorphism searches are made (core recognition is itself NP-hard,
/// matching the paper's remarks on the recognition problem).

namespace wdsparql {

/// Computes the core of the generalised t-graph (S, X). The result is a
/// subgraph of `S` containing every triple over X u I, with X untouched.
TripleSet ComputeCore(const TripleSet& S, const std::vector<TermId>& X);

/// True iff (S, X) is a core (no proper retract).
bool IsCore(const TripleSet& S, const std::vector<TermId>& X);

/// True iff (S, X) and (S2, X) are homomorphically equivalent (maps in
/// both directions fixing X pointwise).
bool HomEquivalent(const TripleSet& S, const TripleSet& S2,
                   const std::vector<TermId>& X);

}  // namespace wdsparql

#endif  // WDSPARQL_HOM_CORE_H_
