#include "hom/homomorphism.h"

#include <algorithm>
#include <deque>

#include "util/check.h"

namespace wdsparql {
namespace {

/// Backtracking engine for homomorphism existence and enumeration.
///
/// The solver maintains arc-consistent candidate domains per free
/// variable (AC-3 over the triple constraints) and searches with
/// minimum-remaining-values ordering, re-establishing consistency after
/// every assignment (MAC). This keeps the paper's hard instances — clique
/// queries against dense hosts, the Lemma 2 gadgets — within reach while
/// remaining exact.
///
/// Candidate support is probed through the `TripleSource` scan
/// interface: each revision builds a partially bound probe pattern and
/// lets the backend pick its best access path (hash index or permutation
/// range).
class HomSearch {
 public:
  HomSearch(const TripleSet& source, const VarAssignment& fixed,
            const TripleSource& target, const HomOptions& options)
      : source_(source), target_(target), options_(options), fixed_(fixed) {
    for (TermId var : source_.Variables()) {
      if (fixed_.find(var) == fixed_.end()) {
        var_index_[var] = static_cast<int>(free_vars_.size());
        free_vars_.push_back(var);
      }
    }
    triples_of_var_.resize(free_vars_.size());
    for (std::size_t i = 0; i < source_.triples().size(); ++i) {
      const Triple& t = source_.triples()[i];
      for (TermId var : t.Variables()) {
        auto it = var_index_.find(var);
        if (it != var_index_.end()) triples_of_var_[it->second].push_back(i);
      }
    }
  }

  /// Runs the search, invoking `callback` per solution; the callback may
  /// return false to stop early.
  void Run(const std::function<bool(const VarAssignment&)>& callback) {
    callback_ = &callback;

    // Triples without free variables must hold under `fixed` alone.
    for (const Triple& t : source_.triples()) {
      bool has_free = false;
      for (TermId var : t.Variables()) {
        if (var_index_.count(var) > 0) {
          has_free = true;
          break;
        }
      }
      if (!has_free && !target_.Contains(ApplyAssignment(fixed_, t))) return;
    }

    if (free_vars_.empty()) {
      (*callback_)(fixed_);
      return;
    }

    if (!InitializeDomains()) return;
    assigned_.assign(free_vars_.size(), false);
    if (options_.propagation == PropagationLevel::kFull) {
      // Root-level arc consistency.
      std::deque<std::size_t> queue;
      for (std::size_t t = 0; t < source_.triples().size(); ++t) queue.push_back(t);
      if (!Propagate(&queue)) return;
    }

    Backtrack(0);
    if (options_.nodes_explored != nullptr) *options_.nodes_explored = nodes_;
  }

 private:
  /// The image of `term` if determined: IRIs map to themselves, fixed
  /// variables through `fixed_`, free variables only when `assigned_`.
  std::optional<TermId> DeterminedImage(TermId term) const {
    if (!IsVariable(term)) return term;
    auto fixed_it = fixed_.find(term);
    if (fixed_it != fixed_.end()) return fixed_it->second;
    auto var_it = var_index_.find(term);
    WDSPARQL_DCHECK(var_it != var_index_.end());
    if (assigned_[var_it->second]) return domains_[var_it->second][0];
    return std::nullopt;
  }

  /// Seeds per-variable domains from the target's term population and the
  /// banned-image set. Domains stay sorted throughout the search (the
  /// support check binary-searches them); the `TripleSource` contract
  /// guarantees `AllTerms` is already ascending.
  bool InitializeDomains() {
    std::vector<TermId> all_terms = target_.AllTerms();
    WDSPARQL_DCHECK(std::is_sorted(all_terms.begin(), all_terms.end()));
    if (!options_.banned_image.empty()) {
      all_terms.erase(std::remove_if(all_terms.begin(), all_terms.end(),
                                     [this](TermId t) {
                                       return options_.banned_image.count(t) > 0;
                                     }),
                      all_terms.end());
    }
    if (all_terms.empty()) return false;
    domains_.assign(free_vars_.size(), all_terms);
    return true;
  }

  /// True iff value `a` for free var `v` has a supporting target triple
  /// for source triple `t` (all determined positions matching, all other
  /// free positions supported by their current domains).
  bool HasSupport(std::size_t t_idx, int v, TermId a) const {
    const Triple& t = source_.triples()[t_idx];
    TermId v_var = free_vars_[v];

    // Probe pattern: v's positions and every determined position are
    // bound; other free variables become wildcards, filtered below.
    Triple probe;
    for (int pos = 0; pos < 3; ++pos) {
      TermId term = t[pos];
      if (term == v_var) {
        probe.Set(pos, a);
        continue;
      }
      std::optional<TermId> image = DeterminedImage(term);
      probe.Set(pos, image.has_value() ? *image : kAnyTerm);
    }

    bool found = false;
    target_.ScanPattern(probe, [&](const Triple& d) {
      for (int pos = 0; pos < 3; ++pos) {
        TermId term = t[pos];
        if (term == v_var || DeterminedImage(term).has_value()) continue;
        // Other free variable: its domain must contain the value.
        int u = var_index_.at(term);
        const std::vector<TermId>& domain = domains_[u];
        if (!std::binary_search(domain.begin(), domain.end(), d[pos])) return true;
        // Repeated free variables across positions: require equal images.
        for (int pos2 = pos + 1; pos2 < 3; ++pos2) {
          if (t[pos2] == term && d[pos2] != d[pos]) return true;
        }
      }
      found = true;
      return false;  // Support witnessed; stop the scan.
    });
    return found;
  }

  /// AC-3: revises domains against the triples in `queue` until stable
  /// (or, with `cascade` false, a single pass — forward checking).
  /// Returns false on a wiped-out domain.
  bool Propagate(std::deque<std::size_t>* queue, bool cascade = true) {
    std::vector<bool> queued(source_.triples().size(), false);
    for (std::size_t t : *queue) queued[t] = true;
    while (!queue->empty()) {
      std::size_t t_idx = queue->front();
      queue->pop_front();
      queued[t_idx] = false;
      const Triple& t = source_.triples()[t_idx];
      for (TermId var : t.Variables()) {
        auto it = var_index_.find(var);
        if (it == var_index_.end()) continue;
        int v = it->second;
        if (assigned_[v]) continue;
        std::vector<TermId>& domain = domains_[v];
        std::size_t before = domain.size();
        domain.erase(std::remove_if(domain.begin(), domain.end(),
                                    [&](TermId a) { return !HasSupport(t_idx, v, a); }),
                     domain.end());
        if (domain.empty()) return false;
        if (cascade && domain.size() != before) {
          for (std::size_t other : triples_of_var_[v]) {
            if (!queued[other]) {
              queued[other] = true;
              queue->push_back(other);
            }
          }
        }
      }
    }
    return true;
  }

  /// kNone-mode consistency: every triple containing variable `v` whose
  /// positions are now all determined must hold in the target.
  bool DeterminedTriplesHold(int v) const {
    for (std::size_t t_idx : triples_of_var_[v]) {
      const Triple& t = source_.triples()[t_idx];
      Triple image = t;
      bool determined = true;
      for (int pos = 0; pos < 3 && determined; ++pos) {
        std::optional<TermId> value = DeterminedImage(t[pos]);
        if (!value.has_value()) {
          determined = false;
        } else {
          image.Set(pos, *value);
        }
      }
      if (determined && !target_.Contains(image)) return false;
    }
    return true;
  }

  /// Minimum-remaining-values variable choice; ties by variable order.
  int PickVariable() const {
    int best = -1;
    std::size_t best_size = 0;
    for (std::size_t v = 0; v < free_vars_.size(); ++v) {
      if (assigned_[v]) continue;
      if (best == -1 || domains_[v].size() < best_size) {
        best = static_cast<int>(v);
        best_size = domains_[v].size();
      }
    }
    return best;
  }

  void EmitSolution() {
    VarAssignment solution = fixed_;
    for (std::size_t v = 0; v < free_vars_.size(); ++v) {
      WDSPARQL_DCHECK(domains_[v].size() == 1);
      solution[free_vars_[v]] = domains_[v][0];
    }
    if (!(*callback_)(solution)) stopped_ = true;
  }

  void Backtrack(std::size_t depth) {
    if (stopped_ || budget_exceeded_) return;
    ++nodes_;
    if (options_.max_nodes != 0 && nodes_ > options_.max_nodes) {
      budget_exceeded_ = true;
      if (options_.budget_exhausted != nullptr) *options_.budget_exhausted = true;
      return;
    }
    if (depth == free_vars_.size()) {
      EmitSolution();
      return;
    }
    int v = PickVariable();
    WDSPARQL_DCHECK(v >= 0);
    std::vector<TermId> candidates = domains_[v];
    for (TermId a : candidates) {
      // Snapshot all domains (restored after the branch).
      std::vector<std::vector<TermId>> snapshot = domains_;
      domains_[v] = {a};
      assigned_[v] = true;
      bool consistent = false;
      switch (options_.propagation) {
        case PropagationLevel::kNone:
          consistent = DeterminedTriplesHold(v);
          break;
        case PropagationLevel::kForward: {
          // Domain revision skips assigned variables, so triples that
          // became fully determined (e.g. self-loops on v) must be
          // validated directly — without root arc consistency they may
          // never have constrained dom(v).
          consistent = DeterminedTriplesHold(v);
          if (consistent) {
            std::deque<std::size_t> queue(triples_of_var_[v].begin(),
                                          triples_of_var_[v].end());
            consistent = Propagate(&queue, /*cascade=*/false);
          }
          break;
        }
        case PropagationLevel::kFull: {
          std::deque<std::size_t> queue(triples_of_var_[v].begin(),
                                        triples_of_var_[v].end());
          consistent = Propagate(&queue, /*cascade=*/true);
          break;
        }
      }
      if (consistent) Backtrack(depth + 1);
      assigned_[v] = false;
      domains_ = std::move(snapshot);
      if (stopped_ || budget_exceeded_) return;
    }
  }

  const TripleSet& source_;
  const TripleSource& target_;
  HomOptions options_;
  VarAssignment fixed_;

  std::vector<TermId> free_vars_;
  std::unordered_map<TermId, int> var_index_;
  std::vector<std::vector<std::size_t>> triples_of_var_;
  std::vector<std::vector<TermId>> domains_;
  std::vector<bool> assigned_;

  const std::function<bool(const VarAssignment&)>* callback_ = nullptr;
  bool stopped_ = false;
  bool budget_exceeded_ = false;
  uint64_t nodes_ = 0;
};

}  // namespace

std::optional<VarAssignment> FindHomomorphism(const TripleSet& source,
                                              const VarAssignment& fixed,
                                              const TripleSource& target,
                                              const HomOptions& options) {
  std::optional<VarAssignment> found;
  HomSearch search(source, fixed, target, options);
  search.Run([&found](const VarAssignment& assignment) {
    found = assignment;
    return false;  // Stop at the first solution.
  });
  return found;
}

std::optional<VarAssignment> FindHomomorphism(const TripleSet& source,
                                              const VarAssignment& fixed,
                                              const TripleSet& target,
                                              const HomOptions& options) {
  HashTripleSource scan(target);
  return FindHomomorphism(source, fixed, scan, options);
}

bool HasHomomorphism(const TripleSet& source, const VarAssignment& fixed,
                     const TripleSource& target, const HomOptions& options) {
  return FindHomomorphism(source, fixed, target, options).has_value();
}

bool HasHomomorphism(const TripleSet& source, const VarAssignment& fixed,
                     const TripleSet& target, const HomOptions& options) {
  HashTripleSource scan(target);
  return HasHomomorphism(source, fixed, scan, options);
}

void EnumerateHomomorphisms(const TripleSet& source, const VarAssignment& fixed,
                            const TripleSource& target,
                            const std::function<bool(const VarAssignment&)>& callback) {
  HomSearch search(source, fixed, target, HomOptions{});
  search.Run(callback);
}

void EnumerateHomomorphisms(const TripleSet& source, const VarAssignment& fixed,
                            const TripleSet& target,
                            const std::function<bool(const VarAssignment&)>& callback) {
  HashTripleSource scan(target);
  EnumerateHomomorphisms(source, fixed, scan, callback);
}

Triple ApplyAssignment(const VarAssignment& assignment, const Triple& t) {
  Triple out = t;
  for (int pos = 0; pos < 3; ++pos) {
    TermId term = t[pos];
    if (IsVariable(term)) {
      auto it = assignment.find(term);
      if (it != assignment.end()) out.Set(pos, it->second);
    }
  }
  return out;
}

TripleSet ApplyAssignment(const VarAssignment& assignment, const TripleSet& source) {
  TripleSet out;
  for (const Triple& t : source.triples()) out.Insert(ApplyAssignment(assignment, t));
  return out;
}

VarAssignment IdentityOn(const std::vector<TermId>& X) {
  VarAssignment out;
  for (TermId var : X) {
    WDSPARQL_CHECK(IsVariable(var));
    out[var] = var;
  }
  return out;
}

}  // namespace wdsparql
