#include "hom/pebble.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "util/check.h"
#include "util/hash.h"

namespace wdsparql {
namespace {

/// A partial map {var_index -> domain_index}, sorted by var index.
using PartialMap = std::vector<std::pair<int, int>>;

struct PartialMapHash {
  std::size_t operator()(const PartialMap& m) const {
    std::size_t seed = 0x5eed;
    for (const auto& [x, a] : m) {
      HashCombine(seed, static_cast<std::size_t>(x));
      HashCombine(seed, static_cast<std::size_t>(a));
    }
    return seed;
  }
};

struct Node {
  PartialMap map;
  bool alive = true;
  /// (restriction node id, the variable index present here but not there).
  std::vector<std::pair<int, int>> parents;
  /// Direct extensions (size + 1) of this map.
  std::vector<int> children;
  /// var index -> number of alive direct extensions on that variable.
  /// Maintained only for maps of size < k.
  std::unordered_map<int, int> ext_count;
};

/// The strong-k-consistency fixpoint engine.
class PebbleGame {
 public:
  PebbleGame(const TripleSet& source, const VarAssignment& fixed,
             const TripleSet& target, int k, PebbleGameStats* stats)
      : source_(source), target_(target), fixed_(fixed), stats_(stats) {
    for (TermId var : source_.Variables()) {
      if (fixed_.find(var) == fixed_.end()) {
        var_ids_.push_back(var);
        var_index_[var] = static_cast<int>(var_ids_.size()) - 1;
      }
    }
    domain_ = target_.AllTerms();
    std::sort(domain_.begin(), domain_.end());
    k_ = std::min<int>(k, static_cast<int>(var_ids_.size()));

    triples_of_var_.resize(var_ids_.size());
    for (std::size_t i = 0; i < source_.triples().size(); ++i) {
      for (TermId var : source_.triples()[i].Variables()) {
        auto it = var_index_.find(var);
        if (it != var_index_.end()) triples_of_var_[it->second].push_back(i);
      }
    }
  }

  bool Decide() {
    // Triples fully determined by `fixed` must hold outright.
    for (const Triple& t : source_.triples()) {
      bool free_var = false;
      for (TermId var : t.Variables()) {
        if (var_index_.count(var) > 0) {
          free_var = true;
          break;
        }
      }
      if (!free_var && !target_.Contains(ApplyAssignment(fixed_, t))) return false;
    }
    if (var_ids_.empty()) return true;
    if (domain_.empty()) return false;  // Free variables but nothing to map to.

    GenerateAllLevels();
    SeedAndPropagateDeletions();
    return nodes_[0].alive;
  }

 private:
  /// True iff extending `map` (a verified partial hom) with x -> a keeps
  /// every triple containing x and fully determined by fixed_ u map u {x}
  /// inside the target.
  bool ExtensionIsPartialHom(const PartialMap& map, int x, int a) const {
    TermId x_var = var_ids_[x];
    TermId a_term = domain_[a];
    for (std::size_t t_idx : triples_of_var_[x]) {
      const Triple& t = source_.triples()[t_idx];
      Triple image = t;
      bool determined = true;
      for (int pos = 0; pos < 3 && determined; ++pos) {
        TermId term = t[pos];
        if (!IsVariable(term)) continue;
        if (term == x_var) {
          image.Set(pos, a_term);
          continue;
        }
        auto fixed_it = fixed_.find(term);
        if (fixed_it != fixed_.end()) {
          image.Set(pos, fixed_it->second);
          continue;
        }
        auto var_it = var_index_.find(term);
        WDSPARQL_DCHECK(var_it != var_index_.end());
        auto map_it =
            std::find_if(map.begin(), map.end(),
                         [&](const auto& entry) { return entry.first == var_it->second; });
        if (map_it == map.end()) {
          determined = false;
        } else {
          image.Set(pos, domain_[map_it->second]);
        }
      }
      if (determined && !target_.Contains(image)) return false;
    }
    return true;
  }

  int LookupNode(const PartialMap& map) const {
    auto it = node_ids_.find(map);
    return it == node_ids_.end() ? -1 : it->second;
  }

  void GenerateAllLevels() {
    // Level 0: the empty map.
    nodes_.push_back(Node{});
    node_ids_.emplace(PartialMap{}, 0);
    if (stats_ != nullptr) ++stats_->maps_created;
    std::vector<int> frontier = {0};

    int n = static_cast<int>(var_ids_.size());
    int m = static_cast<int>(domain_.size());
    for (int size = 1; size <= k_; ++size) {
      std::vector<int> next;
      for (int parent_id : frontier) {
        // Copy: nodes_ may reallocate as children are created.
        PartialMap base = nodes_[parent_id].map;
        for (int x = 0; x < n; ++x) {
          bool present = std::any_of(base.begin(), base.end(),
                                     [x](const auto& e) { return e.first == x; });
          if (present) continue;
          for (int a = 0; a < m; ++a) {
            PartialMap extended = base;
            extended.insert(std::upper_bound(extended.begin(), extended.end(),
                                             std::make_pair(x, a)),
                            {x, a});
            if (node_ids_.count(extended) > 0) continue;
            if (!ExtensionIsPartialHom(base, x, a)) continue;
            int id = static_cast<int>(nodes_.size());
            Node node;
            node.map = std::move(extended);
            // Register against all restrictions (they exist: restrictions
            // of a partial homomorphism are partial homomorphisms and were
            // generated at the previous levels).
            for (std::size_t drop = 0; drop < node.map.size(); ++drop) {
              PartialMap restriction = node.map;
              int dropped_var = restriction[drop].first;
              restriction.erase(restriction.begin() + drop);
              int rest_id = LookupNode(restriction);
              WDSPARQL_CHECK(rest_id >= 0);
              node.parents.emplace_back(rest_id, dropped_var);
            }
            nodes_.push_back(std::move(node));
            node_ids_.emplace(nodes_.back().map, id);
            for (const auto& [rest_id, dropped_var] : nodes_.back().parents) {
              nodes_[rest_id].children.push_back(id);
              ++nodes_[rest_id].ext_count[dropped_var];
            }
            next.push_back(id);
            if (stats_ != nullptr) ++stats_->maps_created;
          }
        }
      }
      frontier = std::move(next);
    }
  }

  void Kill(int id, std::vector<int>* worklist) {
    if (!nodes_[id].alive) return;
    nodes_[id].alive = false;
    if (stats_ != nullptr) ++stats_->maps_deleted;
    worklist->push_back(id);
  }

  void SeedAndPropagateDeletions() {
    int n = static_cast<int>(var_ids_.size());
    std::vector<int> worklist;

    // Seed: every map of size < k must extend on every missing variable.
    for (int id = 0; id < static_cast<int>(nodes_.size()); ++id) {
      int size = static_cast<int>(nodes_[id].map.size());
      if (size >= k_) continue;
      int missing = n - size;
      // ext_count holds only variables with >= 1 extension; a variable
      // with zero extensions is simply absent.
      int extendable = 0;
      for (const auto& [var, count] : nodes_[id].ext_count) {
        if (count > 0) ++extendable;
      }
      if (extendable < missing) Kill(id, &worklist);
    }

    while (!worklist.empty()) {
      int id = worklist.back();
      worklist.pop_back();
      const Node& node = nodes_[id];
      // Upward closure: extensions of a dead map die.
      for (int child : node.children) {
        if (nodes_[child].alive) Kill(child, &worklist);
      }
      // Forth property: parents lose an extension witness.
      for (const auto& [parent_id, dropped_var] : node.parents) {
        Node& parent = nodes_[parent_id];
        if (!parent.alive) continue;
        auto it = parent.ext_count.find(dropped_var);
        WDSPARQL_CHECK(it != parent.ext_count.end() && it->second > 0);
        if (--it->second == 0) Kill(parent_id, &worklist);
      }
    }
  }

  const TripleSet& source_;
  const TripleSet& target_;
  VarAssignment fixed_;
  PebbleGameStats* stats_;

  std::vector<TermId> var_ids_;
  std::unordered_map<TermId, int> var_index_;
  std::vector<TermId> domain_;
  std::vector<std::vector<std::size_t>> triples_of_var_;
  int k_ = 0;

  std::vector<Node> nodes_;
  std::unordered_map<PartialMap, int, PartialMapHash> node_ids_;
};

}  // namespace

bool PebbleGameWins(const TripleSet& source, const VarAssignment& fixed,
                    const TripleSet& target, int k, PebbleGameStats* stats) {
  WDSPARQL_CHECK(k >= 1);
  PebbleGame game(source, fixed, target, k, stats);
  return game.Decide();
}

}  // namespace wdsparql
