#include "engine/indexed_store.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>

#include "optimizer/cardinality.h"
#include "util/timer.h"

namespace wdsparql {

using enc_order::OrderOf;
using enc_order::PermLess;

namespace {

/// Copies `src` with `t` inserted at its sorted position — the
/// copy-on-write successor of one delta run.
std::vector<EncTriple> CopyInsert(const std::vector<EncTriple>& src,
                                  const EncTriple& t, Permutation perm) {
  PermLess less{OrderOf(perm)};
  auto pivot = std::upper_bound(src.begin(), src.end(), t, less);
  std::vector<EncTriple> out;
  out.reserve(src.size() + 1);
  out.insert(out.end(), src.begin(), pivot);
  out.push_back(t);
  out.insert(out.end(), pivot, src.end());
  return out;
}

/// Copies `src` with `t` removed (must be present).
std::vector<EncTriple> CopyErase(const std::vector<EncTriple>& src,
                                 const EncTriple& t, Permutation perm) {
  PermLess less{OrderOf(perm)};
  auto pivot = std::lower_bound(src.begin(), src.end(), t, less);
  WDSPARQL_DCHECK(pivot != src.end() && *pivot == t);
  std::vector<EncTriple> out;
  out.reserve(src.size() - 1);
  out.insert(out.end(), src.begin(), pivot);
  out.insert(out.end(), pivot + 1, src.end());
  return out;
}

/// Encodes `triples` against `dict` and installs the three sorted base
/// runs. With `dedup`, equal encoded triples collapse (plain-vector
/// inputs carry no set guarantee).
IndexedStore BuildEncoded(Dictionary dict, const std::vector<Triple>& triples,
                          bool dedup) {
  IndexedStore store;
  std::vector<EncTriple> spo;
  spo.reserve(triples.size());
  for (const Triple& t : triples) {
    EncTriple enc;
    enc.s = dict.Encode(t.subject);
    enc.p = dict.Encode(t.predicate);
    enc.o = dict.Encode(t.object);
    WDSPARQL_DCHECK(enc.s != kNoDataId && enc.p != kNoDataId && enc.o != kNoDataId);
    spo.push_back(enc);
  }
  std::sort(spo.begin(), spo.end(), PermLess{OrderOf(Permutation::kSpo)});
  if (dedup) {
    spo.erase(std::unique(spo.begin(), spo.end()), spo.end());
  }
  std::vector<EncTriple> pos = spo;
  std::vector<EncTriple> osp = spo;
  std::sort(pos.begin(), pos.end(), PermLess{OrderOf(Permutation::kPos)});
  std::sort(osp.begin(), osp.end(), PermLess{OrderOf(Permutation::kOsp)});
  store.SetBuilt(std::move(dict), std::move(spo), std::move(pos), std::move(osp));
  return store;
}

}  // namespace

IndexedStore::IndexedStore()
    : base_(std::make_shared<const BaseRuns>()),
      delta_(std::make_shared<const DeltaRuns>()) {
  Publish();
}

IndexedStore IndexedStore::Build(const TripleSet& set) {
  return BuildEncoded(Dictionary::Build(set), set.triples(), /*dedup=*/false);
}

IndexedStore IndexedStore::Build(const std::vector<Triple>& triples) {
  return BuildEncoded(Dictionary::Build(triples), triples, /*dedup=*/true);
}

IndexedStore IndexedStore::FromSnapshot(Dictionary dict, const EncTriple* spo,
                                        const EncTriple* pos, const EncTriple* osp,
                                        std::size_t count,
                                        std::shared_ptr<const void> keepalive,
                                        std::shared_ptr<const CardinalityStats> stats) {
  IndexedStore store;
  store.dict_ = std::move(dict);
  auto base = std::make_shared<BaseRuns>();
  base->spo.Borrow(spo, count);
  base->pos.Borrow(pos, count);
  base->osp.Borrow(osp, count);
  base->keepalive = std::move(keepalive);
  base->stats = std::move(stats);
  store.base_ = std::move(base);
  store.Publish();
  return store;
}

void IndexedStore::SetBuilt(Dictionary dict, std::vector<EncTriple> spo,
                            std::vector<EncTriple> pos, std::vector<EncTriple> osp) {
  dict_ = std::move(dict);
  auto base = std::make_shared<BaseRuns>();
  base->spo.Assign(std::move(spo));
  base->pos.Assign(std::move(pos));
  base->osp.Assign(std::move(osp));
  base->stats = CardinalityStats::Build(base->spo.data(), base->pos.data(),
                                        base->osp.data(), base->spo.size());
  base_ = std::move(base);
  delta_ = std::make_shared<const DeltaRuns>();
  Publish();
}

void IndexedStore::set_metrics(std::shared_ptr<MetricsRegistry> metrics) {
  metrics_ = std::move(metrics);
  if (metrics_ == nullptr) {
    publishes_metric_ = nullptr;
    compactions_metric_ = nullptr;
    stats_rebuilds_metric_ = nullptr;
    delta_build_ns_metric_ = nullptr;
    compaction_ns_metric_ = nullptr;
    return;
  }
  publishes_metric_ = &metrics_->counter("write.publishes");
  compactions_metric_ = &metrics_->counter("store.compactions");
  stats_rebuilds_metric_ = &metrics_->counter("optimizer.stats_rebuilds");
  delta_build_ns_metric_ = &metrics_->histogram("write.delta_build_ns");
  compaction_ns_metric_ = &metrics_->histogram("store.compaction_ns");
}

void IndexedStore::Publish() {
  // The view's lifetime token keeps the `views.live` gauge honest: +1
  // now, -1 when the last pin on this view dies. Per-publish (not
  // per-pin) cost, so PinView itself stays one atomic load.
  std::shared_ptr<const void> token;
  if (metrics_ != nullptr) {
    publishes_metric_->Add(1);
    Gauge* live = &metrics_->gauge("views.live");
    live->Add(1);
    std::shared_ptr<MetricsRegistry> registry = metrics_;
    token = std::shared_ptr<const void>(
        static_cast<const void*>(live),
        [registry, live](const void*) { live->Add(-1); });
  }
  auto next = std::make_shared<const ReadView>(dict_.view(), base_, delta_,
                                               ++generation_, std::move(token));
  // The epoch publish: everything the new view references was fully
  // written (sequenced) before this store, and readers acquire through
  // the matching atomic load in PinView — so a pinned view is always
  // internally consistent, never torn.
  std::atomic_store(&view_, std::move(next));
}

std::shared_ptr<const ReadView> IndexedStore::PinView() const {
  return std::atomic_load(&view_);
}

void IndexedStore::AdoptFrom(IndexedStore&& other) {
  dict_ = std::move(other.dict_);
  base_ = std::move(other.base_);
  delta_ = std::move(other.delta_);
  Publish();
}

bool IndexedStore::Insert(const Triple& t) {
  EncTriple enc;
  enc.s = dict_.GetOrAdd(t.subject);
  enc.p = dict_.GetOrAdd(t.predicate);
  enc.o = dict_.GetOrAdd(t.object);
  bool in_base = std::binary_search(base_->spo.begin(), base_->spo.end(), enc,
                                    PermLess{OrderOf(Permutation::kSpo)});
  if (in_base) {
    // Re-inserting a tombstoned base triple just revives it.
    if (!std::binary_search(delta_->dead.begin(), delta_->dead.end(), enc,
                            PermLess{OrderOf(Permutation::kSpo)})) {
      return false;
    }
    auto next = std::make_shared<DeltaRuns>();
    next->dspo = delta_->dspo;
    next->dpos = delta_->dpos;
    next->dosp = delta_->dosp;
    next->dead = CopyErase(delta_->dead, enc, Permutation::kSpo);
    delta_ = std::move(next);
    Publish();
    return true;
  }
  if (view_->InDelta(enc)) return false;
  auto next = std::make_shared<DeltaRuns>();
  next->dspo = CopyInsert(delta_->dspo, enc, Permutation::kSpo);
  next->dpos = CopyInsert(delta_->dpos, enc, Permutation::kPos);
  next->dosp = CopyInsert(delta_->dosp, enc, Permutation::kOsp);
  next->dead = delta_->dead;
  delta_ = std::move(next);
  MaybeMerge();
  Publish();
  return true;
}

bool IndexedStore::Erase(const Triple& t) {
  EncTriple enc;
  for (int pos = 0; pos < 3; ++pos) {
    std::optional<DataId> id = dict_.TryResolve(t[pos]);
    if (!id.has_value()) return false;  // Unknown term: nothing to remove.
    (pos == 0 ? enc.s : (pos == 1 ? enc.p : enc.o)) = *id;
  }
  if (view_->InDelta(enc)) {
    auto next = std::make_shared<DeltaRuns>();
    next->dspo = CopyErase(delta_->dspo, enc, Permutation::kSpo);
    next->dpos = CopyErase(delta_->dpos, enc, Permutation::kPos);
    next->dosp = CopyErase(delta_->dosp, enc, Permutation::kOsp);
    next->dead = delta_->dead;
    delta_ = std::move(next);
    Publish();
    return true;
  }
  bool in_base = std::binary_search(base_->spo.begin(), base_->spo.end(), enc,
                                    PermLess{OrderOf(Permutation::kSpo)});
  if (!in_base ||
      std::binary_search(delta_->dead.begin(), delta_->dead.end(), enc,
                         PermLess{OrderOf(Permutation::kSpo)})) {
    return false;
  }
  auto next = std::make_shared<DeltaRuns>();
  next->dspo = delta_->dspo;
  next->dpos = delta_->dpos;
  next->dosp = delta_->dosp;
  next->dead = CopyInsert(delta_->dead, enc, Permutation::kSpo);
  delta_ = std::move(next);
  MaybeMerge();
  Publish();
  return true;
}

void IndexedStore::ApplyBatch(const std::vector<Triple>& adds,
                              const std::vector<Triple>& removes,
                              TraceContext* trace, uint32_t trace_parent) {
  if (adds.empty() && removes.empty()) return;
  uint32_t build_span = 0;
  if (trace != nullptr && trace->enabled()) {
    build_span = trace->StartSpan("delta_build", trace_parent);
    trace->Annotate(build_span, "adds", static_cast<uint64_t>(adds.size()));
    trace->Annotate(build_span, "removes",
                    static_cast<uint64_t>(removes.size()));
  }
  Timer build_timer;
  PermLess spo_less{OrderOf(Permutation::kSpo)};

  // Pre-register the batch's terms with one fold of the appended-term
  // index (per-triple GetOrAdd would refold it every kFoldLimit appends
  // — quadratic across a bulk load), then encode the adds and split
  // them: absent triples join the delta runs; tombstoned base residents
  // just revive.
  {
    std::vector<TermId> batch_terms;
    batch_terms.reserve(adds.size() * 3);
    for (const Triple& t : adds) {
      batch_terms.push_back(t.subject);
      batch_terms.push_back(t.predicate);
      batch_terms.push_back(t.object);
    }
    dict_.EnsureTerms(batch_terms);
  }
  std::vector<EncTriple> fresh;   // Into the delta runs.
  std::vector<EncTriple> revive;  // Tombstones to drop.
  fresh.reserve(adds.size());
  for (const Triple& t : adds) {
    EncTriple enc;
    enc.s = dict_.GetOrAdd(t.subject);
    enc.p = dict_.GetOrAdd(t.predicate);
    enc.o = dict_.GetOrAdd(t.object);
    if (std::binary_search(base_->spo.begin(), base_->spo.end(), enc, spo_less)) {
      WDSPARQL_DCHECK(std::binary_search(delta_->dead.begin(), delta_->dead.end(),
                                         enc, spo_less));
      revive.push_back(enc);
    } else {
      WDSPARQL_DCHECK(!view_->InDelta(enc));
      fresh.push_back(enc);
    }
  }

  // Split the removes: delta residents vanish from the delta runs, base
  // residents gain tombstones. Every removed triple is present, so its
  // terms must already resolve.
  std::unordered_set<EncTriple, EncTripleHash> delta_removals;
  std::vector<EncTriple> newly_dead;
  for (const Triple& t : removes) {
    EncTriple enc;
    for (int pos = 0; pos < 3; ++pos) {
      std::optional<DataId> id = dict_.TryResolve(t[pos]);
      WDSPARQL_CHECK(id.has_value());
      (pos == 0 ? enc.s : (pos == 1 ? enc.p : enc.o)) = *id;
    }
    if (view_->InDelta(enc)) {
      delta_removals.insert(enc);
    } else {
      WDSPARQL_DCHECK(
          std::binary_search(base_->spo.begin(), base_->spo.end(), enc, spo_less));
      newly_dead.push_back(enc);
    }
  }

  // The successor delta: per permutation, one linear merge of (old run
  // minus the delta removals) with the sorted fresh adds — the batched
  // generalisation of CopyInsert/CopyErase, whose per-op O(delta) copy
  // this amortises into O(delta + batch log batch) for the whole batch.
  auto next = std::make_shared<DeltaRuns>();
  auto rebuild_run = [&](const std::vector<EncTriple>& old_run, Permutation perm,
                         std::vector<EncTriple>* out) {
    std::vector<EncTriple> incoming = fresh;
    PermLess less{OrderOf(perm)};
    std::sort(incoming.begin(), incoming.end(), less);
    out->reserve(old_run.size() - delta_removals.size() + incoming.size());
    auto oi = old_run.begin();
    auto ni = incoming.begin();
    while (oi != old_run.end() || ni != incoming.end()) {
      bool take_old =
          ni == incoming.end() || (oi != old_run.end() && !less(*ni, *oi));
      if (take_old) {
        if (delta_removals.empty() || delta_removals.count(*oi) == 0) {
          out->push_back(*oi);
        }
        ++oi;
      } else {
        out->push_back(*ni);
        ++ni;
      }
    }
  };
  rebuild_run(delta_->dspo, Permutation::kSpo, &next->dspo);
  rebuild_run(delta_->dpos, Permutation::kPos, &next->dpos);
  rebuild_run(delta_->dosp, Permutation::kOsp, &next->dosp);

  // Tombstones: (old dead minus revived) merged with the new ones.
  std::sort(revive.begin(), revive.end(), spo_less);
  std::sort(newly_dead.begin(), newly_dead.end(), spo_less);
  std::vector<EncTriple> surviving;
  surviving.reserve(delta_->dead.size() - revive.size());
  std::set_difference(delta_->dead.begin(), delta_->dead.end(), revive.begin(),
                      revive.end(), std::back_inserter(surviving), spo_less);
  next->dead.reserve(surviving.size() + newly_dead.size());
  std::merge(surviving.begin(), surviving.end(), newly_dead.begin(),
             newly_dead.end(), std::back_inserter(next->dead), spo_less);

  delta_ = std::move(next);
  if (delta_build_ns_metric_ != nullptr) {
    // The delta build proper; a threshold fold below reports separately
    // as store.compaction_ns.
    delta_build_ns_metric_->Observe(build_timer.ElapsedNanos());
  }
  if (trace != nullptr) trace->EndSpan(build_span);
  // Exactly one publish per batch: a threshold crossing folds the delta
  // through MergeDelta (which publishes the merged state itself) instead
  // of publishing twice.
  if (merge_threshold_ != 0 && delta_->pending() >= merge_threshold_) {
    ScopedTraceSpan span(trace, "compact", trace_parent);
    MergeDelta();
  } else {
    ScopedTraceSpan span(trace, "publish", trace_parent);
    Publish();
  }
}

void IndexedStore::MaybeMerge() {
  if (merge_threshold_ == 0) return;
  if (delta_->pending() >= merge_threshold_) MergeDelta();
}

void IndexedStore::MergeDelta() {
  if (delta_->dspo.empty() && delta_->dead.empty()) {
    if (base_->stats != nullptr) return;
    // Nothing to merge, but the base carries no cardinality statistics —
    // a legacy snapshot opened before the stats sections existed. This
    // compaction is the lazy upgrade: rebuild the stats over the
    // unchanged runs and republish, so subsequent views (and the next
    // Checkpoint) carry them. Copying the BaseRuns is cheap here: the
    // runs are borrowed (pointer copies) or empty.
    auto upgraded = std::make_shared<BaseRuns>(*base_);
    upgraded->stats = CardinalityStats::Build(
        upgraded->spo.data(), upgraded->pos.data(), upgraded->osp.data(),
        upgraded->spo.size());
    base_ = std::move(upgraded);
    if (stats_rebuilds_metric_ != nullptr) stats_rebuilds_metric_->Add(1);
    Publish();
    return;
  }
  Timer merge_timer;
  const DeltaRuns& delta = *delta_;
  auto merged_base = std::make_shared<BaseRuns>();
  auto merge_one = [&delta](const EncRun& base, const std::vector<EncTriple>& d,
                            EncRun* out, Permutation perm) {
    std::vector<EncTriple> merged;
    merged.reserve(base.size() - delta.dead.size() + d.size());
    PermLess less{OrderOf(perm)};
    const EncTriple* bi = base.begin();
    auto di = d.begin();
    while (bi != base.end() || di != d.end()) {
      bool take_base = di == d.end() || (bi != base.end() && !less(*di, *bi));
      if (take_base) {
        if (delta.dead.empty() ||
            !std::binary_search(delta.dead.begin(), delta.dead.end(), *bi,
                                PermLess{OrderOf(Permutation::kSpo)})) {
          merged.push_back(*bi);
        }
        ++bi;
      } else {
        merged.push_back(*di);
        ++di;
      }
    }
    out->Assign(std::move(merged));
  };
  // Merging out of a borrowed (snapshot-backed) run lands in owned
  // storage; the old BaseRuns (and its mapping keepalive) stays alive
  // only while pinned views still reference it.
  merge_one(base_->spo, delta.dspo, &merged_base->spo, Permutation::kSpo);
  merge_one(base_->pos, delta.dpos, &merged_base->pos, Permutation::kPos);
  merge_one(base_->osp, delta.dosp, &merged_base->osp, Permutation::kOsp);
  // Fresh base, fresh census: one more linear pass per permutation keeps
  // every published view's statistics exact for the runs it scans.
  merged_base->stats = CardinalityStats::Build(
      merged_base->spo.data(), merged_base->pos.data(), merged_base->osp.data(),
      merged_base->spo.size());
  base_ = std::move(merged_base);
  delta_ = std::make_shared<const DeltaRuns>();
  if (compactions_metric_ != nullptr) {
    compactions_metric_->Add(1);
    compaction_ns_metric_->Observe(merge_timer.ElapsedNanos());
  }
  Publish();
}

}  // namespace wdsparql
