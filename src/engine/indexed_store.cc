#include "engine/indexed_store.h"

#include <algorithm>

namespace wdsparql {
namespace {

/// Position order of each permutation: kSpo reads positions (0,1,2),
/// kPos (1,2,0), kOsp (2,0,1).
constexpr int kPermOrder[3][3] = {{0, 1, 2}, {1, 2, 0}, {2, 0, 1}};

/// The permutation whose sort prefix covers the bound-position mask
/// (bit 0 = subject, bit 1 = predicate, bit 2 = object). Every mask is a
/// prefix of one cyclic permutation; full and empty masks default to SPO.
constexpr Permutation kPermForMask[8] = {
    Permutation::kSpo,  // ---
    Permutation::kSpo,  // S--
    Permutation::kPos,  // -P-
    Permutation::kSpo,  // SP-
    Permutation::kOsp,  // --O
    Permutation::kOsp,  // S-O  (OSP prefix: O, S)
    Permutation::kPos,  // -PO  (POS prefix: P, O)
    Permutation::kSpo,  // SPO
};

/// Lexicographic comparator in the given permutation order.
struct PermLess {
  const int* order;
  bool operator()(const EncTriple& a, const EncTriple& b) const {
    for (int i = 0; i < 3; ++i) {
      int pos = order[i];
      if (a[pos] != b[pos]) return a[pos] < b[pos];
    }
    return false;
  }
};

const int* OrderOf(Permutation perm) { return kPermOrder[static_cast<int>(perm)]; }

/// The contiguous [lo, hi) range of `[begin, end)` whose first `prefix`
/// positions (in permutation order) equal the pattern's bound values.
std::pair<const EncTriple*, const EncTriple*> PrefixRange(
    const EncTriple* begin, const EncTriple* end, const EncPattern& pattern,
    const int* order, int prefix) {
  auto triple_below = [&](const EncTriple& t, const EncPattern& p) {
    for (int i = 0; i < prefix; ++i) {
      int pos = order[i];
      if (t[pos] != p[pos]) return t[pos] < p[pos];
    }
    return false;
  };
  auto pattern_below = [&](const EncPattern& p, const EncTriple& t) {
    for (int i = 0; i < prefix; ++i) {
      int pos = order[i];
      if (t[pos] != p[pos]) return p[pos] < t[pos];
    }
    return false;
  };
  const EncTriple* lo = std::lower_bound(begin, end, pattern, triple_below);
  const EncTriple* hi = std::upper_bound(lo, end, pattern, pattern_below);
  return {lo, hi};
}

/// Inserts `t` into the permutation-sorted run `vec`.
void SortedInsert(std::vector<EncTriple>* vec, const EncTriple& t, Permutation perm) {
  PermLess less{OrderOf(perm)};
  vec->insert(std::upper_bound(vec->begin(), vec->end(), t, less), t);
}

/// Removes `t` from the permutation-sorted run `vec` (must be present).
void SortedErase(std::vector<EncTriple>* vec, const EncTriple& t, Permutation perm) {
  PermLess less{OrderOf(perm)};
  auto it = std::lower_bound(vec->begin(), vec->end(), t, less);
  WDSPARQL_DCHECK(it != vec->end() && *it == t);
  vec->erase(it);
}

}  // namespace

// ---------------------------------------------------------------------
// MergedScan
// ---------------------------------------------------------------------

MergedScan::MergedScan(const EncTriple* base_begin, const EncTriple* base_end,
                       const EncTriple* delta_begin, const EncTriple* delta_end,
                       const Tombstones* dead, Permutation perm)
    : base_begin_(base_begin),
      base_end_(base_end),
      delta_begin_(delta_begin),
      delta_end_(delta_end),
      dead_(dead),
      perm_(perm) {}

MergedScan::Iterator::Iterator(const EncTriple* base, const EncTriple* base_end,
                               const EncTriple* delta, const EncTriple* delta_end,
                               const Tombstones* dead, const int* order)
    : base_(base),
      base_end_(base_end),
      delta_(delta),
      delta_end_(delta_end),
      dead_(dead),
      order_(order) {
  Settle();
}

void MergedScan::Iterator::Settle() {
  while (base_ != base_end_ && !dead_->empty() && dead_->count(*base_) > 0) ++base_;
  if (base_ == base_end_) {
    on_delta_ = true;
    return;
  }
  on_delta_ =
      delta_ != delta_end_ && PermLess{order_}(*delta_, *base_);
}

MergedScan::Iterator& MergedScan::Iterator::operator++() {
  if (on_delta_) {
    ++delta_;
  } else {
    ++base_;
  }
  Settle();
  return *this;
}

MergedScan::Iterator MergedScan::begin() const {
  return Iterator(base_begin_, base_end_, delta_begin_, delta_end_, dead_,
                  OrderOf(perm_));
}

MergedScan::Iterator MergedScan::end() const {
  return Iterator(base_end_, base_end_, delta_end_, delta_end_, dead_, OrderOf(perm_));
}

std::size_t MergedScan::size() const {
  std::size_t n = 0;
  for (auto it = begin(); it != end(); ++it) ++n;
  return n;
}

// ---------------------------------------------------------------------
// IndexedStore
// ---------------------------------------------------------------------

namespace {

/// Encodes `triples` against `dict` and installs the three sorted base
/// runs. With `dedup`, equal encoded triples collapse (plain-vector
/// inputs carry no set guarantee).
IndexedStore BuildEncoded(Dictionary dict, const std::vector<Triple>& triples,
                          bool dedup) {
  IndexedStore store;
  std::vector<EncTriple> spo;
  spo.reserve(triples.size());
  for (const Triple& t : triples) {
    EncTriple enc;
    enc.s = dict.Encode(t.subject);
    enc.p = dict.Encode(t.predicate);
    enc.o = dict.Encode(t.object);
    WDSPARQL_DCHECK(enc.s != kNoDataId && enc.p != kNoDataId && enc.o != kNoDataId);
    spo.push_back(enc);
  }
  std::sort(spo.begin(), spo.end(), PermLess{OrderOf(Permutation::kSpo)});
  if (dedup) {
    spo.erase(std::unique(spo.begin(), spo.end()), spo.end());
  }
  std::vector<EncTriple> pos = spo;
  std::vector<EncTriple> osp = spo;
  std::sort(pos.begin(), pos.end(), PermLess{OrderOf(Permutation::kPos)});
  std::sort(osp.begin(), osp.end(), PermLess{OrderOf(Permutation::kOsp)});
  store.SetBuilt(std::move(dict), std::move(spo), std::move(pos), std::move(osp));
  return store;
}

}  // namespace

IndexedStore IndexedStore::Build(const TripleSet& set) {
  return BuildEncoded(Dictionary::Build(set), set.triples(), /*dedup=*/false);
}

IndexedStore IndexedStore::Build(const std::vector<Triple>& triples) {
  return BuildEncoded(Dictionary::Build(triples), triples, /*dedup=*/true);
}

IndexedStore IndexedStore::FromSnapshot(Dictionary dict, const EncTriple* spo,
                                        const EncTriple* pos, const EncTriple* osp,
                                        std::size_t count) {
  IndexedStore store;
  store.dict_ = std::move(dict);
  store.spo_.Borrow(spo, count);
  store.pos_.Borrow(pos, count);
  store.osp_.Borrow(osp, count);
  return store;
}

void IndexedStore::SetBuilt(Dictionary dict, std::vector<EncTriple> spo,
                            std::vector<EncTriple> pos, std::vector<EncTriple> osp) {
  dict_ = std::move(dict);
  spo_.Assign(std::move(spo));
  pos_.Assign(std::move(pos));
  osp_.Assign(std::move(osp));
}

bool IndexedStore::InDelta(const EncTriple& t) const {
  return std::binary_search(dspo_.begin(), dspo_.end(), t,
                            PermLess{OrderOf(Permutation::kSpo)});
}

bool IndexedStore::Insert(const Triple& t) {
  EncTriple enc;
  enc.s = dict_.GetOrAdd(t.subject);
  enc.p = dict_.GetOrAdd(t.predicate);
  enc.o = dict_.GetOrAdd(t.object);
  bool in_base = std::binary_search(spo_.begin(), spo_.end(), enc,
                                    PermLess{OrderOf(Permutation::kSpo)});
  if (in_base) {
    // Re-inserting a tombstoned base triple just revives it.
    return dead_.erase(enc) > 0;
  }
  if (InDelta(enc)) return false;
  SortedInsert(&dspo_, enc, Permutation::kSpo);
  SortedInsert(&dpos_, enc, Permutation::kPos);
  SortedInsert(&dosp_, enc, Permutation::kOsp);
  MaybeMerge();
  return true;
}

bool IndexedStore::Erase(const Triple& t) {
  EncTriple enc;
  for (int pos = 0; pos < 3; ++pos) {
    std::optional<DataId> id = dict_.TryResolve(t[pos]);
    if (!id.has_value()) return false;  // Unknown term: nothing to remove.
    (pos == 0 ? enc.s : (pos == 1 ? enc.p : enc.o)) = *id;
  }
  if (InDelta(enc)) {
    SortedErase(&dspo_, enc, Permutation::kSpo);
    SortedErase(&dpos_, enc, Permutation::kPos);
    SortedErase(&dosp_, enc, Permutation::kOsp);
    return true;
  }
  bool in_base = std::binary_search(spo_.begin(), spo_.end(), enc,
                                    PermLess{OrderOf(Permutation::kSpo)});
  if (!in_base || dead_.count(enc) > 0) return false;
  dead_.insert(enc);
  MaybeMerge();
  return true;
}

void IndexedStore::MaybeMerge() {
  if (merge_threshold_ == 0) return;
  if (delta_size() >= merge_threshold_) MergeDelta();
}

void IndexedStore::MergeDelta() {
  if (dspo_.empty() && dead_.empty()) return;
  auto merge_one = [this](EncRun* base, std::vector<EncTriple>* delta,
                          Permutation perm) {
    std::vector<EncTriple> merged;
    merged.reserve(base->size() - dead_.size() + delta->size());
    PermLess less{OrderOf(perm)};
    const EncTriple* bi = base->begin();
    auto di = delta->begin();
    while (bi != base->end() || di != delta->end()) {
      bool take_base =
          di == delta->end() || (bi != base->end() && !less(*di, *bi));
      if (take_base) {
        if (dead_.empty() || dead_.count(*bi) == 0) merged.push_back(*bi);
        ++bi;
      } else {
        merged.push_back(*di);
        ++di;
      }
    }
    // Merging out of a borrowed (snapshot-backed) run lands in owned
    // storage: the store no longer needs the mapping after this.
    base->Assign(std::move(merged));
    delta->clear();
  };
  merge_one(&spo_, &dspo_, Permutation::kSpo);
  merge_one(&pos_, &dpos_, Permutation::kPos);
  merge_one(&osp_, &dosp_, Permutation::kOsp);
  dead_.clear();
}

bool IndexedStore::EncodeScanPattern(const Triple& pattern, EncPattern* out) const {
  *out = EncPattern{};
  for (int pos = 0; pos < 3; ++pos) {
    TermId term = pattern[pos];
    if (term == kAnyTerm) continue;
    std::optional<DataId> id = dict_.TryResolve(term);
    if (!id.has_value()) return false;  // Term absent: nothing can match.
    (pos == 0 ? out->s : (pos == 1 ? out->p : out->o)) = *id;
  }
  return true;
}

MergedScan IndexedStore::Scan(const EncPattern& pattern) const {
  int mask = (pattern.s != kNoDataId ? 1 : 0) | (pattern.p != kNoDataId ? 2 : 0) |
             (pattern.o != kNoDataId ? 4 : 0);
  Permutation perm = kPermForMask[mask];
  const int* order = OrderOf(perm);
  int prefix = (mask & 1) + ((mask >> 1) & 1) + ((mask >> 2) & 1);

  const EncRun* base;
  const std::vector<EncTriple>* delta;
  switch (perm) {
    case Permutation::kSpo: base = &spo_; delta = &dspo_; break;
    case Permutation::kPos: base = &pos_; delta = &dpos_; break;
    default: base = &osp_; delta = &dosp_; break;
  }
  auto [base_lo, base_hi] = PrefixRange(base->begin(), base->end(), pattern, order, prefix);
  auto [delta_lo, delta_hi] = PrefixRange(delta->data(), delta->data() + delta->size(),
                                          pattern, order, prefix);
  return MergedScan(base_lo, base_hi, delta_lo, delta_hi, &dead_, perm);
}

bool IndexedStore::Contains(const EncTriple& t) const {
  if (InDelta(t)) return true;
  return std::binary_search(spo_.begin(), spo_.end(), t,
                            PermLess{OrderOf(Permutation::kSpo)}) &&
         dead_.count(t) == 0;
}

bool IndexedStore::Contains(const Triple& t) const {
  EncTriple enc;
  for (int pos = 0; pos < 3; ++pos) {
    std::optional<DataId> id = dict_.TryResolve(t[pos]);
    if (!id.has_value()) return false;
    (pos == 0 ? enc.s : (pos == 1 ? enc.p : enc.o)) = *id;
  }
  return Contains(enc);
}

bool IndexedStore::ScanPattern(const Triple& pattern, const TripleScanCallback& fn) const {
  EncPattern enc;
  if (!EncodeScanPattern(pattern, &enc)) return true;  // Empty scan completes.
  for (const EncTriple& t : Scan(enc)) {
    if (!fn(Decode(t))) return false;
  }
  return true;
}

std::vector<TermId> IndexedStore::AllTerms() const {
  std::vector<TermId> terms = dict_.terms();
  std::sort(terms.begin(), terms.end());
  return terms;
}

}  // namespace wdsparql
