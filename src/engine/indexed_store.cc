#include "engine/indexed_store.h"

#include <algorithm>

namespace wdsparql {
namespace {

/// Position order of each permutation: kSpo reads positions (0,1,2),
/// kPos (1,2,0), kOsp (2,0,1).
constexpr int kPermOrder[3][3] = {{0, 1, 2}, {1, 2, 0}, {2, 0, 1}};

/// The permutation whose sort prefix covers the bound-position mask
/// (bit 0 = subject, bit 1 = predicate, bit 2 = object). Every mask is a
/// prefix of one cyclic permutation; full and empty masks default to SPO.
constexpr Permutation kPermForMask[8] = {
    Permutation::kSpo,  // ---
    Permutation::kSpo,  // S--
    Permutation::kPos,  // -P-
    Permutation::kSpo,  // SP-
    Permutation::kOsp,  // --O
    Permutation::kOsp,  // S-O  (OSP prefix: O, S)
    Permutation::kPos,  // -PO  (POS prefix: P, O)
    Permutation::kSpo,  // SPO
};

/// Lexicographic comparator in the given permutation order.
struct PermLess {
  const int* order;
  bool operator()(const EncTriple& a, const EncTriple& b) const {
    for (int i = 0; i < 3; ++i) {
      int pos = order[i];
      if (a[pos] != b[pos]) return a[pos] < b[pos];
    }
    return false;
  }
};

}  // namespace

IndexedStore IndexedStore::Build(const TripleSet& set) {
  IndexedStore store;
  store.dict_ = Dictionary::Build(set);
  store.spo_.reserve(set.size());
  for (const Triple& t : set.triples()) {
    EncTriple enc;
    enc.s = store.dict_.Encode(t.subject);
    enc.p = store.dict_.Encode(t.predicate);
    enc.o = store.dict_.Encode(t.object);
    WDSPARQL_DCHECK(enc.s != kNoDataId && enc.p != kNoDataId && enc.o != kNoDataId);
    store.spo_.push_back(enc);
  }
  store.pos_ = store.spo_;
  store.osp_ = store.spo_;
  std::sort(store.spo_.begin(), store.spo_.end(),
            PermLess{kPermOrder[static_cast<int>(Permutation::kSpo)]});
  std::sort(store.pos_.begin(), store.pos_.end(),
            PermLess{kPermOrder[static_cast<int>(Permutation::kPos)]});
  std::sort(store.osp_.begin(), store.osp_.end(),
            PermLess{kPermOrder[static_cast<int>(Permutation::kOsp)]});
  return store;
}

bool IndexedStore::EncodeScanPattern(const Triple& pattern, EncPattern* out) const {
  *out = EncPattern{};
  for (int pos = 0; pos < 3; ++pos) {
    TermId term = pattern[pos];
    if (term == kAnyTerm) continue;
    DataId id = dict_.Encode(term);
    if (id == kNoDataId) return false;  // Term absent: nothing can match.
    (pos == 0 ? out->s : (pos == 1 ? out->p : out->o)) = id;
  }
  return true;
}

ScanRange IndexedStore::Scan(const EncPattern& pattern) const {
  int mask = (pattern.s != kNoDataId ? 1 : 0) | (pattern.p != kNoDataId ? 2 : 0) |
             (pattern.o != kNoDataId ? 4 : 0);
  Permutation perm = kPermForMask[mask];
  const std::vector<EncTriple>& vec = Vector(perm);
  const int* order = kPermOrder[static_cast<int>(perm)];
  int prefix = (mask & 1) + ((mask >> 1) & 1) + ((mask >> 2) & 1);

  auto triple_below = [&](const EncTriple& t, const EncPattern& p) {
    for (int i = 0; i < prefix; ++i) {
      int pos = order[i];
      if (t[pos] != p[pos]) return t[pos] < p[pos];
    }
    return false;
  };
  auto pattern_below = [&](const EncPattern& p, const EncTriple& t) {
    for (int i = 0; i < prefix; ++i) {
      int pos = order[i];
      if (t[pos] != p[pos]) return p[pos] < t[pos];
    }
    return false;
  };

  auto lo = std::lower_bound(vec.begin(), vec.end(), pattern, triple_below);
  auto hi = std::upper_bound(lo, vec.end(), pattern, pattern_below);
  const EncTriple* base = vec.data();
  return ScanRange(base + (lo - vec.begin()), base + (hi - vec.begin()), perm);
}

bool IndexedStore::Contains(const EncTriple& t) const {
  return std::binary_search(spo_.begin(), spo_.end(), t,
                            PermLess{kPermOrder[static_cast<int>(Permutation::kSpo)]});
}

bool IndexedStore::Contains(const Triple& t) const {
  EncTriple enc;
  enc.s = dict_.Encode(t.subject);
  enc.p = dict_.Encode(t.predicate);
  enc.o = dict_.Encode(t.object);
  if (enc.s == kNoDataId || enc.p == kNoDataId || enc.o == kNoDataId) return false;
  return Contains(enc);
}

bool IndexedStore::ScanPattern(const Triple& pattern, const TripleScanCallback& fn) const {
  EncPattern enc;
  if (!EncodeScanPattern(pattern, &enc)) return true;  // Empty scan completes.
  for (const EncTriple& t : Scan(enc)) {
    if (!fn(Decode(t))) return false;
  }
  return true;
}

}  // namespace wdsparql
