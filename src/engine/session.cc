#include "wdsparql/session.h"

#include <algorithm>

#include "engine/api_internal.h"
#include "sparql/parser.h"
#include "sparql/well_designed.h"
#include "util/timer.h"

namespace wdsparql {
namespace {

/// True iff the pattern contains a FILTER node anywhere.
bool ContainsFilterNode(const GraphPattern& p) {
  switch (p.kind()) {
    case PatternKind::kTriple: return false;
    case PatternKind::kFilter: return true;
    default: return ContainsFilterNode(*p.left()) || ContainsFilterNode(*p.right());
  }
}

std::string DisplayName(const TermPool& pool, TermId var) {
  return "?" + std::string(pool.Spelling(var));
}

/// Strips an optional leading '?' from a user-supplied variable name.
std::string_view StripQuestionMark(std::string_view name) {
  if (!name.empty() && name.front() == '?') name.remove_prefix(1);
  return name;
}

}  // namespace

// ---------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------

namespace {

/// The shared preparation pipeline; returns mutable impl state so the
/// text-entry point can record the source text.
std::shared_ptr<StatementImpl> PrepareImpl(const DatabaseImpl* db,
                                           const SessionOptions& options,
                                           const PatternPtr& pattern);

}  // namespace

Statement Session::Prepare(std::string_view pattern_text) const {
  Timer parse_timer;
  Result<PatternPtr> parsed = ParsePattern(pattern_text, db_->pool);
  uint64_t parse_ns = parse_timer.ElapsedNanos();
  if (!parsed.ok()) {
    auto impl = std::make_shared<StatementImpl>();
    impl->db = db_;
    impl->options = options_;
    impl->diagnostics.code = QueryDiagnostics::Code::kParseError;
    impl->diagnostics.message = parsed.status().message();
    impl->diagnostics.pattern_text = std::string(pattern_text);
    return Statement(std::move(impl));
  }
  std::shared_ptr<StatementImpl> impl = PrepareImpl(db_, options_, parsed.value());
  impl->diagnostics.pattern_text = std::string(pattern_text);
  impl->parse_ns = parse_ns;
  return Statement(std::move(impl));
}

Statement Session::PrepareParsed(
    const std::shared_ptr<const GraphPattern>& pattern) const {
  return Statement(PrepareImpl(db_, options_, pattern));
}

namespace {

std::shared_ptr<StatementImpl> PrepareImpl(const DatabaseImpl* db,
                                           const SessionOptions& options,
                                           const PatternPtr& pattern) {
  auto impl = std::make_shared<StatementImpl>();
  impl->db = db;
  impl->options = options;
  impl->pattern = pattern;
  QueryDiagnostics& diag = impl->diagnostics;
  diag.parsed = true;

  const TermPool& pool = *db->pool;

  // Well-designedness of the full pattern (FILTER safety included).
  Timer check_timer;
  WellDesignedness wd = CheckWellDesignedDetailed(pattern, pool);
  impl->check_ns = check_timer.ElapsedNanos();
  if (!wd.status.ok()) {
    diag.code = QueryDiagnostics::Code::kNotWellDesigned;
    diag.message = wd.status.message();
    if (wd.has_offending_variable) {
      diag.offending_variable = DisplayName(pool, wd.offending_variable);
    }
    return impl;
  }
  diag.well_designed = true;

  Timer plan_timer;
  // Peel top-level FILTER conditions: JP FILTER RKG = {mu ∈ JPKG : R(mu)},
  // so they run as execution-time post-filters over the enumerated
  // bindings — on whichever backend the session configured. FILTER below
  // AND/OPT has no such decomposition and stays outside the fragment.
  PatternPtr core = pattern;
  while (core->kind() == PatternKind::kFilter) {
    impl->filters.push_back(core->condition());
    core = core->left();
  }
  if (ContainsFilterNode(*core)) {
    diag.code = QueryDiagnostics::Code::kUnsupported;
    diag.message =
        "FILTER below AND/OPT is outside the executable fragment (Section 5); "
        "only top-level FILTER conditions can be applied as post-filters";
    return impl;
  }
  impl->core = core;
  diag.post_filters = impl->filters.size();
  diag.union_free = core->IsUnionFree();
  diag.num_triple_patterns = static_cast<std::size_t>(core->NumTriples());

  Result<PatternForest> forest = BuildPatternForest(core, pool);
  if (!forest.ok()) {
    diag.code = QueryDiagnostics::Code::kInternal;
    diag.message = "wdpf translation failed on a checked pattern: " +
                   forest.status().message();
    return impl;
  }
  impl->forest = std::move(forest).value();
  diag.num_trees = impl->forest.trees.size();

  impl->var_ids = core->Variables();
  for (TermId var : impl->var_ids) {
    impl->var_names.push_back(DisplayName(pool, var));
    diag.variables.push_back(impl->var_names.back());
  }
  impl->plan_ns = plan_timer.ElapsedNanos();
  return impl;
}

}  // namespace

// ---------------------------------------------------------------------
// Statement
// ---------------------------------------------------------------------

Statement::Statement() {
  auto impl = std::make_shared<StatementImpl>();
  impl->diagnostics.code = QueryDiagnostics::Code::kInternal;
  impl->diagnostics.message = "empty statement (never prepared)";
  impl_ = std::move(impl);
}

Statement::Statement(std::shared_ptr<const StatementImpl> impl)
    : impl_(std::move(impl)) {}

bool Statement::ok() const { return impl_->diagnostics.ok(); }

const QueryDiagnostics& Statement::diagnostics() const { return impl_->diagnostics; }

const std::vector<std::string>& Statement::variables() const {
  return impl_->var_names;
}

Cursor Statement::Execute() const { return ExecuteInternal({}, nullptr, {}); }

Cursor Statement::Execute(const std::vector<std::string>& projection) const {
  return ExecuteInternal(projection, nullptr, {});
}

Cursor Statement::Execute(const ExecOptions& options) const {
  return ExecuteInternal({}, nullptr, options);
}

Cursor Statement::Execute(const std::vector<std::string>& projection,
                          const ExecOptions& options) const {
  return ExecuteInternal(projection, nullptr, options);
}

Cursor Statement::Execute(const Snapshot& snapshot,
                          const ExecOptions& options) const {
  return ExecuteInternal({}, &snapshot, options);
}

Cursor Statement::Execute(const std::vector<std::string>& projection,
                          const Snapshot& snapshot,
                          const ExecOptions& options) const {
  return ExecuteInternal(projection, &snapshot, options);
}

Cursor Statement::ExecuteInternal(const std::vector<std::string>& projection,
                                  const Snapshot* snapshot,
                                  const ExecOptions& options) const {
  auto cursor = std::make_unique<CursorImpl>();
  cursor->stmt = impl_;
  cursor->diagnostics = impl_->diagnostics;
  cursor->exec = options;
  if (!ok()) {
    cursor->state = Cursor::State::kFailed;
    return Cursor(std::move(cursor));
  }
  if (snapshot != nullptr) {
    // Snapshot binding happens here, not at Open: a refused combination
    // must fail loudly at Execute time, never silently read live state.
    // Both backends accept a snapshot — the indexed one enumerates the
    // pinned view directly; the naive oracle materialises a private copy
    // of the view's content at Open, so differential tests can compare
    // both backends against the same pinned state under a live writer.
    if (!snapshot->valid()) {
      cursor->state = Cursor::State::kFailed;
      cursor->diagnostics.code = QueryDiagnostics::Code::kInternal;
      cursor->diagnostics.message =
          "cannot execute against an invalid (default-constructed) snapshot";
      return Cursor(std::move(cursor));
    }
    if (snapshot->db_ != impl_->db) {
      cursor->state = Cursor::State::kFailed;
      cursor->diagnostics.code = QueryDiagnostics::Code::kInternal;
      cursor->diagnostics.message =
          "snapshot and statement belong to different databases";
      return Cursor(std::move(cursor));
    }
    cursor->view = snapshot->view_;
    cursor->snapshot_bound = true;
  }
  if (projection.empty()) {
    cursor->columns = impl_->var_ids;
    cursor->column_names = impl_->var_names;
    cursor->dedup = false;
  } else {
    for (const std::string& name : projection) {
      std::string_view bare = StripQuestionMark(name);
      auto it = std::find_if(
          impl_->var_names.begin(), impl_->var_names.end(),
          [&bare](const std::string& candidate) {
            return std::string_view(candidate).substr(1) == bare;
          });
      if (it == impl_->var_names.end()) {
        cursor->state = Cursor::State::kFailed;
        cursor->diagnostics.code = QueryDiagnostics::Code::kInvalidProjection;
        cursor->diagnostics.message =
            "projection names unknown variable ?" + std::string(bare);
        return Cursor(std::move(cursor));
      }
      std::size_t idx = static_cast<std::size_t>(it - impl_->var_names.begin());
      cursor->columns.push_back(impl_->var_ids[idx]);
      cursor->column_names.push_back(impl_->var_names[idx]);
    }
    // Dropping variables can collapse distinct answers; a permutation of
    // the full variable list cannot. Count distinct columns so repeated
    // names (SELECT ?x, ?x) do not mask a dropped variable.
    std::vector<TermId> distinct = cursor->columns;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
    cursor->dedup = distinct.size() < impl_->var_ids.size();
  }
  if (options.collect_stats) {
    // The one allocation of the stats path. The preparation phases are
    // statement facts, stamped into every collecting execution; the
    // enumeration counters fill in as the cursor runs.
    cursor->stats = std::make_unique<ExecStats>();
    cursor->stats->parse_ns = impl_->parse_ns;
    cursor->stats->check_ns = impl_->check_ns;
    cursor->stats->plan_ns = impl_->plan_ns;
    cursor->stats->backend = BackendToString(impl_->options.backend);
  }
  if (options.trace != nullptr && options.trace->enabled()) {
    // The preparation phases ran before this context existed (a
    // statement is prepared once, executed many times), so they land as
    // back-dated spans laid end to end just before now.
    TraceContext& trace = *options.trace;
    const uint64_t total = impl_->parse_ns + impl_->check_ns + impl_->plan_ns;
    uint64_t at = trace.NowNs();
    at = at > total ? at - total : 0;
    if (impl_->parse_ns != 0) {
      trace.AddCompleteSpan("parse", options.trace_parent, at, impl_->parse_ns);
      at += impl_->parse_ns;
    }
    if (impl_->check_ns != 0) {
      trace.AddCompleteSpan("check", options.trace_parent, at, impl_->check_ns);
      at += impl_->check_ns;
    }
    trace.AddCompleteSpan("plan", options.trace_parent, at, impl_->plan_ns);
  }
  return Cursor(std::move(cursor));
}

BindingTable Statement::ExecuteTable() const { return ExecuteTable({}); }

BindingTable Statement::ExecuteTable(const std::vector<std::string>& projection) const {
  Cursor cursor = Execute(projection);
  std::vector<std::string> names;
  if (cursor.state() != Cursor::State::kFailed) {
    for (std::size_t c = 0; c < cursor.width(); ++c) {
      names.push_back(cursor.VariableName(c));
    }
  }
  BindingTable table(std::move(names));
  while (cursor.Next()) {
    std::vector<std::string> spellings;
    spellings.reserve(cursor.width());
    for (std::size_t c = 0; c < cursor.width(); ++c) {
      spellings.push_back(cursor.Value(c));
    }
    std::vector<std::optional<std::string_view>> cells;
    for (std::size_t c = 0; c < cursor.width(); ++c) {
      if (cursor.IsBound(c)) {
        cells.emplace_back(spellings[c]);
      } else {
        cells.emplace_back(std::nullopt);
      }
    }
    table.AppendRow(cells);
  }
  return table;
}

std::vector<Mapping> Statement::Solutions() const {
  std::vector<Mapping> out;
  Cursor cursor = Execute();
  while (cursor.Next()) out.push_back(cursor.Row());
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t Statement::Count() const {
  uint64_t count = 0;
  Cursor cursor = Execute();
  while (cursor.Next()) ++count;
  return count;
}

bool Statement::Contains(const Mapping& mu) const {
  if (!ok()) return false;
  for (const FilterCondition& filter : impl_->filters) {
    if (!filter.Satisfied(mu)) return false;
  }
  return engine_internal::EvaluateMembership(*impl_->db, impl_->options,
                                             impl_->forest, mu);
}

bool Statement::Contains(const Mapping& mu, const Snapshot& snapshot) const {
  if (!ok()) return false;
  // The snapshot contract mirrors ExecuteInternal's checks; with a bool
  // return the refusals collapse to false (documented in session.h).
  if (impl_->options.backend != Backend::kIndexed) return false;
  if (!snapshot.valid() || snapshot.db_ != impl_->db) return false;
  for (const FilterCondition& filter : impl_->filters) {
    if (!filter.Satisfied(mu)) return false;
  }
  return engine_internal::EvaluateMembershipOnView(impl_->forest, mu,
                                                   *snapshot.view_);
}

}  // namespace wdsparql
