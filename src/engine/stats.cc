#include "wdsparql/stats.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "util/json.h"

namespace wdsparql {
namespace {

/// Cardinality/cost estimate -> short human form ("123", "4.57e+08").
std::string HumanCount(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

/// "1234567" ns -> "1.23ms"-style human duration.
std::string HumanNs(uint64_t ns) {
  char buf[32];
  if (ns < 1000) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 "ns", ns);
  } else if (ns < 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fus", static_cast<double>(ns) / 1e3);
  } else if (ns < 1000ull * 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

}  // namespace

std::string ExecStats::ToText() const {
  std::ostringstream out;
  out << "ExecStats (" << backend << " backend)\n";
  out << "  phases: parse=" << HumanNs(parse_ns) << " check=" << HumanNs(check_ns)
      << " plan=" << HumanNs(plan_ns) << " optimize=" << HumanNs(optimize_ns)
      << " enumerate=" << HumanNs(enumerate_ns) << "\n";
  if (est_cost > 0) out << "  est_cost=" << HumanCount(est_cost) << "\n";
  out << "  rows_emitted=" << rows_emitted << " candidates=" << candidates
      << " dedup_rejected=" << dedup_rejected << " non_maximal=" << non_maximal
      << " maximality_tests=" << maximality_tests << "\n";
  out << "  filtered_out=" << filtered_out
      << " projection_dedup_rejected=" << projection_dedup_rejected
      << " empty_subpatterns=" << empty_subpatterns
      << " interrupt_checks=" << interrupt_checks << "\n";
  out << "  scans: ranges=" << ranges_scanned << " values_probed=" << values_probed
      << " base_triples=" << base_triples_scanned
      << " delta_triples=" << delta_triples_scanned
      << " dict_encodes=" << dict_encodes << " dict_decodes=" << dict_decodes
      << "\n";
  for (const Subpattern& sub : subpatterns) {
    out << "  tree " << sub.tree << " subtree " << sub.subtree << ": "
        << sub.pattern << "\n";
    out << "    candidates=" << sub.candidates << " dedup_rejected="
        << sub.dedup_rejected << " non_maximal=" << sub.non_maximal
        << " maximality_tests=" << sub.maximality_tests << " rows=" << sub.rows
        << "\n";
    if (sub.est_rows >= 0) {
      // The est-vs-actual line of the EXPLAIN report: `candidates` above
      // is the actual cardinality the estimate should be judged against.
      out << "    plan: " << sub.plan << " est_rows=" << HumanCount(sub.est_rows)
          << " est_cost=" << HumanCount(sub.est_cost)
          << " plan_time=" << HumanNs(sub.plan_ns) << "\n";
    }
  }
  return out.str();
}

std::string ExecStats::ToJson() const {
  util::JsonWriter json;
  json.BeginObject();
  json.Field("backend", backend);
  json.BeginObject("phases_ns");
  json.Field("parse", parse_ns);
  json.Field("check", check_ns);
  json.Field("plan", plan_ns);
  json.Field("optimize", optimize_ns);
  json.Field("enumerate", enumerate_ns);
  json.EndObject();
  json.Field("est_cost", est_cost);
  json.Field("rows_emitted", rows_emitted);
  json.Field("candidates", candidates);
  json.Field("dedup_rejected", dedup_rejected);
  json.Field("non_maximal", non_maximal);
  json.Field("maximality_tests", maximality_tests);
  json.Field("filtered_out", filtered_out);
  json.Field("projection_dedup_rejected", projection_dedup_rejected);
  json.Field("empty_subpatterns", empty_subpatterns);
  json.Field("interrupt_checks", interrupt_checks);
  json.Field("ranges_scanned", ranges_scanned);
  json.Field("values_probed", values_probed);
  json.Field("base_triples_scanned", base_triples_scanned);
  json.Field("delta_triples_scanned", delta_triples_scanned);
  json.Field("dict_encodes", dict_encodes);
  json.Field("dict_decodes", dict_decodes);
  json.BeginArray("subpatterns");
  for (const Subpattern& sub : subpatterns) {
    json.BeginObject();
    json.Field("tree", static_cast<uint64_t>(sub.tree));
    json.Field("subtree", static_cast<uint64_t>(sub.subtree));
    json.Field("pattern", sub.pattern);
    json.Field("candidates", sub.candidates);
    json.Field("dedup_rejected", sub.dedup_rejected);
    json.Field("non_maximal", sub.non_maximal);
    json.Field("maximality_tests", sub.maximality_tests);
    json.Field("rows", sub.rows);
    json.Field("est_rows", sub.est_rows);
    json.Field("est_cost", sub.est_cost);
    json.Field("plan_ns", sub.plan_ns);
    json.Field("plan", sub.plan);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return std::move(json).str();
}

}  // namespace wdsparql
