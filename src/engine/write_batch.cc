#include "wdsparql/write_batch.h"

#include <fstream>
#include <optional>
#include <utility>

#include "rdf/ntriples.h"

namespace wdsparql {

void WriteBatch::Add(std::string_view subject, std::string_view predicate,
                     std::string_view object) {
  ops_.push_back(Op{true, std::string(subject), std::string(predicate),
                    std::string(object)});
}

void WriteBatch::Remove(std::string_view subject, std::string_view predicate,
                        std::string_view object) {
  ops_.push_back(Op{false, std::string(subject), std::string(predicate),
                    std::string(object)});
}

bool WriteBatch::Add(const TermPool& pool, const Triple& t) {
  if (!t.IsGround()) return false;  // Variables are not storable facts.
  Add(pool.Spelling(t.subject), pool.Spelling(t.predicate),
      pool.Spelling(t.object));
  return true;
}

bool WriteBatch::Remove(const TermPool& pool, const Triple& t) {
  if (!t.IsGround()) return false;
  Remove(pool.Spelling(t.subject), pool.Spelling(t.predicate),
         pool.Spelling(t.object));
  return true;
}

Status WriteBatch::LoadNTriples(std::string_view text) {
  // Parse into a scratch pool and stage the ops aside, so a parse error
  // on line N leaves the batch exactly as it was.
  TermPool scratch;
  std::vector<Op> staged;
  int line_number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    ++line_number;
    std::optional<Triple> triple;
    WDSPARQL_RETURN_IF_ERROR(
        ParseNTriplesLine(line, line_number, &scratch, &triple));
    if (triple.has_value()) {
      staged.push_back(Op{true, std::string(scratch.Spelling(triple->subject)),
                          std::string(scratch.Spelling(triple->predicate)),
                          std::string(scratch.Spelling(triple->object))});
    }
    if (end == text.size()) break;
    start = end + 1;
  }
  ops_.insert(ops_.end(), std::make_move_iterator(staged.begin()),
              std::make_move_iterator(staged.end()));
  return Status::OK();
}

Status WriteBatch::LoadNTriplesFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  TermPool scratch;
  std::vector<Op> staged;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::optional<Triple> triple;
    WDSPARQL_RETURN_IF_ERROR(
        ParseNTriplesLine(line, line_number, &scratch, &triple));
    if (triple.has_value()) {
      staged.push_back(Op{true, std::string(scratch.Spelling(triple->subject)),
                          std::string(scratch.Spelling(triple->predicate)),
                          std::string(scratch.Spelling(triple->object))});
    }
  }
  if (in.bad()) return Status::IoError("read failure on " + path);
  ops_.insert(ops_.end(), std::make_move_iterator(staged.begin()),
              std::make_move_iterator(staged.end()));
  return Status::OK();
}

}  // namespace wdsparql
