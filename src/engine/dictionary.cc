#include "engine/dictionary.h"

#include <algorithm>

namespace wdsparql {

Dictionary Dictionary::Build(const TripleSet& set) {
  Dictionary dict;
  dict.terms_ = set.AllTerms();
  std::sort(dict.terms_.begin(), dict.terms_.end());
  WDSPARQL_CHECK(dict.terms_.size() < kNoDataId);
  return dict;
}

DataId Dictionary::Encode(TermId t) const {
  auto it = std::lower_bound(terms_.begin(), terms_.end(), t);
  if (it == terms_.end() || *it != t) return kNoDataId;
  return static_cast<DataId>(it - terms_.begin());
}

}  // namespace wdsparql
