#include "engine/dictionary.h"

#include <algorithm>

namespace wdsparql {

Dictionary Dictionary::Build(const TripleSet& set) {
  Dictionary dict;
  dict.terms_ = set.AllTerms();
  std::sort(dict.terms_.begin(), dict.terms_.end());
  WDSPARQL_CHECK(dict.terms_.size() < kNoDataId);
  dict.sorted_limit_ = dict.terms_.size();
  return dict;
}

Dictionary Dictionary::Build(const std::vector<Triple>& triples) {
  Dictionary dict;
  dict.terms_.reserve(3 * triples.size());
  for (const Triple& t : triples) {
    dict.terms_.push_back(t.subject);
    dict.terms_.push_back(t.predicate);
    dict.terms_.push_back(t.object);
  }
  std::sort(dict.terms_.begin(), dict.terms_.end());
  dict.terms_.erase(std::unique(dict.terms_.begin(), dict.terms_.end()),
                    dict.terms_.end());
  WDSPARQL_CHECK(dict.terms_.size() < kNoDataId);
  dict.sorted_limit_ = dict.terms_.size();
  return dict;
}

Dictionary Dictionary::FromParts(std::vector<TermId> terms, std::size_t sorted_limit) {
  Dictionary dict;
  WDSPARQL_CHECK(sorted_limit <= terms.size() && terms.size() < kNoDataId);
  dict.terms_ = std::move(terms);
  dict.sorted_limit_ = sorted_limit;
  for (std::size_t i = sorted_limit; i < dict.terms_.size(); ++i) {
    dict.appended_.emplace(dict.terms_[i], static_cast<DataId>(i));
  }
  return dict;
}

DataId Dictionary::Encode(TermId t) const {
  auto prefix_end = terms_.begin() + static_cast<std::ptrdiff_t>(sorted_limit_);
  auto it = std::lower_bound(terms_.begin(), prefix_end, t);
  if (it != prefix_end && *it == t) return static_cast<DataId>(it - terms_.begin());
  auto appended_it = appended_.find(t);
  if (appended_it != appended_.end()) return appended_it->second;
  return kNoDataId;
}

DataId Dictionary::GetOrAdd(TermId t) {
  DataId existing = Encode(t);
  if (existing != kNoDataId) return existing;
  WDSPARQL_CHECK(terms_.size() + 1 < kNoDataId);
  DataId id = static_cast<DataId>(terms_.size());
  terms_.push_back(t);
  appended_.emplace(t, id);
  return id;
}

}  // namespace wdsparql
