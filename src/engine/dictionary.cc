#include "engine/dictionary.h"

#include <algorithm>

namespace wdsparql {
namespace {

using AppendedEntry = std::pair<TermId, DataId>;

/// The shared lookup algorithm of Dictionary and DictView: binary search
/// the TermId-sorted prefix, then the folded appended run, then scan the
/// bounded appended tail.
DataId EncodeIn(TermId t, const std::vector<TermId>* terms, std::size_t sorted_limit,
                const std::vector<AppendedEntry>* folded,
                const std::vector<AppendedEntry>* tail, std::size_t tail_size) {
  if (terms != nullptr) {
    auto prefix_end = terms->begin() + static_cast<std::ptrdiff_t>(sorted_limit);
    auto it = std::lower_bound(terms->begin(), prefix_end, t);
    if (it != prefix_end && *it == t) return static_cast<DataId>(it - terms->begin());
  }
  if (folded != nullptr) {
    auto it = std::lower_bound(
        folded->begin(), folded->end(), t,
        [](const AppendedEntry& e, TermId term) { return e.first < term; });
    if (it != folded->end() && it->first == t) return it->second;
  }
  if (tail != nullptr) {
    for (std::size_t i = 0; i < tail_size; ++i) {
      if ((*tail)[i].first == t) return (*tail)[i].second;
    }
  }
  return kNoDataId;
}

}  // namespace

// ---------------------------------------------------------------------
// DictView
// ---------------------------------------------------------------------

DataId DictView::Encode(TermId t) const {
  return EncodeIn(t, terms_.get(), sorted_limit_, folded_.get(), tail_.get(),
                  tail_size_);
}

// ---------------------------------------------------------------------
// Dictionary
// ---------------------------------------------------------------------

Dictionary& Dictionary::operator=(const Dictionary& other) {
  if (this == &other) return *this;
  terms_ = other.terms_ == nullptr
               ? nullptr
               : std::make_shared<std::vector<TermId>>(*other.terms_);
  size_ = other.size_;
  sorted_limit_ = other.sorted_limit_;
  folded_ = other.folded_;  // Immutable once published: safe to share.
  tail_ = other.tail_ == nullptr
              ? nullptr
              : std::make_shared<std::vector<AppendedEntry>>(*other.tail_);
  tail_size_ = other.tail_size_;
  return *this;
}

Dictionary& Dictionary::operator=(Dictionary&& other) noexcept {
  if (this == &other) return *this;
  terms_ = std::move(other.terms_);
  size_ = other.size_;
  sorted_limit_ = other.sorted_limit_;
  folded_ = std::move(other.folded_);
  tail_ = std::move(other.tail_);
  tail_size_ = other.tail_size_;
  other.size_ = 0;
  other.sorted_limit_ = 0;
  other.tail_size_ = 0;
  return *this;
}

void Dictionary::InitBuffers(std::vector<TermId> sorted_terms) {
  WDSPARQL_CHECK(sorted_terms.size() < kNoDataId);
  size_ = sorted_terms.size();
  terms_ = std::make_shared<std::vector<TermId>>(std::move(sorted_terms));
}

Dictionary Dictionary::Build(const TripleSet& set) {
  Dictionary dict;
  std::vector<TermId> terms = set.AllTerms();
  std::sort(terms.begin(), terms.end());
  dict.InitBuffers(std::move(terms));
  dict.sorted_limit_ = dict.size_;
  return dict;
}

Dictionary Dictionary::Build(const std::vector<Triple>& triples) {
  Dictionary dict;
  std::vector<TermId> terms;
  terms.reserve(3 * triples.size());
  for (const Triple& t : triples) {
    terms.push_back(t.subject);
    terms.push_back(t.predicate);
    terms.push_back(t.object);
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  dict.InitBuffers(std::move(terms));
  dict.sorted_limit_ = dict.size_;
  return dict;
}

Dictionary Dictionary::FromParts(std::vector<TermId> terms, std::size_t sorted_limit) {
  Dictionary dict;
  WDSPARQL_CHECK(sorted_limit <= terms.size() && terms.size() < kNoDataId);
  dict.InitBuffers(std::move(terms));
  dict.sorted_limit_ = sorted_limit;
  if (dict.size_ > sorted_limit) {
    auto folded = std::make_shared<std::vector<AppendedEntry>>();
    folded->reserve(dict.size_ - sorted_limit);
    for (std::size_t i = sorted_limit; i < dict.size_; ++i) {
      folded->push_back({(*dict.terms_)[i], static_cast<DataId>(i)});
    }
    std::sort(folded->begin(), folded->end());
    dict.folded_ = std::move(folded);
  }
  return dict;
}

DataId Dictionary::Encode(TermId t) const {
  return EncodeIn(t, terms_.get(), sorted_limit_, folded_.get(), tail_.get(),
                  tail_size_);
}

void Dictionary::AppendTerm(TermId t, DataId id) {
  // Grow by swapping in a fresh doubled buffer: a published view may
  // still index the old one, so it must never be reallocated in place.
  if (terms_ == nullptr || size_ == terms_->size()) {
    auto grown = std::make_shared<std::vector<TermId>>();
    grown->resize(std::max<std::size_t>(64, 2 * size_));
    if (terms_ != nullptr) std::copy_n(terms_->begin(), size_, grown->begin());
    terms_ = std::move(grown);
  }
  (*terms_)[size_] = t;
  ++size_;

  if (tail_ == nullptr || tail_size_ == tail_->size()) {
    auto grown = std::make_shared<std::vector<AppendedEntry>>();
    grown->resize(kFoldLimit);
    if (tail_ != nullptr) std::copy_n(tail_->begin(), tail_size_, grown->begin());
    tail_ = std::move(grown);
  }
  (*tail_)[tail_size_] = {t, id};
  ++tail_size_;

  if (tail_size_ < kFoldLimit) return;
  // Fold the tail into a fresh sorted run. The old run stays alive for
  // any view that still references it.
  auto folded = std::make_shared<std::vector<AppendedEntry>>();
  folded->reserve((folded_ == nullptr ? 0 : folded_->size()) + tail_size_);
  if (folded_ != nullptr) *folded = *folded_;
  folded->insert(folded->end(), tail_->begin(), tail_->begin() + tail_size_);
  std::sort(folded->begin(), folded->end());
  folded_ = std::move(folded);
  tail_ = nullptr;
  tail_size_ = 0;
}

DataId Dictionary::GetOrAdd(TermId t) {
  DataId existing = Encode(t);
  if (existing != kNoDataId) return existing;
  WDSPARQL_CHECK(size_ + 1 < kNoDataId);
  DataId id = static_cast<DataId>(size_);
  AppendTerm(t, id);
  return id;
}

void Dictionary::EnsureTerms(const std::vector<TermId>& terms) {
  std::vector<TermId> unknown;
  for (TermId t : terms) {
    if (Encode(t) == kNoDataId) unknown.push_back(t);
  }
  std::sort(unknown.begin(), unknown.end());
  unknown.erase(std::unique(unknown.begin(), unknown.end()), unknown.end());
  if (unknown.empty()) return;
  WDSPARQL_CHECK(size_ + unknown.size() < kNoDataId);
  if (unknown.size() < kFoldLimit) {
    // Too few newcomers to justify rebuilding the folded run: take the
    // bounded-tail append path (its fold amortises these fine). The
    // eager single fold below is for genuinely bulk batches, where
    // per-kFoldLimit refolds would go quadratic.
    for (TermId t : unknown) AppendTerm(t, static_cast<DataId>(size_));
    return;
  }

  // One growth of the term array (swap-in-fresh, never reallocating
  // under a published view), then consecutive ids for the newcomers.
  if (terms_ == nullptr || size_ + unknown.size() > terms_->size()) {
    auto grown = std::make_shared<std::vector<TermId>>();
    grown->resize(std::max<std::size_t>(
        64, std::max(2 * size_, size_ + unknown.size())));
    if (terms_ != nullptr) std::copy_n(terms_->begin(), size_, grown->begin());
    terms_ = std::move(grown);
  }
  std::vector<AppendedEntry> entries;
  entries.reserve(unknown.size());
  for (TermId t : unknown) {
    (*terms_)[size_] = t;
    entries.push_back({t, static_cast<DataId>(size_)});
    ++size_;
  }

  // ONE fold: the new sorted run absorbs the old run, the pending tail
  // and every newcomer. Old runs stay alive for views that hold them.
  auto folded = std::make_shared<std::vector<AppendedEntry>>();
  folded->reserve((folded_ == nullptr ? 0 : folded_->size()) + tail_size_ +
                  entries.size());
  if (folded_ != nullptr) {
    folded->insert(folded->end(), folded_->begin(), folded_->end());
  }
  if (tail_ != nullptr) {
    folded->insert(folded->end(), tail_->begin(), tail_->begin() + tail_size_);
  }
  folded->insert(folded->end(), entries.begin(), entries.end());
  std::sort(folded->begin(), folded->end());
  folded_ = std::move(folded);
  tail_ = nullptr;
  tail_size_ = 0;
}

DictView Dictionary::view() const {
  DictView v;
  v.terms_ = terms_;
  v.size_ = size_;
  v.sorted_limit_ = sorted_limit_;
  v.folded_ = folded_;
  v.tail_ = tail_;
  v.tail_size_ = tail_size_;
  return v;
}

}  // namespace wdsparql
