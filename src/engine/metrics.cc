#include "wdsparql/metrics.h"

#include <sstream>

#include "util/json.h"

namespace wdsparql {

namespace {

// Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted
// instrument names ("write.wal_fsync_ns") map dots (and anything else
// illegal) to underscores.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

uint64_t QuantileU64(const Histogram& h, double q) {
  const double v = h.Quantile(q);
  return v <= 0.0 ? 0 : static_cast<uint64_t>(v + 0.5);
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::Dump(MetricsFormat format) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (format == MetricsFormat::kText) {
    // One line per instrument; the maps are ordered, so the dump is
    // sorted by name within each kind.
    std::ostringstream out;
    for (const auto& [name, c] : counters_) {
      out << name << " counter " << c->value() << "\n";
    }
    for (const auto& [name, g] : gauges_) {
      out << name << " gauge " << g->value() << "\n";
    }
    for (const auto& [name, h] : histograms_) {
      out << name << " histogram count=" << h->count() << " sum=" << h->sum()
          << " mean=" << h->mean() << " p50=" << QuantileU64(*h, 0.50)
          << " p95=" << QuantileU64(*h, 0.95)
          << " p99=" << QuantileU64(*h, 0.99) << " max=" << h->max() << "\n";
    }
    return out.str();
  }
  if (format == MetricsFormat::kPrometheus) {
    // Text exposition format 0.0.4. Histograms render as the standard
    // cumulative series; with power-of-two buckets, bucket i's inclusive
    // upper bound is 2^i - 1 (bucket 0 holds only the value 0). Only
    // populated buckets are emitted (each bucket line is an independent
    // sample, and the full 64-entry vector is almost entirely zeros).
    std::ostringstream out;
    for (const auto& [name, c] : counters_) {
      const std::string pn = PrometheusName(name);
      out << "# TYPE " << pn << " counter\n" << pn << " " << c->value() << "\n";
    }
    for (const auto& [name, g] : gauges_) {
      const std::string pn = PrometheusName(name);
      out << "# TYPE " << pn << " gauge\n" << pn << " " << g->value() << "\n";
    }
    for (const auto& [name, h] : histograms_) {
      const std::string pn = PrometheusName(name);
      out << "# TYPE " << pn << " histogram\n";
      uint64_t cum = 0;
      for (int i = 0; i < Histogram::kBuckets; ++i) {
        const uint64_t n = h->bucket(i);
        if (n == 0) continue;
        cum += n;
        const uint64_t upper =
            i == 0 ? 0 : (i >= 64 ? ~uint64_t{0} : (uint64_t{1} << i) - 1);
        out << pn << "_bucket{le=\"" << upper << "\"} " << cum << "\n";
      }
      // Use the bucket total (not count()) for +Inf/_count so the series
      // stays internally consistent under concurrent Observe calls.
      out << pn << "_bucket{le=\"+Inf\"} " << cum << "\n";
      out << pn << "_sum " << h->sum() << "\n";
      out << pn << "_count " << cum << "\n";
    }
    return out.str();
  }
  util::JsonWriter json;
  json.BeginObject();
  for (const auto& [name, c] : counters_) {
    json.BeginObject(name);
    json.Field("kind", "counter");
    json.Field("value", c->value());
    json.EndObject();
  }
  for (const auto& [name, g] : gauges_) {
    json.BeginObject(name);
    json.Field("kind", "gauge");
    json.Field("value", g->value());
    json.EndObject();
  }
  for (const auto& [name, h] : histograms_) {
    json.BeginObject(name);
    json.Field("kind", "histogram");
    json.Field("count", h->count());
    json.Field("sum", h->sum());
    json.Field("mean", h->mean());
    json.Field("p50", QuantileU64(*h, 0.50));
    json.Field("p95", QuantileU64(*h, 0.95));
    json.Field("p99", QuantileU64(*h, 0.99));
    json.Field("max", h->max());
    json.BeginArray("buckets");
    // Only populated buckets, as [lower_bound, count] pairs: the full
    // 64-bucket vector is almost entirely zeros.
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      uint64_t n = h->bucket(i);
      if (n == 0) continue;
      json.BeginObject();
      json.Field("ge", Histogram::BucketLowerBound(i));
      json.Field("count", n);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();
  return std::move(json).str();
}

}  // namespace wdsparql
