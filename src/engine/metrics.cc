#include "wdsparql/metrics.h"

#include <sstream>

#include "util/json.h"

namespace wdsparql {

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::Dump(MetricsFormat format) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (format == MetricsFormat::kText) {
    // One line per instrument; the maps are ordered, so the dump is
    // sorted by name within each kind.
    std::ostringstream out;
    for (const auto& [name, c] : counters_) {
      out << name << " counter " << c->value() << "\n";
    }
    for (const auto& [name, g] : gauges_) {
      out << name << " gauge " << g->value() << "\n";
    }
    for (const auto& [name, h] : histograms_) {
      out << name << " histogram count=" << h->count() << " sum=" << h->sum()
          << " mean=" << h->mean() << " max=" << h->max() << "\n";
    }
    return out.str();
  }
  util::JsonWriter json;
  json.BeginObject();
  for (const auto& [name, c] : counters_) {
    json.BeginObject(name);
    json.Field("kind", "counter");
    json.Field("value", c->value());
    json.EndObject();
  }
  for (const auto& [name, g] : gauges_) {
    json.BeginObject(name);
    json.Field("kind", "gauge");
    json.Field("value", g->value());
    json.EndObject();
  }
  for (const auto& [name, h] : histograms_) {
    json.BeginObject(name);
    json.Field("kind", "histogram");
    json.Field("count", h->count());
    json.Field("sum", h->sum());
    json.Field("mean", h->mean());
    json.Field("max", h->max());
    json.BeginArray("buckets");
    // Only populated buckets, as [lower_bound, count] pairs: the full
    // 64-bucket vector is almost entirely zeros.
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      uint64_t n = h->bucket(i);
      if (n == 0) continue;
      json.BeginObject();
      json.Field("ge", Histogram::BucketLowerBound(i));
      json.Field("count", n);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();
  return std::move(json).str();
}

}  // namespace wdsparql
