#ifndef WDSPARQL_ENGINE_PARALLEL_EXEC_H_
#define WDSPARQL_ENGINE_PARALLEL_EXEC_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "engine/join.h"
#include "ptree/forest.h"
#include "sparql/mapping.h"
#include "wd/enumerate.h"
#include "wdsparql/stats.h"
#include "wdsparql/trace.h"

/// \file
/// Parallel query execution over one pinned `ReadView`.
///
/// `ParallelEnumerator` fans one query's candidate space across a small
/// worker pool. Every worker runs its own `SolutionEnumerator` over the
/// same immutable pinned view (views need zero synchronisation with the
/// writer — that was the point of the epoch-publish design), walking the
/// identical deterministic sequence of (subtree, root-binding) work
/// units; a shared atomic counter hands each unit to exactly one worker
/// (`JoinCursor::SetRootClaim`), so partitioning costs one fetch_add per
/// claimed unit and one local compare for everyone else.
///
/// Results flow through a bounded queue into the consumer thread, which
/// deduplicates once across workers (each worker dedups only its own
/// subset) and delivers rows in arrival order — the solution *set* is
/// byte-identical to a serial run, the row *order* is not (callers that
/// need determinism sort, exactly as they already must across backends).
///
/// Observability keeps the cursor-local discipline: every worker counts
/// into its own plain structs, merged exactly once at shutdown into the
/// consumer's sinks; per-worker trace spans are recorded as plain timing
/// pairs by the workers and emitted from the consumer thread (the
/// TraceContext stays single-threaded).
///
/// Cancellation ordering: a fired user probe (deadline/cancel token)
/// latches `interrupted` and raises the shared stop flag; every worker
/// observes it within one check interval (or immediately, if blocked on
/// the full queue) and the consumer returns false without draining.

namespace wdsparql {

/// Merged, deduplicated, pull-based parallel enumeration. Mirrors the
/// slice of the `SolutionEnumerator` interface the engine's cursor
/// drives, so `CursorImpl` can hold either interchangeably.
class ParallelEnumerator {
 public:
  /// Builds one worker's enumeration hooks: `stats` is that worker's
  /// private join-counter struct, `claim` the work-partitioning filter
  /// the hooks must install into every candidate generator they open
  /// (see `JoinCursor::SetRootClaim`). Invoked once per worker, from the
  /// worker's own thread; everything it closes over must be safe to use
  /// from there (the pinned view is — it is immutable).
  using HooksFactory =
      std::function<EnumerationHooks(JoinStats* stats, std::function<bool()> claim)>;

  struct Options {
    uint32_t workers = 2;
    /// Enumeration steps between stop-flag/probe checks per worker
    /// (mirrors ExecOptions::check_interval).
    uint32_t check_interval = 64;
    /// Bounded result-queue capacity: backpressure for a slow consumer,
    /// and the bound on wasted candidate work after an early exit.
    std::size_t queue_capacity = 256;
    HooksFactory hooks_factory;
  };

  ParallelEnumerator(const PatternForest& forest, Options options);
  ~ParallelEnumerator();

  ParallelEnumerator(const ParallelEnumerator&) = delete;
  ParallelEnumerator& operator=(const ParallelEnumerator&) = delete;

  /// Delivers the next distinct solution (arrival order). Launches the
  /// workers on the first call; returns false once all workers drained
  /// (or the probe fired), after merging worker stats into the sinks.
  bool Next(Mapping* out);

  /// True iff the enumeration was stopped by the interruption probe.
  bool interrupted() const {
    return user_interrupted_.load(std::memory_order_relaxed);
  }

  /// Merged per-worker totals; final once `Next` returned false or
  /// `Shutdown` ran.
  const EnumerateStats& stats() const { return merged_stats_; }

  /// Thread-safe interruption probe shared by every worker (the cursor
  /// wires deadline/cancel-token checks through here — both are safe to
  /// evaluate from any thread). Install before the first `Next`.
  void SetInterruptProbe(std::function<bool()> probe, uint32_t interval) {
    probe_ = std::move(probe);
    options_.check_interval = interval == 0 ? 1 : interval;
  }

  /// Consumer-side stats sinks, merged once at shutdown: `sink` receives
  /// summed counters plus the per-(tree, subtree) breakdown re-merged
  /// across workers; `join_sink` the summed join-layer counters. Install
  /// before the first `Next`; both must outlive the enumerator.
  void SetStatsSink(ExecStats* sink, const TermPool* pool, JoinStats* join_sink) {
    sink_ = sink;
    sink_pool_ = pool;
    join_sink_ = join_sink;
  }

  /// Trace sink: one "worker" span per worker under `parent`, recorded
  /// by the workers as plain timings and emitted from the consumer
  /// thread at shutdown. Install before the first `Next`.
  void SetTraceSink(TraceContext* trace, uint32_t parent) {
    trace_ = trace;
    trace_parent_ = parent;
  }

  /// Stops the workers (raising the shared stop flag), joins them, and
  /// merges their stats into the sinks. Idempotent; the destructor and
  /// the natural end of `Next` both funnel through here. After an early
  /// exit (row limit, Close) this is how the cursor tears the pool down
  /// promptly: workers blocked on the full queue wake immediately,
  /// enumerating workers stop within one check interval.
  void Shutdown();

 private:
  /// Everything one worker owns: private counter structs (merged once at
  /// shutdown — workers never touch shared state mid-enumeration) and
  /// the plain span timings for the trace.
  struct Worker {
    JoinStats join_stats;
    EnumerateStats enum_stats;
    std::unique_ptr<ExecStats> exec_stats;  // Only when a sink is set.
    uint64_t start_offset_ns = 0;  // From worker launch, steady clock.
    uint64_t duration_ns = 0;
    std::thread thread;
  };

  void Start();
  void WorkerMain(std::size_t index);
  /// Claim filter for worker-local use: hands each global work ordinal
  /// to exactly one worker via `claim_counter_`.
  std::function<bool()> MakeClaim();
  /// Blocking bounded push; false when the stop flag cut it short.
  bool Push(Mapping mu);
  /// Blocking pop; false when drained or stopped.
  bool Pop(Mapping* out);
  void MergeWorkerStats();

  const PatternForest* forest_;
  Options options_;
  std::function<bool()> probe_;  // User deadline/cancel probe; may be null.

  std::atomic<bool> stop_{false};
  std::atomic<bool> user_interrupted_{false};
  std::atomic<std::size_t> claim_counter_{0};

  std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Mapping> queue_;
  std::size_t active_workers_ = 0;

  std::vector<std::unique_ptr<Worker>> workers_;
  bool started_ = false;
  bool finished_ = false;

  // Consumer-thread state: cross-worker dedup and merged totals.
  std::unordered_set<Mapping, MappingHash> seen_;
  EnumerateStats merged_stats_;

  ExecStats* sink_ = nullptr;
  const TermPool* sink_pool_ = nullptr;
  JoinStats* join_sink_ = nullptr;
  TraceContext* trace_ = nullptr;
  uint32_t trace_parent_ = 0;
  /// Trace-epoch offset and steady-clock instant of worker launch, for
  /// converting worker-recorded timings into trace timestamps.
  uint64_t launch_trace_ns_ = 0;
  std::chrono::steady_clock::time_point launch_tp_;
};

}  // namespace wdsparql

#endif  // WDSPARQL_ENGINE_PARALLEL_EXEC_H_
