#ifndef WDSPARQL_ENGINE_READ_VIEW_H_
#define WDSPARQL_ENGINE_READ_VIEW_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/dictionary.h"
#include "rdf/scan.h"
#include "wdsparql/hash.h"

/// \file
/// Immutable, refcounted snapshots of the engine's triple store.
///
/// `ReadView` is the concurrency keystone of the engine: one consistent,
/// immutable picture of the store — the three permutation base runs, the
/// sorted delta runs, the tombstone set and a dictionary prefix — held
/// together by shared ownership. The writer never mutates published
/// state; every mutation builds the next delta copy-on-write and
/// publishes a fresh view with one atomic pointer swap (the epoch
/// publish in `IndexedStore`). Readers pin a view with one refcount
/// increment and can scan it for as long as they like: merges, further
/// mutations, even dropping the `Database`'s current state do not
/// disturb a pinned view, and the last pin to go releases the runs (and
/// the mapped snapshot file they may borrow). See docs/CONCURRENCY.md
/// for the full protocol and its memory-ordering argument.

namespace wdsparql {

/// A dictionary-encoded triple. Field order is always (s, p, o); the
/// permutation lives in the sort order of the containing vector.
struct EncTriple {
  DataId s;
  DataId p;
  DataId o;

  /// Position access: 0=subject, 1=predicate, 2=object.
  DataId operator[](int pos) const { return pos == 0 ? s : (pos == 1 ? p : o); }

  friend bool operator==(const EncTriple& a, const EncTriple& b) {
    return a.s == b.s && a.p == b.p && a.o == b.o;
  }
};

/// Hash functor for EncTriple (tombstone set, dedup probes).
struct EncTripleHash {
  std::size_t operator()(const EncTriple& t) const {
    std::size_t seed = t.s;
    HashCombine(seed, t.p);
    HashCombine(seed, t.o);
    return seed;
  }
};

/// An encoded triple pattern: `kNoDataId` positions are wildcards.
struct EncPattern {
  DataId s = kNoDataId;
  DataId p = kNoDataId;
  DataId o = kNoDataId;

  DataId operator[](int pos) const { return pos == 0 ? s : (pos == 1 ? p : o); }
};

/// The three cyclic permutation orders.
enum class Permutation { kSpo = 0, kPos = 1, kOsp = 2 };

namespace enc_order {

/// Position order of each permutation: kSpo reads positions (0,1,2),
/// kPos (1,2,0), kOsp (2,0,1).
inline constexpr int kPermOrder[3][3] = {{0, 1, 2}, {1, 2, 0}, {2, 0, 1}};

inline const int* OrderOf(Permutation perm) {
  return kPermOrder[static_cast<int>(perm)];
}

/// The permutation whose sort prefix covers a bound-position mask
/// (bit 0 = S bound, bit 1 = P, bit 2 = O): the choice `Scan` makes, so
/// the planner can predict/report which index a scan will touch.
Permutation PermForBoundMask(int mask);

/// Lexicographic comparator in the given permutation order.
struct PermLess {
  const int* order;
  bool operator()(const EncTriple& a, const EncTriple& b) const {
    for (int i = 0; i < 3; ++i) {
      int pos = order[i];
      if (a[pos] != b[pos]) return a[pos] < b[pos];
    }
    return false;
  }
};

}  // namespace enc_order

/// The matching triples of one scan: a sorted base-run range merged on
/// the fly with a sorted delta-run range, with tombstoned base triples
/// skipped. Iteration yields triples in permutation order (so the first
/// unbound position is ascending, as the merge join requires). The
/// backing `ReadView` must outlive the scan; because views are
/// immutable, a scan over a pinned view is valid for the view's whole
/// lifetime regardless of store mutations.
class MergedScan {
 public:
  /// Tombstoned base-resident triples, sorted in SPO order. A sorted
  /// vector (not a hash set) so the writer's copy-on-write per `Erase`
  /// is one memcpy + insertion rather than a rehash of every node;
  /// membership during scans is a binary search, and the common case —
  /// no tombstones at all — stays a single emptiness test.
  using Tombstones = std::vector<EncTriple>;

  MergedScan(const EncTriple* base_begin, const EncTriple* base_end,
             const EncTriple* delta_begin, const EncTriple* delta_end,
             const Tombstones* dead, Permutation perm);

  /// Two-run merging input iterator.
  class Iterator {
   public:
    Iterator(const EncTriple* base, const EncTriple* base_end, const EncTriple* delta,
             const EncTriple* delta_end, const Tombstones* dead, const int* order);

    const EncTriple& operator*() const { return on_delta_ ? *delta_ : *base_; }
    /// True iff the current triple comes from the delta run (false:
    /// base run). Stats collection attributes scan work per run with
    /// this; only meaningful while the iterator is dereferenceable.
    bool on_delta() const { return on_delta_; }
    Iterator& operator++();
    friend bool operator!=(const Iterator& a, const Iterator& b) {
      return a.base_ != b.base_ || a.delta_ != b.delta_;
    }
    friend bool operator==(const Iterator& a, const Iterator& b) { return !(a != b); }

   private:
    void Settle();  // Skip dead base triples; pick the smaller run head.

    const EncTriple* base_;
    const EncTriple* base_end_;
    const EncTriple* delta_;
    const EncTriple* delta_end_;
    const Tombstones* dead_;
    const int* order_;
    bool on_delta_ = false;
  };

  Iterator begin() const;
  Iterator end() const;
  /// Number of live triples in the scan. O(range) — counts by iterating;
  /// intended for tests and diagnostics, not hot paths.
  std::size_t size() const;
  bool empty() const { return !(begin() != end()); }
  /// The permutation the scan is ordered in.
  Permutation permutation() const { return perm_; }

 private:
  const EncTriple* base_begin_;
  const EncTriple* base_end_;
  const EncTriple* delta_begin_;
  const EncTriple* delta_end_;
  const Tombstones* dead_;
  Permutation perm_;
};

/// A permutation-sorted base run: either owned storage (built or merged
/// in memory) or a borrowed external array — a mapped snapshot section
/// consumed in place, whose backing file view must outlive the run (the
/// `BaseRuns` keepalive guarantees it). The next `MergeDelta` naturally
/// migrates a borrowed run into owned storage (the merge output is
/// always owned).
class EncRun {
 public:
  EncRun() = default;
  EncRun(const EncRun& other) { *this = other; }
  EncRun& operator=(const EncRun& other) {
    borrowed_ = other.borrowed_;
    size_ = other.size_;
    owned_ = other.owned_;
    data_ = borrowed_ ? other.data_ : owned_.data();
    return *this;
  }
  EncRun(EncRun&& other) noexcept { *this = std::move(other); }
  EncRun& operator=(EncRun&& other) noexcept {
    if (this == &other) return *this;
    borrowed_ = other.borrowed_;
    size_ = other.size_;
    owned_ = std::move(other.owned_);
    data_ = borrowed_ ? other.data_ : owned_.data();
    // Leave the source empty: its data_ must not alias storage that now
    // belongs to the target.
    other.data_ = nullptr;
    other.size_ = 0;
    other.borrowed_ = false;
    other.owned_.clear();
    return *this;
  }

  /// Takes ownership of a sorted run.
  void Assign(std::vector<EncTriple> triples) {
    owned_ = std::move(triples);
    data_ = owned_.data();
    size_ = owned_.size();
    borrowed_ = false;
  }

  /// Borrows `count` sorted triples living elsewhere (snapshot section).
  void Borrow(const EncTriple* data, std::size_t count) {
    owned_.clear();
    owned_.shrink_to_fit();
    data_ = data;
    size_ = count;
    borrowed_ = true;
  }

  const EncTriple* begin() const { return data_; }
  const EncTriple* end() const { return data_ + size_; }
  const EncTriple* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// True when the run borrows external (mapped) storage.
  bool borrowed() const { return borrowed_; }

 private:
  const EncTriple* data_ = nullptr;
  std::size_t size_ = 0;
  bool borrowed_ = false;
  std::vector<EncTriple> owned_;
};

class CardinalityStats;  // optimizer/cardinality.h

/// The three base runs of one store generation. Immutable once
/// published; replaced wholesale by `MergeDelta`. `keepalive` pins
/// whatever external storage the runs borrow (the mapped snapshot
/// file), so the mapping lives exactly as long as the last view over it.
/// `stats`, when set, are the aggregated cardinality counts over
/// exactly these runs (built at merge time or borrowed from the
/// snapshot's stats sections) — null for legacy snapshots until the
/// first Compact rebuilds them.
struct BaseRuns {
  EncRun spo;
  EncRun pos;
  EncRun osp;
  std::shared_ptr<const void> keepalive;
  std::shared_ptr<const CardinalityStats> stats;
};

/// The mutable tail of the store, frozen: sorted delta runs absorbing
/// inserts (one per permutation, same triples) plus the tombstones of
/// deleted base-resident triples. Immutable once published; the writer
/// builds the successor copy-on-write.
struct DeltaRuns {
  std::vector<EncTriple> dspo;
  std::vector<EncTriple> dpos;
  std::vector<EncTriple> dosp;
  MergedScan::Tombstones dead;

  std::size_t pending() const { return dspo.size() + dead.size(); }
};

/// One immutable, consistent snapshot of an `IndexedStore`: dictionary
/// prefix + base runs + delta runs + tombstones, pinned together.
///
/// Thread-safety: a `ReadView` is deeply immutable — any number of
/// threads may scan, join over and decode the same view concurrently
/// with each other and with the writer publishing successors. Obtain
/// one from `IndexedStore::PinView()` (or `Database` read paths, which
/// pin internally) and keep the `shared_ptr` for as long as iterators
/// into the view are live.
///
/// Implements `TripleSource`, so the paper's homomorphism/wdEVAL
/// algorithms run over a pinned view unchanged.
class ReadView final : public TripleSource {
 public:
  /// An empty view (no triples, empty dictionary).
  ReadView();

  /// \internal Assembled by `IndexedStore` at publish time.
  /// `lifetime_token`, when set, is released when the view dies — the
  /// store threads a gauge-decrementing token through here so the
  /// metrics registry can report how many published views are still
  /// alive (pinned by cursors, snapshots or the store itself).
  ReadView(DictView dict, std::shared_ptr<const BaseRuns> base,
           std::shared_ptr<const DeltaRuns> delta, uint64_t generation,
           std::shared_ptr<const void> lifetime_token = nullptr);

  // Encoded access (the merge join's surface) -------------------------

  /// The dictionary prefix of this view.
  const DictView& dict() const { return dict_; }

  /// Encodes a `TermId`-space pattern (`kAnyTerm` positions become
  /// wildcards). Returns false iff some bound term does not occur in the
  /// view — in which case no triple can match.
  bool EncodeScanPattern(const Triple& pattern, EncPattern* out) const;

  /// The triples matching `pattern`, in the permutation whose sort
  /// prefix covers the bound positions. Every yielded triple matches; no
  /// residual filtering is needed.
  MergedScan Scan(const EncPattern& pattern) const;

  /// True iff the encoded triple is present (and not tombstoned).
  bool Contains(const EncTriple& t) const;

  /// Decodes `t` back to `TermId` space.
  Triple Decode(const EncTriple& t) const {
    return Triple(dict_.Decode(t.s), dict_.Decode(t.p), dict_.Decode(t.o));
  }

  /// Monotonic publish counter of the owning store: every mutation and
  /// merge publishes a view with a larger generation. This is the value
  /// `Database::generation()` and `Cursor::generation()` report, so the
  /// pinned view and the reported generation can never disagree.
  uint64_t generation() const { return generation_; }

  /// Un-merged work captured in this view (delta triples + tombstones).
  std::size_t pending_delta() const { return delta_->pending(); }

  /// Cardinality statistics over this view's base runs, or null when
  /// the base carries none (legacy snapshot not yet compacted, or a
  /// store that has never merged). The stats describe the base only —
  /// `pending_delta()` triples are not counted; the planner treats them
  /// as estimation noise.
  const CardinalityStats* stats() const { return base_->stats.get(); }

  /// \internal True when any base run of this view borrows mapped
  /// snapshot storage.
  bool borrows_snapshot() const {
    return base_->spo.borrowed() || base_->pos.borrowed() || base_->osp.borrowed();
  }

  // TripleSource interface -------------------------------------------
  std::size_t size() const override {
    return base_->spo.size() - delta_->dead.size() + delta_->dspo.size();
  }
  bool Contains(const Triple& t) const override;
  bool ScanPattern(const Triple& pattern, const TripleScanCallback& fn) const override;
  /// All dictionary terms, ascending by `TermId`. After removals this may
  /// include terms that no longer occur in any triple (the dictionary is
  /// append-only); such terms simply match nothing.
  std::vector<TermId> AllTerms() const override;

 private:
  friend class IndexedStore;

  bool InDelta(const EncTriple& t) const;

  DictView dict_;
  std::shared_ptr<const BaseRuns> base_;
  std::shared_ptr<const DeltaRuns> delta_;
  uint64_t generation_ = 0;
  std::shared_ptr<const void> lifetime_token_;  // See the constructor.
};

}  // namespace wdsparql

#endif  // WDSPARQL_ENGINE_READ_VIEW_H_
