#include "engine/parallel_exec.h"

#include <algorithm>

#include "util/check.h"

namespace wdsparql {

ParallelEnumerator::ParallelEnumerator(const PatternForest& forest, Options options)
    : forest_(&forest), options_(std::move(options)) {
  WDSPARQL_CHECK(options_.workers >= 1);
  WDSPARQL_CHECK(options_.hooks_factory != nullptr);
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.check_interval == 0) options_.check_interval = 1;
}

ParallelEnumerator::~ParallelEnumerator() { Shutdown(); }

std::function<bool()> ParallelEnumerator::MakeClaim() {
  // Worker-local striding state behind a copyable closure: `seq` is the
  // worker's position in the global deterministic work sequence (every
  // worker walks the identical sequence, so positions align across
  // threads without communication), `next` the ordinal this worker
  // currently owns. Claiming is dynamic: whoever finishes its unit
  // first fetches the next ordinal, so skewed units self-balance.
  struct ClaimState {
    std::size_t seq = 0;
    std::size_t next = 0;
    bool initialized = false;
  };
  auto state = std::make_shared<ClaimState>();
  return [this, state]() {
    if (!state->initialized) {
      state->next = claim_counter_.fetch_add(1, std::memory_order_relaxed);
      state->initialized = true;
    }
    bool mine = state->seq == state->next;
    if (mine) {
      state->next = claim_counter_.fetch_add(1, std::memory_order_relaxed);
    }
    ++state->seq;
    return mine;
  };
}

void ParallelEnumerator::Start() {
  started_ = true;
  if (trace_ != nullptr) launch_trace_ns_ = trace_->NowNs();
  launch_tp_ = std::chrono::steady_clock::now();
  workers_.reserve(options_.workers);
  for (uint32_t i = 0; i < options_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    if (sink_ != nullptr) worker->exec_stats = std::make_unique<ExecStats>();
    workers_.push_back(std::move(worker));
  }
  active_workers_ = workers_.size();
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread = std::thread([this, i] { WorkerMain(i); });
  }
}

void ParallelEnumerator::WorkerMain(std::size_t index) {
  Worker& worker = *workers_[index];
  const auto started_tp = std::chrono::steady_clock::now();
  worker.start_offset_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(started_tp - launch_tp_)
          .count());
  {
    // Worker-scoped machinery: its own enumerator over the shared forest
    // and pinned view, its own counter structs — nothing shared but the
    // claim counter, the stop flag and the result queue.
    SolutionEnumerator enumerator(
        *forest_, options_.hooks_factory(&worker.join_stats, MakeClaim()));
    if (worker.exec_stats != nullptr) {
      enumerator.SetStatsSink(worker.exec_stats.get(), sink_pool_);
    }
    enumerator.SetInterruptProbe(
        [this] {
          // Stop-flag first: shutdown and sibling-worker interruptions
          // stop this worker without consulting (or re-firing) the user
          // probe. A genuine probe fire latches `user_interrupted_`
          // before raising the flag, so the ordering is: latch, raise,
          // wake — every observer of the flag sees the latch.
          if (stop_.load(std::memory_order_relaxed)) return true;
          if (probe_ && probe_()) {
            user_interrupted_.store(true, std::memory_order_relaxed);
            stop_.store(true, std::memory_order_relaxed);
            not_empty_.notify_all();
            not_full_.notify_all();
            return true;
          }
          return false;
        },
        options_.check_interval);
    Mapping mu;
    while (enumerator.Next(&mu)) {
      if (!Push(std::move(mu))) break;
    }
    worker.enum_stats = enumerator.stats();
  }
  worker.duration_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - started_tp)
          .count());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --active_workers_;
  }
  not_empty_.notify_all();
}

bool ParallelEnumerator::Push(Mapping mu) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_full_.wait(lock, [this] {
    return queue_.size() < options_.queue_capacity ||
           stop_.load(std::memory_order_relaxed);
  });
  if (stop_.load(std::memory_order_relaxed)) return false;
  queue_.push_back(std::move(mu));
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool ParallelEnumerator::Pop(Mapping* out) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [this] {
    return !queue_.empty() || active_workers_ == 0 ||
           stop_.load(std::memory_order_relaxed);
  });
  // Interruption beats drain: a fired probe means "stop now", matching
  // the serial enumerator, which delivers nothing after its probe fires.
  if (user_interrupted_.load(std::memory_order_relaxed)) return false;
  if (queue_.empty()) return false;  // All workers done and drained.
  *out = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return true;
}

bool ParallelEnumerator::Next(Mapping* out) {
  WDSPARQL_CHECK(out != nullptr);
  if (finished_) return false;
  if (!started_) Start();
  Mapping mu;
  while (true) {
    // The consumer evaluates the user probe too (once per pull): workers
    // blocked on a full queue cannot reach their own probe sites, and a
    // fired token must beat rows already queued — the serial engine
    // delivers nothing after its probe fires, so neither may the merge.
    if (probe_ && !user_interrupted_.load(std::memory_order_relaxed) &&
        probe_()) {
      user_interrupted_.store(true, std::memory_order_relaxed);
      stop_.store(true, std::memory_order_relaxed);
      not_empty_.notify_all();
      not_full_.notify_all();
    }
    if (!Pop(&mu)) break;
    // The one cross-worker deduplication point: workers dedup their own
    // subsets, the merge dedups across them, so the delivered set equals
    // the serial `seen_` semantics exactly.
    if (!seen_.insert(mu).second) {
      ++merged_stats_.merge_dedup;
      continue;
    }
    *out = std::move(mu);
    return true;
  }
  Shutdown();
  return false;
}

void ParallelEnumerator::Shutdown() {
  if (finished_) return;
  finished_ = true;
  if (!started_) return;  // Nothing launched: nothing to join or merge.
  stop_.store(true, std::memory_order_relaxed);
  not_empty_.notify_all();
  not_full_.notify_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  MergeWorkerStats();
}

void ParallelEnumerator::MergeWorkerStats() {
  uint64_t merge_dedup = merged_stats_.merge_dedup;
  merged_stats_ = EnumerateStats{};
  merged_stats_.merge_dedup = merge_dedup;
  for (const auto& worker : workers_) {
    merged_stats_.candidates += worker->enum_stats.candidates;
    merged_stats_.emitted += worker->enum_stats.emitted;
    merged_stats_.maximality_tests += worker->enum_stats.maximality_tests;
    if (join_sink_ != nullptr) {
      const JoinStats& js = worker->join_stats;
      join_sink_->ranges_scanned += js.ranges_scanned;
      join_sink_->values_probed += js.values_probed;
      join_sink_->emitted += js.emitted;
      join_sink_->base_scanned += js.base_scanned;
      join_sink_->delta_scanned += js.delta_scanned;
      join_sink_->dict_encodes += js.dict_encodes;
      join_sink_->dict_decodes += js.dict_decodes;
    }
  }
  if (sink_ != nullptr) {
    // Re-merge the per-worker breakdowns by (tree, subtree): several
    // workers contribute candidates to the same subtree, and the report
    // should read like the serial one — one line per subtree, counters
    // summed, in enumeration order.
    std::vector<ExecStats::Subpattern> merged;
    auto find = [&merged](std::size_t tree,
                          std::size_t subtree) -> ExecStats::Subpattern* {
      for (ExecStats::Subpattern& sub : merged) {
        if (sub.tree == tree && sub.subtree == subtree) return &sub;
      }
      return nullptr;
    };
    for (const auto& worker : workers_) {
      if (worker->exec_stats == nullptr) continue;
      const ExecStats& ws = *worker->exec_stats;
      sink_->candidates += ws.candidates;
      sink_->dedup_rejected += ws.dedup_rejected;
      sink_->non_maximal += ws.non_maximal;
      sink_->maximality_tests += ws.maximality_tests;
      sink_->interrupt_checks += ws.interrupt_checks;
      for (const ExecStats::Subpattern& sub : ws.subpatterns) {
        ExecStats::Subpattern* into = find(sub.tree, sub.subtree);
        if (into == nullptr) {
          merged.push_back(sub);
          continue;
        }
        into->candidates += sub.candidates;
        into->dedup_rejected += sub.dedup_rejected;
        into->non_maximal += sub.non_maximal;
        into->maximality_tests += sub.maximality_tests;
        into->rows += sub.rows;
      }
    }
    std::sort(merged.begin(), merged.end(),
              [](const ExecStats::Subpattern& a, const ExecStats::Subpattern& b) {
                return a.tree != b.tree ? a.tree < b.tree : a.subtree < b.subtree;
              });
    // Cross-worker merge dedup counts with the cursor-level dedup (a
    // duplicate is a duplicate, wherever it was caught).
    sink_->dedup_rejected += merged_stats_.merge_dedup;
    // Every worker visits every subtree, so any one worker's (entries +
    // empties) is the subtree total; truly-empty subtrees are those no
    // worker pulled a candidate from.
    if (!workers_.empty() && workers_[0]->exec_stats != nullptr) {
      uint64_t total = workers_[0]->exec_stats->empty_subpatterns +
                       workers_[0]->exec_stats->subpatterns.size();
      sink_->empty_subpatterns +=
          total > merged.size() ? total - merged.size() : 0;
    }
    for (ExecStats::Subpattern& sub : merged) {
      sink_->subpatterns.push_back(std::move(sub));
    }
  }
  if (trace_ != nullptr) {
    // Worker spans, recorded by the workers as plain steady-clock
    // timings and emitted here from the consumer thread — TraceContext
    // is single-threaded by contract.
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const Worker& worker = *workers_[i];
      uint32_t span =
          trace_->AddCompleteSpan("worker", trace_parent_,
                                  launch_trace_ns_ + worker.start_offset_ns,
                                  worker.duration_ns);
      trace_->Annotate(span, "worker", static_cast<uint64_t>(i));
      trace_->Annotate(span, "candidates", worker.enum_stats.candidates);
      trace_->Annotate(span, "emitted", worker.enum_stats.emitted);
    }
  }
}

}  // namespace wdsparql
