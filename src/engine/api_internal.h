#ifndef WDSPARQL_ENGINE_API_INTERNAL_H_
#define WDSPARQL_ENGINE_API_INTERNAL_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "engine/indexed_store.h"
#include "engine/join.h"
#include "engine/parallel_exec.h"
#include "engine/read_view.h"
#include "ptree/forest.h"
#include "rdf/graph.h"
#include "rdf/scan.h"
#include "sparql/ast.h"
#include "sparql/filter.h"
#include "storage/wal.h"
#include "wd/enumerate.h"
#include "wdsparql/cursor.h"
#include "wdsparql/database.h"
#include "wdsparql/diagnostics.h"
#include "wdsparql/exec_options.h"
#include "wdsparql/metrics.h"
#include "wdsparql/session.h"
#include "wdsparql/stats.h"

/// \file
/// Shared implementation state behind the public Database/Session/Cursor
/// pimpl surface. In-tree only: the public headers forward-declare these
/// types; database.cc, session.cc, cursor.cc and the deprecated
/// QueryEngine facade include this header to cross the pimpl boundary.
///
/// Threading model (see docs/CONCURRENCY.md for the full contract): one
/// writer thread mutates; any number of reader threads pin `ReadView`s
/// through the store's epoch publish and run statements/cursors over
/// them. The fields below are annotated with which side touches them.

namespace wdsparql {

/// Everything a `Database` owns.
struct DatabaseImpl {
  DatabaseImpl(TermPool* external_pool, const DatabaseOptions& opts)
      : owned_pool(external_pool == nullptr ? std::make_unique<TermPool>() : nullptr),
        pool(external_pool != nullptr ? external_pool : owned_pool.get()),
        graph(pool),
        hash_source(graph.triples()),
        options(opts) {
    store.set_merge_threshold(options.merge_threshold);
    store.set_metrics(metrics);
    if (options.trace_capacity != 0) {
      trace = std::make_unique<TraceRecorder>(options.trace_capacity);
    }
  }

  /// Crosses the pimpl boundary for the engine_internal free functions
  /// (DatabaseImpl is the one friend of Database).
  static DatabaseImpl& Get(const Database& db) { return *db.impl_; }

  /// Hydrates the hash-backend row store from the permutation store. A
  /// snapshot-opened database borrows its index runs straight out of the
  /// mapping and defers this O(dataset) hash build until something
  /// actually needs the naive backend (its scans, the pebble promise
  /// machinery, or the `Database::graph()` accessor). Double-checked
  /// under a mutex so racing readers hydrate exactly once: the winning
  /// thread fully builds the graph before the release store, and every
  /// later reader observes it through the acquire load — even on the
  /// single-threaded path this costs one relaxed atomic load when
  /// already hydrated.
  void EnsureGraph() const {
    if (graph_hydrated.load(std::memory_order_acquire)) return;
    std::lock_guard<std::mutex> lock(hydrate_mutex);
    if (graph_hydrated.load(std::memory_order_relaxed)) return;
    graph.Reserve(store.size());
    store.ScanPattern(Triple(kAnyTerm, kAnyTerm, kAnyTerm), [this](const Triple& t) {
      graph.Insert(t);
      return true;
    });
    graph_hydrated.store(true, std::memory_order_release);
  }

  /// The sticky storage status, thread-safe (readers may poll health
  /// while the writer latches a WAL failure).
  Status sticky_storage_status() const {
    std::lock_guard<std::mutex> lock(storage_mutex);
    return storage_error;
  }

  /// Latches the first storage failure (no-op once latched).
  void LatchStorageError(const Status& status) {
    std::lock_guard<std::mutex> lock(storage_mutex);
    if (storage_error.ok()) storage_error = status;
  }

  /// Clears the latch (Checkpoint folded everything into the snapshot).
  void ClearStorageError() {
    std::lock_guard<std::mutex> lock(storage_mutex);
    storage_error = Status::OK();
  }

  std::unique_ptr<TermPool> owned_pool;  // Null when the pool is external.
  TermPool* pool;
  /// The engine-wide metrics registry. Shared ownership so view
  /// lifetime tokens (the `views.live` gauge) and the WAL can hold it
  /// safely however long their owners live; updated from any thread
  /// (relaxed atomics inside).
  std::shared_ptr<MetricsRegistry> metrics = std::make_shared<MetricsRegistry>();
  /// The flight-recorder trace ring; null when
  /// `DatabaseOptions::trace_capacity == 0`. Lock-free, written by
  /// request-local `TraceContext` flushes from any thread.
  std::unique_ptr<TraceRecorder> trace;
  mutable RdfGraph graph;        // Hash-indexed row store (naive backend).
  HashTripleSource hash_source;  // TripleSource view over `graph`.
  IndexedStore store;            // Permutation-indexed store (indexed backend).
  DatabaseOptions options;

  // The public view generation lives inside the store's published
  // ReadView (one counter, no way for the pinned view and the reported
  // generation to disagree); see IndexedStore::generation().

  // Persistence state (Database::Open / Save / Checkpoint). Writer side,
  // except the sticky status which is mutex-guarded for readers.
  mutable std::atomic<bool> graph_hydrated{true};  // False until EnsureGraph after Open.
  mutable std::mutex hydrate_mutex;    // Serialises the one-time hydration.
  std::string snapshot_path;           // Checkpoint target; empty if not opened.
  std::unique_ptr<storage::WriteAheadLog> wal;  // Null without kWal.
  mutable std::mutex storage_mutex;    // Guards storage_error.
  Status storage_error;                // Sticky last WAL/storage failure.
};

/// Everything a prepared `Statement` shares with its cursors.
/// Immutable after `Session::Prepare` returns, so it is safe to execute
/// one statement from many threads concurrently (each execution gets
/// its own cursor state).
struct StatementImpl {
  const DatabaseImpl* db = nullptr;
  SessionOptions options;
  QueryDiagnostics diagnostics;
  PatternPtr pattern;                   // Original pattern (with filters).
  PatternPtr core;                      // Filter-free executable core.
  std::vector<FilterCondition> filters; // Peeled top-level FILTERs.
  PatternForest forest;                 // wdpf(core).
  std::vector<TermId> var_ids;          // vars(core), first occurrence.
  std::vector<std::string> var_names;   // Display forms ("?x").

  // Preparation phase timers (always measured — three clock reads per
  // prepare — and copied into every stats-collecting execution).
  uint64_t parse_ns = 0;  // Text -> AST (0 for PrepareParsed).
  uint64_t check_ns = 0;  // Well-designedness check.
  uint64_t plan_ns = 0;   // Filter peel + wdpf forest + variables.
};

/// One cursor's execution state. Owned by exactly one thread at a time
/// (cursors are not shared); the pinned view decouples it from the
/// writer.
struct CursorImpl {
  std::shared_ptr<const StatementImpl> stmt;
  QueryDiagnostics diagnostics;
  Cursor::State state = Cursor::State::kUnopened;

  // Projection (column order; equal to the statement's variables when no
  // projection was requested).
  std::vector<TermId> columns;
  std::vector<std::string> column_names;
  bool dedup = false;  // Proper-subset projection: eliminate duplicates.

  // Live enumeration machinery (created at Open). Exactly one of
  // `enumerator` (serial) and `parallel` (ExecOptions::parallelism > 1
  // on the indexed backend) is non-null while the cursor is open.
  std::unique_ptr<SolutionEnumerator> enumerator;
  std::unique_ptr<ParallelEnumerator> parallel;
  std::unordered_set<Mapping, MappingHash> emitted;
  Mapping row;

  /// Snapshot-bound naive execution: the pinned view's content,
  /// materialised into a cursor-owned copy at Open (the COW half of the
  /// view is what makes the copy consistent with zero writer
  /// synchronisation), plus the hash scan index over it. Null on every
  /// other path.
  std::unique_ptr<TripleSet> snapshot_copy;
  std::unique_ptr<HashTripleSource> snapshot_source;

  /// The store snapshot this cursor reads (indexed backend). Pinned at
  /// `Open` — or copied from a user-held `Snapshot` at `Execute` when
  /// `snapshot_bound` — and released at `Close`/destruction; mutations
  /// never invalidate it. Null for naive-backend cursors, which read the
  /// live hash graph and fall back to generation-based invalidation.
  std::shared_ptr<const ReadView> view;
  /// True when `view` came from a user-held `Snapshot`: `Open` must use
  /// it as-is instead of pinning the freshest published view.
  bool snapshot_bound = false;
  /// Per-execution bounds (row limit, deadline, cancellation token),
  /// bound at `Execute` time. Default state bounds nothing.
  ExecOptions exec;
  /// The pinned view's generation (both backends; for naive cursors the
  /// view itself is dropped and only this stays).
  uint64_t open_generation = 0;
  uint64_t rows = 0;

  /// Execution statistics, allocated only when
  /// `ExecOptions::collect_stats` is set (the disabled path allocates
  /// and counts nothing — `Cursor::stats()` is null).
  std::unique_ptr<ExecStats> stats;
  /// Join-layer counters the indexed-backend hooks write into when
  /// stats are on (cursor-local, folded into `stats` at finish).
  JoinStats join_stats;
  /// The enumerator's aggregate totals, snapshotted before the
  /// enumerator is released on a finish path (they feed the registry
  /// merge, which may run later than the reset).
  EnumerateStats enum_totals;
  /// The "enumerate" span opened at `Open` in `exec.trace` (0 when not
  /// tracing); ended with rows/outcome annotations when the cursor
  /// finalizes. The TraceContext in `exec` must outlive the cursor.
  uint32_t enumerate_span = 0;
  /// One-shot finish latch: the registry merge and the JoinStats fold
  /// run exactly once, whichever of exhaustion/Close/destruction comes
  /// first.
  bool finalized = false;
};

namespace engine_internal {

/// Bulk-loads `triples` into an *empty* database via the sort-based
/// build path (dictionary + one sort per permutation), bypassing the
/// per-triple delta. Used by the QueryEngine compatibility facade.
/// Writer side: must not race concurrent readers (the store object
/// itself is replaced).
void BulkLoad(Database* db, const TripleSet& triples);

/// The database's hash-backed TripleSource (naive backend scans).
const HashTripleSource& HashSourceOf(const Database& db);

/// Enumeration hooks for the session's backend over `db`'s storage.
/// Bound to the move-stable impl, not the movable `Database` shell.
/// On the indexed backend the hooks close over `view` (pinned by the
/// caller — this is the cursor's pin-at-open step); the naive backend
/// reads the live hash graph and `view` may be null. A non-null
/// `join_stats` (indexed backend only) receives the join layer's scan
/// and dictionary counters; it must outlive the hooks. A non-null
/// `root_claim` (indexed backend only) is installed into every
/// candidate generator the hooks open — the parallel workers' space-
/// partitioning filter (see JoinCursor::SetRootClaim). `optimize`
/// (indexed backend only) enables the cost-based variable-order planner
/// for each opened generator when the view carries cardinality
/// statistics; false preserves the historic heuristic order exactly.
EnumerationHooks MakeEnumerationHooks(const DatabaseImpl& db,
                                      const SessionOptions& options,
                                      std::shared_ptr<const ReadView> view,
                                      JoinStats* join_stats = nullptr,
                                      std::function<bool()> root_claim = nullptr,
                                      bool optimize = true);

/// Naive-backend hooks over an explicit materialised triple source (the
/// snapshot-bound oracle path): candidate generation and maximality run
/// against `source` — not the live hash graph — so the execution reads
/// exactly the pinned state however the writer churns. `source` must
/// outlive the hooks; `pebble_promise > 0` switches the maximality
/// certificate to the (k+1)-pebble game, mirroring SessionOptions.
EnumerationHooks MakeNaiveSnapshotHooks(const HashTripleSource& source,
                                        int pebble_promise);

/// wdEVAL membership on the session's backend (no filter application).
/// Pins its own view for the duration of the call on the indexed
/// backend, so it is reader-thread safe against a live writer.
bool EvaluateMembership(const DatabaseImpl& db, const SessionOptions& options,
                        const PatternForest& forest, const Mapping& mu,
                        EvalStats* stats = nullptr);

/// wdEVAL membership over an explicitly pinned view (indexed machinery
/// only): the test decides mu ∈ JPKG against exactly the state `view`
/// pinned, whatever the writer has committed since. Backs the public
/// snapshot-bound `Statement::Contains` overload.
bool EvaluateMembershipOnView(const PatternForest& forest, const Mapping& mu,
                              const ReadView& view, EvalStats* stats = nullptr);

}  // namespace engine_internal

}  // namespace wdsparql

#endif  // WDSPARQL_ENGINE_API_INTERNAL_H_
