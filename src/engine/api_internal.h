#ifndef WDSPARQL_ENGINE_API_INTERNAL_H_
#define WDSPARQL_ENGINE_API_INTERNAL_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "engine/indexed_store.h"
#include "ptree/forest.h"
#include "rdf/graph.h"
#include "rdf/scan.h"
#include "sparql/ast.h"
#include "sparql/filter.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "wd/enumerate.h"
#include "wdsparql/cursor.h"
#include "wdsparql/database.h"
#include "wdsparql/diagnostics.h"
#include "wdsparql/session.h"

/// \file
/// Shared implementation state behind the public Database/Session/Cursor
/// pimpl surface. In-tree only: the public headers forward-declare these
/// types; database.cc, session.cc, cursor.cc and the deprecated
/// QueryEngine facade include this header to cross the pimpl boundary.

namespace wdsparql {

/// Everything a `Database` owns.
struct DatabaseImpl {
  DatabaseImpl(TermPool* external_pool, const DatabaseOptions& opts)
      : owned_pool(external_pool == nullptr ? std::make_unique<TermPool>() : nullptr),
        pool(external_pool != nullptr ? external_pool : owned_pool.get()),
        graph(pool),
        hash_source(graph.triples()),
        options(opts) {
    store.set_merge_threshold(options.merge_threshold);
  }

  /// Crosses the pimpl boundary for the engine_internal free functions
  /// (DatabaseImpl is the one friend of Database).
  static DatabaseImpl& Get(const Database& db) { return *db.impl_; }

  /// Hydrates the hash-backend row store from the permutation store. A
  /// snapshot-opened database borrows its index runs straight out of the
  /// mapping and defers this O(dataset) hash build until something
  /// actually needs the naive backend (its scans, the pebble promise
  /// machinery, or the `Database::graph()` accessor). Double-checked
  /// under a mutex: hydration is reached from const read paths, and
  /// session.h promises concurrent statement execution is safe while
  /// nobody mutates the database.
  void EnsureGraph() const {
    if (graph_hydrated.load(std::memory_order_acquire)) return;
    std::lock_guard<std::mutex> lock(hydrate_mutex);
    if (graph_hydrated.load(std::memory_order_relaxed)) return;
    graph.Reserve(store.size());
    store.ScanPattern(Triple(kAnyTerm, kAnyTerm, kAnyTerm), [this](const Triple& t) {
      graph.Insert(t);
      return true;
    });
    graph_hydrated.store(true, std::memory_order_release);
  }

  /// Drops the open snapshot once nothing borrows it any more (the
  /// first delta merge migrates every base run to owned storage); keeps
  /// a fully-merged long-lived database from pinning the mapping — or,
  /// on the buffered fallback, a full heap copy — of a file it no
  /// longer reads.
  void MaybeReleaseSnapshot() {
    if (snapshot != nullptr && !store.borrows_snapshot()) snapshot.reset();
  }

  std::unique_ptr<TermPool> owned_pool;  // Null when the pool is external.
  TermPool* pool;
  // The open snapshot, if any. Declared before the stores that borrow
  // from it so destruction keeps the mapping alive until they are gone.
  std::shared_ptr<const storage::SnapshotView> snapshot;
  mutable RdfGraph graph;        // Hash-indexed row store (naive backend).
  HashTripleSource hash_source;  // TripleSource view over `graph`.
  IndexedStore store;            // Permutation-indexed store (indexed backend).
  DatabaseOptions options;
  uint64_t epoch = 0;
  // Persistence state (Database::Open / Save / Checkpoint).
  mutable std::atomic<bool> graph_hydrated{true};  // False until EnsureGraph after Open.
  mutable std::mutex hydrate_mutex;    // Serialises the one-time hydration.
  std::string snapshot_path;           // Checkpoint target; empty if not opened.
  std::unique_ptr<storage::WriteAheadLog> wal;  // Null without kWal.
  Status storage_error;                // Sticky last WAL/storage failure.
};

/// Everything a prepared `Statement` shares with its cursors.
struct StatementImpl {
  const DatabaseImpl* db = nullptr;
  SessionOptions options;
  QueryDiagnostics diagnostics;
  PatternPtr pattern;                   // Original pattern (with filters).
  PatternPtr core;                      // Filter-free executable core.
  std::vector<FilterCondition> filters; // Peeled top-level FILTERs.
  PatternForest forest;                 // wdpf(core).
  std::vector<TermId> var_ids;          // vars(core), first occurrence.
  std::vector<std::string> var_names;   // Display forms ("?x").
};

/// One cursor's execution state.
struct CursorImpl {
  std::shared_ptr<const StatementImpl> stmt;
  QueryDiagnostics diagnostics;
  Cursor::State state = Cursor::State::kUnopened;

  // Projection (column order; equal to the statement's variables when no
  // projection was requested).
  std::vector<TermId> columns;
  std::vector<std::string> column_names;
  bool dedup = false;  // Proper-subset projection: eliminate duplicates.

  // Live enumeration machinery (created at Open).
  std::unique_ptr<SolutionEnumerator> enumerator;
  std::unordered_set<Mapping, MappingHash> emitted;
  Mapping row;
  uint64_t open_epoch = 0;
  uint64_t rows = 0;
};

namespace engine_internal {

/// Bulk-loads `triples` into an *empty* database via the sort-based
/// build path (dictionary + one sort per permutation), bypassing the
/// per-triple delta. Used by the QueryEngine compatibility facade.
void BulkLoad(Database* db, const TripleSet& triples);

/// The database's hash-backed TripleSource (naive backend scans).
const HashTripleSource& HashSourceOf(const Database& db);

/// Enumeration hooks for the session's backend over `db`'s storage.
/// Bound to the move-stable impl, not the movable `Database` shell.
EnumerationHooks MakeEnumerationHooks(const DatabaseImpl& db,
                                      const SessionOptions& options);

/// wdEVAL membership on the session's backend (no filter application).
bool EvaluateMembership(const DatabaseImpl& db, const SessionOptions& options,
                        const PatternForest& forest, const Mapping& mu,
                        EvalStats* stats = nullptr);

}  // namespace engine_internal

}  // namespace wdsparql

#endif  // WDSPARQL_ENGINE_API_INTERNAL_H_
