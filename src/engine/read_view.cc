#include "engine/read_view.h"

#include <algorithm>

namespace wdsparql {

using enc_order::OrderOf;
using enc_order::PermLess;

namespace {

/// The permutation whose sort prefix covers the bound-position mask
/// (bit 0 = subject, bit 1 = predicate, bit 2 = object). Every mask is a
/// prefix of one cyclic permutation; full and empty masks default to SPO.
constexpr Permutation kPermForMask[8] = {
    Permutation::kSpo,  // ---
    Permutation::kSpo,  // S--
    Permutation::kPos,  // -P-
    Permutation::kSpo,  // SP-
    Permutation::kOsp,  // --O
    Permutation::kOsp,  // S-O  (OSP prefix: O, S)
    Permutation::kPos,  // -PO  (POS prefix: P, O)
    Permutation::kSpo,  // SPO
};

/// The contiguous [lo, hi) range of `[begin, end)` whose first `prefix`
/// positions (in permutation order) equal the pattern's bound values.
std::pair<const EncTriple*, const EncTriple*> PrefixRange(
    const EncTriple* begin, const EncTriple* end, const EncPattern& pattern,
    const int* order, int prefix) {
  auto triple_below = [&](const EncTriple& t, const EncPattern& p) {
    for (int i = 0; i < prefix; ++i) {
      int pos = order[i];
      if (t[pos] != p[pos]) return t[pos] < p[pos];
    }
    return false;
  };
  auto pattern_below = [&](const EncPattern& p, const EncTriple& t) {
    for (int i = 0; i < prefix; ++i) {
      int pos = order[i];
      if (t[pos] != p[pos]) return p[pos] < t[pos];
    }
    return false;
  };
  const EncTriple* lo = std::lower_bound(begin, end, pattern, triple_below);
  const EncTriple* hi = std::upper_bound(lo, end, pattern, pattern_below);
  return {lo, hi};
}

const std::shared_ptr<const BaseRuns>& EmptyBaseRuns() {
  static const std::shared_ptr<const BaseRuns> empty = std::make_shared<BaseRuns>();
  return empty;
}

const std::shared_ptr<const DeltaRuns>& EmptyDeltaRuns() {
  static const std::shared_ptr<const DeltaRuns> empty = std::make_shared<DeltaRuns>();
  return empty;
}

}  // namespace

namespace enc_order {

Permutation PermForBoundMask(int mask) { return kPermForMask[mask & 7]; }

}  // namespace enc_order

// ---------------------------------------------------------------------
// MergedScan
// ---------------------------------------------------------------------

MergedScan::MergedScan(const EncTriple* base_begin, const EncTriple* base_end,
                       const EncTriple* delta_begin, const EncTriple* delta_end,
                       const Tombstones* dead, Permutation perm)
    : base_begin_(base_begin),
      base_end_(base_end),
      delta_begin_(delta_begin),
      delta_end_(delta_end),
      dead_(dead),
      perm_(perm) {}

MergedScan::Iterator::Iterator(const EncTriple* base, const EncTriple* base_end,
                               const EncTriple* delta, const EncTriple* delta_end,
                               const Tombstones* dead, const int* order)
    : base_(base),
      base_end_(base_end),
      delta_(delta),
      delta_end_(delta_end),
      dead_(dead),
      order_(order) {
  Settle();
}

void MergedScan::Iterator::Settle() {
  const PermLess spo_less{OrderOf(Permutation::kSpo)};
  while (base_ != base_end_ && !dead_->empty() &&
         std::binary_search(dead_->begin(), dead_->end(), *base_, spo_less)) {
    ++base_;
  }
  if (base_ == base_end_) {
    on_delta_ = true;
    return;
  }
  on_delta_ = delta_ != delta_end_ && PermLess{order_}(*delta_, *base_);
}

MergedScan::Iterator& MergedScan::Iterator::operator++() {
  if (on_delta_) {
    ++delta_;
  } else {
    ++base_;
  }
  Settle();
  return *this;
}

MergedScan::Iterator MergedScan::begin() const {
  return Iterator(base_begin_, base_end_, delta_begin_, delta_end_, dead_,
                  OrderOf(perm_));
}

MergedScan::Iterator MergedScan::end() const {
  return Iterator(base_end_, base_end_, delta_end_, delta_end_, dead_, OrderOf(perm_));
}

std::size_t MergedScan::size() const {
  std::size_t n = 0;
  for (auto it = begin(); it != end(); ++it) ++n;
  return n;
}

// ---------------------------------------------------------------------
// ReadView
// ---------------------------------------------------------------------

ReadView::ReadView() : base_(EmptyBaseRuns()), delta_(EmptyDeltaRuns()) {}

ReadView::ReadView(DictView dict, std::shared_ptr<const BaseRuns> base,
                   std::shared_ptr<const DeltaRuns> delta, uint64_t generation,
                   std::shared_ptr<const void> lifetime_token)
    : dict_(std::move(dict)),
      base_(base != nullptr ? std::move(base) : EmptyBaseRuns()),
      delta_(delta != nullptr ? std::move(delta) : EmptyDeltaRuns()),
      generation_(generation),
      lifetime_token_(std::move(lifetime_token)) {}

bool ReadView::EncodeScanPattern(const Triple& pattern, EncPattern* out) const {
  *out = EncPattern{};
  for (int pos = 0; pos < 3; ++pos) {
    TermId term = pattern[pos];
    if (term == kAnyTerm) continue;
    std::optional<DataId> id = dict_.TryResolve(term);
    if (!id.has_value()) return false;  // Term absent: nothing can match.
    (pos == 0 ? out->s : (pos == 1 ? out->p : out->o)) = *id;
  }
  return true;
}

MergedScan ReadView::Scan(const EncPattern& pattern) const {
  int mask = (pattern.s != kNoDataId ? 1 : 0) | (pattern.p != kNoDataId ? 2 : 0) |
             (pattern.o != kNoDataId ? 4 : 0);
  Permutation perm = kPermForMask[mask];
  const int* order = OrderOf(perm);
  int prefix = (mask & 1) + ((mask >> 1) & 1) + ((mask >> 2) & 1);

  const EncRun* base;
  const std::vector<EncTriple>* delta;
  switch (perm) {
    case Permutation::kSpo: base = &base_->spo; delta = &delta_->dspo; break;
    case Permutation::kPos: base = &base_->pos; delta = &delta_->dpos; break;
    default: base = &base_->osp; delta = &delta_->dosp; break;
  }
  auto [base_lo, base_hi] =
      PrefixRange(base->begin(), base->end(), pattern, order, prefix);
  auto [delta_lo, delta_hi] = PrefixRange(
      delta->data(), delta->data() + delta->size(), pattern, order, prefix);
  return MergedScan(base_lo, base_hi, delta_lo, delta_hi, &delta_->dead, perm);
}

bool ReadView::InDelta(const EncTriple& t) const {
  return std::binary_search(delta_->dspo.begin(), delta_->dspo.end(), t,
                            PermLess{OrderOf(Permutation::kSpo)});
}

bool ReadView::Contains(const EncTriple& t) const {
  if (InDelta(t)) return true;
  const PermLess spo_less{OrderOf(Permutation::kSpo)};
  return std::binary_search(base_->spo.begin(), base_->spo.end(), t, spo_less) &&
         !std::binary_search(delta_->dead.begin(), delta_->dead.end(), t, spo_less);
}

bool ReadView::Contains(const Triple& t) const {
  EncTriple enc;
  for (int pos = 0; pos < 3; ++pos) {
    std::optional<DataId> id = dict_.TryResolve(t[pos]);
    if (!id.has_value()) return false;
    (pos == 0 ? enc.s : (pos == 1 ? enc.p : enc.o)) = *id;
  }
  return Contains(enc);
}

bool ReadView::ScanPattern(const Triple& pattern, const TripleScanCallback& fn) const {
  EncPattern enc;
  if (!EncodeScanPattern(pattern, &enc)) return true;  // Empty scan completes.
  for (const EncTriple& t : Scan(enc)) {
    if (!fn(Decode(t))) return false;
  }
  return true;
}

std::vector<TermId> ReadView::AllTerms() const {
  std::vector<TermId> terms;
  terms.reserve(dict_.size());
  for (std::size_t i = 0; i < dict_.size(); ++i) {
    terms.push_back(dict_.Decode(static_cast<DataId>(i)));
  }
  std::sort(terms.begin(), terms.end());
  return terms;
}

}  // namespace wdsparql
