#include "wdsparql/diagnostics.h"

namespace wdsparql {

const char* DiagnosticsCodeToString(QueryDiagnostics::Code code) {
  switch (code) {
    case QueryDiagnostics::Code::kOk: return "OK";
    case QueryDiagnostics::Code::kParseError: return "ParseError";
    case QueryDiagnostics::Code::kNotWellDesigned: return "NotWellDesigned";
    case QueryDiagnostics::Code::kUnsupported: return "Unsupported";
    case QueryDiagnostics::Code::kInvalidProjection: return "InvalidProjection";
    case QueryDiagnostics::Code::kInvalidated: return "Invalidated";
    case QueryDiagnostics::Code::kCancelled: return "Cancelled";
    case QueryDiagnostics::Code::kDeadlineExceeded: return "DeadlineExceeded";
    case QueryDiagnostics::Code::kUnimplemented: return "Unimplemented";
    case QueryDiagnostics::Code::kInternal: return "Internal";
  }
  return "Unknown";
}

std::string QueryDiagnostics::ToString() const {
  if (ok()) return "OK";
  std::string out = DiagnosticsCodeToString(code);
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  if (!offending_variable.empty()) {
    out += " [offending variable " + offending_variable + "]";
  }
  return out;
}

}  // namespace wdsparql
