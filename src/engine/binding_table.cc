#include "wdsparql/binding_table.h"

#include <algorithm>
#include <functional>

#include "wdsparql/check.h"

namespace wdsparql {

BindingTable::BindingTable(std::vector<std::string> column_names)
    : column_names_(std::move(column_names)), columns_(column_names_.size()) {}

void BindingTable::AppendRow(const std::vector<std::optional<std::string_view>>& cells) {
  WDSPARQL_CHECK(cells.size() == column_names_.size());
  for (std::size_t col = 0; col < cells.size(); ++col) {
    uint32_t id = kUnbound;
    if (cells[col].has_value()) {
      std::string spelling(*cells[col]);
      auto [it, inserted] =
          value_ids_.emplace(spelling, static_cast<uint32_t>(values_.size()));
      if (inserted) values_.push_back(std::move(spelling));
      id = it->second;
    }
    columns_[col].push_back(id);
  }
  ++num_rows_;
}

std::optional<std::size_t> BindingTable::ColumnIndex(std::string_view name) const {
  std::string_view bare = name;
  if (!bare.empty() && bare.front() == '?') bare.remove_prefix(1);
  for (std::size_t col = 0; col < column_names_.size(); ++col) {
    std::string_view header = column_names_[col];
    if (!header.empty() && header.front() == '?') header.remove_prefix(1);
    if (header == bare) return col;
  }
  return std::nullopt;
}

const std::string& BindingTable::Value(std::size_t row, std::size_t col) const {
  static const std::string kEmpty;
  uint32_t id = CellId(row, col);
  if (id == kUnbound) return kEmpty;
  return values_[id];
}

std::string BindingTable::ToString() const {
  std::vector<std::size_t> widths(NumColumns());
  for (std::size_t col = 0; col < NumColumns(); ++col) {
    widths[col] = column_names_[col].size();
    for (uint32_t id : columns_[col]) {
      std::size_t len = id == kUnbound ? 1 : values_[id].size();
      widths[col] = std::max(widths[col], len);
    }
  }
  std::string out;
  auto append_row = [&](const std::function<std::string_view(std::size_t)>& cell) {
    for (std::size_t col = 0; col < NumColumns(); ++col) {
      out += col == 0 ? "| " : " | ";
      std::string_view text = cell(col);
      out += std::string(text);
      out.append(widths[col] - text.size(), ' ');
    }
    out += " |\n";
  };
  append_row([&](std::size_t col) { return std::string_view(column_names_[col]); });
  for (std::size_t row = 0; row < NumRows(); ++row) {
    append_row([&](std::size_t col) {
      uint32_t id = columns_[col][row];
      return id == kUnbound ? std::string_view("-") : std::string_view(values_[id]);
    });
  }
  return out;
}

}  // namespace wdsparql
