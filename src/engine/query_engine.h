#ifndef WDSPARQL_ENGINE_QUERY_ENGINE_H_
#define WDSPARQL_ENGINE_QUERY_ENGINE_H_

#include <memory>
#include <string_view>
#include <vector>

#include "ptree/forest.h"
#include "rdf/graph.h"
#include "rdf/scan.h"
#include "sparql/ast.h"
#include "sparql/mapping.h"
#include "util/status.h"
#include "wd/enumerate.h"
#include "wd/eval.h"
#include "wdsparql/database.h"

/// \file
/// DEPRECATED query-engine facade.
///
/// `QueryEngine` predates the public `Database`/`Session`/`Cursor` API
/// (include/wdsparql/) and survives as a thin compatibility shim over
/// it: construction copies the bound graph into an owned `Database`
/// (sharing the graph's `TermPool`, so ids and spellings line up), and
/// every operation delegates to the new execution layers — membership
/// through the shared backend dispatch, enumeration through the
/// suspendable `SolutionEnumerator` the cursors run on.
///
/// New code should hold a `Database` and prepare statements through
/// `Session` (see README "Migrating from QueryEngine"); this facade is
/// kept so existing tests, benchmarks and downstream snippets keep
/// compiling, and will not grow new features.

namespace wdsparql {

/// Engine configuration. `Backend` now lives in wdsparql/session.h.
struct QueryEngineOptions {
  Backend backend = Backend::kIndexed;

  /// Domination-width promise k for membership tests on the naive
  /// backend: 0 uses exact homomorphism extension tests (always
  /// correct), k >= 1 uses the polynomial (k+1)-pebble relaxation of
  /// Theorem 1 (correct under dw <= k).
  int pebble_promise = 0;
};

/// A parsed, validated and planned query, bound to the engine's pool.
struct PreparedQuery {
  PatternPtr pattern;
  PatternForest forest;
};

/// Facade running parse → well-designedness → wdpf → wdEVAL/enumeration
/// over the configured backend. DEPRECATED: use Database/Session/Cursor.
class QueryEngine {
 public:
  /// Binds the engine to `graph` (must outlive the engine); the triples
  /// are bulk-loaded into an internal `Database` sharing `graph`'s pool.
  /// Later mutations of `graph` are NOT reflected — mutate a `Database`
  /// directly instead.
  explicit QueryEngine(const RdfGraph& graph, const QueryEngineOptions& options = {});

  /// Full front half of the pipeline: parse `pattern_text`, reject
  /// non-well-designed patterns, translate to the wdpf forest.
  Result<PreparedQuery> Prepare(std::string_view pattern_text) const;

  /// Plans an already-parsed pattern (well-designedness still checked).
  Result<PreparedQuery> PrepareParsed(const PatternPtr& pattern) const;

  /// wdEVAL membership: decides mu ∈ JPKG on the configured backend.
  bool Evaluate(const PreparedQuery& query, const Mapping& mu,
                EvalStats* stats = nullptr) const;

  /// Enumerates JPKG, sorted and duplicate-free.
  std::vector<Mapping> Solutions(const PreparedQuery& query,
                                 EnumerateStats* stats = nullptr) const;

  /// Streaming enumeration; the callback may return false to stop.
  void EnumerateSolutions(const PreparedQuery& query,
                          const std::function<bool(const Mapping&)>& callback,
                          EnumerateStats* stats = nullptr) const;

  /// |JPKG|.
  uint64_t Count(const PreparedQuery& query) const;

  /// The active backend.
  Backend backend() const { return options_.backend; }

  /// The scan source of the active backend.
  const TripleSource& source() const;

  /// The permutation store (only when backend == kIndexed, else null).
  const IndexedStore* indexed_store() const;

  /// The originally bound graph.
  const RdfGraph& graph() const { return graph_; }

  /// The backing database — the migration path off this facade.
  const Database& database() const { return db_; }

 private:
  SessionOptions session_options() const {
    SessionOptions options;
    options.backend = options_.backend;
    options.pebble_promise = options_.pebble_promise;
    return options;
  }

  const RdfGraph& graph_;
  QueryEngineOptions options_;
  Database db_;
};

}  // namespace wdsparql

#endif  // WDSPARQL_ENGINE_QUERY_ENGINE_H_
