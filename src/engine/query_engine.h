#ifndef WDSPARQL_ENGINE_QUERY_ENGINE_H_
#define WDSPARQL_ENGINE_QUERY_ENGINE_H_

#include <memory>
#include <string_view>
#include <vector>

#include "engine/indexed_store.h"
#include "ptree/forest.h"
#include "rdf/graph.h"
#include "rdf/scan.h"
#include "sparql/ast.h"
#include "sparql/mapping.h"
#include "util/status.h"
#include "wd/enumerate.h"
#include "wd/eval.h"

/// \file
/// The query-engine facade.
///
/// `QueryEngine` runs the full pipeline of the paper over a pluggable
/// storage backend: parse the pattern text, check well-designedness
/// (sparql/well_designed.h), build the wdpf forest, then answer wdEVAL
/// membership queries and enumerate the solution set.
///
/// Two backends:
///
///  * `Backend::kNaiveHash` — the paper-faithful path: hash-indexed
///    `TripleSet` scans feeding the CSP homomorphism solver. Kept as the
///    correctness oracle for differential testing.
///  * `Backend::kIndexed` — the dictionary-encoded permutation store:
///    candidate generation and maximality certificates run as
///    merge/leapfrog joins over sorted SPO/POS/OSP ranges
///    (engine/join.h); subtree matching probes the same store.
///
/// Both backends produce identical solution sets and identical
/// membership verdicts (enforced by tests/engine_test.cc and the
/// property suite).

namespace wdsparql {

/// Storage/execution backend selector.
enum class Backend {
  kNaiveHash,  ///< Hash-indexed TripleSet + CSP solver (oracle).
  kIndexed,    ///< Dictionary-encoded permutation store + merge joins.
};

/// Human-readable backend name ("naive-hash" / "indexed").
const char* BackendToString(Backend backend);

/// Engine configuration.
struct QueryEngineOptions {
  Backend backend = Backend::kIndexed;

  /// Domination-width promise k for membership tests on the naive
  /// backend: 0 uses exact homomorphism extension tests (always
  /// correct), k >= 1 uses the polynomial (k+1)-pebble relaxation of
  /// Theorem 1 (correct under dw <= k).
  int pebble_promise = 0;
};

/// A parsed, validated and planned query, bound to the engine's pool.
struct PreparedQuery {
  PatternPtr pattern;
  PatternForest forest;
};

/// Facade running parse → well-designedness → wdpf → wdEVAL/enumeration
/// over the configured backend.
class QueryEngine {
 public:
  /// Binds the engine to `graph` (must outlive the engine). The indexed
  /// backend builds its dictionary and permutation vectors here; the
  /// naive backend only wraps the graph's hash indexes.
  explicit QueryEngine(const RdfGraph& graph, const QueryEngineOptions& options = {});

  /// Full front half of the pipeline: parse `pattern_text`, reject
  /// non-well-designed patterns, translate to the wdpf forest.
  Result<PreparedQuery> Prepare(std::string_view pattern_text) const;

  /// Plans an already-parsed pattern (well-designedness still checked).
  Result<PreparedQuery> PrepareParsed(const PatternPtr& pattern) const;

  /// wdEVAL membership: decides mu ∈ JPKG on the configured backend.
  bool Evaluate(const PreparedQuery& query, const Mapping& mu,
                EvalStats* stats = nullptr) const;

  /// Enumerates JPKG, sorted and duplicate-free.
  std::vector<Mapping> Solutions(const PreparedQuery& query,
                                 EnumerateStats* stats = nullptr) const;

  /// Streaming enumeration; the callback may return false to stop.
  void EnumerateSolutions(const PreparedQuery& query,
                          const std::function<bool(const Mapping&)>& callback,
                          EnumerateStats* stats = nullptr) const;

  /// |JPKG|.
  uint64_t Count(const PreparedQuery& query) const;

  /// The active backend.
  Backend backend() const { return options_.backend; }

  /// The scan source of the active backend.
  const TripleSource& source() const;

  /// The permutation store (only when backend == kIndexed, else null).
  const IndexedStore* indexed_store() const { return indexed_.get(); }

  /// The underlying graph.
  const RdfGraph& graph() const { return graph_; }

 private:
  const RdfGraph& graph_;
  QueryEngineOptions options_;
  HashTripleSource hash_source_;
  std::unique_ptr<IndexedStore> indexed_;
};

}  // namespace wdsparql

#endif  // WDSPARQL_ENGINE_QUERY_ENGINE_H_
