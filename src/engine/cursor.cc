#include "wdsparql/cursor.h"

#include "engine/api_internal.h"
#include "util/timer.h"

namespace wdsparql {
namespace {

/// Snapshots the enumerator's aggregate counters into the cursor before
/// the machinery is released (the finish paths reset the enumerator, but
/// its totals feed the registry merge). The parallel path shuts the
/// worker pool down first — Shutdown is where worker-local counters
/// merge into the cursor's sinks, and it must happen before the stats
/// are read whichever finish path runs first.
void AbsorbEnumeratorTotals(CursorImpl* impl) {
  if (impl->parallel != nullptr) {
    impl->parallel->Shutdown();
    impl->enum_totals = impl->parallel->stats();
  } else if (impl->enumerator != nullptr) {
    impl->enum_totals = impl->enumerator->stats();
  }
}

/// Releases the live enumeration machinery (either engine) on a finish
/// path; totals must have been absorbed first.
void ReleaseEnumerators(CursorImpl* impl) {
  impl->enumerator.reset();
  impl->parallel.reset();
}

/// The once-per-execution finish step: folds the cursor-local counters
/// into the final `ExecStats` and merges the execution's totals into the
/// database's `MetricsRegistry`. This is the "per-worker accumulation,
/// merge at close" half of the observability contract — the enumeration
/// hot path touched only plain cursor-local integers; the shared atomics
/// are touched here, once, whichever of exhaustion / `Close` /
/// destruction ends the execution first.
void FinalizeCursorStats(CursorImpl* impl) {
  if (impl->finalized || impl->stmt == nullptr || impl->stmt->db == nullptr ||
      impl->open_generation == 0) {
    return;  // Never opened (or already merged): nothing to account.
  }
  impl->finalized = true;
  AbsorbEnumeratorTotals(impl);
  if (impl->stats != nullptr) {
    ExecStats& stats = *impl->stats;
    stats.ranges_scanned = impl->join_stats.ranges_scanned;
    stats.values_probed = impl->join_stats.values_probed;
    stats.base_triples_scanned = impl->join_stats.base_scanned;
    stats.delta_triples_scanned = impl->join_stats.delta_scanned;
    stats.dict_encodes = impl->join_stats.dict_encodes;
    stats.dict_decodes = impl->join_stats.dict_decodes;
    // Optimizer totals, folded up from the per-subtree breakdown (the
    // planner runs once per opened generator; parallel merges keep one
    // representative entry per subtree).
    for (const ExecStats::Subpattern& sub : stats.subpatterns) {
      stats.optimize_ns += sub.plan_ns;
      if (sub.est_rows >= 0) stats.est_cost += sub.est_cost;
    }
  }
  MetricsRegistry& metrics = *impl->stmt->db->metrics;
  metrics.counter("query.rows_emitted").Add(impl->rows);
  metrics.counter("query.candidates").Add(impl->enum_totals.candidates);
  metrics.counter("query.maximality_tests").Add(impl->enum_totals.maximality_tests);
  // Outcome counters: how executions ended, not just what they did. A
  // serving layer watches these to tell healthy truncation (limits) from
  // pressure (deadlines) from abandonment (cancellations / early closes).
  switch (impl->state) {
    case Cursor::State::kCancelled:
      metrics.counter(impl->diagnostics.code ==
                              QueryDiagnostics::Code::kDeadlineExceeded
                          ? "query.deadline_exceeded"
                          : "query.cancelled")
          .Add(1);
      break;
    case Cursor::State::kLimited:
      metrics.counter("query.limited").Add(1);
      break;
    case Cursor::State::kClosed:
    case Cursor::State::kOpen:  // Destroyed while open: same abandonment.
      // Closed while still open: the consumer walked away mid-stream
      // (e.g. a dropped client connection) rather than draining.
      metrics.counter("query.closed_early").Add(1);
      break;
    default:
      break;
  }
  if (impl->stats != nullptr) {
    metrics.histogram("query.enumerate_ns").Observe(impl->stats->enumerate_ns);
  }
  if (impl->exec.trace != nullptr && impl->enumerate_span != 0) {
    TraceContext& trace = *impl->exec.trace;
    trace.Annotate(impl->enumerate_span, "rows", impl->rows);
    trace.Annotate(impl->enumerate_span, "candidates",
                   impl->enum_totals.candidates);
    trace.Annotate(impl->enumerate_span, "outcome",
                   CursorStateToString(impl->state));
    trace.EndSpan(impl->enumerate_span);
  }
}

}  // namespace

Cursor::Cursor() : impl_(std::make_unique<CursorImpl>()) {
  impl_->state = State::kFailed;
  impl_->diagnostics.code = QueryDiagnostics::Code::kInternal;
  impl_->diagnostics.message = "empty cursor (no statement)";
}

Cursor::Cursor(std::unique_ptr<CursorImpl> impl) : impl_(std::move(impl)) {}

Cursor::~Cursor() {
  // A dropped mid-enumeration cursor still merges its totals (moved-from
  // shells hold no impl and skip this).
  if (impl_ != nullptr) FinalizeCursorStats(impl_.get());
}

Cursor::Cursor(Cursor&&) noexcept = default;
Cursor& Cursor::operator=(Cursor&&) noexcept = default;

bool Cursor::Open() {
  switch (impl_->state) {
    case State::kOpen: return true;
    case State::kUnopened: break;
    default: return false;  // Closed/exhausted/invalidated/failed stay put.
  }
  const StatementImpl& stmt = *impl_->stmt;
  // Pin-at-open: take shared ownership of the freshest published
  // ReadView — unless a user-held Snapshot already bound one at Execute
  // time, in which case the cursor reads exactly that state however old
  // it is. Indexed cursors read their view exclusively from here on
  // (the writer may mutate, merge and checkpoint freely — this cursor's
  // world no longer changes until it releases the view at Close or
  // destruction); naive cursors record only the current generation, to
  // detect mutation underneath the unversioned hash graph.
  if (impl_->snapshot_bound) {
    impl_->open_generation = impl_->view->generation();
  } else {
    std::shared_ptr<const ReadView> pinned = stmt.db->store.PinView();
    impl_->open_generation = pinned->generation();
    if (stmt.options.backend == Backend::kIndexed) {
      impl_->view = std::move(pinned);
    }
  }
  if (impl_->exec.trace != nullptr && impl_->exec.trace->enabled()) {
    // One span covering the whole enumeration (ended with rows/outcome
    // annotations at finish), with per-wdpf-subtree child spans emitted
    // by the enumerator at subtree boundaries — never per row. In the
    // parallel mode the children are per-worker spans instead.
    impl_->enumerate_span =
        impl_->exec.trace->StartSpan("enumerate", impl_->exec.trace_parent);
  }
  // The user probe closes over copies of the bounds: the ExecOptions
  // value itself stays untouched, and the shared cancellation token may
  // be flipped from any thread (relaxed load — the flag is the only
  // communication, no ordering is needed).
  std::function<bool()> probe;
  if (impl_->exec.deadline.has_value() || impl_->exec.cancel != nullptr) {
    CancelToken cancel = impl_->exec.cancel;
    std::optional<std::chrono::steady_clock::time_point> deadline =
        impl_->exec.deadline;
    probe = [cancel, deadline]() {
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
        return true;
      }
      return deadline.has_value() &&
             std::chrono::steady_clock::now() >= *deadline;
    };
  }
  if (impl_->exec.parallelism > 1 && stmt.options.backend == Backend::kIndexed) {
    // Parallel mode: fan the candidate space across a worker pool, every
    // worker enumerating the same pinned view. Each worker gets its own
    // hooks (own JoinStats struct, own claim filter) built on its own
    // thread; the factory captures the shared immutable ingredients by
    // value so it outlives this frame.
    ParallelEnumerator::Options popts;
    popts.workers = impl_->exec.parallelism;
    popts.check_interval = impl_->exec.check_interval;
    const DatabaseImpl* db = stmt.db;
    SessionOptions sopts = stmt.options;
    std::shared_ptr<const ReadView> view = impl_->view;
    const bool optimize = impl_->exec.optimize;
    popts.hooks_factory = [db, sopts, view, optimize](
                              JoinStats* stats, std::function<bool()> claim) {
      return engine_internal::MakeEnumerationHooks(*db, sopts, view, stats,
                                                   std::move(claim), optimize);
    };
    impl_->parallel =
        std::make_unique<ParallelEnumerator>(stmt.forest, std::move(popts));
    if (impl_->stats != nullptr) {
      impl_->parallel->SetStatsSink(impl_->stats.get(), stmt.db->pool,
                                    &impl_->join_stats);
    }
    if (impl_->enumerate_span != 0) {
      impl_->parallel->SetTraceSink(impl_->exec.trace, impl_->enumerate_span);
    }
    if (probe) {
      impl_->parallel->SetInterruptProbe(std::move(probe),
                                         impl_->exec.check_interval);
    }
  } else {
    EnumerationHooks hooks;
    if (impl_->snapshot_bound && stmt.options.backend == Backend::kNaiveHash) {
      // Snapshot-bound naive oracle: materialise the pinned view's
      // content into a cursor-owned copy and run the naive machinery
      // against it. The view is immutable, so the scan is a consistent
      // copy with zero writer synchronisation; from here on the cursor
      // never touches live state, making the oracle safe to run while a
      // writer churns — exactly what the differential harness needs.
      impl_->snapshot_copy = std::make_unique<TripleSet>();
      TripleSet* copy = impl_->snapshot_copy.get();
      impl_->view->ScanPattern(Triple(kAnyTerm, kAnyTerm, kAnyTerm),
                               [copy](const Triple& t) {
                                 copy->Insert(t);
                                 return true;
                               });
      impl_->snapshot_source =
          std::make_unique<HashTripleSource>(*impl_->snapshot_copy);
      hooks = engine_internal::MakeNaiveSnapshotHooks(
          *impl_->snapshot_source, stmt.options.pebble_promise);
    } else {
      hooks = engine_internal::MakeEnumerationHooks(
          *stmt.db, stmt.options, impl_->view,
          impl_->stats != nullptr ? &impl_->join_stats : nullptr,
          /*root_claim=*/nullptr, impl_->exec.optimize);
    }
    impl_->enumerator =
        std::make_unique<SolutionEnumerator>(stmt.forest, std::move(hooks));
    if (impl_->stats != nullptr) {
      impl_->enumerator->SetStatsSink(impl_->stats.get(), stmt.db->pool);
    }
    if (impl_->enumerate_span != 0) {
      impl_->enumerator->SetTraceSink(impl_->exec.trace, impl_->enumerate_span);
    }
    if (probe) {
      impl_->enumerator->SetInterruptProbe(std::move(probe),
                                           impl_->exec.check_interval);
    }
  }
  stmt.db->metrics->counter("query.cursors_opened").Add(1);
  impl_->state = State::kOpen;
  return true;
}

namespace {

/// One pull: the body of `Cursor::Next` after the open/timing prologue.
/// Terminal paths snapshot the enumerator's totals before releasing it;
/// the caller runs the finish step once the phase timer has flushed.
bool NextRow(CursorImpl* impl) {
  if (impl->state != Cursor::State::kOpen) return false;
  if (impl->exec.row_limit != 0 && impl->rows >= impl->exec.row_limit) {
    // The permitted prefix was delivered in full; park the cursor and
    // release the machinery (and the pinned view) like exhaustion does.
    // kLimited rather than kExhausted: the consumer can tell a complete
    // answer set from a truncated one.
    impl->state = Cursor::State::kLimited;
    AbsorbEnumeratorTotals(impl);
    ReleaseEnumerators(impl);
    impl->view.reset();
    return false;
  }
  const StatementImpl& stmt = *impl->stmt;
  if (impl->view == nullptr &&
      stmt.db->store.PinView()->generation() != impl->open_generation) {
    // Naive-backend cursors read the live hash graph in place, so a
    // mutation underneath them is unrecoverable: fail fast and loudly.
    // (Indexed cursors hold a pinned view and never take this path.)
    impl->state = Cursor::State::kInvalidated;
    impl->diagnostics.code = QueryDiagnostics::Code::kInvalidated;
    impl->diagnostics.message =
        "cursor invalidated: the database mutated during enumeration "
        "(bind a Snapshot at Execute to read pinned state instead)";
    AbsorbEnumeratorTotals(impl);
    ReleaseEnumerators(impl);
    return false;
  }
  // Pull from whichever enumeration engine this cursor runs (exactly one
  // is live while open).
  ParallelEnumerator* parallel = impl->parallel.get();
  SolutionEnumerator* serial = impl->enumerator.get();
  Mapping mu;
  while (parallel != nullptr ? parallel->Next(&mu) : serial->Next(&mu)) {
    bool filtered_out = false;
    for (const FilterCondition& filter : stmt.filters) {
      if (!filter.Satisfied(mu)) {
        filtered_out = true;
        break;
      }
    }
    if (filtered_out) {
      if (impl->stats != nullptr) ++impl->stats->filtered_out;
      continue;
    }
    Mapping projected = impl->dedup ? mu.RestrictedTo(impl->columns) : mu;
    if (impl->dedup && !impl->emitted.insert(projected).second) {
      if (impl->stats != nullptr) ++impl->stats->projection_dedup_rejected;
      continue;
    }
    impl->row = std::move(projected);
    ++impl->rows;
    if (impl->stats != nullptr) ++impl->stats->rows_emitted;
    return true;
  }
  if (parallel != nullptr ? parallel->interrupted() : serial->interrupted()) {
    // Stopped mid-subtree by the ExecOptions probe. The token is
    // checked first so a cancel that races the deadline reports as a
    // cancellation (the caller's explicit action wins the tie).
    bool token_fired = impl->exec.cancel != nullptr &&
                       impl->exec.cancel->load(std::memory_order_relaxed);
    impl->state = Cursor::State::kCancelled;
    impl->diagnostics.code = token_fired
                                  ? QueryDiagnostics::Code::kCancelled
                                  : QueryDiagnostics::Code::kDeadlineExceeded;
    impl->diagnostics.message =
        token_fired ? "execution cancelled by its cancellation token"
                    : "execution exceeded its deadline";
  } else {
    impl->state = Cursor::State::kExhausted;
  }
  AbsorbEnumeratorTotals(impl);
  ReleaseEnumerators(impl);
  impl->view.reset();  // Release the pinned snapshot promptly.
  return false;
}

}  // namespace

bool Cursor::Next() {
  if (impl_->state == State::kUnopened && !Open()) return false;
  bool has_row;
  if (impl_->stats != nullptr) {
    // The enumerate phase timer brackets exactly the pull work; it must
    // flush before the finish step so the final observation is complete.
    Timer enumerate_timer;
    has_row = NextRow(impl_.get());
    impl_->stats->enumerate_ns += enumerate_timer.ElapsedNanos();
  } else {
    has_row = NextRow(impl_.get());
  }
  if (!has_row) FinalizeCursorStats(impl_.get());
  return has_row;
}

void Cursor::Close() {
  if (impl_->state == State::kOpen || impl_->state == State::kUnopened) {
    impl_->state = State::kClosed;
  }
  FinalizeCursorStats(impl_.get());
  ReleaseEnumerators(impl_.get());
  impl_->emitted.clear();
  // The explicit view release: dropping the last pin lets the store
  // free superseded runs (and unmap a snapshot file they borrowed).
  impl_->view.reset();
}

Cursor::State Cursor::state() const { return impl_->state; }

const QueryDiagnostics& Cursor::diagnostics() const { return impl_->diagnostics; }

uint64_t Cursor::generation() const { return impl_->open_generation; }

std::size_t Cursor::width() const { return impl_->columns.size(); }

const std::string& Cursor::VariableName(std::size_t col) const {
  return impl_->column_names.at(col);
}

bool Cursor::IsBound(std::size_t col) const {
  return impl_->row.Get(impl_->columns.at(col)).has_value();
}

std::string Cursor::Value(std::size_t col) const {
  std::optional<TermId> value = impl_->row.Get(impl_->columns.at(col));
  if (!value.has_value()) return std::string();
  return std::string(impl_->stmt->db->pool->Spelling(*value));
}

const Mapping& Cursor::Row() const { return impl_->row; }

uint64_t Cursor::rows() const { return impl_->rows; }

const ExecStats* Cursor::stats() const { return impl_->stats.get(); }

const char* CursorStateToString(Cursor::State state) {
  switch (state) {
    case Cursor::State::kUnopened: return "unopened";
    case Cursor::State::kOpen: return "open";
    case Cursor::State::kExhausted: return "exhausted";
    case Cursor::State::kClosed: return "closed";
    case Cursor::State::kInvalidated: return "invalidated";
    case Cursor::State::kLimited: return "limited";
    case Cursor::State::kCancelled: return "cancelled";
    case Cursor::State::kFailed: return "failed";
  }
  return "unknown";
}

}  // namespace wdsparql
