#include "wdsparql/cursor.h"

#include "engine/api_internal.h"

namespace wdsparql {

Cursor::Cursor() : impl_(std::make_unique<CursorImpl>()) {
  impl_->state = State::kFailed;
  impl_->diagnostics.code = QueryDiagnostics::Code::kInternal;
  impl_->diagnostics.message = "empty cursor (no statement)";
}

Cursor::Cursor(std::unique_ptr<CursorImpl> impl) : impl_(std::move(impl)) {}
Cursor::~Cursor() = default;
Cursor::Cursor(Cursor&&) noexcept = default;
Cursor& Cursor::operator=(Cursor&&) noexcept = default;

bool Cursor::Open() {
  switch (impl_->state) {
    case State::kOpen: return true;
    case State::kUnopened: break;
    default: return false;  // Closed/exhausted/invalidated/failed stay put.
  }
  const StatementImpl& stmt = *impl_->stmt;
  impl_->open_epoch = stmt.db->epoch;
  impl_->enumerator = std::make_unique<SolutionEnumerator>(
      stmt.forest, engine_internal::MakeEnumerationHooks(*stmt.db, stmt.options));
  impl_->state = State::kOpen;
  return true;
}

bool Cursor::Next() {
  if (impl_->state == State::kUnopened && !Open()) return false;
  if (impl_->state != State::kOpen) return false;
  const StatementImpl& stmt = *impl_->stmt;
  if (stmt.db->epoch != impl_->open_epoch) {
    // The database mutated (or compacted) under us; the enumerator's
    // scan state points into reallocated runs. Fail fast and loudly.
    impl_->state = State::kInvalidated;
    impl_->diagnostics.code = QueryDiagnostics::Code::kInvalidated;
    impl_->diagnostics.message =
        "cursor invalidated: the database mutated during enumeration";
    impl_->enumerator.reset();
    return false;
  }
  Mapping mu;
  while (impl_->enumerator->Next(&mu)) {
    bool filtered_out = false;
    for (const FilterCondition& filter : stmt.filters) {
      if (!filter.Satisfied(mu)) {
        filtered_out = true;
        break;
      }
    }
    if (filtered_out) continue;
    Mapping projected = impl_->dedup ? mu.RestrictedTo(impl_->columns) : mu;
    if (impl_->dedup && !impl_->emitted.insert(projected).second) continue;
    impl_->row = std::move(projected);
    ++impl_->rows;
    return true;
  }
  impl_->state = State::kExhausted;
  impl_->enumerator.reset();
  return false;
}

void Cursor::Close() {
  if (impl_->state == State::kOpen || impl_->state == State::kUnopened) {
    impl_->state = State::kClosed;
  }
  impl_->enumerator.reset();
  impl_->emitted.clear();
}

Cursor::State Cursor::state() const { return impl_->state; }

const QueryDiagnostics& Cursor::diagnostics() const { return impl_->diagnostics; }

std::size_t Cursor::width() const { return impl_->columns.size(); }

const std::string& Cursor::VariableName(std::size_t col) const {
  return impl_->column_names.at(col);
}

bool Cursor::IsBound(std::size_t col) const {
  return impl_->row.Get(impl_->columns.at(col)).has_value();
}

std::string Cursor::Value(std::size_t col) const {
  std::optional<TermId> value = impl_->row.Get(impl_->columns.at(col));
  if (!value.has_value()) return std::string();
  return std::string(impl_->stmt->db->pool->Spelling(*value));
}

const Mapping& Cursor::Row() const { return impl_->row; }

uint64_t Cursor::rows() const { return impl_->rows; }

const char* CursorStateToString(Cursor::State state) {
  switch (state) {
    case Cursor::State::kUnopened: return "unopened";
    case Cursor::State::kOpen: return "open";
    case Cursor::State::kExhausted: return "exhausted";
    case Cursor::State::kClosed: return "closed";
    case Cursor::State::kInvalidated: return "invalidated";
    case Cursor::State::kFailed: return "failed";
  }
  return "unknown";
}

}  // namespace wdsparql
