#include "wdsparql/cursor.h"

#include "engine/api_internal.h"

namespace wdsparql {

Cursor::Cursor() : impl_(std::make_unique<CursorImpl>()) {
  impl_->state = State::kFailed;
  impl_->diagnostics.code = QueryDiagnostics::Code::kInternal;
  impl_->diagnostics.message = "empty cursor (no statement)";
}

Cursor::Cursor(std::unique_ptr<CursorImpl> impl) : impl_(std::move(impl)) {}
Cursor::~Cursor() = default;
Cursor::Cursor(Cursor&&) noexcept = default;
Cursor& Cursor::operator=(Cursor&&) noexcept = default;

bool Cursor::Open() {
  switch (impl_->state) {
    case State::kOpen: return true;
    case State::kUnopened: break;
    default: return false;  // Closed/exhausted/invalidated/failed stay put.
  }
  const StatementImpl& stmt = *impl_->stmt;
  // Pin-at-open: take shared ownership of the freshest published
  // ReadView — unless a user-held Snapshot already bound one at Execute
  // time, in which case the cursor reads exactly that state however old
  // it is. Indexed cursors read their view exclusively from here on
  // (the writer may mutate, merge and checkpoint freely — this cursor's
  // world no longer changes until it releases the view at Close or
  // destruction); naive cursors record only the current generation, to
  // detect mutation underneath the unversioned hash graph.
  if (impl_->snapshot_bound) {
    impl_->open_generation = impl_->view->generation();
  } else {
    std::shared_ptr<const ReadView> pinned = stmt.db->store.PinView();
    impl_->open_generation = pinned->generation();
    if (stmt.options.backend == Backend::kIndexed) {
      impl_->view = std::move(pinned);
    }
  }
  impl_->enumerator = std::make_unique<SolutionEnumerator>(
      stmt.forest,
      engine_internal::MakeEnumerationHooks(*stmt.db, stmt.options, impl_->view));
  if (impl_->exec.deadline.has_value() || impl_->exec.cancel != nullptr) {
    // The probe closes over copies of the bounds: the ExecOptions value
    // itself stays untouched, and the shared cancellation token may be
    // flipped from any thread (relaxed load — the flag is the only
    // communication, no ordering is needed).
    CancelToken cancel = impl_->exec.cancel;
    std::optional<std::chrono::steady_clock::time_point> deadline =
        impl_->exec.deadline;
    impl_->enumerator->SetInterruptProbe(
        [cancel, deadline]() {
          if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
            return true;
          }
          return deadline.has_value() &&
                 std::chrono::steady_clock::now() >= *deadline;
        },
        impl_->exec.check_interval);
  }
  impl_->state = State::kOpen;
  return true;
}

bool Cursor::Next() {
  if (impl_->state == State::kUnopened && !Open()) return false;
  if (impl_->state != State::kOpen) return false;
  if (impl_->exec.row_limit != 0 && impl_->rows >= impl_->exec.row_limit) {
    // The permitted prefix was delivered in full; park the cursor and
    // release the machinery (and the pinned view) like exhaustion does.
    // kLimited rather than kExhausted: the consumer can tell a complete
    // answer set from a truncated one.
    impl_->state = State::kLimited;
    impl_->enumerator.reset();
    impl_->view.reset();
    return false;
  }
  const StatementImpl& stmt = *impl_->stmt;
  if (impl_->view == nullptr &&
      stmt.db->store.PinView()->generation() != impl_->open_generation) {
    // Naive-backend cursors read the live hash graph in place, so a
    // mutation underneath them is unrecoverable: fail fast and loudly.
    // (Indexed cursors hold a pinned view and never take this path.)
    impl_->state = State::kInvalidated;
    impl_->diagnostics.code = QueryDiagnostics::Code::kInvalidated;
    impl_->diagnostics.message =
        "cursor invalidated: the database mutated during enumeration "
        "(naive backend cursors cannot pin a snapshot)";
    impl_->enumerator.reset();
    return false;
  }
  Mapping mu;
  while (impl_->enumerator->Next(&mu)) {
    bool filtered_out = false;
    for (const FilterCondition& filter : stmt.filters) {
      if (!filter.Satisfied(mu)) {
        filtered_out = true;
        break;
      }
    }
    if (filtered_out) continue;
    Mapping projected = impl_->dedup ? mu.RestrictedTo(impl_->columns) : mu;
    if (impl_->dedup && !impl_->emitted.insert(projected).second) continue;
    impl_->row = std::move(projected);
    ++impl_->rows;
    return true;
  }
  if (impl_->enumerator->interrupted()) {
    // Stopped mid-subtree by the ExecOptions probe. The token is
    // checked first so a cancel that races the deadline reports as a
    // cancellation (the caller's explicit action wins the tie).
    bool token_fired = impl_->exec.cancel != nullptr &&
                       impl_->exec.cancel->load(std::memory_order_relaxed);
    impl_->state = State::kCancelled;
    impl_->diagnostics.code = token_fired
                                  ? QueryDiagnostics::Code::kCancelled
                                  : QueryDiagnostics::Code::kDeadlineExceeded;
    impl_->diagnostics.message =
        token_fired ? "execution cancelled by its cancellation token"
                    : "execution exceeded its deadline";
  } else {
    impl_->state = State::kExhausted;
  }
  impl_->enumerator.reset();
  impl_->view.reset();  // Release the pinned snapshot promptly.
  return false;
}

void Cursor::Close() {
  if (impl_->state == State::kOpen || impl_->state == State::kUnopened) {
    impl_->state = State::kClosed;
  }
  impl_->enumerator.reset();
  impl_->emitted.clear();
  // The explicit view release: dropping the last pin lets the store
  // free superseded runs (and unmap a snapshot file they borrowed).
  impl_->view.reset();
}

Cursor::State Cursor::state() const { return impl_->state; }

const QueryDiagnostics& Cursor::diagnostics() const { return impl_->diagnostics; }

uint64_t Cursor::generation() const { return impl_->open_generation; }

std::size_t Cursor::width() const { return impl_->columns.size(); }

const std::string& Cursor::VariableName(std::size_t col) const {
  return impl_->column_names.at(col);
}

bool Cursor::IsBound(std::size_t col) const {
  return impl_->row.Get(impl_->columns.at(col)).has_value();
}

std::string Cursor::Value(std::size_t col) const {
  std::optional<TermId> value = impl_->row.Get(impl_->columns.at(col));
  if (!value.has_value()) return std::string();
  return std::string(impl_->stmt->db->pool->Spelling(*value));
}

const Mapping& Cursor::Row() const { return impl_->row; }

uint64_t Cursor::rows() const { return impl_->rows; }

const char* CursorStateToString(Cursor::State state) {
  switch (state) {
    case Cursor::State::kUnopened: return "unopened";
    case Cursor::State::kOpen: return "open";
    case Cursor::State::kExhausted: return "exhausted";
    case Cursor::State::kClosed: return "closed";
    case Cursor::State::kInvalidated: return "invalidated";
    case Cursor::State::kLimited: return "limited";
    case Cursor::State::kCancelled: return "cancelled";
    case Cursor::State::kFailed: return "failed";
  }
  return "unknown";
}

}  // namespace wdsparql
