#include "engine/join.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"

namespace wdsparql {
namespace {

/// One conjunct, dictionary-encoded: constant positions carry their
/// `DataId`, variable positions the local variable index.
struct EncConjunct {
  DataId constant[3];  // kNoDataId where a variable sits.
  int var[3];          // -1 where a constant sits.
};

}  // namespace

/// The whole resumable join state. The recursion of the old callback
/// join became an explicit stack: one {values, position} frame per
/// variable level, advanced iteratively so `Next` can return mid-descent
/// and resume exactly there.
struct JoinCursor::State {
  State(std::shared_ptr<const ReadView> owned, const ReadView& view,
        const VarAssignment& fixed_in, JoinStats* stats_in)
      : keepalive(std::move(owned)), store(view), fixed(fixed_in), stats(stats_in) {}

  /// One descent level: the intersected candidate values of the level's
  /// variable under the bindings above it, and the resume position.
  struct Level {
    std::vector<DataId> values;
    std::size_t pos = 0;
  };

  std::shared_ptr<const ReadView> keepalive;  // Null for borrowed views.
  const ReadView& store;
  VarAssignment fixed;  // By value: the cursor outlives the Execute call.
  JoinStats* stats;
  std::function<bool()> claim;  // Null = every root value is ours.

  std::vector<EncConjunct> conjuncts;
  std::vector<TermId> vars;
  std::unordered_map<TermId, int> var_index;
  std::vector<std::vector<std::size_t>> conjuncts_of_var;
  std::vector<int> order;
  std::vector<DataId> binding;
  std::vector<Level> levels;
  int depth = -1;  // -1 = not started.
  bool done = false;

  int LocalVar(TermId term) {
    auto it = var_index.find(term);
    if (it != var_index.end()) return it->second;
    int idx = static_cast<int>(vars.size());
    var_index[term] = idx;
    vars.push_back(term);
    return idx;
  }

  /// Returns false iff setup proved the join empty.
  bool Setup(const std::vector<Triple>& patterns,
             const std::vector<TermId>* preferred_order) {
    for (const Triple& raw : patterns) {
      Triple t = ApplyAssignment(fixed, raw);
      EncConjunct c;
      bool ground = true;
      EncTriple enc_ground;
      for (int pos = 0; pos < 3; ++pos) {
        TermId term = t[pos];
        if (IsVariable(term)) {
          c.constant[pos] = kNoDataId;
          c.var[pos] = LocalVar(term);
          ground = false;
          continue;
        }
        if (stats != nullptr) ++stats->dict_encodes;
        DataId id = store.dict().Encode(term);
        if (id == kNoDataId) return false;  // Constant absent from the store.
        c.constant[pos] = id;
        c.var[pos] = -1;
        (pos == 0 ? enc_ground.s : (pos == 1 ? enc_ground.p : enc_ground.o)) = id;
      }
      if (ground) {
        if (!store.Contains(enc_ground)) return false;
        continue;  // Satisfied unconditionally; drop the conjunct.
      }
      conjuncts.push_back(c);
    }

    // Bind most-constrained variables first: descending pattern count,
    // ties by TermId for determinism.
    conjuncts_of_var.assign(vars.size(), {});
    for (std::size_t ci = 0; ci < conjuncts.size(); ++ci) {
      for (int pos = 0; pos < 3; ++pos) {
        int v = conjuncts[ci].var[pos];
        if (v < 0) continue;
        std::vector<std::size_t>& list = conjuncts_of_var[v];
        if (list.empty() || list.back() != ci) list.push_back(ci);
      }
    }
    order.resize(vars.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(), [this](int a, int b) {
      std::size_t ca = conjuncts_of_var[a].size();
      std::size_t cb = conjuncts_of_var[b].size();
      if (ca != cb) return ca > cb;
      return vars[a] < vars[b];
    });
    // A planner-chosen order overrides the heuristic — but only when it
    // is exactly a permutation of this pattern's unbound variables, so a
    // mismatched plan degrades to the heuristic instead of to a wrong
    // (partial) binding order.
    if (preferred_order != nullptr && preferred_order->size() == vars.size()) {
      std::vector<int> mapped;
      mapped.reserve(vars.size());
      std::vector<char> used(vars.size(), 0);
      bool ok = true;
      for (TermId term : *preferred_order) {
        auto it = var_index.find(term);
        if (it == var_index.end() || used[it->second]) {
          ok = false;
          break;
        }
        used[it->second] = 1;
        mapped.push_back(it->second);
      }
      if (ok) order = std::move(mapped);
    }
    binding.assign(vars.size(), kNoDataId);
    levels.resize(order.size());
    return true;
  }

  /// Sorted distinct candidate values for variable `v` from conjunct
  /// `ci`, given the current bindings. Values come out of one
  /// permutation range; when `v` sits right after the bound prefix they
  /// are already sorted, otherwise a sort pass normalises them.
  std::vector<DataId> CollectValues(std::size_t ci, int v) {
    const EncConjunct& c = conjuncts[ci];
    EncPattern probe;
    int v_positions[3];
    int num_v_positions = 0;
    for (int pos = 0; pos < 3; ++pos) {
      DataId bound = kNoDataId;
      if (c.var[pos] < 0) {
        bound = c.constant[pos];
      } else if (c.var[pos] == v) {
        v_positions[num_v_positions++] = pos;
      } else {
        bound = binding[c.var[pos]];  // kNoDataId while unbound: wildcard.
      }
      (pos == 0 ? probe.s : (pos == 1 ? probe.p : probe.o)) = bound;
    }
    WDSPARQL_DCHECK(num_v_positions > 0);

    std::vector<DataId> values;
    auto keep = [&](const EncTriple& t) {
      // Repeated variable inside the conjunct: all its positions must
      // carry the same value.
      if (num_v_positions > 1 && t[v_positions[1]] != t[v_positions[0]]) return;
      if (num_v_positions > 2 && t[v_positions[2]] != t[v_positions[0]]) return;
      values.push_back(t[v_positions[0]]);
    };
    if (stats == nullptr) {
      for (const EncTriple& t : store.Scan(probe)) keep(t);
    } else {
      // Instrumented walk: the explicit iterator exposes which run each
      // triple came from, attributing scan volume to base vs delta.
      ++stats->ranges_scanned;
      MergedScan scan = store.Scan(probe);
      for (auto it = scan.begin(); it != scan.end(); ++it) {
        ++(it.on_delta() ? stats->delta_scanned : stats->base_scanned);
        keep(*it);
      }
    }
    if (!std::is_sorted(values.begin(), values.end())) {
      std::sort(values.begin(), values.end());
    }
    values.erase(std::unique(values.begin(), values.end()), values.end());
    return values;
  }

  /// Galloping intersection of sorted candidate lists, smallest first.
  std::vector<DataId> Intersect(std::vector<std::vector<DataId>> lists) {
    std::sort(lists.begin(), lists.end(),
              [](const auto& a, const auto& b) { return a.size() < b.size(); });
    std::vector<DataId> current = std::move(lists.front());
    for (std::size_t i = 1; i < lists.size() && !current.empty(); ++i) {
      const std::vector<DataId>& other = lists[i];
      std::vector<DataId> next;
      next.reserve(current.size());
      auto it = other.begin();
      for (DataId value : current) {
        if (stats != nullptr) ++stats->values_probed;
        it = std::lower_bound(it, other.end(), value);
        if (it == other.end()) break;
        if (*it == value) next.push_back(value);
      }
      current = std::move(next);
    }
    return current;
  }

  /// Computes level `d`'s value list under the bindings above it. An
  /// empty conjunct list short-circuits to an empty level (dead branch).
  void FillLevel(std::size_t d) {
    Level& level = levels[d];
    level.values.clear();
    level.pos = 0;
    int v = order[d];
    std::vector<std::vector<DataId>> lists;
    lists.reserve(conjuncts_of_var[v].size());
    for (std::size_t ci : conjuncts_of_var[v]) {
      lists.push_back(CollectValues(ci, v));
      if (lists.back().empty()) return;  // Dead branch.
    }
    level.values = Intersect(std::move(lists));
  }

  void Emit(VarAssignment* out) {
    *out = fixed;
    for (std::size_t i = 0; i < vars.size(); ++i) {
      (*out)[vars[i]] = store.dict().Decode(binding[i]);
    }
    if (stats != nullptr) {
      ++stats->emitted;
      stats->dict_decodes += vars.size();
    }
  }

  bool Next(VarAssignment* out) {
    if (done) return false;
    if (depth < 0) {
      if (order.empty()) {
        // Zero unbound variables: the one (fixed) solution. It still
        // counts as one root-claim unit, so exactly one of a set of
        // partitioned cursors emits it.
        done = true;
        if (claim && !claim()) return false;
        Emit(out);
        return true;
      }
      depth = 0;
      FillLevel(0);
    }
    // Resuming after an emission, `depth` stands at the deepest level
    // with its position already past the emitted value — the loop
    // continues the descent exactly where it stopped.
    while (depth >= 0) {
      Level& level = levels[depth];
      if (level.pos < level.values.size()) {
        DataId value = level.values[level.pos++];
        if (depth == 0 && claim && !claim()) continue;  // Another worker's.
        binding[order[depth]] = value;
        if (depth + 1 == static_cast<int>(order.size())) {
          Emit(out);
          return true;
        }
        ++depth;
        FillLevel(depth);
      } else {
        binding[order[depth]] = kNoDataId;
        --depth;
      }
    }
    done = true;
    return false;
  }
};

JoinCursor::JoinCursor(std::shared_ptr<const ReadView> view,
                       const std::vector<Triple>& patterns,
                       const VarAssignment& fixed, JoinStats* stats,
                       const std::vector<TermId>* var_order) {
  WDSPARQL_CHECK(view != nullptr);
  const ReadView& ref = *view;
  state_ = std::make_unique<State>(std::move(view), ref, fixed, stats);
  if (!state_->Setup(patterns, var_order)) state_->done = true;
}

JoinCursor::JoinCursor(const ReadView& view, const std::vector<Triple>& patterns,
                       const VarAssignment& fixed, JoinStats* stats,
                       const std::vector<TermId>* var_order)
    : state_(std::make_unique<State>(nullptr, view, fixed, stats)) {
  if (!state_->Setup(patterns, var_order)) state_->done = true;
}

JoinCursor::~JoinCursor() = default;
JoinCursor::JoinCursor(JoinCursor&&) noexcept = default;
JoinCursor& JoinCursor::operator=(JoinCursor&&) noexcept = default;

bool JoinCursor::Next(VarAssignment* out) { return state_->Next(out); }

void JoinCursor::SetRootClaim(std::function<bool()> claim) {
  state_->claim = std::move(claim);
}

void JoinEnumerate(const ReadView& store, const std::vector<Triple>& patterns,
                   const VarAssignment& fixed,
                   const std::function<bool(const VarAssignment&)>& callback,
                   JoinStats* stats) {
  JoinCursor cursor(store, patterns, fixed, stats);
  VarAssignment out;
  while (cursor.Next(&out)) {
    if (!callback(out)) return;
  }
}

bool JoinExists(const ReadView& store, const std::vector<Triple>& patterns,
                const VarAssignment& fixed, JoinStats* stats) {
  JoinCursor cursor(store, patterns, fixed, stats);
  VarAssignment out;
  return cursor.Next(&out);
}

}  // namespace wdsparql
