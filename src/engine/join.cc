#include "engine/join.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"

namespace wdsparql {
namespace {

/// One conjunct, dictionary-encoded: constant positions carry their
/// `DataId`, variable positions the local variable index.
struct EncConjunct {
  DataId constant[3];  // kNoDataId where a variable sits.
  int var[3];          // -1 where a constant sits.
};

/// Variable-at-a-time join state.
class JoinRun {
 public:
  JoinRun(const ReadView& store, const VarAssignment& fixed,
          const std::function<bool(const VarAssignment&)>& callback, JoinStats* stats)
      : store_(store), fixed_(fixed), callback_(callback), stats_(stats) {}

  /// Returns false iff setup proved the join empty.
  bool Setup(const std::vector<Triple>& patterns) {
    for (const Triple& raw : patterns) {
      Triple t = ApplyAssignment(fixed_, raw);
      EncConjunct c;
      bool ground = true;
      EncTriple enc_ground;
      for (int pos = 0; pos < 3; ++pos) {
        TermId term = t[pos];
        if (IsVariable(term)) {
          c.constant[pos] = kNoDataId;
          c.var[pos] = LocalVar(term);
          ground = false;
          continue;
        }
        if (stats_ != nullptr) ++stats_->dict_encodes;
        DataId id = store_.dict().Encode(term);
        if (id == kNoDataId) return false;  // Constant absent from the store.
        c.constant[pos] = id;
        c.var[pos] = -1;
        (pos == 0 ? enc_ground.s : (pos == 1 ? enc_ground.p : enc_ground.o)) = id;
      }
      if (ground) {
        if (!store_.Contains(enc_ground)) return false;
        continue;  // Satisfied unconditionally; drop the conjunct.
      }
      conjuncts_.push_back(c);
    }

    // Bind most-constrained variables first: descending pattern count,
    // ties by TermId for determinism.
    conjuncts_of_var_.assign(vars_.size(), {});
    for (std::size_t ci = 0; ci < conjuncts_.size(); ++ci) {
      for (int pos = 0; pos < 3; ++pos) {
        int v = conjuncts_[ci].var[pos];
        if (v < 0) continue;
        std::vector<std::size_t>& list = conjuncts_of_var_[v];
        if (list.empty() || list.back() != ci) list.push_back(ci);
      }
    }
    order_.resize(vars_.size());
    for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = static_cast<int>(i);
    std::sort(order_.begin(), order_.end(), [this](int a, int b) {
      std::size_t ca = conjuncts_of_var_[a].size();
      std::size_t cb = conjuncts_of_var_[b].size();
      if (ca != cb) return ca > cb;
      return vars_[a] < vars_[b];
    });
    binding_.assign(vars_.size(), kNoDataId);
    return true;
  }

  void Run() { Descend(0); }

 private:
  int LocalVar(TermId term) {
    auto it = var_index_.find(term);
    if (it != var_index_.end()) return it->second;
    int idx = static_cast<int>(vars_.size());
    var_index_[term] = idx;
    vars_.push_back(term);
    return idx;
  }

  /// Sorted distinct candidate values for variable `v` from conjunct
  /// `ci`, given the current bindings. Values come out of one
  /// permutation range; when `v` sits right after the bound prefix they
  /// are already sorted, otherwise a sort pass normalises them.
  std::vector<DataId> CollectValues(std::size_t ci, int v) {
    const EncConjunct& c = conjuncts_[ci];
    EncPattern probe;
    int v_positions[3];
    int num_v_positions = 0;
    for (int pos = 0; pos < 3; ++pos) {
      DataId bound = kNoDataId;
      if (c.var[pos] < 0) {
        bound = c.constant[pos];
      } else if (c.var[pos] == v) {
        v_positions[num_v_positions++] = pos;
      } else {
        bound = binding_[c.var[pos]];  // kNoDataId while unbound: wildcard.
      }
      (pos == 0 ? probe.s : (pos == 1 ? probe.p : probe.o)) = bound;
    }
    WDSPARQL_DCHECK(num_v_positions > 0);

    std::vector<DataId> values;
    auto keep = [&](const EncTriple& t) {
      // Repeated variable inside the conjunct: all its positions must
      // carry the same value.
      if (num_v_positions > 1 && t[v_positions[1]] != t[v_positions[0]]) return;
      if (num_v_positions > 2 && t[v_positions[2]] != t[v_positions[0]]) return;
      values.push_back(t[v_positions[0]]);
    };
    if (stats_ == nullptr) {
      for (const EncTriple& t : store_.Scan(probe)) keep(t);
    } else {
      // Instrumented walk: the explicit iterator exposes which run each
      // triple came from, attributing scan volume to base vs delta.
      ++stats_->ranges_scanned;
      MergedScan scan = store_.Scan(probe);
      for (auto it = scan.begin(); it != scan.end(); ++it) {
        ++(it.on_delta() ? stats_->delta_scanned : stats_->base_scanned);
        keep(*it);
      }
    }
    if (!std::is_sorted(values.begin(), values.end())) {
      std::sort(values.begin(), values.end());
    }
    values.erase(std::unique(values.begin(), values.end()), values.end());
    return values;
  }

  /// Galloping intersection of sorted candidate lists, smallest first.
  std::vector<DataId> Intersect(std::vector<std::vector<DataId>> lists) {
    std::sort(lists.begin(), lists.end(),
              [](const auto& a, const auto& b) { return a.size() < b.size(); });
    std::vector<DataId> current = std::move(lists.front());
    for (std::size_t i = 1; i < lists.size() && !current.empty(); ++i) {
      const std::vector<DataId>& other = lists[i];
      std::vector<DataId> next;
      next.reserve(current.size());
      auto it = other.begin();
      for (DataId value : current) {
        if (stats_ != nullptr) ++stats_->values_probed;
        it = std::lower_bound(it, other.end(), value);
        if (it == other.end()) break;
        if (*it == value) next.push_back(value);
      }
      current = std::move(next);
    }
    return current;
  }

  /// Returns false iff the callback stopped the enumeration.
  bool Descend(std::size_t depth) {
    if (depth == order_.size()) {
      VarAssignment out = fixed_;
      for (std::size_t i = 0; i < vars_.size(); ++i) {
        out[vars_[i]] = store_.dict().Decode(binding_[i]);
      }
      if (stats_ != nullptr) {
        ++stats_->emitted;
        stats_->dict_decodes += vars_.size();
      }
      return callback_(out);
    }
    int v = order_[depth];
    std::vector<std::vector<DataId>> lists;
    lists.reserve(conjuncts_of_var_[v].size());
    for (std::size_t ci : conjuncts_of_var_[v]) {
      lists.push_back(CollectValues(ci, v));
      if (lists.back().empty()) return true;  // Dead branch.
    }
    for (DataId value : Intersect(std::move(lists))) {
      binding_[v] = value;
      if (!Descend(depth + 1)) return false;
    }
    binding_[v] = kNoDataId;
    return true;
  }

  const ReadView& store_;
  const VarAssignment& fixed_;
  const std::function<bool(const VarAssignment&)>& callback_;
  JoinStats* stats_;

  std::vector<EncConjunct> conjuncts_;
  std::vector<TermId> vars_;
  std::unordered_map<TermId, int> var_index_;
  std::vector<std::vector<std::size_t>> conjuncts_of_var_;
  std::vector<int> order_;
  std::vector<DataId> binding_;
};

}  // namespace

void JoinEnumerate(const ReadView& store, const std::vector<Triple>& patterns,
                   const VarAssignment& fixed,
                   const std::function<bool(const VarAssignment&)>& callback,
                   JoinStats* stats) {
  JoinRun run(store, fixed, callback, stats);
  if (!run.Setup(patterns)) return;
  run.Run();
}

bool JoinExists(const ReadView& store, const std::vector<Triple>& patterns,
                const VarAssignment& fixed, JoinStats* stats) {
  bool found = false;
  JoinEnumerate(
      store, patterns, fixed,
      [&found](const VarAssignment&) {
        found = true;
        return false;  // First witness suffices.
      },
      stats);
  return found;
}

}  // namespace wdsparql
