#ifndef WDSPARQL_ENGINE_JOIN_H_
#define WDSPARQL_ENGINE_JOIN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "engine/read_view.h"
#include "hom/homomorphism.h"

/// \file
/// Merge/leapfrog-style multiway join for conjunctive patterns.
///
/// A conjunctive (AND-only) subpattern is a set of triple patterns; its
/// solutions over a ground store are exactly the homomorphisms of the
/// pattern set. Where the generic CSP solver of hom/homomorphism.h
/// backtracks over per-variable domains with AC-3 propagation, this join
/// binds variables one at a time in a fixed global order and, at each
/// level, intersects the *sorted* candidate ranges contributed by every
/// pattern containing the variable — the variable-at-a-time scheme of
/// leapfrog triejoin, with galloping (exponential-probe) merges over the
/// permutation ranges of `IndexedStore`. Candidate values arrive sorted
/// because `DataId` order is preserved inside every permutation range.

namespace wdsparql {

/// Counters for one join run. Plain (non-atomic) integers owned by the
/// calling thread — cursors accumulate these locally and merge at close,
/// so no shared state sits on the enumeration hot path.
struct JoinStats {
  uint64_t ranges_scanned = 0;  ///< Permutation ranges materialised.
  uint64_t values_probed = 0;   ///< Candidate values tested in merges.
  uint64_t emitted = 0;         ///< Solutions produced.
  uint64_t base_scanned = 0;    ///< Triples read from base runs.
  uint64_t delta_scanned = 0;   ///< Triples read from delta runs.
  uint64_t dict_encodes = 0;    ///< Term -> DataId dictionary probes.
  uint64_t dict_decodes = 0;    ///< DataId -> Term resolutions.
};

/// Enumerates every assignment of vars(`patterns`) \ dom(`fixed`) such
/// that all patterns, instantiated by the assignment plus `fixed`, are
/// triples of `view`. The emitted assignments include `fixed` (same
/// convention as EnumerateHomomorphisms). `callback` may return false to
/// stop. Deterministic order. Patterns may repeat variables within a
/// triple; `fixed` values must occur in the view for a match to exist.
///
/// Joins run over an immutable `ReadView`, so they are safe on any
/// thread concurrently with a live writer: pin a view
/// (`IndexedStore::PinView`) and keep it pinned for the join's duration.
void JoinEnumerate(const ReadView& view, const std::vector<Triple>& patterns,
                   const VarAssignment& fixed,
                   const std::function<bool(const VarAssignment&)>& callback,
                   JoinStats* stats = nullptr);

/// True iff at least one such assignment exists (early-exit join).
bool JoinExists(const ReadView& view, const std::vector<Triple>& patterns,
                const VarAssignment& fixed, JoinStats* stats = nullptr);

}  // namespace wdsparql

#endif  // WDSPARQL_ENGINE_JOIN_H_
