#ifndef WDSPARQL_ENGINE_JOIN_H_
#define WDSPARQL_ENGINE_JOIN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "engine/read_view.h"
#include "hom/homomorphism.h"

/// \file
/// Merge/leapfrog-style multiway join for conjunctive patterns.
///
/// A conjunctive (AND-only) subpattern is a set of triple patterns; its
/// solutions over a ground store are exactly the homomorphisms of the
/// pattern set. Where the generic CSP solver of hom/homomorphism.h
/// backtracks over per-variable domains with AC-3 propagation, this join
/// binds variables one at a time in a fixed global order and, at each
/// level, intersects the *sorted* candidate ranges contributed by every
/// pattern containing the variable — the variable-at-a-time scheme of
/// leapfrog triejoin, with galloping (exponential-probe) merges over the
/// permutation ranges of `IndexedStore`. Candidate values arrive sorted
/// because `DataId` order is preserved inside every permutation range.
///
/// The join is exposed two ways: `JoinCursor`, a pull-based resumable
/// iterator (the engine's suspendable enumeration and the parallel
/// execution mode both build on it), and the callback-shaped
/// `JoinEnumerate`/`JoinExists`, which are thin drivers over a cursor.

namespace wdsparql {

/// Counters for one join run. Plain (non-atomic) integers owned by the
/// calling thread — cursors accumulate these locally and merge at close,
/// so no shared state sits on the enumeration hot path.
struct JoinStats {
  uint64_t ranges_scanned = 0;  ///< Permutation ranges materialised.
  uint64_t values_probed = 0;   ///< Candidate values tested in merges.
  uint64_t emitted = 0;         ///< Solutions produced.
  uint64_t base_scanned = 0;    ///< Triples read from base runs.
  uint64_t delta_scanned = 0;   ///< Triples read from delta runs.
  uint64_t dict_encodes = 0;    ///< Term -> DataId dictionary probes.
  uint64_t dict_decodes = 0;    ///< DataId -> Term resolutions.
};

/// Pull-based resumable join: each `Next` call produces one assignment
/// and suspends with the whole descent state (one {values, position}
/// frame per bound variable) intact, so a caller that stops after the
/// first row pays for one row — not for the subtree's whole match set.
///
/// The cursor copies `fixed` and may share ownership of the view, so it
/// can outlive the `Execute` call that created it; `stats` (optional)
/// must outlive the cursor and is written from the pulling thread only.
///
/// Determinism: over a fixed view, every cursor for the same (patterns,
/// fixed) walks the identical variable order and value lists — the
/// parallel execution mode relies on this to stride one candidate space
/// across workers without coordination beyond a shared counter (see
/// `SetRootClaim`).
class JoinCursor {
 public:
  /// Shares ownership of `view` (the safe form for long-lived cursors).
  ///
  /// `var_order` (optional, both constructors) injects a planner-chosen
  /// variable binding order: the `TermId`s of the pattern's unbound
  /// variables, first-bound first. Any order over the same variable set
  /// yields the same solution set (a conjunctive pattern's homomorphisms
  /// do not depend on enumeration order), just different work. The
  /// pointer is only read during construction. An order that does not
  /// cover the unbound variables exactly is ignored in favour of the
  /// built-in heuristic, so a stale plan can never produce wrong
  /// answers. Passing null preserves the historic heuristic order
  /// exactly (the `ExecOptions::optimize = false` contract).
  JoinCursor(std::shared_ptr<const ReadView> view,
             const std::vector<Triple>& patterns, const VarAssignment& fixed,
             JoinStats* stats = nullptr,
             const std::vector<TermId>* var_order = nullptr);
  /// Borrows `view`, which must outlive the cursor (the classic
  /// callback drivers below use this form).
  JoinCursor(const ReadView& view, const std::vector<Triple>& patterns,
             const VarAssignment& fixed, JoinStats* stats = nullptr,
             const std::vector<TermId>* var_order = nullptr);
  ~JoinCursor();
  JoinCursor(JoinCursor&&) noexcept;
  JoinCursor& operator=(JoinCursor&&) noexcept;

  /// Produces the next solution (including `fixed`, same convention as
  /// EnumerateHomomorphisms). Returns false once exhausted (and from
  /// then on).
  bool Next(VarAssignment* out);

  /// Installs a work-partitioning claim consulted once per root-level
  /// binding, in the cursor's deterministic candidate order: `claim()`
  /// returning false skips that root value (and its whole sub-descent).
  /// A set of cursors over the same view and inputs whose claims
  /// partition the call sequence partitions the solution space exactly.
  /// Install before the first `Next`.
  void SetRootClaim(std::function<bool()> claim);

 private:
  struct State;
  std::unique_ptr<State> state_;
};

/// Enumerates every assignment of vars(`patterns`) \ dom(`fixed`) such
/// that all patterns, instantiated by the assignment plus `fixed`, are
/// triples of `view`. The emitted assignments include `fixed` (same
/// convention as EnumerateHomomorphisms). `callback` may return false to
/// stop. Deterministic order. Patterns may repeat variables within a
/// triple; `fixed` values must occur in the view for a match to exist.
///
/// Joins run over an immutable `ReadView`, so they are safe on any
/// thread concurrently with a live writer: pin a view
/// (`IndexedStore::PinView`) and keep it pinned for the join's duration.
void JoinEnumerate(const ReadView& view, const std::vector<Triple>& patterns,
                   const VarAssignment& fixed,
                   const std::function<bool(const VarAssignment&)>& callback,
                   JoinStats* stats = nullptr);

/// True iff at least one such assignment exists (early-exit join).
bool JoinExists(const ReadView& view, const std::vector<Triple>& patterns,
                const VarAssignment& fixed, JoinStats* stats = nullptr);

}  // namespace wdsparql

#endif  // WDSPARQL_ENGINE_JOIN_H_
