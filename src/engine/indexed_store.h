#ifndef WDSPARQL_ENGINE_INDEXED_STORE_H_
#define WDSPARQL_ENGINE_INDEXED_STORE_H_

#include <cstdint>
#include <vector>

#include "engine/dictionary.h"
#include "rdf/scan.h"
#include "rdf/triple_set.h"

/// \file
/// Dictionary-encoded triple store with sorted permutation indexes.
///
/// `IndexedStore` is the engine's storage layer, modelled on RDF-3X's
/// permutation indexes: the dictionary-encoded triples are materialised
/// three times, sorted in SPO, POS and OSP order. Because the three
/// cyclic permutations cover every subset of {S, P, O} as a sort prefix,
/// *any* partially bound triple pattern resolves to one contiguous,
/// binary-searchable range of exactly the matching triples — no
/// post-filtering, no hash probes, and iteration is a linear walk over
/// packed 12-byte tuples. Within a range, the values of the first
/// unbound position (in permutation order) appear in ascending `DataId`
/// order, which the merge join of `engine/join.h` exploits.
///
/// The store also implements the `TripleSource` scan interface, so the
/// paper's homomorphism/wdEVAL algorithms run on top of it unchanged.

namespace wdsparql {

/// A dictionary-encoded triple. Field order is always (s, p, o); the
/// permutation lives in the sort order of the containing vector.
struct EncTriple {
  DataId s;
  DataId p;
  DataId o;

  /// Position access: 0=subject, 1=predicate, 2=object.
  DataId operator[](int pos) const { return pos == 0 ? s : (pos == 1 ? p : o); }

  friend bool operator==(const EncTriple& a, const EncTriple& b) {
    return a.s == b.s && a.p == b.p && a.o == b.o;
  }
};

/// An encoded triple pattern: `kNoDataId` positions are wildcards.
struct EncPattern {
  DataId s = kNoDataId;
  DataId p = kNoDataId;
  DataId o = kNoDataId;

  DataId operator[](int pos) const { return pos == 0 ? s : (pos == 1 ? p : o); }
};

/// The three cyclic permutation orders.
enum class Permutation { kSpo = 0, kPos = 1, kOsp = 2 };

/// A contiguous range of encoded triples in one permutation order;
/// usable directly in range-for. The backing store must outlive it.
class ScanRange {
 public:
  ScanRange(const EncTriple* begin, const EncTriple* end, Permutation perm)
      : begin_(begin), end_(end), perm_(perm) {}

  const EncTriple* begin() const { return begin_; }
  const EncTriple* end() const { return end_; }
  std::size_t size() const { return static_cast<std::size_t>(end_ - begin_); }
  bool empty() const { return begin_ == end_; }
  /// The permutation the range is sorted in.
  Permutation permutation() const { return perm_; }

 private:
  const EncTriple* begin_;
  const EncTriple* end_;
  Permutation perm_;
};

/// Immutable dictionary-encoded store with SPO/POS/OSP permutations.
class IndexedStore final : public TripleSource {
 public:
  IndexedStore() = default;

  /// Builds the store (dictionary + three sorted permutations) from the
  /// triples of `set`.
  static IndexedStore Build(const TripleSet& set);

  /// The term dictionary.
  const Dictionary& dictionary() const { return dict_; }

  /// Encodes a `TermId`-space pattern (`kAnyTerm` positions become
  /// wildcards). Returns false iff some bound term does not occur in the
  /// store — in which case no triple can match.
  bool EncodeScanPattern(const Triple& pattern, EncPattern* out) const;

  /// The contiguous range of triples matching `pattern`, in the
  /// permutation whose sort prefix covers the bound positions. Every
  /// triple in the range matches; no residual filtering is needed.
  ScanRange Scan(const EncPattern& pattern) const;

  /// True iff the encoded triple is present.
  bool Contains(const EncTriple& t) const;

  /// Decodes `t` back to `TermId` space.
  Triple Decode(const EncTriple& t) const {
    return Triple(dict_.Decode(t.s), dict_.Decode(t.p), dict_.Decode(t.o));
  }

  // TripleSource interface -------------------------------------------
  std::size_t size() const override { return spo_.size(); }
  bool Contains(const Triple& t) const override;
  bool ScanPattern(const Triple& pattern, const TripleScanCallback& fn) const override;
  std::vector<TermId> AllTerms() const override { return dict_.terms(); }

 private:
  Dictionary dict_;
  // The same triples, sorted in the three cyclic permutation orders.
  std::vector<EncTriple> spo_;
  std::vector<EncTriple> pos_;
  std::vector<EncTriple> osp_;

  const std::vector<EncTriple>& Vector(Permutation perm) const {
    switch (perm) {
      case Permutation::kSpo: return spo_;
      case Permutation::kPos: return pos_;
      default: return osp_;
    }
  }
};

}  // namespace wdsparql

#endif  // WDSPARQL_ENGINE_INDEXED_STORE_H_
