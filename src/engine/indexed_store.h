#ifndef WDSPARQL_ENGINE_INDEXED_STORE_H_
#define WDSPARQL_ENGINE_INDEXED_STORE_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "engine/dictionary.h"
#include "rdf/scan.h"
#include "rdf/triple_set.h"
#include "wdsparql/hash.h"

/// \file
/// Dictionary-encoded triple store with sorted permutation indexes.
///
/// `IndexedStore` is the engine's storage layer, modelled on RDF-3X's
/// permutation indexes: the dictionary-encoded triples are materialised
/// three times, sorted in SPO, POS and OSP order. Because the three
/// cyclic permutations cover every subset of {S, P, O} as a sort prefix,
/// *any* partially bound triple pattern resolves to a binary-searchable
/// range of exactly the matching triples — no post-filtering from hash
/// probes, and iteration is a linear walk over packed 12-byte tuples.
/// Within a range, the values of the first unbound position (in
/// permutation order) appear in ascending `DataId` order, which the merge
/// join of `engine/join.h` exploits.
///
/// Mutation follows the classic two-run LSM shape instead of rebuilding:
/// each permutation keeps a large sorted *base* run plus a small sorted
/// *delta* run absorbing inserts; deletions of base-resident triples go
/// to a tombstone set. Scans merge the two runs on the fly (skipping
/// tombstones), preserving permutation order, and the delta is folded
/// into the base with one linear `std::merge` pass per permutation when
/// it exceeds a threshold (`MergeDelta`). `DataId`s are stable across
/// merges: the dictionary only ever appends, so no run is re-encoded.
///
/// The store also implements the `TripleSource` scan interface, so the
/// paper's homomorphism/wdEVAL algorithms run on top of it unchanged.

namespace wdsparql {

/// A dictionary-encoded triple. Field order is always (s, p, o); the
/// permutation lives in the sort order of the containing vector.
struct EncTriple {
  DataId s;
  DataId p;
  DataId o;

  /// Position access: 0=subject, 1=predicate, 2=object.
  DataId operator[](int pos) const { return pos == 0 ? s : (pos == 1 ? p : o); }

  friend bool operator==(const EncTriple& a, const EncTriple& b) {
    return a.s == b.s && a.p == b.p && a.o == b.o;
  }
};

/// Hash functor for EncTriple (tombstone set, dedup probes).
struct EncTripleHash {
  std::size_t operator()(const EncTriple& t) const {
    std::size_t seed = t.s;
    HashCombine(seed, t.p);
    HashCombine(seed, t.o);
    return seed;
  }
};

/// An encoded triple pattern: `kNoDataId` positions are wildcards.
struct EncPattern {
  DataId s = kNoDataId;
  DataId p = kNoDataId;
  DataId o = kNoDataId;

  DataId operator[](int pos) const { return pos == 0 ? s : (pos == 1 ? p : o); }
};

/// The three cyclic permutation orders.
enum class Permutation { kSpo = 0, kPos = 1, kOsp = 2 };

/// The matching triples of one scan: a sorted base-run range merged on
/// the fly with a sorted delta-run range, with tombstoned base triples
/// skipped. Iteration yields triples in permutation order (so the first
/// unbound position is ascending, as the merge join requires). The
/// backing store must outlive the scan and must not be mutated while a
/// scan is live.
class MergedScan {
 public:
  using Tombstones = std::unordered_set<EncTriple, EncTripleHash>;

  MergedScan(const EncTriple* base_begin, const EncTriple* base_end,
             const EncTriple* delta_begin, const EncTriple* delta_end,
             const Tombstones* dead, Permutation perm);

  /// Two-run merging input iterator.
  class Iterator {
   public:
    Iterator(const EncTriple* base, const EncTriple* base_end, const EncTriple* delta,
             const EncTriple* delta_end, const Tombstones* dead, const int* order);

    const EncTriple& operator*() const { return on_delta_ ? *delta_ : *base_; }
    Iterator& operator++();
    friend bool operator!=(const Iterator& a, const Iterator& b) {
      return a.base_ != b.base_ || a.delta_ != b.delta_;
    }
    friend bool operator==(const Iterator& a, const Iterator& b) { return !(a != b); }

   private:
    void Settle();  // Skip dead base triples; pick the smaller run head.

    const EncTriple* base_;
    const EncTriple* base_end_;
    const EncTriple* delta_;
    const EncTriple* delta_end_;
    const Tombstones* dead_;
    const int* order_;
    bool on_delta_ = false;
  };

  Iterator begin() const;
  Iterator end() const;
  /// Number of live triples in the scan. O(range) — counts by iterating;
  /// intended for tests and diagnostics, not hot paths.
  std::size_t size() const;
  bool empty() const { return !(begin() != end()); }
  /// The permutation the scan is ordered in.
  Permutation permutation() const { return perm_; }

 private:
  const EncTriple* base_begin_;
  const EncTriple* base_end_;
  const EncTriple* delta_begin_;
  const EncTriple* delta_end_;
  const Tombstones* dead_;
  Permutation perm_;
};

/// A permutation-sorted base run: either owned storage (built or merged
/// in memory) or a borrowed external array — a mapped snapshot section
/// consumed in place, whose backing file view must outlive the store.
/// The next `MergeDelta` naturally migrates a borrowed run into owned
/// storage (the merge output is always owned).
class EncRun {
 public:
  EncRun() = default;
  EncRun(const EncRun& other) { *this = other; }
  EncRun& operator=(const EncRun& other) {
    borrowed_ = other.borrowed_;
    size_ = other.size_;
    owned_ = other.owned_;
    data_ = borrowed_ ? other.data_ : owned_.data();
    return *this;
  }
  EncRun(EncRun&& other) noexcept { *this = std::move(other); }
  EncRun& operator=(EncRun&& other) noexcept {
    if (this == &other) return *this;
    borrowed_ = other.borrowed_;
    size_ = other.size_;
    owned_ = std::move(other.owned_);
    data_ = borrowed_ ? other.data_ : owned_.data();
    // Leave the source empty: its data_ must not alias storage that now
    // belongs to the target.
    other.data_ = nullptr;
    other.size_ = 0;
    other.borrowed_ = false;
    other.owned_.clear();
    return *this;
  }

  /// Takes ownership of a sorted run.
  void Assign(std::vector<EncTriple> triples) {
    owned_ = std::move(triples);
    data_ = owned_.data();
    size_ = owned_.size();
    borrowed_ = false;
  }

  /// Borrows `count` sorted triples living elsewhere (snapshot section).
  void Borrow(const EncTriple* data, std::size_t count) {
    owned_.clear();
    owned_.shrink_to_fit();
    data_ = data;
    size_ = count;
    borrowed_ = true;
  }

  const EncTriple* begin() const { return data_; }
  const EncTriple* end() const { return data_ + size_; }
  const EncTriple* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// True when the run borrows external (mapped) storage.
  bool borrowed() const { return borrowed_; }

 private:
  const EncTriple* data_ = nullptr;
  std::size_t size_ = 0;
  bool borrowed_ = false;
  std::vector<EncTriple> owned_;
};

/// Dictionary-encoded store with SPO/POS/OSP permutations and
/// incremental base+delta maintenance.
class IndexedStore final : public TripleSource {
 public:
  /// Delta size (inserts + tombstones) that triggers an automatic
  /// `MergeDelta` from a mutation. Small enough that sorted-delta
  /// insertion stays cheap, large enough to amortise the linear merge.
  static constexpr std::size_t kDefaultMergeThreshold = 4096;

  IndexedStore() = default;

  /// Builds the store (dictionary + three sorted base runs) from the
  /// triples of `set` in one sort pass — the bulk-load fast path.
  static IndexedStore Build(const TripleSet& set);

  /// Builds the store from a plain triple vector (duplicates collapse).
  /// The bulk loader's path: no TripleSet/RdfGraph hash structures are
  /// ever materialised.
  static IndexedStore Build(const std::vector<Triple>& triples);

  /// \internal Reconstitutes a store over a snapshot's sections, borrowed
  /// in place: `spo`/`pos`/`osp` are `count`-long sorted runs whose
  /// backing memory (the mapped snapshot) must outlive the store or its
  /// next `MergeDelta`, whichever comes first.
  static IndexedStore FromSnapshot(Dictionary dict, const EncTriple* spo,
                                   const EncTriple* pos, const EncTriple* osp,
                                   std::size_t count);

  // Mutation ----------------------------------------------------------

  /// Inserts `t`, growing the dictionary as needed; returns true iff it
  /// was not already present. O(delta) for the sorted-run insertion,
  /// amortised O(size/threshold) for merges.
  bool Insert(const Triple& t);

  /// Removes `t`; returns true iff it was present. Base-resident triples
  /// are tombstoned (physically removed by the next merge); delta
  /// triples are removed in place.
  bool Erase(const Triple& t);

  /// Folds the delta runs and tombstones into the base runs with one
  /// linear merge pass per permutation. Idempotent; `DataId`s and the
  /// dictionary are unchanged.
  void MergeDelta();

  /// Pending un-merged work: delta triples plus tombstones.
  std::size_t delta_size() const { return dspo_.size() + dead_.size(); }

  /// Sets the auto-merge trigger (0 disables automatic merging; callers
  /// then compact via `MergeDelta` explicitly).
  void set_merge_threshold(std::size_t n) { merge_threshold_ = n; }

  // Lookup ------------------------------------------------------------

  /// The term dictionary.
  const Dictionary& dictionary() const { return dict_; }

  /// Encodes a `TermId`-space pattern (`kAnyTerm` positions become
  /// wildcards). Returns false iff some bound term does not occur in the
  /// store — in which case no triple can match.
  bool EncodeScanPattern(const Triple& pattern, EncPattern* out) const;

  /// The triples matching `pattern`, in the permutation whose sort
  /// prefix covers the bound positions. Every yielded triple matches; no
  /// residual filtering is needed.
  MergedScan Scan(const EncPattern& pattern) const;

  /// True iff the encoded triple is present (and not tombstoned).
  bool Contains(const EncTriple& t) const;

  /// Decodes `t` back to `TermId` space.
  Triple Decode(const EncTriple& t) const {
    return Triple(dict_.Decode(t.s), dict_.Decode(t.p), dict_.Decode(t.o));
  }

  // Serialization surface (src/storage/) --------------------------------

  /// \internal The base run sorted in `perm` order. Only the full store
  /// content when the delta is empty (callers `MergeDelta` first).
  const EncTriple* base_data(Permutation perm) const {
    switch (perm) {
      case Permutation::kSpo: return spo_.data();
      case Permutation::kPos: return pos_.data();
      default: return osp_.data();
    }
  }

  /// \internal Length of each base run.
  std::size_t base_size() const { return spo_.size(); }

  /// \internal True when any base run still borrows mapped storage.
  bool borrows_snapshot() const {
    return spo_.borrowed() || pos_.borrowed() || osp_.borrowed();
  }

  /// \internal Installs a freshly built dictionary and three sorted,
  /// owned base runs (the Build helpers funnel through here).
  void SetBuilt(Dictionary dict, std::vector<EncTriple> spo,
                std::vector<EncTriple> pos, std::vector<EncTriple> osp);

  // TripleSource interface -------------------------------------------
  std::size_t size() const override { return spo_.size() - dead_.size() + dspo_.size(); }
  bool Contains(const Triple& t) const override;
  bool ScanPattern(const Triple& pattern, const TripleScanCallback& fn) const override;
  /// All dictionary terms, ascending by `TermId`. After removals this may
  /// include terms that no longer occur in any triple (the dictionary is
  /// append-only); such terms simply match nothing.
  std::vector<TermId> AllTerms() const override;

 private:
  void MaybeMerge();
  bool InDelta(const EncTriple& t) const;

  Dictionary dict_;
  // The same triples, sorted in the three cyclic permutation orders:
  // large immutable-between-merges base runs (owned, or borrowed in
  // place from a mapped snapshot)...
  EncRun spo_;
  EncRun pos_;
  EncRun osp_;
  // ...plus small sorted delta runs absorbing inserts.
  std::vector<EncTriple> dspo_;
  std::vector<EncTriple> dpos_;
  std::vector<EncTriple> dosp_;
  // Deleted base-resident triples awaiting the next merge.
  MergedScan::Tombstones dead_;
  std::size_t merge_threshold_ = kDefaultMergeThreshold;
};

}  // namespace wdsparql

#endif  // WDSPARQL_ENGINE_INDEXED_STORE_H_
