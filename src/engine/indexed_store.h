#ifndef WDSPARQL_ENGINE_INDEXED_STORE_H_
#define WDSPARQL_ENGINE_INDEXED_STORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/dictionary.h"
#include "engine/read_view.h"
#include "rdf/scan.h"
#include "rdf/triple_set.h"
#include "wdsparql/metrics.h"
#include "wdsparql/trace.h"

/// \file
/// Dictionary-encoded triple store with sorted permutation indexes.
///
/// `IndexedStore` is the engine's storage layer, modelled on RDF-3X's
/// permutation indexes: the dictionary-encoded triples are materialised
/// three times, sorted in SPO, POS and OSP order. Because the three
/// cyclic permutations cover every subset of {S, P, O} as a sort prefix,
/// *any* partially bound triple pattern resolves to a binary-searchable
/// range of exactly the matching triples — no post-filtering from hash
/// probes, and iteration is a linear walk over packed 12-byte tuples.
/// Within a range, the values of the first unbound position (in
/// permutation order) appear in ascending `DataId` order, which the merge
/// join of `engine/join.h` exploits.
///
/// Mutation follows the classic two-run LSM shape instead of rebuilding:
/// each permutation keeps a large sorted *base* run plus a small sorted
/// *delta* run absorbing inserts; deletions of base-resident triples go
/// to a tombstone set. Scans merge the two runs on the fly (skipping
/// tombstones), preserving permutation order, and the delta is folded
/// into the base with one linear `std::merge` pass per permutation when
/// it exceeds a threshold (`MergeDelta`). `DataId`s are stable across
/// merges: the dictionary only ever appends, so no run is re-encoded.
///
/// Concurrency (single writer, many readers): all store state lives in
/// immutable refcounted pieces (`BaseRuns`, `DeltaRuns`, the dictionary
/// prefix — see engine/read_view.h). A mutation builds the successor
/// delta copy-on-write, then publishes a fresh `ReadView` with one
/// atomic shared-ptr store; `PinView()` on any thread acquires the
/// latest view with one atomic load. Readers therefore never block the
/// writer, never observe a torn delta, and keep whatever view they
/// pinned alive until they drop it. The mutation API itself is
/// single-writer: concurrent mutators require external serialisation.
///
/// The store also implements the `TripleSource` scan interface (against
/// its freshest view), so the paper's homomorphism/wdEVAL algorithms run
/// on top of it unchanged.

namespace wdsparql {

/// Dictionary-encoded store with SPO/POS/OSP permutations, incremental
/// base+delta maintenance, and epoch-published `ReadView` snapshots.
class IndexedStore final : public TripleSource {
 public:
  /// Delta size (inserts + tombstones) that triggers an automatic
  /// `MergeDelta` from a mutation. Small enough that sorted-delta
  /// insertion stays cheap, large enough to amortise the linear merge.
  static constexpr std::size_t kDefaultMergeThreshold = 4096;

  IndexedStore();

  /// Builds the store (dictionary + three sorted base runs) from the
  /// triples of `set` in one sort pass — the bulk-load fast path.
  static IndexedStore Build(const TripleSet& set);

  /// Builds the store from a plain triple vector (duplicates collapse).
  /// The bulk loader's path: no TripleSet/RdfGraph hash structures are
  /// ever materialised.
  static IndexedStore Build(const std::vector<Triple>& triples);

  /// \internal Reconstitutes a store over a snapshot's sections, borrowed
  /// in place: `spo`/`pos`/`osp` are `count`-long sorted runs whose
  /// backing memory must stay valid while `keepalive` is held. The
  /// keepalive is stored inside the published base runs, so the mapping
  /// lives exactly as long as the last `ReadView` that borrows from it
  /// (the next `MergeDelta` migrates the store itself to owned storage).
  /// `stats` are the snapshot's persisted cardinality statistics (null
  /// for legacy snapshots without stats sections; `MergeDelta` rebuilds
  /// them on the first compaction).
  static IndexedStore FromSnapshot(Dictionary dict, const EncTriple* spo,
                                   const EncTriple* pos, const EncTriple* osp,
                                   std::size_t count,
                                   std::shared_ptr<const void> keepalive,
                                   std::shared_ptr<const CardinalityStats> stats =
                                       nullptr);

  // Mutation (single writer) ------------------------------------------

  /// Inserts `t`, growing the dictionary as needed; returns true iff it
  /// was not already present. O(delta) for the copy-on-write sorted-run
  /// insertion, amortised O(size/threshold) for merges. Publishes a new
  /// view on success.
  bool Insert(const Triple& t);

  /// Removes `t`; returns true iff it was present. Base-resident triples
  /// are tombstoned (physically removed by the next merge); delta
  /// triples are removed copy-on-write. Publishes a new view on success.
  bool Erase(const Triple& t);

  /// Applies a pre-resolved net batch in one step: every triple of
  /// `adds` must be absent from the current view and every triple of
  /// `removes` present (`Database::Apply` guarantees both by computing
  /// the net effect first). Builds ONE successor delta copy-on-write —
  /// one linear pass per permutation, O(batch log batch + delta)
  /// however large the batch — and performs ONE view publish; when the
  /// grown delta crosses the merge threshold, the fold happens inside
  /// the same step and the merge's publish is the only one. This is the
  /// amortised bulk path that retires the old per-triple loop (and the
  /// empty-database-only `Build` fast path) for ingest.
  /// A non-null `trace` receives `delta_build` and `publish` (or
  /// `compact`, when the batch crosses the merge threshold) spans under
  /// `trace_parent`; writer-side, so no synchronisation is needed.
  void ApplyBatch(const std::vector<Triple>& adds,
                  const std::vector<Triple>& removes,
                  TraceContext* trace = nullptr, uint32_t trace_parent = 0);

  /// Folds the delta runs and tombstones into fresh base runs with one
  /// linear merge pass per permutation, then publishes. Idempotent;
  /// `DataId`s and the dictionary are unchanged. Views pinned before the
  /// merge keep the pre-merge runs alive and stay fully readable.
  /// The merged base always gets fresh `CardinalityStats`; an empty
  /// delta over a stats-less base (a legacy snapshot) rebuilds the stats
  /// in place and republishes, so "Compact" is also the lazy
  /// stats-upgrade path.
  void MergeDelta();

  /// Pending un-merged work: delta triples plus tombstones.
  std::size_t delta_size() const { return delta_->pending(); }

  /// Sets the auto-merge trigger (0 disables automatic merging; callers
  /// then compact via `MergeDelta` explicitly).
  void set_merge_threshold(std::size_t n) { merge_threshold_ = n; }

  /// Attaches the engine-wide metrics registry (see wdsparql/metrics.h):
  /// the store then times delta builds and compactions, counts
  /// publishes, and tracks live published views through per-view
  /// lifetime tokens. Null detaches. Shared ownership, so tokens held by
  /// long-lived pinned views stay safe whatever outlives what.
  void set_metrics(std::shared_ptr<MetricsRegistry> metrics);

  // Reading -----------------------------------------------------------

  /// Pins the latest published view: one atomic load + refcount bump,
  /// callable from any thread concurrently with the writer. The caller
  /// keeps the shared_ptr for as long as it reads the view.
  std::shared_ptr<const ReadView> PinView() const;

  /// The latest published view, borrowed. Writer-thread (or externally
  /// serialised) use only: the reference dies with the next mutation.
  const ReadView& view() const { return *view_; }

  /// Monotonic publish counter (the generation of the latest view).
  /// This IS the public `Database::generation()` value; note it can
  /// advance by more than one across a single mutation (a threshold
  /// merge publishes, then the mutation publishes again). Writer-side
  /// read; other threads read `PinView()->generation()` instead.
  uint64_t generation() const { return generation_; }

  /// \internal Adopts another store's content (dictionary + runs +
  /// delta) and publishes it as this store's next view. Unlike a plain
  /// assignment this keeps the publish atomic — concurrent readers may
  /// pin views throughout — and keeps the generation monotonic. The
  /// merge threshold is retained. Used by the bulk-load path.
  void AdoptFrom(IndexedStore&& other);

  // Writer-side lookup (delegates to the freshest view) ---------------

  /// The term dictionary (writer side; readers use `PinView()->dict()`).
  const Dictionary& dictionary() const { return dict_; }

  /// See `ReadView::EncodeScanPattern`.
  bool EncodeScanPattern(const Triple& pattern, EncPattern* out) const {
    return view_->EncodeScanPattern(pattern, out);
  }

  /// See `ReadView::Scan`. The scan borrows the current view: do not
  /// hold it across mutations (pin a view for that).
  MergedScan Scan(const EncPattern& pattern) const { return view_->Scan(pattern); }

  /// True iff the encoded triple is present (and not tombstoned).
  bool Contains(const EncTriple& t) const { return view_->Contains(t); }

  /// Decodes `t` back to `TermId` space.
  Triple Decode(const EncTriple& t) const { return view_->Decode(t); }

  // Serialization surface (src/storage/) ------------------------------

  /// \internal The base run sorted in `perm` order. Only the full store
  /// content when the delta is empty (callers `MergeDelta` first).
  const EncTriple* base_data(Permutation perm) const {
    switch (perm) {
      case Permutation::kSpo: return base_->spo.data();
      case Permutation::kPos: return base_->pos.data();
      default: return base_->osp.data();
    }
  }

  /// \internal Length of each base run.
  std::size_t base_size() const { return base_->spo.size(); }

  /// \internal Cardinality statistics over the current base runs, or
  /// null when none have been built yet (see `MergeDelta`). Writer-side;
  /// readers use `PinView()->stats()`.
  const std::shared_ptr<const CardinalityStats>& stats() const {
    return base_->stats;
  }

  /// \internal True when any base run still borrows mapped storage.
  bool borrows_snapshot() const {
    return base_->spo.borrowed() || base_->pos.borrowed() || base_->osp.borrowed();
  }

  /// \internal Installs a freshly built dictionary and three sorted,
  /// owned base runs (the Build helpers funnel through here), then
  /// publishes.
  void SetBuilt(Dictionary dict, std::vector<EncTriple> spo,
                std::vector<EncTriple> pos, std::vector<EncTriple> osp);

  // TripleSource interface (freshest view) ----------------------------
  std::size_t size() const override { return view_->size(); }
  bool Contains(const Triple& t) const override { return view_->Contains(t); }
  bool ScanPattern(const Triple& pattern, const TripleScanCallback& fn) const override {
    return view_->ScanPattern(pattern, fn);
  }
  /// All dictionary terms, ascending by `TermId`. After removals this may
  /// include terms that no longer occur in any triple (the dictionary is
  /// append-only); such terms simply match nothing.
  std::vector<TermId> AllTerms() const override { return view_->AllTerms(); }

 private:
  void MaybeMerge();
  /// Builds and atomically publishes the view of the current state.
  void Publish();

  Dictionary dict_;  // Writer-side handle; its buffers are COW-shared.
  // The canonical state: immutable refcounted pieces, replaced (never
  // mutated) by the writer. `view_` packages the current pieces and is
  // what readers pin; it is accessed with atomic shared_ptr loads.
  std::shared_ptr<const BaseRuns> base_;
  std::shared_ptr<const DeltaRuns> delta_;
  std::shared_ptr<const ReadView> view_;
  uint64_t generation_ = 0;
  std::size_t merge_threshold_ = kDefaultMergeThreshold;

  // Metrics (null when detached). Instrument pointers are cached at
  // set_metrics so the hot paths skip the registry's name lookup.
  std::shared_ptr<MetricsRegistry> metrics_;
  Counter* publishes_metric_ = nullptr;
  Counter* compactions_metric_ = nullptr;
  Counter* stats_rebuilds_metric_ = nullptr;
  Histogram* delta_build_ns_metric_ = nullptr;
  Histogram* compaction_ns_metric_ = nullptr;
};

}  // namespace wdsparql

#endif  // WDSPARQL_ENGINE_INDEXED_STORE_H_
