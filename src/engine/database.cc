#include "wdsparql/database.h"

#include "engine/api_internal.h"
#include "engine/join.h"
#include "hom/homomorphism.h"
#include "hom/pebble.h"
#include "ptree/tgraph.h"
#include "rdf/ntriples.h"
#include "wd/eval.h"

namespace wdsparql {
namespace {

/// Frames a mutation into the WAL (spellings, not ids: ids are intern
/// order and the log outlives this process's pool). On failure the
/// error latches in the impl and the caller must not apply the mutation
/// — it was never made durable.
bool LogMutation(DatabaseImpl* impl, storage::WalRecordType type, const Triple& t) {
  // The error latches: once an append failed, the log's tail state is
  // suspect and later mutations are refused outright (matching the
  // storage_status() contract) rather than racing a broken device.
  if (!impl->sticky_storage_status().ok()) return false;
  Status status =
      impl->wal->Append(type, impl->pool->Spelling(t.subject),
                        impl->pool->Spelling(t.predicate), impl->pool->Spelling(t.object));
  if (!status.ok()) {
    impl->LatchStorageError(status);
    return false;
  }
  return true;
}

}  // namespace

Database::Database(const DatabaseOptions& options)
    : impl_(std::make_unique<DatabaseImpl>(nullptr, options)) {}

Database::Database(TermPool* pool, const DatabaseOptions& options)
    : impl_(std::make_unique<DatabaseImpl>(pool, options)) {
  WDSPARQL_CHECK(pool != nullptr);
}

Database::~Database() = default;
Database::Database(Database&&) noexcept = default;
Database& Database::operator=(Database&&) noexcept = default;

bool Database::AddTriple(const Triple& t) {
  if (!t.IsGround()) return false;  // Variables are not storable facts.
  DatabaseImpl* impl = impl_.get();
  if (impl->wal != nullptr) {
    // WAL before data: a non-mutating presence probe first, then the
    // record is made durable (per the sync mode) before any in-memory
    // index changes — a crash never acknowledges a mutation it cannot
    // replay.
    bool present =
        impl->graph_hydrated ? impl->graph.Contains(t) : impl->store.Contains(t);
    if (present) return false;
    if (!LogMutation(impl, storage::WalRecordType::kAddTriple, t)) return false;
    if (impl->graph_hydrated) impl->graph.Insert(t);
    impl->store.Insert(t);
  } else if (impl->graph_hydrated) {
    // No log to order against: the insert itself is the presence test
    // (one hash operation on the hot path).
    if (!impl->graph.Insert(t)) return false;
    bool inserted = impl->store.Insert(t);
    WDSPARQL_DCHECK(inserted);
    (void)inserted;
  } else {
    if (!impl->store.Insert(t)) return false;
  }
  return true;  // The store published the new view (and its generation).
}

bool Database::AddTriple(std::string_view s, std::string_view p, std::string_view o) {
  return AddTriple(
      Triple(pool().InternIri(s), pool().InternIri(p), pool().InternIri(o)));
}

bool Database::RemoveTriple(const Triple& t) {
  DatabaseImpl* impl = impl_.get();
  if (impl->wal != nullptr) {
    bool present =
        impl->graph_hydrated ? impl->graph.Contains(t) : impl->store.Contains(t);
    if (!present) return false;
    if (!LogMutation(impl, storage::WalRecordType::kRemoveTriple, t)) return false;
    if (impl->graph_hydrated) impl->graph.Remove(t);
    impl->store.Erase(t);
  } else if (impl->graph_hydrated) {
    if (!impl->graph.Remove(t)) return false;
    bool erased = impl->store.Erase(t);
    WDSPARQL_DCHECK(erased);
    (void)erased;
  } else {
    if (!impl->store.Erase(t)) return false;
  }
  return true;
}

bool Database::RemoveTriple(std::string_view s, std::string_view p,
                            std::string_view o) {
  // Pure lookup: a delete probe for unknown spellings must not grow the
  // append-only pool (long-running services issue many no-op deletes).
  std::optional<TermId> sid = pool().FindIri(s);
  std::optional<TermId> pid = pool().FindIri(p);
  std::optional<TermId> oid = pool().FindIri(o);
  if (!sid.has_value() || !pid.has_value() || !oid.has_value()) return false;
  return RemoveTriple(Triple(*sid, *pid, *oid));
}

Status Database::LoadNTriples(std::string_view text) {
  // Parse into a staging graph first so a parse error loads nothing.
  RdfGraph staged(impl_->pool);
  WDSPARQL_RETURN_IF_ERROR(ParseNTriples(text, &staged));
  // The sort-based bulk path bypasses per-triple logging, so a WAL
  // database takes the per-triple path even when empty (checkpoint
  // after bulk loads to fold the log back down).
  if (empty() && impl_->wal == nullptr) {
    engine_internal::BulkLoad(this, staged.triples());
    return Status::OK();
  }
  for (const Triple& t : staged.triples()) {
    AddTriple(t);
    // A false return may just be a duplicate; a WAL failure must not be
    // swallowed into an OK load.
    WDSPARQL_RETURN_IF_ERROR(impl_->sticky_storage_status());
  }
  return Status::OK();
}

Status Database::LoadNTriplesFile(const std::string& path) {
  // Reuse the file reader's I/O handling through a staging graph.
  RdfGraph staged(impl_->pool);
  WDSPARQL_RETURN_IF_ERROR(ReadNTriplesFile(path, &staged));
  if (empty() && impl_->wal == nullptr) {
    engine_internal::BulkLoad(this, staged.triples());
    return Status::OK();
  }
  for (const Triple& t : staged.triples()) {
    AddTriple(t);
    WDSPARQL_RETURN_IF_ERROR(impl_->sticky_storage_status());
  }
  return Status::OK();
}

void Database::Compact() { impl_->store.MergeDelta(); }

std::size_t Database::size() const { return impl_->store.PinView()->size(); }

bool Database::Contains(const Triple& t) const {
  // The permutation store mirrors the hash graph exactly, and its
  // pinned view is safe against a concurrent writer.
  return impl_->store.PinView()->Contains(t);
}

std::size_t Database::pending_delta() const {
  return impl_->store.PinView()->pending_delta();
}

uint64_t Database::generation() const {
  return impl_->store.PinView()->generation();
}

TermPool& Database::pool() const { return *impl_->pool; }

Session Database::OpenSession(const SessionOptions& options) const {
  return Session(impl_.get(), options);
}

const RdfGraph& Database::graph() const {
  impl_->EnsureGraph();
  return impl_->graph;
}

Status Database::storage_status() const { return impl_->sticky_storage_status(); }

const IndexedStore& Database::store() const { return impl_->store; }

const char* BackendToString(Backend backend) {
  switch (backend) {
    case Backend::kNaiveHash: return "naive-hash";
    case Backend::kIndexed: return "indexed";
  }
  return "unknown";
}

namespace engine_internal {

void BulkLoad(Database* db, const TripleSet& triples) {
  DatabaseImpl* impl = &DatabaseImpl::Get(*db);
  WDSPARQL_CHECK(impl->graph.empty() && impl->store.size() == 0);
  impl->graph.Reserve(triples.size());
  for (const Triple& t : triples.triples()) impl->graph.Insert(t);
  // AdoptFrom, not assignment: replacing the store object outright
  // would swap the view slot non-atomically under concurrent readers
  // (size()/Contains()/cursor opens are documented safe during any
  // mutation, bulk loads included).
  impl->store.AdoptFrom(IndexedStore::Build(impl->graph.triples()));
  impl->graph_hydrated = true;  // Both stores now hold the full content.
}

const HashTripleSource& HashSourceOf(const Database& db) {
  DatabaseImpl::Get(db).EnsureGraph();
  return DatabaseImpl::Get(db).hash_source;
}

EnumerationHooks MakeEnumerationHooks(const DatabaseImpl& db,
                                      const SessionOptions& options,
                                      std::shared_ptr<const ReadView> view) {
  EnumerationHooks hooks;
  if (options.backend == Backend::kIndexed) {
    // The hooks share ownership of the pinned view: the enumeration
    // stays valid however long the cursor lives and whatever the writer
    // does meanwhile.
    if (view == nullptr) view = db.store.PinView();
    hooks.candidates = [view](const TripleSet& pattern,
                              const std::function<bool(const VarAssignment&)>& emit) {
      JoinEnumerate(*view, pattern.triples(), VarAssignment{}, emit);
    };
    hooks.extends = [view](const TripleSet& combined, const Mapping& mu) {
      return JoinExists(*view, combined.triples(), MappingToAssignment(mu));
    };
    return hooks;
  }
  db.EnsureGraph();  // The naive backend scans the hash row store.
  const HashTripleSource* source = &db.hash_source;
  hooks.candidates = [source](const TripleSet& pattern,
                              const std::function<bool(const VarAssignment&)>& emit) {
    EnumerateHomomorphisms(pattern, VarAssignment{}, *source, emit);
  };
  if (options.pebble_promise > 0) {
    const RdfGraph* graph = &db.graph;
    int k = options.pebble_promise;
    hooks.extends = [graph, k](const TripleSet& combined, const Mapping& mu) {
      return PebbleGameWins(combined, MappingToAssignment(mu), graph->triples(), k + 1);
    };
  } else {
    hooks.extends = [source](const TripleSet& combined, const Mapping& mu) {
      return HasHomomorphism(combined, MappingToAssignment(mu), *source);
    };
  }
  return hooks;
}

bool EvaluateMembership(const DatabaseImpl& db, const SessionOptions& options,
                        const PatternForest& forest, const Mapping& mu,
                        EvalStats* stats) {
  switch (options.backend) {
    case Backend::kIndexed: {
      // Pin once for the whole membership test: candidate scans and the
      // maximality certificates all read the same consistent snapshot.
      std::shared_ptr<const ReadView> view = db.store.PinView();
      VarAssignment fixed = MappingToAssignment(mu);
      return WdEvalWith(forest, *view, mu, stats, [&](const TripleSet& combined) {
        return JoinExists(*view, combined.triples(), fixed);
      });
    }
    case Backend::kNaiveHash:
      db.EnsureGraph();  // Both naive eval paths read the hash row store.
      if (options.pebble_promise > 0) {
        return PebbleWdEval(forest, db.graph, mu, options.pebble_promise, stats);
      }
      return NaiveWdEval(forest, db.hash_source, mu, stats);
  }
  return false;
}

}  // namespace engine_internal

}  // namespace wdsparql
